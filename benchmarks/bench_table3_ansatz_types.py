"""Table 3: Global Selective Execution benefit across ansatz types.

For each entanglement structure (full / linear / circular / asymmetric),
VarSaw with the adaptive Global scheduler and VarSaw without sparsity
(Globals every evaluation) run under the same circuit budget; the entry is
the % of the no-sparsity scheme's inaccuracy the sparse scheme mitigates.
Paper: positive for all molecules and ansatz types (23%-96%).

Scale note: the benefit's *mechanism* — selective execution completes
several times the iterations per budget at no energy cost — is asserted at
every scale; the net accuracy-advantage magnitude needs the paper's long
(2000-iteration-class) runs and is asserted under ``REPRO_SCALE=full``.
"""

from conftest import fmt, print_table

from repro.analysis import (
    fixed_budget_runs,
    is_full_scale,
    percent_inaccuracy_mitigated,
    scaled,
)
from repro.ansatz import ENTANGLEMENT_TYPES
from repro.noise import ibmq_mumbai_like
from repro.workloads import make_workload

QUICK_KEYS = ["CH4-6"]
FULL_KEYS = ["CH4-6", "H2O-6", "LiH-6"]


def test_table3_ansatz_types(benchmark):
    keys = scaled(QUICK_KEYS, FULL_KEYS)
    shots = scaled(256, 1024)
    device = ibmq_mumbai_like(scale=2.0)

    def experiment():
        table = {}
        for key in keys:
            for ent in ENTANGLEMENT_TYPES:
                workload = make_workload(key, entanglement=ent)
                groups = len(workload.hamiltonian.measurement_groups())
                budget = scaled(150, 4000) * groups
                runs = fixed_budget_runs(
                    ("varsaw_no_sparsity", "varsaw"),
                    workload,
                    circuit_budget=budget,
                    shots=shots,
                    seed=3,
                    device=device,
                )
                table[(key, ent)] = {
                    "mitigated": percent_inaccuracy_mitigated(
                        workload.ideal_energy,
                        runs["varsaw_no_sparsity"].energy,
                        runs["varsaw"].energy,
                    ),
                    "dense_iters": runs["varsaw_no_sparsity"].iterations,
                    "sparse_iters": runs["varsaw"].iterations,
                    "gap": (
                        runs["varsaw"].energy
                        - runs["varsaw_no_sparsity"].energy
                    ),
                }
        return table

    table = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        "Table 3: % inaccuracy mitigated by selective Globals, per ansatz "
        "(sparse/dense iterations in parentheses)",
        ["Workload"] + list(ENTANGLEMENT_TYPES),
        [
            [key]
            + [
                f"{fmt(table[(key, ent)]['mitigated'], 1)} "
                f"({table[(key, ent)]['sparse_iters']}/"
                f"{table[(key, ent)]['dense_iters']})"
                for ent in ENTANGLEMENT_TYPES
            ]
            for key in keys
        ],
    )
    cells = list(table.values())
    for cell in cells:
        # The economics: selective execution completes far more
        # iterations under the same budget...
        assert cell["sparse_iters"] > 1.5 * cell["dense_iters"]
        # ...without giving up energy beyond run-to-run noise.
        assert cell["gap"] < 0.25
    if is_full_scale():
        # The paper's Table 3: positive mitigation in every cell.
        values = [c["mitigated"] for c in cells]
        assert sum(values) / len(values) > 0
        assert sum(1 for v in values if v > 0) >= len(values) - 1
