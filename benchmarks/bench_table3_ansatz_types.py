"""Table 3: Global Selective Execution benefit across ansatz types.

For each entanglement structure (full / linear / circular / asymmetric),
VarSaw with the adaptive Global scheduler and VarSaw without sparsity
(Globals every evaluation) run under the same circuit budget; the entry is
the % of the no-sparsity scheme's inaccuracy the sparse scheme mitigates.
Paper: positive for all molecules and ansatz types (23%-96%).

Scale note: the benefit's *mechanism* — selective execution completes
several times the iterations per budget at no energy cost — is asserted at
every scale; the net accuracy-advantage magnitude needs the paper's long
(2000-iteration-class) runs and is asserted under ``REPRO_SCALE=full``.

Ported to the declarative catalog (entry ``table3``); rows are
byte-identical to the pre-port output.
"""

from conftest import print_tables

from repro.analysis import is_full_scale
from repro.ansatz import ENTANGLEMENT_TYPES
from repro.sweeps import ResultStore, get_entry, run_entry
from repro.sweeps.catalog import selective_table


def test_table3_ansatz_types(benchmark, tmp_path):
    entry = get_entry("table3")
    store = ResultStore(tmp_path / "table3.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    table = selective_table(
        outcome.records, "entanglement", list(ENTANGLEMENT_TYPES)
    )
    cells = list(table.values())
    for cell in cells:
        # The economics: selective execution completes far more
        # iterations under the same budget...
        assert cell["sparse_iters"] > 1.5 * cell["dense_iters"]
        # ...without giving up energy beyond run-to-run noise.
        assert cell["gap"] < 0.25
    if is_full_scale():
        # The paper's Table 3: positive mitigation in every cell.
        values = [c["mitigated"] for c in cells]
        assert sum(values) / len(values) > 0
        assert sum(1 for v in values if v > 0) >= len(values) - 1
