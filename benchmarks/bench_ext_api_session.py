"""Extension: the typed experiment API driving the sweep pipeline.

PR 4 replaced the string-kind estimator factory with the
``repro.api`` registry: per-kind typed ``EstimatorSpec`` dataclasses
plus a ``Session`` owning device/backend/seed/engine.  This bench
exercises the new surface end to end through the declarative catalog
(entry ``ext_api_session``): one tuning grid whose axis is a list of
*inline estimator-spec payloads* — including the ``gc``, ``selective``,
and ``calibration_gated`` kinds the legacy ``make_estimator`` factory
never exposed — each constructed through ``Session`` inside the sweep
runner.

Expected shape: every registered kind tunes (finite energies, charged
circuit ledgers); GC spends several-fold fewer circuits per iteration
than the VarSaw rows; selective mitigation spends no more circuits
than full VarSaw; calibration gating matches VarSaw on this device
(its readout lines are all noisy enough to keep every subset).
"""

from conftest import print_tables

from repro.sweeps import ResultStore, get_entry, run_entry
from repro.sweeps.catalog import api_session_rows


def test_ext_api_session(benchmark, tmp_path):
    entry = get_entry("ext_api_session")
    store = ResultStore(tmp_path / "api.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    rows = api_session_rows(outcome.records)
    assert set(rows) == {
        "varsaw", "gc", "selective", "calibration_gated"
    }
    for kind, result in rows.items():
        assert result["circuits"] > 0, kind
        assert result["error"] < 10.0, kind
    # GC groups whole commuting families: far fewer circuits than the
    # subset-based schemes.
    assert rows["gc"]["circuits"] < rows["varsaw"]["circuits"] / 2
    # Selective mitigation only prunes work relative to full VarSaw.
    assert rows["selective"]["circuits"] <= rows["varsaw"]["circuits"]
    # Mumbai-like readout is uniformly bad enough that the calibration
    # gate keeps every subset: bit-identical to plain VarSaw.
    assert rows["calibration_gated"]["energy"] == rows["varsaw"]["energy"]
    assert (
        rows["calibration_gated"]["circuits"] == rows["varsaw"]["circuits"]
    )
