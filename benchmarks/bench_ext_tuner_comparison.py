"""Extension: classical tuner ablation under VarSaw (Section 5.1).

The paper runs SPSA and ImFil "across all our evaluations".  With
Nelder-Mead added, this bench tunes the same noisy H2-4 VarSaw instance
with all three.  Expected shape: the noise-robust tuners (SPSA, ImFil)
recover most of the start-to-ideal gap; Nelder-Mead improves but lags —
the known simplex-collapse-under-shot-noise effect, which is exactly why
Section 5.1 picks SPSA and ImFil in the first place.

Ported to the declarative catalog (entry ``ext_tuner_comparison``): one
``tuner_tuning`` point per tuner; rows are byte-identical to the
pre-port output.
"""

from conftest import print_tables

from repro.sweeps import ResultStore, get_entry, run_entry


def test_tuner_robustness(benchmark, tmp_path):
    entry = get_entry("ext_tuner_comparison")
    store = ResultStore(tmp_path / "tuners.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    stats = {
        r["point"]["options"]["tuner"]: r["result"]
        for r in outcome.records
    }
    ideal = outcome.records[0]["result"]["ideal_energy"]

    def progress(row):
        return (row["start"] - row["energy"]) / (row["start"] - ideal)

    # The paper's tuners (SPSA, ImFil) are noise-robust by design and
    # dig most of the way toward the ideal.
    assert progress(stats["SPSA"]) > 0.5
    assert progress(stats["ImFil"]) > 0.5
    # Nelder-Mead improves but lags on noisy objectives — the well-known
    # simplex-collapse-under-shot-noise effect, and the reason Section
    # 5.1 picks SPSA/ImFil.  We assert the direction, not parity.
    assert progress(stats["NelderMead"]) > 0.0
    assert stats["NelderMead"]["energy"] >= min(
        stats["SPSA"]["energy"], stats["ImFil"]["energy"]
    ) - 0.2
