"""Extension: classical tuner ablation under VarSaw (Section 5.1).

The paper runs SPSA and ImFil "across all our evaluations".  With
Nelder-Mead added, this bench tunes the same noisy H2-4 VarSaw instance
with all three.  Expected shape: the noise-robust tuners (SPSA, ImFil)
recover most of the start-to-ideal gap; Nelder-Mead improves but lags —
the known simplex-collapse-under-shot-noise effect, which is exactly why
Section 5.1 picks SPSA and ImFil in the first place.
"""

import os

import numpy as np
from conftest import fmt, print_table, run_once

from repro.noise import SimulatorBackend, ibmq_mumbai_like
from repro.optimizers import SPSA, ImFil, NelderMead
from repro.vqe import run_vqe
from repro.workloads import make_estimator, make_workload

FULL = os.environ.get("REPRO_SCALE", "quick") == "full"
ITERATIONS = 400 if FULL else 120


def test_tuner_robustness(benchmark):
    def experiment():
        workload = make_workload("H2-4")
        start = np.full(workload.ansatz.num_parameters, 0.1)
        tuners = {
            "SPSA": SPSA(seed=19),
            "ImFil": ImFil(),
            "NelderMead": NelderMead(initial_step=0.3),
        }
        rows = {}
        for name, tuner in tuners.items():
            backend = SimulatorBackend(ibmq_mumbai_like(scale=2.0), seed=19)
            estimator = make_estimator(
                "varsaw", workload, backend, shots=512
            )
            start_energy = estimator.evaluate(start)
            result = run_vqe(
                estimator,
                optimizer=tuner,
                max_iterations=ITERATIONS,
                initial_params=start,
            )
            rows[name] = {
                "start": start_energy,
                "energy": result.energy,
                "evals": result.iterations,
            }
        rows["ideal"] = workload.ideal_energy
        return rows

    stats = run_once(benchmark, experiment)
    ideal = stats.pop("ideal")
    print_table(
        f"Extension: tuner ablation, VarSaw on H2-4 "
        f"({ITERATIONS} iterations; ideal {ideal:.2f})",
        ["tuner", "start", "final energy"],
        [
            [name, fmt(row["start"], 3), fmt(row["energy"], 3)]
            for name, row in stats.items()
        ],
    )
    def progress(row):
        return (row["start"] - row["energy"]) / (row["start"] - ideal)

    # The paper's tuners (SPSA, ImFil) are noise-robust by design and
    # dig most of the way toward the ideal.
    assert progress(stats["SPSA"]) > 0.5
    assert progress(stats["ImFil"]) > 0.5
    # Nelder-Mead improves but lags on noisy objectives — the well-known
    # simplex-collapse-under-shot-noise effect, and the reason Section
    # 5.1 picks SPSA/ImFil.  We assert the direction, not parity.
    assert progress(stats["NelderMead"]) > 0.0
    assert stats["NelderMead"]["energy"] >= min(
        stats["SPSA"]["energy"], stats["ImFil"]["energy"]
    ) - 0.2
