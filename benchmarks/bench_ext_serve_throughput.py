"""Extension: multi-tenant serve throughput with request coalescing.

One shared H2-4 VarSaw workload served to 1 vs 8 tenants through the
``repro.serve`` service (catalog entry ``ext_serve_throughput``): every
tenant submits the same seeded parameter trace, rotated by tenant index
and interleaved round-robin, so duplicates arrive from *different*
tenants and the coalescer's content-addressed dedup does the work.

Expected shape: the lone tenant executes every job itself (no
cross-tenant dedup possible); the 8-tenant fleet executes exactly the
same number of *distinct* jobs — submissions scale 8x, executions
don't — with a nonzero cross-tenant dedup counter proving the sharing.
In both cells the per-tenant budget charges sum exactly to the engines'
circuit/shot ledger (cost attribution loses nothing to coalescing).
The wall-clock and jobs/s columns are volatile and masked by the
golden-parity suite; the dedup counters and ledger columns are pinned.
"""

from conftest import print_tables

from repro.sweeps import ResultStore, get_entry, run_entry
from repro.sweeps.catalog import serve_throughput_rows


def test_ext_serve_throughput(benchmark, tmp_path):
    entry = get_entry("ext_serve_throughput")
    store = ResultStore(tmp_path / "serve.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    rows = serve_throughput_rows(outcome.records)
    solo, fleet = rows[1], rows[8]
    # A lone tenant has nobody to share with; a fleet of 8 submitting
    # the same jobs shares almost everything.
    assert solo["cross_tenant_dedup"] == 0
    assert fleet["cross_tenant_dedup"] > 0
    # Job-level dedup: 8x the submissions, identical executions.
    assert fleet["submitted"] == 8 * solo["submitted"]
    assert fleet["executed"] == solo["executed"]
    # Every distinct job ran exactly once in both cells, so the
    # engines' ledgers agree — the fleet paid nothing extra.
    assert fleet["circuits"] == solo["circuits"]
    assert fleet["shots"] == solo["shots"]
    # Cost attribution is exact: per-tenant charges sum to the
    # engines' total ledger in both cells.
    assert solo["ledger_match"] and fleet["ledger_match"]
    assert fleet["tenant_circuits"] == fleet["circuits"]
    assert fleet["tenant_shots"] == fleet["shots"]
