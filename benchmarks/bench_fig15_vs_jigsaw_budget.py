"""Fig. 15: VQE accuracy of VarSaw over JigSaw for a fixed circuit budget.

Both schemes spend the same number of executed circuits; VarSaw's lower
per-iteration cost lets it run many more tuner iterations, closing 21-92%
(mean 55%) of JigSaw's remaining inaccuracy in the paper.
"""

from conftest import fmt, print_table

from repro.analysis import (
    fixed_budget_runs,
    optimal_parameters,
    percent_inaccuracy_mitigated,
    scaled,
)
from repro.hamiltonian import molecule_keys
from repro.noise import ibmq_mumbai_like
from repro.workloads import make_workload

QUICK_KEYS = ["LiH-6", "H2O-6", "CH4-6"]
FULL_KEYS = molecule_keys(temporal_only=True)


def test_fig15_varsaw_vs_jigsaw_fixed_budget(benchmark):
    keys = scaled(QUICK_KEYS, FULL_KEYS)
    shots = scaled(256, 1024)
    device = ibmq_mumbai_like(scale=2.0)

    warm = scaled(True, False)

    def experiment():
        rows = []
        for key in keys:
            workload = make_workload(key)
            groups = len(workload.hamiltonian.measurement_groups())
            n = workload.n_qubits
            # Budget sized so JigSaw affords a few hundred evaluations at
            # full scale (paper: JigSaw completes a few 100 iterations).
            budget = scaled(80, 800) * groups * (n - 1)
            initial = (
                optimal_parameters(workload, iterations=300)
                if warm
                else None
            )
            runs = fixed_budget_runs(
                ("jigsaw", "varsaw"),
                workload,
                circuit_budget=budget,
                shots=shots,
                seed=15,
                device=device,
                initial_params=initial,
            )
            rows.append(
                {
                    "key": key,
                    "budget": budget,
                    "jigsaw": runs["jigsaw"],
                    "varsaw": runs["varsaw"],
                    "mitigated": percent_inaccuracy_mitigated(
                        workload.ideal_energy,
                        runs["jigsaw"].energy,
                        runs["varsaw"].energy,
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        "Fig. 15: VarSaw vs JigSaw at equal circuit budget",
        ["workload", "budget", "JigSaw E (iters)", "VarSaw E (iters)",
         "% inaccuracy mitigated"],
        [
            [
                r["key"],
                r["budget"],
                f"{fmt(r['jigsaw'].energy)} ({r['jigsaw'].iterations})",
                f"{fmt(r['varsaw'].energy)} ({r['varsaw'].iterations})",
                fmt(r["mitigated"], 0),
            ]
            for r in rows
        ],
    )
    mean = sum(r["mitigated"] for r in rows) / len(rows)
    print(f"mean % mitigated over JigSaw: {mean:.0f}% (paper: 55%)")

    for r in rows:
        # The economic mechanism: VarSaw runs far more iterations.
        assert r["varsaw"].iterations > 2 * r["jigsaw"].iterations, r["key"]
    # And converts them into better energy on average (the paper's 55%
    # comes from the full 2000-iteration regime; quick scale shows the
    # same direction at smaller magnitude).
    assert mean > 5
    wins = [r for r in rows if r["varsaw"].energy <= r["jigsaw"].energy]
    assert len(wins) >= len(rows) - 1
