"""Fig. 15: VQE accuracy of VarSaw over JigSaw for a fixed circuit budget.

Both schemes spend the same number of executed circuits; VarSaw's lower
per-iteration cost lets it run many more tuner iterations, closing 21-92%
(mean 55%) of JigSaw's remaining inaccuracy in the paper.

Ported to the declarative catalog (entry ``fig15``): per-workload
budgets are correlated grid fields, so the entry uses explicit spec
*cells*; rows are byte-identical to the pre-port output.
"""

from conftest import print_tables

from repro.sweeps import ResultStore, get_entry, run_entry
from repro.sweeps.catalog import fig15_rows


def test_fig15_varsaw_vs_jigsaw_fixed_budget(benchmark, tmp_path):
    entry = get_entry("fig15")
    store = ResultStore(tmp_path / "fig15.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())

    rows = fig15_rows(outcome.records)
    mean = sum(r["mitigated"] for r in rows) / len(rows)
    print(f"mean % mitigated over JigSaw: {mean:.0f}% (paper: 55%)")

    # The grid is fully checkpointed: a re-run executes nothing.
    assert run_entry(entry, store).executed == []

    for r in rows:
        # The economic mechanism: VarSaw runs far more iterations.
        assert (
            r["varsaw"]["iterations"] > 2 * r["jigsaw"]["iterations"]
        ), r["key"]
    # And converts them into better energy on average (the paper's 55%
    # comes from the full 2000-iteration regime; quick scale shows the
    # same direction at smaller magnitude).
    assert mean > 5
    wins = [
        r for r in rows
        if r["varsaw"]["energy"] <= r["jigsaw"]["energy"]
    ]
    assert len(wins) >= len(rows) - 1
