"""Extension: the pluggable execution-backend matrix.

One small stabilizer workload (seeded random Clifford circuits) swept
across the three registered execution backends through the declarative
catalog (entry ``ext_backend_matrix``): ``dense`` (the default
statevector simulator), ``clifford`` (the stabilizer-tableau fast
path), and ``density`` (exact mixed-state evaluation with analytic
counts).  Each cell records wall clock plus the circuit/shot ledger.

Expected shape: every backend charges the identical ledger (backend
choice never changes the paper's cost metric); the clifford backend
dispatches every circuit to the stabilizer path with zero dense
fallbacks (and wins on wall clock — the timing column is volatile, so
the golden-parity suite masks it); the density backend's analytic
all-zeros weight differs from the sampled backends' (local-channel
noise model, no shot noise) and is reproduced exactly on re-execution.
"""

from conftest import print_tables

from repro.sweeps import ResultStore, get_entry, run_entry
from repro.sweeps.catalog import backend_matrix_rows


def test_ext_backend_matrix(benchmark, tmp_path):
    entry = get_entry("ext_backend_matrix")
    store = ResultStore(tmp_path / "backends.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    rows = backend_matrix_rows(outcome.records)
    assert set(rows) == {"dense", "clifford", "density"}
    # Backend choice never changes the paper's cost metric: one charge
    # per executed circuit, shots included, on every backend.
    ledgers = {
        (result["circuits"], result["shots"]) for result in rows.values()
    }
    assert len(ledgers) == 1, rows
    # The clifford backend dispatched every circuit to the stabilizer
    # path; nothing fell back to dense simulation.
    assert rows["clifford"]["stabilizer_runs"] == rows["clifford"][
        "circuits"
    ]
    assert rows["clifford"]["fallbacks"] == 0
    assert rows["dense"]["stabilizer_runs"] == 0
    # Analytic density counts carry no shot noise: the all-zeros weight
    # is a plain probability in [0, 1], and the sampled backends agree
    # with each other (same PMF up to float dust, same seeded RNG —
    # tolerance of a couple of shots, not exact equality, so a numpy
    # upgrade shifting the dust across one draw boundary cannot flake).
    assert 0.0 <= rows["density"]["zero_weight"] <= 1.0
    shots_per_run = rows["dense"]["shots"] / rows["dense"]["circuits"]
    assert abs(
        rows["dense"]["zero_weight"] - rows["clifford"]["zero_weight"]
    ) <= 2.0 / shots_per_run
