"""Extension: measurement mitigation for Trotterized time evolution (§7.3).

The quench observable — average magnetization of a TFIM chain — is a sum
of single-qubit <Z> terms, so measurement error biases it toward zero
multiplicatively.  This bench regenerates the quench trace three ways
(exact / noisy / JigSaw-mitigated) and asserts the mitigation recovers
most of the bias at every evolution time; a second test pins the
product-formula quality the experiment relies on.

Ported to the declarative catalog (entry ``ext_trotter_mitigation``):
``quench`` / ``trotter_error`` / ``quench_sweep`` points; rows are
byte-identical to the pre-port output.
"""

from conftest import print_table

from repro.sweeps import ResultStore, get_entry, run_entry, select

ENTRY = "ext_trotter_mitigation"
_STATE: dict = {}


def _run(benchmark, tmp_path_factory):
    if not _STATE:
        store = ResultStore(tmp_path_factory.mktemp(ENTRY) / "store.jsonl")
        entry = get_entry(ENTRY)
        outcome = benchmark.pedantic(
            lambda: run_entry(entry, store), iterations=1, rounds=1
        )
        _STATE["outcome"] = outcome
        _STATE["tables"] = outcome.tables()
        assert run_entry(entry, store).executed == []
    else:
        benchmark.pedantic(lambda: _STATE["outcome"], iterations=1,
                           rounds=1)
    return _STATE


def test_quench_mitigation(benchmark, tmp_path_factory):
    state = _run(benchmark, tmp_path_factory)
    table = state["tables"][0]
    print_table(table.title, table.headers, table.rows)
    rows = [
        r["result"]
        for r in select(state["outcome"].records, point__task="quench")
    ]
    improvements = 0
    for r in rows:
        noisy_err = abs(r["noisy"] - r["exact"])
        mit_err = abs(r["jigsaw"] - r["exact"])
        if mit_err < noisy_err:
            improvements += 1
    # Mitigation wins at every sampled time on this workload.
    assert improvements == len(rows)


def test_trotter_formula_quality(benchmark, tmp_path_factory):
    """Product-formula error orders, as the library's docs claim."""
    state = _run(benchmark, tmp_path_factory)
    table = state["tables"][1]
    print_table(table.title, table.headers, table.rows)
    rows = [
        r["result"]
        for r in select(
            state["outcome"].records, point__task="trotter_error"
        )
    ]
    # Monotone convergence, and order 2 dominates order 1 throughout.
    for a, b in zip(rows, rows[1:]):
        assert b["order1"] < a["order1"]
        assert b["order2"] < a["order2"]
    for r in rows:
        assert r["order2"] < r["order1"]
    # Asymptotic rates: O(1/n) vs O(1/n^2) over the 8x step range.
    assert rows[-1]["order1"] < rows[0]["order1"] / 4
    assert rows[-1]["order2"] < rows[0]["order2"] / 30


def test_sparse_global_sweep(benchmark, tmp_path_factory):
    """VarSaw's temporal bet transplanted to the quench sweep.

    Adjacent time points share Globals: running a fresh Global only
    every 4th point costs a fraction of dense JigSaw at comparable
    accuracy — the Section 7.3 extension, end to end.
    """
    state = _run(benchmark, tmp_path_factory)
    table = state["tables"][2]
    print_table(table.title, table.headers, table.rows)
    by_period = {
        r["point"]["options"]["period"]: r["result"]
        for r in select(
            state["outcome"].records, point__task="quench_sweep"
        )
    }
    dense, sparse = by_period[1], by_period[4]
    assert sparse["circuits"] < dense["circuits"]
    assert sparse["globals"] == 2
    # The staleness bet: comparable accuracy at lower cost.
    assert sparse["error"] < dense["error"] + 0.05
