"""Extension: measurement mitigation for Trotterized time evolution (§7.3).

The quench observable — average magnetization of a TFIM chain — is a sum
of single-qubit <Z> terms, so measurement error biases it toward zero
multiplicatively.  This bench regenerates the quench trace three ways
(exact / noisy / JigSaw-mitigated) and asserts the mitigation recovers
most of the bias at every evolution time; a second test pins the
product-formula quality the experiment relies on.
"""

import numpy as np
from conftest import fmt, print_table, run_once

from repro.hamiltonian.tfim import tfim_hamiltonian
from repro.mitigation import jigsaw_mitigate
from repro.noise import SimulatorBackend, ibmq_mumbai_like
from repro.sim.statevector import (
    probabilities,
    run_statevector,
    zero_state,
)
from repro.trotter import (
    average_magnetization,
    evolve_exact,
    trotter_circuit,
)

N_QUBITS = 5
FIELD = 1.2
TIMES = (0.25, 0.5, 1.0, 2.0)
SHOTS = 8192


def magnetization(probs: np.ndarray) -> float:
    return average_magnetization(probs, N_QUBITS)


def test_quench_mitigation(benchmark):
    def experiment():
        ham = tfim_hamiltonian(N_QUBITS, coupling=1.0, field=FIELD)
        device = ibmq_mumbai_like(scale=2.0)
        rows = []
        for t in TIMES:
            exact = magnetization(
                probabilities(evolve_exact(ham, t, zero_state(N_QUBITS)))
            )
            circuit = trotter_circuit(ham, t, max(1, round(8 * t)), order=2)
            circuit.measure_all()
            backend = SimulatorBackend(device, seed=17)
            noisy = magnetization(
                backend.run(circuit, SHOTS).to_pmf().probs
            )
            backend = SimulatorBackend(device, seed=17)
            mitigated = magnetization(
                jigsaw_mitigate(
                    backend, circuit, shots=SHOTS, window=2
                ).output.probs
            )
            rows.append(
                {
                    "t": t,
                    "exact": exact,
                    "noisy": noisy,
                    "jigsaw": mitigated,
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Extension: TFIM-5 quench magnetization "
        "(2nd-order Trotter, 2x Mumbai noise)",
        ["t", "exact", "noisy", "JigSaw"],
        [
            [r["t"], fmt(r["exact"], 3), fmt(r["noisy"], 3),
             fmt(r["jigsaw"], 3)]
            for r in rows
        ],
    )
    improvements = 0
    for r in rows:
        noisy_err = abs(r["noisy"] - r["exact"])
        mit_err = abs(r["jigsaw"] - r["exact"])
        if mit_err < noisy_err:
            improvements += 1
    # Mitigation wins at every sampled time on this workload.
    assert improvements == len(rows)


def test_trotter_formula_quality(benchmark):
    """Product-formula error orders, as the library's docs claim."""

    def experiment():
        ham = tfim_hamiltonian(4, coupling=1.0, field=0.9)
        rng = np.random.default_rng(7)
        state = rng.normal(size=16) + 1j * rng.normal(size=16)
        state /= np.linalg.norm(state)
        exact = evolve_exact(ham, 1.0, state)
        rows = []
        for n_steps in (2, 4, 8, 16):
            row = {"steps": n_steps}
            for order in (1, 2):
                circuit = trotter_circuit(ham, 1.0, n_steps, order=order)
                evolved = run_statevector(
                    circuit, initial_state=state.copy()
                )
                row[f"order{order}"] = 1.0 - abs(np.vdot(evolved, exact))
            rows.append(row)
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Extension: Trotter infidelity vs steps (t=1, TFIM-4)",
        ["steps", "order 1", "order 2"],
        [
            [r["steps"], f"{r['order1']:.2e}", f"{r['order2']:.2e}"]
            for r in rows
        ],
    )
    # Monotone convergence, and order 2 dominates order 1 throughout.
    for a, b in zip(rows, rows[1:]):
        assert b["order1"] < a["order1"]
        assert b["order2"] < a["order2"]
    for r in rows:
        assert r["order2"] < r["order1"]
    # Asymptotic rates: O(1/n) vs O(1/n^2) over the 8x step range.
    assert rows[-1]["order1"] < rows[0]["order1"] / 4
    assert rows[-1]["order2"] < rows[0]["order2"] / 30


def test_sparse_global_sweep(benchmark):
    """VarSaw's temporal bet transplanted to the quench sweep.

    Adjacent time points share Globals: running a fresh Global only
    every 4th point costs a fraction of dense JigSaw at comparable
    accuracy — the Section 7.3 extension, end to end.
    """
    from repro.sim.statevector import zero_state
    from repro.trotter import evolve_exact, sparse_quench_sweep

    SWEEP = (0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6)

    def experiment():
        ham = tfim_hamiltonian(N_QUBITS, coupling=1.0, field=FIELD)
        device = ibmq_mumbai_like(scale=2.0)
        exact = [
            magnetization(
                probabilities(evolve_exact(ham, t, zero_state(N_QUBITS)))
            )
            for t in SWEEP
        ]
        rows = {}
        for label, period in (("dense (JigSaw/point)", 1), ("sparse", 4)):
            backend = SimulatorBackend(device, seed=29)
            result = sparse_quench_sweep(
                backend,
                ham,
                SWEEP,
                shots=4096,
                global_period=period,
            )
            mags = [magnetization(o.probs) for o in result.outputs]
            error = float(
                np.mean([abs(m - e) for m, e in zip(mags, exact)])
            )
            rows[label] = {
                "error": error,
                "circuits": result.circuits_executed,
                "globals": result.globals_executed,
            }
        return rows

    stats = run_once(benchmark, experiment)
    print_table(
        "Extension: quench sweep with temporally sparse Globals "
        f"(TFIM-{N_QUBITS}, {len(SWEEP)} time points)",
        ["scheme", "mean |err|", "circuits", "globals"],
        [
            [label, fmt(row["error"], 3), row["circuits"], row["globals"]]
            for label, row in stats.items()
        ],
    )
    dense = stats["dense (JigSaw/point)"]
    sparse = stats["sparse"]
    assert sparse["circuits"] < dense["circuits"]
    assert sparse["globals"] == 2
    # The staleness bet: comparable accuracy at lower cost.
    assert sparse["error"] < dense["error"] + 0.05
