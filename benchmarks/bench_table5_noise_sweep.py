"""Table 5 (Appendix B): Global sparsity across noise scales (H2O-6).

The device noise model is scaled by 0.05-5x and the VQE baseline, VarSaw
No-Sparsity, and VarSaw Max-Sparsity tune under a fixed budget at each
scale.  Paper findings: Max-Sparsity beats the baseline at every scale and
tracks (sometimes beats) No-Sparsity; when noise vanishes, sparsity's
advantage disappears.

Ported to a declarative :class:`~repro.sweeps.SweepSpec`: the scale x
scheme grid runs through the checkpointed sweep runner (so an
interrupted full-scale regeneration resumes instead of restarting), and
the printed table is aggregated back out of the JSONL store.  Rows are
identical to the pre-sweep ad-hoc loop.
"""

from conftest import fmt, print_table

from repro.analysis import scaled
from repro.sweeps import ResultStore, pivot, run_sweep, SweepSpec
from repro.workloads import make_workload

QUICK_SCALES = (5.0, 3.0, 1.0, 0.1)
FULL_SCALES = (5.0, 3.0, 1.0, 0.8, 0.5, 0.1, 0.05)
KINDS = ("baseline", "varsaw_no_sparsity", "varsaw_max_sparsity")


def test_table5_noise_sweep(benchmark, tmp_path):
    scales = scaled(QUICK_SCALES, FULL_SCALES)
    shots = scaled(256, 1024)
    workload = make_workload("H2O-6")
    groups = len(workload.hamiltonian.measurement_groups())
    budget = scaled(120, 2000) * groups
    warm = scaled(True, False)

    spec = SweepSpec(
        name="table5_noise_sweep",
        base={
            "workload": {"key": "H2O-6"},
            "circuit_budget": budget,
            "shots": shots,
            "seed": 5,
            "max_iterations": 100_000,
            "warm_start_iterations": 300 if warm else None,
        },
        axes={
            "device": [
                {"preset": "ibmq_mumbai_like", "scale": scale}
                for scale in scales
            ],
            "scheme": list(KINDS),
        },
    )
    store = ResultStore(tmp_path / "table5.jsonl")

    def experiment():
        report = run_sweep(spec, store)
        _, _, cells = pivot(
            report.records.values(), "point.device.scale", "point.scheme"
        )
        return {
            scale: {kind: cells[(scale, kind)] for kind in KINDS}
            for scale in scales
        }

    table = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        f"Table 5: H2O-6 noise sweep, budget = {budget} "
        f"(ideal = {workload.ideal_energy:.2f})",
        ["Noise scale", "Baseline", "VarSaw (No Sparsity)",
         "VarSaw (Max Sparsity)"],
        [
            [f"{scale:g}"] + [fmt(table[scale][k]) for k in KINDS]
            for scale in scales
        ],
    )

    # The grid is fully checkpointed: a re-run executes nothing.
    assert run_sweep(spec, store).executed == []

    wins = 0
    for scale in scales:
        runs = table[scale]
        if runs["varsaw_max_sparsity"] <= runs["baseline"] + 1e-9:
            wins += 1
        # Max-Sparsity tracks No-Sparsity (within a scale-dependent band).
        band = 0.3 + 0.4 * scale
        assert (
            runs["varsaw_max_sparsity"] - runs["varsaw_no_sparsity"] < band
        ), scale
    # Max-Sparsity beats the unmitigated baseline at (almost) every scale.
    assert wins >= len(scales) - 1
    # Energies degrade (rise) as noise grows for the baseline.
    energies = [table[s]["baseline"] for s in sorted(scales)]
    assert energies[0] < energies[-1]
