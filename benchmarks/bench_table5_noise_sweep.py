"""Table 5 (Appendix B): Global sparsity across noise scales (H2O-6).

The device noise model is scaled by 0.05-5x and the VQE baseline, VarSaw
No-Sparsity, and VarSaw Max-Sparsity tune under a fixed budget at each
scale.  Paper findings: Max-Sparsity beats the baseline at every scale and
tracks (sometimes beats) No-Sparsity; when noise vanishes, sparsity's
advantage disappears.

Ported to the declarative catalog (entry ``table5``): the scale x scheme
grid runs through the checkpointed sweep runner (so an interrupted
full-scale regeneration resumes instead of restarting), and the printed
table is aggregated back out of the JSONL store.  Rows are byte-identical
to the pre-port output.
"""

from conftest import print_tables

from repro.sweeps import ResultStore, get_entry, run_entry
from repro.sweeps.catalog import table5_grid


def test_table5_noise_sweep(benchmark, tmp_path):
    entry = get_entry("table5")
    store = ResultStore(tmp_path / "table5.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())

    # The grid is fully checkpointed: a re-run executes nothing.
    assert run_entry(entry, store).executed == []

    table = table5_grid(outcome.records)
    scales = list(table)
    wins = 0
    for scale in scales:
        runs = table[scale]
        if runs["varsaw_max_sparsity"] <= runs["baseline"] + 1e-9:
            wins += 1
        # Max-Sparsity tracks No-Sparsity (within a scale-dependent band).
        band = 0.3 + 0.4 * scale
        assert (
            runs["varsaw_max_sparsity"] - runs["varsaw_no_sparsity"] < band
        ), scale
    # Max-Sparsity beats the unmitigated baseline at (almost) every scale.
    assert wins >= len(scales) - 1
    # Energies degrade (rise) as noise grows for the baseline.
    energies = [table[s]["baseline"] for s in sorted(scales)]
    assert energies[0] < energies[-1]
