"""Table 5 (Appendix B): Global sparsity across noise scales (H2O-6).

The device noise model is scaled by 0.05-5x and the VQE baseline, VarSaw
No-Sparsity, and VarSaw Max-Sparsity tune under a fixed budget at each
scale.  Paper findings: Max-Sparsity beats the baseline at every scale and
tracks (sometimes beats) No-Sparsity; when noise vanishes, sparsity's
advantage disappears.
"""

from conftest import fmt, print_table

from repro.analysis import (
    fixed_budget_runs,
    optimal_parameters,
    scaled,
)
from repro.noise import ibmq_mumbai_like
from repro.workloads import make_workload

QUICK_SCALES = (5.0, 3.0, 1.0, 0.1)
FULL_SCALES = (5.0, 3.0, 1.0, 0.8, 0.5, 0.1, 0.05)
KINDS = ("baseline", "varsaw_no_sparsity", "varsaw_max_sparsity")


def test_table5_noise_sweep(benchmark):
    scales = scaled(QUICK_SCALES, FULL_SCALES)
    shots = scaled(256, 1024)
    workload = make_workload("H2O-6")
    groups = len(workload.hamiltonian.measurement_groups())
    budget = scaled(120, 2000) * groups
    warm = scaled(True, False)

    def experiment():
        initial = (
            optimal_parameters(workload, iterations=300) if warm else None
        )
        table = {}
        for scale in scales:
            device = ibmq_mumbai_like(scale=scale)
            table[scale] = fixed_budget_runs(
                KINDS,
                workload,
                circuit_budget=budget,
                shots=shots,
                seed=5,
                device=device,
                initial_params=initial,
            )
        return table

    table = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        f"Table 5: H2O-6 noise sweep, budget = {budget} "
        f"(ideal = {workload.ideal_energy:.2f})",
        ["Noise scale", "Baseline", "VarSaw (No Sparsity)",
         "VarSaw (Max Sparsity)"],
        [
            [f"{scale:g}"] + [fmt(table[scale][k].energy) for k in KINDS]
            for scale in scales
        ],
    )

    wins = 0
    for scale in scales:
        runs = table[scale]
        if (
            runs["varsaw_max_sparsity"].energy
            <= runs["baseline"].energy + 1e-9
        ):
            wins += 1
        # Max-Sparsity tracks No-Sparsity (within a scale-dependent band).
        band = 0.3 + 0.4 * scale
        assert (
            runs["varsaw_max_sparsity"].energy
            - runs["varsaw_no_sparsity"].energy
            < band
        ), scale
    # Max-Sparsity beats the unmitigated baseline at (almost) every scale.
    assert wins >= len(scales) - 1
    # Energies degrade (rise) as noise grows for the baseline.
    energies = [table[s]["baseline"].energy for s in sorted(scales)]
    assert energies[0] < energies[-1]
