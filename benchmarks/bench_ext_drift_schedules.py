"""Extension: the online re-calibration policy across schedule kinds.

One ``drift_frontier`` cell per drift schedule kind (constant, step,
linear ramp, sinusoidal, seeded random walk), all running the
``drift_adaptive`` estimator — does CUSUM detection generalize beyond
the step jump it is easiest to reason about?

Catalog entry ``ext_drift_schedules``.
"""

from conftest import print_tables

from repro.sweeps import ResultStore, get_entry, run_entry


def test_online_policy_across_schedules(benchmark, tmp_path):
    entry = get_entry("ext_drift_schedules")
    store = ResultStore(tmp_path / "schedules.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    by = {
        record["point"]["options"]["schedule"]: record["result"]
        for record in outcome.records
    }
    # The zero-drift schedule must not trip the detector; every
    # drifting kind must.
    assert by["constant"]["recalibrations"] == 0
    for label in ("step", "linear", "sine", "random_walk"):
        assert by[label]["recalibrations"] > 0
        assert (
            by[label]["peak_statistic"]
            > by["constant"]["peak_statistic"]
        )
    # Oscillating drift keeps alarming as the rates swing.
    assert by["sine"]["recalibrations"] >= by["step"]["recalibrations"]
