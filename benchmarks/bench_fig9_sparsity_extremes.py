"""Fig. 9: Global-sparsity extremes, noise-free vs noisy (CH4-6).

Two VarSaw variants run under a fixed circuit budget: No-Sparsity (Globals
every evaluation) and Max-Sparsity (one Global at the start).  The paper's
observations:

* noise-free: Max-Sparsity gets stuck (the frozen Global dominates) and
  No-Sparsity reaches much lower energy;
* noisy: Max-Sparsity is competitive (or better), while completing many
  more tuner iterations for the same budget.
"""

from conftest import fmt, print_table

from repro.analysis import fixed_budget_runs, optimal_parameters, scaled
from repro.noise import ibmq_mumbai_like, ideal_device
from repro.workloads import make_workload

KINDS = ("varsaw_no_sparsity", "varsaw_max_sparsity")


def test_fig9_sparsity_extremes(benchmark):
    budget = scaled(25_000, 400_000)
    shots = scaled(256, 1024)
    workload = make_workload("CH4-6")
    noisy_device = ibmq_mumbai_like(scale=2.0)
    warm = scaled(True, False)

    def experiment():
        initial = (
            optimal_parameters(workload, iterations=300) if warm else None
        )
        out = {}
        for label, device in [
            ("noise-free", ideal_device(27)),
            ("noisy", noisy_device),
        ]:
            out[label] = fixed_budget_runs(
                KINDS,
                workload,
                circuit_budget=budget,
                shots=shots,
                seed=9,
                device=device,
                initial_params=initial,
            )
        return out

    runs = benchmark.pedantic(experiment, iterations=1, rounds=1)
    rows = []
    for label in ("noise-free", "noisy"):
        for kind in KINDS:
            run = runs[label][kind]
            rows.append(
                [label, kind, fmt(run.energy), run.iterations,
                 run.result.circuits_executed]
            )
    print_table(
        f"Fig. 9: sparsity extremes on {workload.key} "
        f"(ideal = {workload.ideal_energy:.2f}, budget = {budget})",
        ["setting", "scheme", "energy", "iterations", "circuits"],
        rows,
    )

    free, noisy = runs["noise-free"], runs["noisy"]
    # Max-Sparsity completes more iterations in both settings (it skips
    # the per-iteration Globals).
    for setting in (free, noisy):
        assert (
            setting["varsaw_max_sparsity"].iterations
            > setting["varsaw_no_sparsity"].iterations
        )
    # Noise-free: No-Sparsity reaches at-least-as-low energy (the frozen
    # Global hurts Max-Sparsity).
    assert (
        free["varsaw_no_sparsity"].energy
        <= free["varsaw_max_sparsity"].energy + 0.05
    )
    # Noisy: Max-Sparsity is competitive — within a small margin or better
    # (the paper observes it marginally winning).
    gap = (
        noisy["varsaw_max_sparsity"].energy
        - noisy["varsaw_no_sparsity"].energy
    )
    spread = abs(workload.ideal_energy) * 0.1 + 1.0
    assert gap < spread
