"""Fig. 9: Global-sparsity extremes, noise-free vs noisy (CH4-6).

Two VarSaw variants run under a fixed circuit budget: No-Sparsity (Globals
every evaluation) and Max-Sparsity (one Global at the start).  The paper's
observations:

* noise-free: Max-Sparsity gets stuck (the frozen Global dominates) and
  No-Sparsity reaches much lower energy;
* noisy: Max-Sparsity is competitive (or better), while completing many
  more tuner iterations for the same budget.

Ported to the declarative catalog (entry ``fig9``): the setting x scheme
grid runs through the checkpointed sweep runner; rows are byte-identical
to the pre-port output.
"""

from conftest import print_tables

from repro.sweeps import ResultStore, get_entry, run_entry

KINDS = ("varsaw_no_sparsity", "varsaw_max_sparsity")


def test_fig9_sparsity_extremes(benchmark, tmp_path):
    entry = get_entry("fig9")
    store = ResultStore(tmp_path / "fig9.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    def run(preset: str, kind: str) -> dict:
        record, = [
            r for r in outcome.records
            if r["point"]["device"]["preset"] == preset
            and r["point"]["scheme"] == kind
        ]
        return record["result"]

    free = {kind: run("ideal", kind) for kind in KINDS}
    noisy = {kind: run("ibmq_mumbai_like", kind) for kind in KINDS}
    ideal_energy = outcome.records[0]["result"]["ideal_energy"]

    # Max-Sparsity completes more iterations in both settings (it skips
    # the per-iteration Globals).
    for setting in (free, noisy):
        assert (
            setting["varsaw_max_sparsity"]["iterations"]
            > setting["varsaw_no_sparsity"]["iterations"]
        )
    # Noise-free: No-Sparsity reaches at-least-as-low energy (the frozen
    # Global hurts Max-Sparsity).
    assert (
        free["varsaw_no_sparsity"]["energy"]
        <= free["varsaw_max_sparsity"]["energy"] + 0.05
    )
    # Noisy: Max-Sparsity is competitive — within a small margin or better
    # (the paper observes it marginally winning).
    gap = (
        noisy["varsaw_max_sparsity"]["energy"]
        - noisy["varsaw_no_sparsity"]["energy"]
    )
    spread = abs(ideal_energy) * 0.1 + 1.0
    assert gap < spread
