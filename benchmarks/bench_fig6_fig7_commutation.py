"""Figs. 6 & 7: the commutation worked example and the commutativity graph.

Regenerates the paper's 4-qubit trace — 10 Hamiltonian terms, 7 circuits
after trivial commutation, 21 JigSaw subsets, 9 VarSaw subsets — and the
Fig. 7 arrow counts for the 27 three-qubit {I,X,Z} strings.

Ported to the declarative catalog: the grid is
``repro.sweeps.catalog`` entry ``fig6_fig7`` and runs through the
checkpointed sweep runner; rows are byte-identical to the pre-port
output (golden-parity suite).
"""

from conftest import print_table

from repro.sweeps import ResultStore, get_entry, run_entry, select

ENTRY = "fig6_fig7"
_STATE: dict = {}


def _run(benchmark, tmp_path_factory):
    if not _STATE:
        store = ResultStore(tmp_path_factory.mktemp(ENTRY) / "store.jsonl")
        entry = get_entry(ENTRY)
        outcome = benchmark.pedantic(
            lambda: run_entry(entry, store), iterations=1, rounds=1
        )
        _STATE["outcome"] = outcome
        _STATE["tables"] = outcome.tables()
        # The grid is fully checkpointed: a re-run executes nothing.
        assert run_entry(entry, store).executed == []
    else:
        benchmark.pedantic(lambda: _STATE["outcome"], iterations=1,
                           rounds=1)
    return _STATE


def test_fig6_worked_example(benchmark, tmp_path_factory):
    state = _run(benchmark, tmp_path_factory)
    table = state["tables"][0]
    print_table(table.title, table.headers, table.rows)
    stats = select(
        state["outcome"].records, point__task="structure"
    )[0]["result"]
    print("C_VarSaw members:", " + ".join(stats["subset_labels"]))
    assert stats["paulis"] == 10
    assert stats["cover_groups"] == 7
    assert stats["jigsaw"] == 21
    assert stats["varsaw"] == 9


def test_fig7_commutation_graph(benchmark, tmp_path_factory):
    state = _run(benchmark, tmp_path_factory)
    table = state["tables"][1]
    print_table(table.title, table.headers, table.rows)
    counts = {
        r["point"]["options"]["label"]: r["result"]["parents"]
        for r in select(
            state["outcome"].records, point__task="commuting_parents"
        )
    }
    assert counts == {"III": 26, "IIZ": 8, "IZZ": 2, "ZZZ": 0}
