"""Figs. 6 & 7: the commutation worked example and the commutativity graph.

Regenerates the paper's 4-qubit trace — 10 Hamiltonian terms, 7 circuits
after trivial commutation, 21 JigSaw subsets, 9 VarSaw subsets — and the
Fig. 7 arrow counts for the 27 three-qubit {I,X,Z} strings.
"""

from conftest import print_table

from repro.core import count_jigsaw_subsets, count_varsaw_subsets, varsaw_subset_plan
from repro.hamiltonian import Hamiltonian
from repro.pauli import PauliString, all_strings, cover_reduce, measuring_parents

FIG6_TERMS = [
    "ZZIZ", "ZIZX", "ZZII", "IIZX", "ZXXZ",
    "XZIZ", "ZXIZ", "IXZZ", "XIZZ", "XXIX",
]


def test_fig6_worked_example(benchmark):
    def experiment():
        paulis = [PauliString(t) for t in FIG6_TERMS]
        ham = Hamiltonian([(1.0, p) for p in paulis], name="fig6")
        groups = cover_reduce(paulis, 4)
        plan = varsaw_subset_plan(paulis, window=2)
        return {
            "h_base": len(paulis),
            "c_comm": len(groups),
            "c_jigsaw": count_jigsaw_subsets(ham, window=2),
            "c_varsaw": count_varsaw_subsets(ham, window=2),
            "varsaw_subsets": sorted(s.label for s in plan.as_strings()),
        }

    stats = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        "Fig. 6 worked example (paper values: 10 / 7 / 21 / 9)",
        ["stage", "circuits"],
        [
            ["(1) H_Base Pauli terms", stats["h_base"]],
            ["(2) C_Comm after trivial commutation", stats["c_comm"]],
            ["(3) C_JigSaw 2-qubit sliding-window subsets", stats["c_jigsaw"]],
            ["(4) C_VarSaw commuted subsets", stats["c_varsaw"]],
        ],
    )
    print("C_VarSaw members:", " + ".join(stats["varsaw_subsets"]))
    assert stats["h_base"] == 10
    assert stats["c_comm"] == 7
    assert stats["c_jigsaw"] == 21
    assert stats["c_varsaw"] == 9


def test_fig7_commutation_graph(benchmark):
    def experiment():
        universe = all_strings(3, "IXZ")
        return {
            label: len(measuring_parents(PauliString(label), universe))
            for label in ("III", "IIZ", "IZZ", "ZZZ")
        }

    counts = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        "Fig. 7 commuting-parent counts (paper: 26 / 8 / 2 / 0)",
        ["Pauli", "parents"],
        [[k, v] for k, v in counts.items()],
    )
    assert counts == {"III": 26, "IIZ": 8, "IZZ": 2, "ZZZ": 0}
