"""Shared helpers for the paper-reproduction benchmarks.

Each benchmark file regenerates one table or figure from the VarSaw paper:
it runs the experiment (at quick scale by default, paper scale under
``REPRO_SCALE=full``), prints the same rows/series the paper reports, and
asserts the qualitative shape (who wins, orderings, crossovers).

``pytest benchmarks/ --benchmark-only`` runs everything; pytest-benchmark
records one timed round per experiment (experiments are minutes-long at
full scale, so statistical repetition is deliberately disabled).
"""

from __future__ import annotations

import os
import pathlib
import threading

import pytest

try:
    import fcntl
except ImportError:  # non-POSIX: fall back to the in-process lock only
    fcntl = None

#: Every table printed by a benchmark is also appended here, so the
#: regenerated figures survive even when pytest captures stdout (i.e.
#: when the suite is run without ``-s``).
RESULTS_FILE = pathlib.Path(__file__).resolve().parent.parent / (
    "benchmark_results.txt"
)

#: Serializes appends from concurrent in-process writers; cross-process
#: writers (pytest-xdist workers, parallel invocations) additionally
#: take an exclusive flock on the results file itself.
_RESULTS_LOCK = threading.Lock()


def _append_results(text: str) -> None:
    """Append one table as a single locked write (never interleaved)."""
    try:
        with _RESULTS_LOCK:
            with RESULTS_FILE.open("a") as handle:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                try:
                    handle.write(text)
                    handle.flush()
                finally:
                    if fcntl is not None:
                        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
    except OSError:
        pass


def pytest_sessionstart(session):
    """Start each benchmark session with a fresh results file.

    Only the controlling process truncates — xdist workers start after
    it and must not wipe rows their siblings already appended.
    """
    if os.environ.get("PYTEST_XDIST_WORKER"):
        return
    try:
        RESULTS_FILE.write_text("")
    except OSError:
        pass


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def runner(fn):
        return run_once(benchmark, fn)

    return runner


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print an aligned table to stdout and append it to RESULTS_FILE."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    lines = [f"\n=== {title} ==="]
    header = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
        )
    text = "\n".join(lines)
    print(text)
    _append_results(text + "\n")


def fmt(value, digits=2):
    if value is None:
        return "-"
    return f"{value:.{digits}f}"
