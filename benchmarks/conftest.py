"""Shared helpers for the paper-reproduction benchmarks.

Each benchmark file regenerates one table or figure from the VarSaw paper:
it runs the experiment (at quick scale by default, paper scale under
``REPRO_SCALE=full``), prints the same rows/series the paper reports, and
asserts the qualitative shape (who wins, orderings, crossovers).

``pytest benchmarks/ --benchmark-only`` runs everything; pytest-benchmark
records one timed round per experiment (experiments are minutes-long at
full scale, so statistical repetition is deliberately disabled).
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import threading
import time

import pytest

from repro.obs import REGISTRY, snapshot_delta
from repro.sweeps.render import Table, fmt, render_table

try:
    import fcntl
except ImportError:  # non-POSIX: fall back to the in-process lock only
    fcntl = None

#: Every table printed by a benchmark is also appended here, so the
#: regenerated figures survive even when pytest captures stdout (i.e.
#: when the suite is run without ``-s``).
RESULTS_FILE = pathlib.Path(__file__).resolve().parent.parent / (
    "benchmark_results.txt"
)

#: Serializes appends from concurrent in-process writers; cross-process
#: writers (pytest-xdist workers, parallel invocations) additionally
#: take an exclusive flock on the results file itself.
_RESULTS_LOCK = threading.Lock()


def _append_results(text: str) -> None:
    """Append one table as a single locked write (never interleaved)."""
    try:
        with _RESULTS_LOCK:
            with RESULTS_FILE.open("a") as handle:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                try:
                    handle.write(text)
                    handle.flush()
                finally:
                    if fcntl is not None:
                        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
    except OSError:
        pass


#: Every Table printed during the session, in print order — the
#: structured capture the parity tooling reads instead of scraping
#: stdout.  Each element is ``(entry_name, Table)``.
CAPTURED_TABLES: list[tuple[str, Table]] = []

#: When set, every printed table is also appended (rendered) to
#: ``$REPRO_GOLDEN_DIR/<entry>.txt`` — the recording mode that produced
#: ``tests/golden/``.  Re-record with::
#:
#:     REPRO_GOLDEN_DIR=tests/golden python -m pytest benchmarks/
_GOLDEN_DIR = os.environ.get("REPRO_GOLDEN_DIR")

_ENTRY_RE = re.compile(r"^(fig\d+(?:_fig\d+)?|table\d+|sec\d+)")


def current_entry_name() -> str:
    """Catalog-entry name for the currently-running benchmark file.

    ``bench_fig6_fig7_commutation.py -> fig6_fig7``,
    ``bench_table5_noise_sweep.py -> table5``,
    ``bench_ext_qaoa.py -> ext_qaoa`` — the same names
    :mod:`repro.sweeps.catalog` registers.
    """
    test = os.environ.get("PYTEST_CURRENT_TEST", "")
    stem = pathlib.PurePath(test.split("::")[0]).stem
    stem = stem.removeprefix("bench_")
    match = _ENTRY_RE.match(stem)
    return match.group(1) if match else stem


def pytest_sessionstart(session):
    """Start each benchmark session with a fresh results file.

    Only the controlling process truncates — xdist workers start after
    it and must not wipe rows their siblings already appended.
    """
    if os.environ.get("PYTEST_XDIST_WORKER"):
        return
    try:
        RESULTS_FILE.write_text("")
    except OSError:
        pass


def pytest_collection_modifyitems(session, config, items):
    """Golden recording: truncate exactly the collected entries' files.

    Per-file truncation (rather than wiping the directory) keeps a
    single-benchmark re-record from destroying every other snapshot.
    """
    if not _GOLDEN_DIR or os.environ.get("PYTEST_XDIST_WORKER"):
        return
    golden = pathlib.Path(_GOLDEN_DIR)
    golden.mkdir(parents=True, exist_ok=True)
    entries = set()
    for item in items:
        stem = pathlib.PurePath(str(item.fspath)).stem
        stem = stem.removeprefix("bench_")
        match = _ENTRY_RE.match(stem)
        entries.add(match.group(1) if match else stem)
    for entry in entries:
        (golden / f"{entry}.txt").unlink(missing_ok=True)


#: Per-entry accumulated BENCH payloads: wall clock plus engine metric
#: deltas around each test call, summed per catalog entry.
_BENCH_STATS: dict[str, dict[str, float]] = {}

_BENCH_COUNTERS = {
    "circuits": "repro_engine_jobs_total",
    "shots": "repro_engine_shots_total",
    "simulations": "repro_engine_simulations_total",
    "cache_hits": "repro_engine_cache_hits_total",
    "batches": "repro_engine_batches_total",
    "plan_cache_hits": "repro_engine_plan_cache_hits_total",
    "plan_cache_misses": "repro_engine_plan_cache_misses_total",
}


def _bench_dir() -> pathlib.Path:
    """Where BENCH_<entry>.json files land (repo root by default)."""
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        return pathlib.Path(override)
    return RESULTS_FILE.parent


def _entry_for_item(item) -> str:
    stem = pathlib.PurePath(str(item.fspath)).stem
    stem = stem.removeprefix("bench_")
    match = _ENTRY_RE.match(stem)
    return match.group(1) if match else stem


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Wrap each benchmark call with wall-clock + engine metric deltas.

    Accumulated per catalog entry and written as ``BENCH_<entry>.json``
    at session end — the machine-readable cost record CI uploads as an
    artifact next to ``benchmark_results.txt``.
    """
    before = REGISTRY.snapshot()
    started = time.perf_counter()
    yield
    wall = time.perf_counter() - started
    delta = snapshot_delta(REGISTRY.snapshot(), before)
    entry = _entry_for_item(item)
    with _RESULTS_LOCK:
        stats = _BENCH_STATS.setdefault(
            entry, {"tests": 0, "wall_s": 0.0}
        )
        stats["tests"] += 1
        stats["wall_s"] += wall
        for name, metric in _BENCH_COUNTERS.items():
            stats[name] = stats.get(name, 0) + int(delta.get(metric, 0))


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<entry>.json`` per entry that ran.

    Skipped in xdist workers (each would see only its shard); the
    controlling process of a non-distributed run writes complete
    per-entry files.
    """
    if os.environ.get("PYTEST_XDIST_WORKER") or not _BENCH_STATS:
        return
    bench_dir = _bench_dir()
    try:
        bench_dir.mkdir(parents=True, exist_ok=True)
        for entry, stats in sorted(_BENCH_STATS.items()):
            payload = dict(stats)
            payload["entry"] = entry
            hits = payload.get("cache_hits", 0)
            requests = hits + payload.get("simulations", 0)
            payload["cache_requests"] = requests
            path = bench_dir / f"BENCH_{entry}.json"
            path.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
    except OSError:
        pass


def record_entry_stat(entry: str, **values) -> None:
    """Merge extra fields into an entry's ``BENCH_<entry>.json`` payload.

    Bench tests use this for derived quantities the metric counters
    can't express (e.g. the engine-vs-direct speedup ratio CI gates on).
    """
    with _RESULTS_LOCK:
        stats = _BENCH_STATS.setdefault(
            entry, {"tests": 0, "wall_s": 0.0}
        )
        stats.update(values)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def runner(fn):
        return run_once(benchmark, fn)

    return runner


def print_table(title: str, headers: list[str], rows: list[list]) -> Table:
    """Print an aligned table and return it as structured rows.

    The text goes to stdout and RESULTS_FILE (as before); the returned
    :class:`~repro.sweeps.render.Table` — also collected into
    :data:`CAPTURED_TABLES` — is what parity tooling consumes, so no
    stdout scraping is ever needed.  Under ``REPRO_GOLDEN_DIR`` the
    rendered text is additionally appended to that directory's
    ``<entry>.txt`` (golden recording).
    """
    table = Table(title=title, headers=list(headers), rows=list(rows))
    text = render_table(title, headers, rows)
    print(text)
    _append_results(text + "\n")
    CAPTURED_TABLES.append((current_entry_name(), table))
    if _GOLDEN_DIR:
        path = pathlib.Path(_GOLDEN_DIR) / f"{current_entry_name()}.txt"
        with _RESULTS_LOCK:
            with path.open("a") as handle:
                handle.write(text + "\n")
    return table


def print_tables(tables) -> list[Table]:
    """Print a sequence of :class:`Table`\\ s (the catalog-shim idiom)."""
    return [
        print_table(table.title, table.headers, table.rows)
        for table in tables
    ]
