"""Extension: qubit-wise vs general commutation grouping (Section 3.1).

The paper restricts VarSaw to *trivial* qubit-wise commutation because
general commutation (a) "non-trivially increases circuit depth" and (b)
"can suffer exponential cost to construct".  With the Clifford substrate
in :mod:`repro.clifford` both halves of that trade-off are measurable:
GC needs fewer measurement circuits per iteration, but each circuit
carries an entangling Clifford rotation, while QWC rotations are
single-qubit only.  This bench quantifies the trade on the Table 2
molecules.

Ported to the declarative catalog (entry ``ext_gc_grouping``):
``gc_grouping`` / ``gc_validity`` / ``gc_end_to_end`` points; rows are
byte-identical to the pre-port output.
"""

from conftest import print_table

from repro.sweeps import ResultStore, get_entry, run_entry, select

ENTRY = "ext_gc_grouping"
_STATE: dict = {}


def _run(benchmark, tmp_path_factory):
    if not _STATE:
        store = ResultStore(tmp_path_factory.mktemp(ENTRY) / "store.jsonl")
        entry = get_entry(ENTRY)
        outcome = benchmark.pedantic(
            lambda: run_entry(entry, store), iterations=1, rounds=1
        )
        _STATE["outcome"] = outcome
        _STATE["tables"] = outcome.tables()
        assert run_entry(entry, store).executed == []
    else:
        benchmark.pedantic(lambda: _STATE["outcome"], iterations=1,
                           rounds=1)
    return _STATE


def test_gc_versus_qwc_grouping(benchmark, tmp_path_factory):
    state = _run(benchmark, tmp_path_factory)
    table = state["tables"][0]
    print_table(table.title, table.headers, table.rows)
    for record in select(
        state["outcome"].records, point__task="gc_grouping"
    ):
        r = record["result"]
        # GC always merges at least as well as QWC...
        assert r["gc_groups"] <= r["qwc_groups"]
        # ...but pays with entangling gates QWC never needs (the paper's
        # stated reason for scoping VarSaw to trivial commutation).
        if r["gc_groups"] < r["qwc_groups"]:
            assert r["gc_rotation_cx"] > 0


def test_gc_group_validity(benchmark, tmp_path_factory):
    """Every GC group is internally commuting and diagonalizable."""
    state = _run(benchmark, tmp_path_factory)
    stats, = select(
        state["outcome"].records, point__task="gc_validity"
    )
    assert stats["result"]["groups"] >= 1
    assert stats["result"]["pairs_checked"] > 0


def test_gc_versus_qwc_end_to_end(benchmark, tmp_path_factory):
    """Full noisy energy evaluation: the Section 3.1 trade-off, measured.

    Equal shots per circuit.  GC needs ~5x fewer circuits; under the
    standard (readout-dominated) noise model its accuracy is comparable,
    while under amplified *gate* noise the entangling measurement
    rotations start to bite — both sides of the paper's stated trade-off.
    """
    state = _run(benchmark, tmp_path_factory)
    table = state["tables"][1]
    print_table(table.title, table.headers, table.rows)

    def result(scheme):
        record, = select(
            state["outcome"].records, point__task="gc_end_to_end",
            point__options__regime="standard",
            point__options__estimator=scheme,
        )
        return record["result"]

    qwc = result("QWC baseline")
    gc = result("GC estimator")
    # GC runs several-fold fewer circuits...
    assert gc["circuits"] * 2 < qwc["circuits"]
    # ...at comparable accuracy in the readout-dominated regime.
    assert gc["error"] < 2.5 * qwc["error"]
