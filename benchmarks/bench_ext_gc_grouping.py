"""Extension: qubit-wise vs general commutation grouping (Section 3.1).

The paper restricts VarSaw to *trivial* qubit-wise commutation because
general commutation (a) "non-trivially increases circuit depth" and (b)
"can suffer exponential cost to construct".  With the Clifford substrate
in :mod:`repro.clifford` both halves of that trade-off are measurable:
GC needs fewer measurement circuits per iteration, but each circuit
carries an entangling Clifford rotation, while QWC rotations are
single-qubit only.  This bench quantifies the trade on the Table 2
molecules.
"""

from conftest import fmt, print_table, run_once

from repro.hamiltonian import build_hamiltonian
from repro.pauli import (
    color_general_commuting,
    diagonalized_groups,
    group_qwc,
)

WORKLOADS = ["H2-4", "LiH-6", "H2O-6", "CH4-6"]


def test_gc_versus_qwc_grouping(benchmark):
    def experiment():
        rows = []
        for key in WORKLOADS:
            hamiltonian = build_hamiltonian(key)
            n = hamiltonian.n_qubits
            paulis = [p for _, p in hamiltonian.non_identity_terms()]
            qwc_groups = group_qwc(paulis, n)
            gc_groups = diagonalized_groups(paulis, n, method="color")
            qwc_cx = 0  # QWC basis rotations are 1-qubit gates only
            gc_cx = sum(g.entangling_gates for g in gc_groups)
            rows.append(
                {
                    "workload": key,
                    "paulis": len(paulis),
                    "qwc_groups": len(qwc_groups),
                    "gc_groups": len(gc_groups),
                    "group_ratio": len(qwc_groups) / len(gc_groups),
                    "qwc_rotation_cx": qwc_cx,
                    "gc_rotation_cx": gc_cx,
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Extension: QWC vs GC measurement grouping "
        "(fewer circuits vs entangling rotations)",
        [
            "workload",
            "paulis",
            "QWC groups",
            "GC groups",
            "QWC/GC",
            "QWC rot. CX",
            "GC rot. CX",
        ],
        [
            [
                r["workload"],
                r["paulis"],
                r["qwc_groups"],
                r["gc_groups"],
                f"{r['group_ratio']:.2f}x",
                r["qwc_rotation_cx"],
                r["gc_rotation_cx"],
            ]
            for r in rows
        ],
    )
    for r in rows:
        # GC always merges at least as well as QWC...
        assert r["gc_groups"] <= r["qwc_groups"]
        # ...but pays with entangling gates QWC never needs (the paper's
        # stated reason for scoping VarSaw to trivial commutation).
        if r["gc_groups"] < r["qwc_groups"]:
            assert r["gc_rotation_cx"] > 0


def test_gc_group_validity(benchmark):
    """Every GC group is internally commuting and diagonalizable."""

    def experiment():
        hamiltonian = build_hamiltonian("LiH-6")
        paulis = [p for _, p in hamiltonian.non_identity_terms()]
        groups = color_general_commuting(paulis, hamiltonian.n_qubits)
        checked = 0
        for group in groups:
            for i, a in enumerate(group):
                for b in group[i + 1:]:
                    assert a.commutes_with(b)
                    checked += 1
        return {"groups": len(groups), "pairs_checked": checked}

    stats = run_once(benchmark, experiment)
    assert stats["groups"] >= 1
    assert stats["pairs_checked"] > 0


def test_gc_versus_qwc_end_to_end(benchmark):
    """Full noisy energy evaluation: the Section 3.1 trade-off, measured.

    Equal shots per circuit.  GC needs ~5x fewer circuits; under the
    standard (readout-dominated) noise model its accuracy is comparable,
    while under amplified *gate* noise the entangling measurement
    rotations start to bite — both sides of the paper's stated trade-off.
    """
    import numpy as np

    from repro.noise import SimulatorBackend, ibmq_mumbai_like
    from repro.vqe import (
        BaselineEstimator,
        GeneralCommutationEstimator,
        IdealEstimator,
    )
    from repro.workloads import make_workload

    def experiment():
        workload = make_workload("LiH-6")
        params = np.full(workload.ansatz.num_parameters, 0.09)
        exact = IdealEstimator(
            workload.hamiltonian, workload.ansatz
        ).evaluate(params)
        rows = []
        for label, device in (
            ("standard", ibmq_mumbai_like()),
            ("10x gate noise", ibmq_mumbai_like()),
        ):
            trials = {}
            for name, cls in (
                ("QWC baseline", BaselineEstimator),
                ("GC estimator", GeneralCommutationEstimator),
            ):
                errors = []
                circuits = 0
                for seed in range(5):
                    backend = SimulatorBackend(device, seed=100 + seed)
                    if label == "10x gate noise":
                        backend.device = device.with_noise_scale(1.0)
                        backend.device.gate_noise.scale = 10.0
                    est = cls(
                        workload.hamiltonian,
                        workload.ansatz,
                        backend,
                        shots=2048,
                    )
                    errors.append(abs(est.evaluate(params) - exact))
                    circuits = est.circuits_per_evaluation
                trials[name] = (float(np.mean(errors)), circuits)
            rows.append((label, trials))
        return {"exact": exact, "rows": rows}

    stats = run_once(benchmark, experiment)
    table_rows = []
    for label, trials in stats["rows"]:
        for name, (err, circuits) in trials.items():
            table_rows.append([label, name, fmt(err, 3), circuits])
    print_table(
        "Extension: QWC vs GC end-to-end energy error "
        "(LiH-6 at fixed params, 2048 shots/circuit, 5 trials)",
        ["noise regime", "scheme", "|error| (Ha)", "circuits/eval"],
        table_rows,
    )
    standard = dict(stats["rows"])["standard"]
    # GC runs several-fold fewer circuits...
    assert standard["GC estimator"][1] * 2 < standard["QWC baseline"][1]
    # ...at comparable accuracy in the readout-dominated regime.
    assert standard["GC estimator"][0] < 2.5 * standard["QWC baseline"][0]
