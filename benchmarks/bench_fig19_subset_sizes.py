"""Fig. 19 (Appendix A): subset-size sweep at optimal parameters.

One VQE instance per molecule, ansatz at (near-)optimal parameters, with
VarSaw mitigation at window sizes 2-5.  The paper's two findings:

* accuracy improvement over the noisy baseline is high and varies little
  with window size;
* the number of subset circuits executed grows with window size, so the
  2-qubit window dominates (most mitigation for the fewest circuits).

Ported to the declarative catalog (entry ``fig19``): the reference,
baseline, and per-window evaluations are ``energy`` task points; rows
are byte-identical to the pre-port output.
"""

from conftest import print_tables

from repro.sweeps import ResultStore, get_entry, run_entry
from repro.sweeps.catalog import fig19_rows


def test_fig19_subset_sizes(benchmark, tmp_path):
    entry = get_entry("fig19")
    store = ResultStore(tmp_path / "fig19.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    by_key: dict = {}
    for r in fig19_rows(outcome.records):
        by_key.setdefault(r["key"], []).append(r)
    for key, entries in by_key.items():
        entries.sort(key=lambda r: r["window"])
        window2 = entries[0]
        best_improvement = max(e["improvement"] for e in entries)
        fewest_subsets = min(e["subsets"] for e in entries)
        # Appendix A's conclusion: the 2-qubit window is the clear choice —
        # its accuracy is within the (low) variance across window sizes
        # while its circuit count is at (or near) the minimum.
        assert window2["improvement"] >= 0.7 * best_improvement, key
        assert window2["subsets"] <= 1.5 * fewest_subsets, key
        # Mitigation is positive at every window size.
        for e in entries:
            assert e["improvement"] > 0, (key, e["window"])
