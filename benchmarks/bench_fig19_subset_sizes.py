"""Fig. 19 (Appendix A): subset-size sweep at optimal parameters.

One VQE instance per molecule, ansatz at (near-)optimal parameters, with
VarSaw mitigation at window sizes 2-5.  The paper's two findings:

* accuracy improvement over the noisy baseline is high and varies little
  with window size;
* the number of subset circuits executed grows with window size, so the
  2-qubit window dominates (most mitigation for the fewest circuits).
"""

from conftest import fmt, print_table

from repro.analysis import (
    mean_energy_at_params,
    optimal_parameters,
    percent_inaccuracy_mitigated,
    scaled,
)
from repro.core import count_varsaw_subsets
from repro.noise import ibmq_mumbai_like
from repro.workloads import make_workload

WINDOWS = (2, 3, 4, 5)
KEYS = ["LiH-6", "CH4-6", "H2O-6"]


def test_fig19_subset_sizes(benchmark):
    shots = scaled(2048, 8192)
    trials = scaled(2, 5)
    device = ibmq_mumbai_like(scale=2.0)

    def experiment():
        rows = []
        for key in KEYS:
            workload = make_workload(key)
            params = optimal_parameters(workload, iterations=300)
            from repro.analysis import energy_at_params

            ref = energy_at_params("ideal", workload, params)
            noisy = mean_energy_at_params(
                "baseline", workload, params,
                trials=trials, device=device, shots=shots,
            )
            for window in WINDOWS:
                mitigated = mean_energy_at_params(
                    "varsaw_no_sparsity", workload, params,
                    trials=trials, device=device, shots=shots,
                    window=window,
                )
                rows.append(
                    {
                        "key": key,
                        "window": window,
                        "subsets": count_varsaw_subsets(
                            workload.hamiltonian, window=window
                        ),
                        "improvement": percent_inaccuracy_mitigated(
                            ref, noisy, mitigated
                        ),
                    }
                )
        return rows

    rows = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        "Fig. 19: subset-size sweep at optimal parameters",
        ["workload", "window", "subset circuits", "% accuracy improvement"],
        [
            [r["key"], r["window"], r["subsets"], fmt(r["improvement"], 0)]
            for r in rows
        ],
    )
    by_key = {}
    for r in rows:
        by_key.setdefault(r["key"], []).append(r)
    for key, entries in by_key.items():
        entries.sort(key=lambda r: r["window"])
        window2 = entries[0]
        best_improvement = max(e["improvement"] for e in entries)
        fewest_subsets = min(e["subsets"] for e in entries)
        # Appendix A's conclusion: the 2-qubit window is the clear choice —
        # its accuracy is within the (low) variance across window sizes
        # while its circuit count is at (or near) the minimum.
        assert window2["improvement"] >= 0.7 * best_improvement, key
        assert window2["subsets"] <= 1.5 * fewest_subsets, key
        # Mitigation is positive at every window size.
        for e in entries:
            assert e["improvement"] > 0, (key, e["window"])
