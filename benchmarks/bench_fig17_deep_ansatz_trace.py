"""Fig. 17: VarSaw with vs without Global sparsity at depth p = 4 (LiH-6).

A deeper ansatz has more parameters, so stale Globals are more wrong per
iteration — yet the paper finds the per-iteration savings still win: the
sparse run converges lower for the same circuit budget, despite a slower
per-iteration convergence rate.
"""

from conftest import fmt, print_table

from repro.analysis import fixed_budget_runs, optimal_parameters, scaled
from repro.noise import ibmq_mumbai_like
from repro.workloads import make_workload

KINDS = ("varsaw_no_sparsity", "varsaw_max_sparsity")


def test_fig17_deep_ansatz(benchmark):
    workload = make_workload("LiH-6", reps=4)
    budget = scaled(30_000, 300_000)
    shots = scaled(256, 1024)
    device = ibmq_mumbai_like(scale=2.0)
    warm = scaled(True, False)

    def experiment():
        initial = (
            optimal_parameters(workload, iterations=300) if warm else None
        )
        return fixed_budget_runs(
            KINDS,
            workload,
            circuit_budget=budget,
            shots=shots,
            seed=17,
            device=device,
            initial_params=initial,
        )

    runs = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        f"Fig. 17: {workload.key}, p = 4, budget = {budget} "
        f"(ideal = {workload.ideal_energy:.2f})",
        ["scheme", "final energy", "iterations", "circuits"],
        [
            [kind, fmt(run.energy), run.iterations,
             run.result.circuits_executed]
            for kind, run in runs.items()
        ],
    )
    sparse = runs["varsaw_max_sparsity"]
    dense = runs["varsaw_no_sparsity"]
    # More iterations for the same budget...
    assert sparse.iterations > 1.5 * dense.iterations
    # ...and a final energy that is competitive or better.
    assert sparse.energy <= dense.energy + 0.2
