"""Fig. 17: VarSaw with vs without Global sparsity at depth p = 4 (LiH-6).

A deeper ansatz has more parameters, so stale Globals are more wrong per
iteration — yet the paper finds the per-iteration savings still win: the
sparse run converges lower for the same circuit budget, despite a slower
per-iteration convergence rate.

Ported to the declarative catalog (entry ``fig17``); rows are
byte-identical to the pre-port output.
"""

from conftest import print_tables

from repro.sweeps import ResultStore, get_entry, run_entry


def test_fig17_deep_ansatz(benchmark, tmp_path):
    entry = get_entry("fig17")
    store = ResultStore(tmp_path / "fig17.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    runs = {
        r["point"]["scheme"]: r["result"] for r in outcome.records
    }
    sparse = runs["varsaw_max_sparsity"]
    dense = runs["varsaw_no_sparsity"]
    # More iterations for the same budget...
    assert sparse["iterations"] > 1.5 * dense["iterations"]
    # ...and a final energy that is competitive or better.
    assert sparse["energy"] <= dense["energy"] + 0.2
