"""Fig. 18: stacking VarSaw with IBM-style matrix-based mitigation (MBM).

VarSaw+MBM applies the calibration-matrix inverse to every Global-PMF
before Bayesian reconstruction.  The paper sees ~10% improvement for H2O
and a negligible (but less noisy) change for LiH — i.e. MBM never hurts.

Ported to the declarative catalog (entry ``fig18``): the ``mbm``
estimator flag is materialized into a live
:class:`~repro.mitigation.MatrixMitigator` by the tuning executor; rows
are byte-identical to the pre-port output.
"""

from conftest import print_tables

from repro.sweeps import ResultStore, get_entry, run_entry, select

KEYS = ["LiH-6", "H2O-6"]


def test_fig18_varsaw_plus_mbm(benchmark, tmp_path):
    entry = get_entry("fig18")
    store = ResultStore(tmp_path / "fig18.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    for key in KEYS:
        plain, = select(
            outcome.records, point__workload__key=key,
            point__estimator={},
        )
        stacked, = select(
            outcome.records, point__workload__key=key,
            point__estimator={"mbm": True},
        )
        ideal = plain["result"]["ideal_energy"]
        err_plain = abs(plain["result"]["energy"] - ideal)
        err_stacked = abs(stacked["result"]["energy"] - ideal)
        # MBM stacking never hurts beyond noise (paper: ~0-10% gain).
        assert err_stacked <= err_plain * 1.25 + 0.05, key
