"""Fig. 18: stacking VarSaw with IBM-style matrix-based mitigation (MBM).

VarSaw+MBM applies the calibration-matrix inverse to every Global-PMF
before Bayesian reconstruction.  The paper sees ~10% improvement for H2O
and a negligible (but less noisy) change for LiH — i.e. MBM never hurts.
"""

from conftest import fmt, print_table

from repro.analysis import optimal_parameters, run_tuning, scaled
from repro.mitigation import MatrixMitigator
from repro.noise import SimulatorBackend, ibmq_mumbai_like
from repro.workloads import make_workload

KEYS = ["LiH-6", "H2O-6"]


def test_fig18_varsaw_plus_mbm(benchmark):
    keys = KEYS
    iterations = scaled(60, 800)
    shots = scaled(256, 1024)
    device = ibmq_mumbai_like(scale=2.0)
    warm = scaled(True, False)

    def experiment():
        rows = []
        for key in keys:
            workload = make_workload(key)
            initial = (
                optimal_parameters(workload, iterations=300)
                if warm
                else None
            )
            mitigator = MatrixMitigator.from_device(
                SimulatorBackend(device), range(workload.n_qubits)
            )
            plain = run_tuning(
                "varsaw", workload, max_iterations=iterations,
                shots=shots, seed=18, device=device,
                initial_params=initial,
            )
            stacked = run_tuning(
                "varsaw", workload, max_iterations=iterations,
                shots=shots, seed=18, device=device, mbm=mitigator,
                initial_params=initial,
            )
            rows.append(
                {
                    "key": key,
                    "ideal": workload.ideal_energy,
                    "varsaw": plain.energy,
                    "varsaw_mbm": stacked.energy,
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        f"Fig. 18: VarSaw vs VarSaw+MBM over {scaled(60, 800)} iterations",
        ["workload", "ideal", "VarSaw", "VarSaw+MBM"],
        [
            [r["key"], fmt(r["ideal"]), fmt(r["varsaw"]),
             fmt(r["varsaw_mbm"])]
            for r in rows
        ],
    )
    for r in rows:
        err_plain = abs(r["varsaw"] - r["ideal"])
        err_stacked = abs(r["varsaw_mbm"] - r["ideal"])
        # MBM stacking never hurts beyond noise (paper: ~0-10% gain).
        assert err_stacked <= err_plain * 1.25 + 0.05, r["key"]
