"""Table 4: Global Selective Execution benefit across ansatz depths.

Same comparison as Table 3 but sweeping the repetition count p over
1 / 2 / 4 / 8.  Paper: sparsity helps in all cases but one marginally
negative cell, with the benefit shrinking at larger p (stale Globals are
more wrong when there are more parameters).

Scale note: as for Table 3, the iteration-economics mechanism is asserted
at every scale; the net accuracy advantage needs paper-length runs and is
asserted under ``REPRO_SCALE=full``.

Ported to the declarative catalog (entry ``table4``); rows are
byte-identical to the pre-port output.
"""

from conftest import print_tables

from repro.analysis import is_full_scale
from repro.sweeps import ResultStore, get_entry, run_entry
from repro.sweeps.catalog import selective_table

DEPTHS = (1, 2, 4, 8)


def test_table4_ansatz_depths(benchmark, tmp_path):
    entry = get_entry("table4")
    store = ResultStore(tmp_path / "table4.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    table = selective_table(outcome.records, "reps", list(DEPTHS))
    cells = list(table.values())
    for cell in cells:
        assert cell["sparse_iters"] > 1.5 * cell["dense_iters"]
        assert cell["gap"] < 0.25
    if is_full_scale():
        # Paper's Table 4 shape: positive everywhere except (at most) one
        # marginal cell.
        values = [c["mitigated"] for c in cells]
        assert sum(values) / len(values) > 0
        negatives = [v for v in values if v <= 0]
        assert len(negatives) <= max(1, len(values) // 6)
