"""Table 4: Global Selective Execution benefit across ansatz depths.

Same comparison as Table 3 but sweeping the repetition count p over
1 / 2 / 4 / 8.  Paper: sparsity helps in all cases but one marginally
negative cell, with the benefit shrinking at larger p (stale Globals are
more wrong when there are more parameters).

Scale note: as for Table 3, the iteration-economics mechanism is asserted
at every scale; the net accuracy advantage needs paper-length runs and is
asserted under ``REPRO_SCALE=full``.
"""

from conftest import fmt, print_table

from repro.analysis import (
    fixed_budget_runs,
    is_full_scale,
    percent_inaccuracy_mitigated,
    scaled,
)
from repro.noise import ibmq_mumbai_like
from repro.workloads import make_workload

DEPTHS = (1, 2, 4, 8)
QUICK_KEYS = ["CH4-6"]
FULL_KEYS = ["CH4-6", "H2O-6", "LiH-6"]


def test_table4_ansatz_depths(benchmark):
    keys = scaled(QUICK_KEYS, FULL_KEYS)
    shots = scaled(256, 1024)
    device = ibmq_mumbai_like(scale=2.0)

    def experiment():
        table = {}
        for key in keys:
            for p in DEPTHS:
                workload = make_workload(key, reps=p)
                groups = len(workload.hamiltonian.measurement_groups())
                budget = scaled(150, 4000) * groups
                runs = fixed_budget_runs(
                    ("varsaw_no_sparsity", "varsaw"),
                    workload,
                    circuit_budget=budget,
                    shots=shots,
                    seed=4,
                    device=device,
                )
                table[(key, p)] = {
                    "mitigated": percent_inaccuracy_mitigated(
                        workload.ideal_energy,
                        runs["varsaw_no_sparsity"].energy,
                        runs["varsaw"].energy,
                    ),
                    "dense_iters": runs["varsaw_no_sparsity"].iterations,
                    "sparse_iters": runs["varsaw"].iterations,
                    "gap": (
                        runs["varsaw"].energy
                        - runs["varsaw_no_sparsity"].energy
                    ),
                }
        return table

    table = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        "Table 4: % inaccuracy mitigated by selective Globals, per depth p "
        "(sparse/dense iterations in parentheses)",
        ["Workload"] + [f"p = {p}" for p in DEPTHS],
        [
            [key]
            + [
                f"{fmt(table[(key, p)]['mitigated'], 1)} "
                f"({table[(key, p)]['sparse_iters']}/"
                f"{table[(key, p)]['dense_iters']})"
                for p in DEPTHS
            ]
            for key in keys
        ],
    )
    cells = list(table.values())
    for cell in cells:
        assert cell["sparse_iters"] > 1.5 * cell["dense_iters"]
        assert cell["gap"] < 0.25
    if is_full_scale():
        # Paper's Table 4 shape: positive everywhere except (at most) one
        # marginal cell.
        values = [c["mitigated"] for c in cells]
        assert sum(values) / len(values) > 0
        negatives = [v for v in values if v <= 0]
        assert len(negatives) <= max(1, len(values) // 6)