"""Extension: calibration-gated subsetting (Section 7.1).

"If some qubits have near-zero measurement errors, then VarSaw, or
measurement error mitigation in general, is not required for these
qubits."  On a device where half the readout lines are nearly perfect,
a calibration gate prunes the subset windows confined to those lines —
saving per-iteration circuits at (near) zero accuracy cost.  Sweeping
the gate threshold traces the cost/coverage trade-off.
"""

import numpy as np
from conftest import fmt, print_table, run_once

from repro.core import (
    CalibrationGate,
    CalibrationGatedVarSawEstimator,
    VarSawEstimator,
)
from repro.noise import (
    DepolarizingGateNoise,
    DeviceModel,
    QubitReadoutError,
    ReadoutErrorModel,
    SimulatorBackend,
)
from repro.vqe import IdealEstimator
from repro.workloads import make_workload

#: H2-4 on a device whose qubits 0-1 read out nearly perfectly.
ERRORS = [2e-4, 5e-4, 0.05, 0.07]


def split_device():
    readout = ReadoutErrorModel(
        [QubitReadoutError(e, 1.4 * e) for e in ERRORS],
        crosstalk_strength=0.1,
    )
    return DeviceModel(
        "split-quality",
        readout,
        DepolarizingGateNoise(error_1q=1e-4, error_2q=2e-3),
    )


def test_calibration_gate_threshold_sweep(benchmark):
    def experiment():
        device = split_device()
        workload = make_workload("H2-4", device=device)
        params = np.full(workload.ansatz.num_parameters, 0.1)
        exact = IdealEstimator(
            workload.hamiltonian, workload.ansatz
        ).evaluate(params)

        def mean_error_and_cost(factory, trials=6):
            errors, circuits = [], 0
            for seed in range(trials):
                backend = SimulatorBackend(device, seed=200 + seed)
                estimator = factory(backend)
                before = backend.circuits_run
                errors.append(abs(estimator.evaluate(params) - exact))
                circuits = backend.circuits_run - before
            return float(np.mean(errors)), circuits

        rows = []
        err, cost = mean_error_and_cost(
            lambda be: VarSawEstimator(
                workload.hamiltonian, workload.ansatz, be, shots=2048
            )
        )
        rows.append({"threshold": "off", "error": err, "circuits": cost,
                     "skipped": 0})
        for threshold in (0.0001, 0.01, 0.1):
            skipped = {}

            def factory(be, th=threshold):
                est = CalibrationGatedVarSawEstimator(
                    workload.hamiltonian,
                    workload.ansatz,
                    be,
                    shots=2048,
                    gate=CalibrationGate(error_threshold=th),
                )
                skipped["n"] = est.subsets_skipped
                return est

            err, cost = mean_error_and_cost(factory)
            rows.append(
                {
                    "threshold": f"{threshold:g}",
                    "error": err,
                    "circuits": cost,
                    "skipped": skipped["n"],
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Extension: calibration-gated subsetting on a split-quality "
        "device (H2-4, first evaluation incl. Globals)",
        ["gate threshold", "subsets skipped", "circuits/eval", "|error| (Ha)"],
        [
            [r["threshold"], r["skipped"], r["circuits"], fmt(r["error"], 3)]
            for r in rows
        ],
    )
    by = {r["threshold"]: r for r in rows}
    # A permissive threshold keeps everything (== VarSaw).
    assert by["0.0001"]["skipped"] == 0
    assert by["0.0001"]["circuits"] == by["off"]["circuits"]
    # The intended operating point prunes the clean-line windows at
    # near-zero accuracy cost.
    assert by["0.01"]["skipped"] > 0
    assert by["0.01"]["circuits"] < by["off"]["circuits"]
    assert by["0.01"]["error"] < by["off"]["error"] + 0.15
    # Gating everything degenerates toward the unmitigated baseline:
    # maximal savings, and accuracy is allowed to suffer.
    assert by["0.1"]["circuits"] <= by["0.01"]["circuits"]
