"""Extension: calibration-gated subsetting (Section 7.1).

"If some qubits have near-zero measurement errors, then VarSaw, or
measurement error mitigation in general, is not required for these
qubits."  On a device where half the readout lines are nearly perfect,
a calibration gate prunes the subset windows confined to those lines —
saving per-iteration circuits at (near) zero accuracy cost.  Sweeping
the gate threshold traces the cost/coverage trade-off.

Ported to the declarative catalog (entry ``ext_calibration_gating``):
one ``calibration_gate`` point per threshold; rows are byte-identical
to the pre-port output.
"""

from conftest import print_tables

from repro.sweeps import ResultStore, get_entry, run_entry


def test_calibration_gate_threshold_sweep(benchmark, tmp_path):
    entry = get_entry("ext_calibration_gating")
    store = ResultStore(tmp_path / "gating.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    by = {}
    for record in outcome.records:
        threshold = record["point"]["options"]["threshold"]
        label = "off" if threshold is None else f"{threshold:g}"
        by[label] = record["result"]
    # A permissive threshold keeps everything (== VarSaw).
    assert by["0.0001"]["skipped"] == 0
    assert by["0.0001"]["circuits"] == by["off"]["circuits"]
    # The intended operating point prunes the clean-line windows at
    # near-zero accuracy cost.
    assert by["0.01"]["skipped"] > 0
    assert by["0.01"]["circuits"] < by["off"]["circuits"]
    assert by["0.01"]["error"] < by["off"]["error"] + 0.15
    # Gating everything degenerates toward the unmitigated baseline:
    # maximal savings, and accuracy is allowed to suffer.
    assert by["0.1"]["circuits"] <= by["0.01"]["circuits"]
