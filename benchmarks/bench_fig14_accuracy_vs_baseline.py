"""Fig. 14: % of noisy-VQE inaccuracy mitigated by VarSaw + Global fraction.

For each temporal workload, VarSaw and the noisy baseline tune for the
same number of iterations; the bar is the share of the baseline's gap to
the Ideal that VarSaw closes (paper: 13%-86%, mean 45%).  The secondary
axis is the optimal fraction of Global executions (paper: ~0.01-0.1).

Ported to a declarative :class:`~repro.sweeps.SweepSpec`: the workload x
scheme grid runs through the checkpointed sweep runner and the figure's
rows are reassembled from the stored records (energy, ideal energy, and
Global fraction are all captured per point).  Rows are identical to the
pre-sweep ad-hoc loop.
"""

from conftest import fmt, print_table

from repro.analysis import percent_inaccuracy_mitigated, scaled
from repro.hamiltonian import molecule_keys
from repro.sweeps import ResultStore, run_sweep, select, SweepSpec

QUICK_KEYS = ["LiH-6", "H2O-6", "CH4-6"]
FULL_KEYS = molecule_keys(temporal_only=True)


def test_fig14_accuracy_vs_baseline(benchmark, tmp_path):
    keys = scaled(QUICK_KEYS, FULL_KEYS)
    iterations = scaled(80, 2000)
    shots = scaled(256, 1024)
    warm = scaled(True, False)

    spec = SweepSpec(
        name="fig14_accuracy_vs_baseline",
        base={
            "device": {"preset": "ibmq_mumbai_like", "scale": 2.0},
            "max_iterations": iterations,
            "shots": shots,
            "seed": 14,
            "warm_start_iterations": 300 if warm else None,
        },
        axes={
            "workload": [{"key": key} for key in keys],
            "scheme": ["baseline", "varsaw"],
        },
    )
    store = ResultStore(tmp_path / "fig14.jsonl")

    def experiment():
        report = run_sweep(spec, store)
        records = list(report.records.values())
        rows = []
        for key in keys:
            base, = select(
                records, point__workload__key=key, point__scheme="baseline"
            )
            var, = select(
                records, point__workload__key=key, point__scheme="varsaw"
            )
            rows.append(
                {
                    "key": key,
                    "ideal": base["result"]["ideal_energy"],
                    "baseline": base["result"]["energy"],
                    "varsaw": var["result"]["energy"],
                    "mitigated": percent_inaccuracy_mitigated(
                        base["result"]["ideal_energy"],
                        base["result"]["energy"],
                        var["result"]["energy"],
                    ),
                    "global_fraction": var["result"]["global_fraction"],
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        f"Fig. 14: VarSaw vs noisy baseline over {scaled(80, 2000)} iterations",
        ["workload", "ideal", "baseline", "VarSaw", "% mitigated",
         "global fraction"],
        [
            [r["key"], fmt(r["ideal"]), fmt(r["baseline"]), fmt(r["varsaw"]),
             fmt(r["mitigated"], 0), fmt(r["global_fraction"], 3)]
            for r in rows
        ],
    )
    mean = sum(r["mitigated"] for r in rows) / len(rows)
    print(f"mean % mitigated: {mean:.0f}% (paper: 45%)")

    # The grid is fully checkpointed: a re-run executes nothing.
    assert run_sweep(spec, store).executed == []

    # VarSaw improves on the baseline for most workloads and on average.
    improved = [r for r in rows if r["mitigated"] > 0]
    assert len(improved) >= len(rows) - 1
    assert mean > 10
    # Globals are sparse: far fewer than one per evaluation.
    for r in rows:
        assert r["global_fraction"] < 0.6, r["key"]
