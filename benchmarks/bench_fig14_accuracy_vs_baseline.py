"""Fig. 14: % of noisy-VQE inaccuracy mitigated by VarSaw + Global fraction.

For each temporal workload, VarSaw and the noisy baseline tune for the
same number of iterations; the bar is the share of the baseline's gap to
the Ideal that VarSaw closes (paper: 13%-86%, mean 45%).  The secondary
axis is the optimal fraction of Global executions (paper: ~0.01-0.1).
"""

from conftest import fmt, print_table

from repro.analysis import (
    optimal_parameters,
    percent_inaccuracy_mitigated,
    run_tuning,
    scaled,
)
from repro.hamiltonian import molecule_keys
from repro.noise import ibmq_mumbai_like
from repro.workloads import make_workload

QUICK_KEYS = ["LiH-6", "H2O-6", "CH4-6"]
FULL_KEYS = molecule_keys(temporal_only=True)


def test_fig14_accuracy_vs_baseline(benchmark):
    keys = scaled(QUICK_KEYS, FULL_KEYS)
    iterations = scaled(80, 2000)
    shots = scaled(256, 1024)
    device = ibmq_mumbai_like(scale=2.0)

    warm = scaled(True, False)

    def experiment():
        rows = []
        for key in keys:
            workload = make_workload(key)
            initial = (
                optimal_parameters(workload, iterations=300)
                if warm
                else None
            )
            base = run_tuning(
                "baseline", workload, max_iterations=iterations,
                shots=shots, seed=14, device=device,
                initial_params=initial,
            )
            var = run_tuning(
                "varsaw", workload, max_iterations=iterations,
                shots=shots, seed=14, device=device,
                initial_params=initial,
            )
            rows.append(
                {
                    "key": key,
                    "ideal": workload.ideal_energy,
                    "baseline": base.energy,
                    "varsaw": var.energy,
                    "mitigated": percent_inaccuracy_mitigated(
                        workload.ideal_energy, base.energy, var.energy
                    ),
                    "global_fraction": var.global_fraction,
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        f"Fig. 14: VarSaw vs noisy baseline over {scaled(80, 2000)} iterations",
        ["workload", "ideal", "baseline", "VarSaw", "% mitigated",
         "global fraction"],
        [
            [r["key"], fmt(r["ideal"]), fmt(r["baseline"]), fmt(r["varsaw"]),
             fmt(r["mitigated"], 0), fmt(r["global_fraction"], 3)]
            for r in rows
        ],
    )
    mean = sum(r["mitigated"] for r in rows) / len(rows)
    print(f"mean % mitigated: {mean:.0f}% (paper: 45%)")

    # VarSaw improves on the baseline for most workloads and on average.
    improved = [r for r in rows if r["mitigated"] > 0]
    assert len(improved) >= len(rows) - 1
    assert mean > 10
    # Globals are sparse: far fewer than one per evaluation.
    for r in rows:
        assert r["global_fraction"] < 0.6, r["key"]
