"""Fig. 14: % of noisy-VQE inaccuracy mitigated by VarSaw + Global fraction.

For each temporal workload, VarSaw and the noisy baseline tune for the
same number of iterations; the bar is the share of the baseline's gap to
the Ideal that VarSaw closes (paper: 13%-86%, mean 45%).  The secondary
axis is the optimal fraction of Global executions (paper: ~0.01-0.1).

Ported to the declarative catalog (entry ``fig14``): the workload x
scheme grid runs through the checkpointed sweep runner and the figure's
rows are reassembled from the stored records.  Rows are byte-identical
to the pre-port output.
"""

from conftest import print_tables

from repro.sweeps import ResultStore, get_entry, run_entry
from repro.sweeps.catalog import fig14_rows


def test_fig14_accuracy_vs_baseline(benchmark, tmp_path):
    entry = get_entry("fig14")
    store = ResultStore(tmp_path / "fig14.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())

    rows = fig14_rows(outcome.records)
    mean = sum(r["mitigated"] for r in rows) / len(rows)
    print(f"mean % mitigated: {mean:.0f}% (paper: 45%)")

    # The grid is fully checkpointed: a re-run executes nothing.
    assert run_entry(entry, store).executed == []

    # VarSaw improves on the baseline for most workloads and on average.
    improved = [r for r in rows if r["mitigated"] > 0]
    assert len(improved) >= len(rows) - 1
    assert mean > 10
    # Globals are sparse: far fewer than one per evaluation.
    for r in rows:
        assert r["global_fraction"] < 0.6, r["key"]
