"""Extension: VarSaw on QAOA (paper Section 7.3).

The paper's prediction for QAOA-like problems: the *temporal*
optimization transfers (globals are still redundant between adjacent
iterations), while the *spatial* benefit is muted because a MaxCut
Hamiltonian is single-basis (all terms are Z/ZZ — one commuting family,
so the baseline already needs only one circuit per iteration).  This
bench verifies both halves of that prediction on a 6-node ring.

Ported to the declarative catalog (entry ``ext_qaoa``): the structure
point and the budgeted tuning runs use the declarative
``{"qaoa": ...}`` workload kind; rows are byte-identical to the
pre-port output.
"""

from conftest import print_table

from repro.sweeps import ResultStore, get_entry, run_entry, select

ENTRY = "ext_qaoa"
_STATE: dict = {}


def _run(benchmark, tmp_path_factory):
    if not _STATE:
        store = ResultStore(tmp_path_factory.mktemp(ENTRY) / "store.jsonl")
        entry = get_entry(ENTRY)
        outcome = benchmark.pedantic(
            lambda: run_entry(entry, store), iterations=1, rounds=1
        )
        _STATE["outcome"] = outcome
        _STATE["tables"] = outcome.tables()
        assert run_entry(entry, store).executed == []
    else:
        benchmark.pedantic(lambda: _STATE["outcome"], iterations=1,
                           rounds=1)
    return _STATE


def test_qaoa_spatial_structure(benchmark, tmp_path_factory):
    """Single-basis problems leave little spatial redundancy to harvest."""
    state = _run(benchmark, tmp_path_factory)
    table = state["tables"][0]
    print_table(table.title, table.headers, table.rows)
    stats = select(
        state["outcome"].records, point__task="structure"
    )[0]["result"]
    # Every ZZ term lives in the single all-Z commuting family: the
    # spatial opportunity is structurally smaller than in VQE (§7.3).
    assert stats["qwc_families"] == 1
    # Spatial reduction still prunes the sliding-window subsets well
    # below the term count (shared 2-qubit windows merge).
    assert stats["varsaw"] < stats["jigsaw"]


def test_qaoa_temporal_benefit(benchmark, tmp_path_factory):
    """Sparse globals: more iterations and >= accuracy at fixed budget."""
    state = _run(benchmark, tmp_path_factory)
    table = state["tables"][1]
    print_table(table.title, table.headers, table.rows)
    runs = {
        r["point"]["scheme"]: r["result"]
        for r in select(state["outcome"].records, point__task="tuning")
    }
    dense = runs["varsaw_no_sparsity"]
    sparse = runs["varsaw_max_sparsity"]
    # The temporal prediction: sparsity buys strictly more iterations...
    assert (
        sparse["iterations_completed"] > dense["iterations_completed"]
    )
    # ...and does not give up accuracy (small tolerance for tuner noise).
    assert sparse["energy"] <= dense["energy"] + 0.35
