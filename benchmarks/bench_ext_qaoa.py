"""Extension: VarSaw on QAOA (paper Section 7.3).

The paper's prediction for QAOA-like problems: the *temporal*
optimization transfers (globals are still redundant between adjacent
iterations), while the *spatial* benefit is muted because a MaxCut
Hamiltonian is single-basis (all terms are Z/ZZ — one commuting family,
so the baseline already needs only one circuit per iteration).  This
bench verifies both halves of that prediction on a 6-node ring.
"""

import os

import numpy as np
from conftest import fmt, print_table, run_once

from repro.core import count_jigsaw_subsets, count_varsaw_subsets
from repro.noise import SimulatorBackend, ibmq_mumbai_like
from repro.qaoa import make_qaoa_workload
from repro.vqe import run_vqe
from repro.workloads import make_estimator

FULL = os.environ.get("REPRO_SCALE", "quick") == "full"
N_NODES = 6
BUDGET = 60_000 if FULL else 12_000


def test_qaoa_spatial_structure(benchmark):
    """Single-basis problems leave little spatial redundancy to harvest."""

    def experiment():
        from repro.pauli import group_qwc

        workload = make_qaoa_workload("ring", N_NODES, reps=2)
        ham = workload.hamiltonian
        paulis = [p for _, p in ham.non_identity_terms()]
        return {
            "paulis": len(paulis),
            "baseline_groups": len(ham.measurement_groups()),
            "qwc_families": len(group_qwc(paulis, ham.n_qubits)),
            "jigsaw_subsets": count_jigsaw_subsets(ham, window=2),
            "varsaw_subsets": count_varsaw_subsets(ham, window=2),
        }

    stats = run_once(benchmark, experiment)
    print_table(
        "Extension: QAOA ring-6 spatial structure "
        "(all-Z terms are one QWC family)",
        ["quantity", "count"],
        [
            ["ZZ Pauli terms", stats["paulis"]],
            ["baseline cover circuits", stats["baseline_groups"]],
            ["merged QWC families", stats["qwc_families"]],
            ["JigSaw subsets / iteration", stats["jigsaw_subsets"]],
            ["VarSaw subsets / iteration", stats["varsaw_subsets"]],
        ],
    )
    # Every ZZ term lives in the single all-Z commuting family: the
    # spatial opportunity is structurally smaller than in VQE (§7.3).
    assert stats["qwc_families"] == 1
    # Spatial reduction still prunes the sliding-window subsets well
    # below the term count (shared 2-qubit windows merge).
    assert stats["varsaw_subsets"] < stats["jigsaw_subsets"]


def test_qaoa_temporal_benefit(benchmark):
    """Sparse globals: more iterations and >= accuracy at fixed budget."""

    def experiment():
        rows = {}
        for kind in ("baseline", "varsaw_no_sparsity", "varsaw_max_sparsity"):
            workload = make_qaoa_workload("ring", N_NODES, reps=2)
            backend = SimulatorBackend(ibmq_mumbai_like(scale=2.0), seed=23)
            estimator = make_estimator(kind, workload, backend, shots=256)
            result = run_vqe(
                estimator,
                max_iterations=100_000,
                circuit_budget=BUDGET,
                seed=23,
            )
            rows[kind] = {
                "energy": result.energy,
                "iterations": result.iterations_completed(),
                "circuits": result.circuits_executed,
            }
        rows["ideal_energy"] = make_qaoa_workload(
            "ring", N_NODES
        ).ideal_energy
        return rows

    stats = run_once(benchmark, experiment)
    print_table(
        f"Extension: QAOA ring-6 temporal benefit "
        f"(fixed budget of {BUDGET} circuits; ideal "
        f"{stats['ideal_energy']:.1f})",
        ["scheme", "energy", "iterations", "circuits"],
        [
            [
                kind,
                fmt(stats[kind]["energy"], 3),
                stats[kind]["iterations"],
                stats[kind]["circuits"],
            ]
            for kind in (
                "baseline",
                "varsaw_no_sparsity",
                "varsaw_max_sparsity",
            )
        ],
    )
    dense = stats["varsaw_no_sparsity"]
    sparse = stats["varsaw_max_sparsity"]
    # The temporal prediction: sparsity buys strictly more iterations...
    assert sparse["iterations"] > dense["iterations"]
    # ...and does not give up accuracy (small tolerance for tuner noise).
    assert sparse["energy"] <= dense["energy"] + 0.35
