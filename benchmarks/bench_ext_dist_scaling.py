"""Extension: sharded sweep scaling with work-stealing shards.

One mixed grid — cheap H2-4 baseline tuning cells plus Trotter-error
cells of unequal cost — run serially and again across 4 work-stealing
shard subprocesses (catalog entry ``ext_dist_scaling``).  Shards
coordinate through a journaled claim queue, append to per-shard
stores, and the coordinator merges fingerprint-first-wins.

Expected shape: both rows hold identical records — the sharded store's
canonical digest (volatile wall-clock fields excluded) equals the
serial reference's, with zero duplicate executions and every point
recorded exactly once.  The wall-clock and speedup columns are
volatile and masked by the golden-parity suite; the record-identity,
execution, duplicate, and steal columns are pinned.  The observed
speedup lands in ``BENCH_ext_dist_scaling.json``; the >= 2.5x gate
only applies at paper scale on a >= 4-core machine (a single-core
runner cannot physically speed up CPU-bound shards).
"""

import os

from conftest import print_tables, record_entry_stat

from repro.analysis.scale import is_full_scale
from repro.sweeps import ResultStore, get_entry, run_entry
from repro.sweeps.catalog import dist_scaling_rows


def test_ext_dist_scaling(benchmark, tmp_path):
    entry = get_entry("ext_dist_scaling")
    store = ResultStore(tmp_path / "dist.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    rows = dist_scaling_rows(outcome.records)
    serial, sharded = rows[1], rows[4]
    cores = os.cpu_count() or 1
    speedup = serial["seconds"] / sharded["seconds"]
    record_entry_stat(
        "ext_dist_scaling",
        speedup=speedup,
        cores=cores,
        serial_s=serial["seconds"],
        sharded_s=sharded["seconds"],
    )
    # The hard invariant: sharded records are byte-identical to the
    # serial run's (canonically, volatile wall-clock fields excluded).
    assert sharded["digest"] == serial["digest"]
    # Every point recorded exactly once, no lost or duplicated work.
    assert serial["records"] == serial["points"]
    assert sharded["records"] == sharded["points"]
    assert serial["duplicates"] == 0
    assert sharded["duplicates"] == 0
    # Timing is machine-dependent: gate the scaling claim only where
    # the hardware can express it and the cells are paper-sized.
    if cores >= 4 and is_full_scale():
        assert speedup >= 2.5
