"""Extension (Section 7.3): VarSaw on spin-model Hamiltonians.

The paper names time-evolving Hamiltonian workloads — Ising, Heisenberg,
XY — as the next applications, predicting both optimizations transfer
because their Pauli terms spread across multiple measurement bases.  This
bench quantifies that: spatial subset reduction on each model, plus a
budgeted VQE run showing the temporal economics.
"""

from conftest import fmt, print_table

from repro.analysis import fixed_budget_runs, scaled
from repro.ansatz import EfficientSU2
from repro.core import count_jigsaw_subsets, count_varsaw_subsets
from repro.hamiltonian import (
    ground_state_energy,
    heisenberg_hamiltonian,
    tfim_hamiltonian,
    xy_hamiltonian,
)
from repro.noise import ibmq_mumbai_like
from repro.workloads import Workload


def spin_workloads(n_qubits: int):
    return {
        "TFIM": tfim_hamiltonian(n_qubits, coupling=1.0, field=0.7),
        "Heisenberg": heisenberg_hamiltonian(n_qubits, field=0.3),
        "XY": xy_hamiltonian(n_qubits, anisotropy=0.4, field=0.5),
    }


def test_ext_spin_model_spatial_reduction(benchmark):
    n_qubits = scaled(8, 12)

    def experiment():
        rows = []
        for name, ham in spin_workloads(n_qubits).items():
            rows.append(
                {
                    "name": name,
                    "terms": ham.num_terms,
                    "baseline": len(ham.measurement_groups()),
                    "jigsaw": count_jigsaw_subsets(ham),
                    "varsaw": count_varsaw_subsets(ham),
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        f"Extension: spatial reduction on {n_qubits}-qubit spin models",
        ["model", "terms", "baseline circuits", "JigSaw subsets",
         "VarSaw subsets", "reduction"],
        [
            [r["name"], r["terms"], r["baseline"], r["jigsaw"], r["varsaw"],
             fmt(r["jigsaw"] / r["varsaw"], 1) + "x"]
            for r in rows
        ],
    )
    for r in rows:
        assert r["varsaw"] < r["jigsaw"], r["name"]
    # The multi-basis models (Heisenberg spans X/Y/Z) show the strongest
    # redundancy, as Section 7.3 predicts.
    by_name = {r["name"]: r for r in rows}
    heis_ratio = by_name["Heisenberg"]["jigsaw"] / by_name["Heisenberg"]["varsaw"]
    assert heis_ratio > 2


def test_ext_spin_model_temporal_economics(benchmark):
    n_qubits = 6
    budget = scaled(8_000, 80_000)
    shots = scaled(256, 1024)
    device = ibmq_mumbai_like(scale=2.0)

    def experiment():
        from repro.noise import SimulatorBackend
        from repro.vqe import IdealEstimator, run_vqe

        out = {}
        for name, ham in spin_workloads(n_qubits).items():
            workload = Workload(
                key=name,
                hamiltonian=ham,
                ansatz=EfficientSU2(n_qubits, reps=2, entanglement="full"),
                device=device,
                ideal_energy=ground_state_energy(ham),
            )
            # Warm-start near the optimum so the budgeted phase compares
            # achievable accuracy, not the cold-start transient (where a
            # frozen Global misleads — the Fig. 9 noise-free effect).
            ideal_est = IdealEstimator(ham, workload.ansatz)
            warm = run_vqe(
                ideal_est, max_iterations=scaled(200, 600), seed=73
            ).parameters
            out[name] = (
                workload.ideal_energy,
                fixed_budget_runs(
                    ("varsaw_no_sparsity", "varsaw_max_sparsity"),
                    workload,
                    circuit_budget=budget,
                    shots=shots,
                    seed=73,
                    initial_params=warm,
                ),
            )
        return out

    results = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        f"Extension: temporal sparsity on {n_qubits}-qubit spin models "
        f"(budget {budget})",
        ["model", "ideal", "No-Sparsity E (iters)", "Max-Sparsity E (iters)"],
        [
            [
                name,
                fmt(ideal),
                f"{fmt(runs['varsaw_no_sparsity'].energy)} "
                f"({runs['varsaw_no_sparsity'].iterations})",
                f"{fmt(runs['varsaw_max_sparsity'].energy)} "
                f"({runs['varsaw_max_sparsity'].iterations})",
            ]
            for name, (ideal, runs) in results.items()
        ],
    )
    for name, (ideal, runs) in results.items():
        sparse = runs["varsaw_max_sparsity"]
        dense = runs["varsaw_no_sparsity"]
        assert sparse.iterations > 1.3 * dense.iterations, name
        assert sparse.energy <= dense.energy + 0.4, name
