"""Extension (Section 7.3): VarSaw on spin-model Hamiltonians.

The paper names time-evolving Hamiltonian workloads — Ising, Heisenberg,
XY — as the next applications, predicting both optimizations transfer
because their Pauli terms spread across multiple measurement bases.  This
bench quantifies that: spatial subset reduction on each model, plus a
budgeted VQE run showing the temporal economics.

Ported to the declarative catalog (entry ``ext_spin_models``): the spin
chains are declarative ``{"model": ...}`` workloads and the noise-free
pre-tune is the ``{"kind": "ideal_vqe"}`` warm start; rows are
byte-identical to the pre-port output.
"""

from conftest import print_table

from repro.sweeps import ResultStore, get_entry, run_entry, select

ENTRY = "ext_spin_models"
_STATE: dict = {}


def _run(benchmark, tmp_path_factory):
    if not _STATE:
        store = ResultStore(tmp_path_factory.mktemp(ENTRY) / "store.jsonl")
        entry = get_entry(ENTRY)
        outcome = benchmark.pedantic(
            lambda: run_entry(entry, store), iterations=1, rounds=1
        )
        _STATE["outcome"] = outcome
        _STATE["tables"] = outcome.tables()
        assert run_entry(entry, store).executed == []
    else:
        benchmark.pedantic(lambda: _STATE["outcome"], iterations=1,
                           rounds=1)
    return _STATE


def test_ext_spin_model_spatial_reduction(benchmark, tmp_path_factory):
    state = _run(benchmark, tmp_path_factory)
    table = state["tables"][0]
    print_table(table.title, table.headers, table.rows)
    rows = {
        r["point"]["workload"]["model"]: r["result"]
        for r in select(state["outcome"].records, point__task="structure")
    }
    for model, r in rows.items():
        assert r["varsaw"] < r["jigsaw"], model
    # The multi-basis models (Heisenberg spans X/Y/Z) show the strongest
    # redundancy, as Section 7.3 predicts.
    heis = rows["heisenberg"]
    assert heis["jigsaw"] / heis["varsaw"] > 2


def test_ext_spin_model_temporal_economics(benchmark, tmp_path_factory):
    state = _run(benchmark, tmp_path_factory)
    table = state["tables"][1]
    print_table(table.title, table.headers, table.rows)
    for model in ("tfim", "heisenberg", "xy"):
        runs = {
            r["point"]["scheme"]: r["result"]
            for r in select(
                state["outcome"].records, point__task="tuning",
                point__workload__model=model,
            )
        }
        sparse = runs["varsaw_max_sparsity"]
        dense = runs["varsaw_no_sparsity"]
        assert sparse["iterations"] > 1.3 * dense["iterations"], model
        assert sparse["energy"] <= dense["energy"] + 0.4, model
