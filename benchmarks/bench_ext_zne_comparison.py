"""Extension (§6.8 spirit): VarSaw vs / with zero-noise extrapolation.

The paper stacks VarSaw with IBM's MBM (Fig. 18) and cites ZNE (its
Ref. [28]) as the other mainstream VQA mitigation.  This bench compares,
at near-optimal parameters:

* the noisy baseline,
* baseline + ZNE (Richardson over a 1x/1.5x/2x noise ladder),
* VarSaw (no sparsity, so one evaluation suffices),
* VarSaw + ZNE stacked.

Expected shape: both techniques beat the baseline; stacking is at least
as good as either alone (they target different error structure: ZNE the
aggregate bias, VarSaw the measurement channel specifically).
"""

from conftest import fmt, print_table

from repro.analysis import energy_at_params, optimal_parameters, scaled
from repro.mitigation import zne_energy
from repro.noise import ibmq_mumbai_like
from repro.workloads import make_workload

SCALES = (1.0, 1.5, 2.0)


def test_ext_zne_comparison(benchmark):
    workload = make_workload(scaled("H2-4", "CH4-6"))
    shots = scaled(30_000, 60_000)
    device = ibmq_mumbai_like(scale=2.0)

    def experiment():
        params = optimal_parameters(workload, iterations=300)
        ideal = energy_at_params("ideal", workload, params)
        baseline = energy_at_params(
            "baseline", workload, params, device=device, shots=shots
        )
        zne_base, _ = zne_energy(
            workload, params, kind="baseline",
            scales=SCALES, shots=shots, seed=0, base_device=device,
        )
        varsaw = energy_at_params(
            "varsaw_no_sparsity", workload, params,
            device=device, shots=shots,
        )
        zne_varsaw, _ = zne_energy(
            workload, params, kind="varsaw_no_sparsity",
            scales=SCALES, shots=shots, seed=0, base_device=device,
        )
        return {
            "ideal": ideal,
            "baseline": baseline,
            "baseline+ZNE": zne_base,
            "varsaw": varsaw,
            "varsaw+ZNE": zne_varsaw,
        }

    results = benchmark.pedantic(experiment, iterations=1, rounds=1)
    ideal = results.pop("ideal")
    print_table(
        f"Extension: ZNE vs VarSaw on {workload.key} "
        f"(ideal@params {ideal:.3f})",
        ["scheme", "energy", "|error|"],
        [
            [name, fmt(value, 3), fmt(abs(value - ideal), 4)]
            for name, value in results.items()
        ],
    )
    errors = {k: abs(v - ideal) for k, v in results.items()}
    # Both mitigations individually beat the raw baseline.
    assert errors["baseline+ZNE"] < errors["baseline"]
    assert errors["varsaw"] < errors["baseline"]
    # The stack also beats the raw baseline.  (It is NOT always better
    # than VarSaw alone: when VarSaw saturates the measurement error,
    # ZNE's extrapolation only amplifies residual shot noise — mirroring
    # Fig. 18's 'negligible for LiH' observation for the MBM stack.)
    assert errors["varsaw+ZNE"] < errors["baseline"]
    # Mitigation overall removes most of the noise-induced error here.
    assert min(errors.values()) < 0.5 * errors["baseline"]
