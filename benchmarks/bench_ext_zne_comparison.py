"""Extension (§6.8 spirit): VarSaw vs / with zero-noise extrapolation.

The paper stacks VarSaw with IBM's MBM (Fig. 18) and cites ZNE (its
Ref. [28]) as the other mainstream VQA mitigation.  This bench compares,
at near-optimal parameters:

* the noisy baseline,
* baseline + ZNE (Richardson over a 1x/1.5x/2x noise ladder),
* VarSaw (no sparsity, so one evaluation suffices),
* VarSaw + ZNE stacked.

Expected shape: both techniques beat the baseline; stacking is at least
as good as either alone (they target different error structure: ZNE the
aggregate bias, VarSaw the measurement channel specifically).

Ported to the declarative catalog (entry ``ext_zne_comparison``):
``energy`` / ``zne`` points; rows are byte-identical to the pre-port
output.
"""

from conftest import print_tables

from repro.sweeps import ResultStore, get_entry, run_entry
from repro.sweeps.catalog import zne_energies


def test_ext_zne_comparison(benchmark, tmp_path):
    entry = get_entry("ext_zne_comparison")
    store = ResultStore(tmp_path / "zne.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    energies = zne_energies(outcome.records)
    ideal = energies.pop("ideal")
    errors = {k: abs(v - ideal) for k, v in energies.items()}
    # Both mitigations individually beat the raw baseline.
    assert errors["baseline+ZNE"] < errors["baseline"]
    assert errors["varsaw"] < errors["baseline"]
    # The stack also beats the raw baseline.  (It is NOT always better
    # than VarSaw alone: when VarSaw saturates the measurement error,
    # ZNE's extrapolation only amplifies residual shot noise — mirroring
    # Fig. 18's 'negligible for LiH' observation for the MBM stack.)
    assert errors["varsaw+ZNE"] < errors["baseline"]
    # Mitigation overall removes most of the noise-induced error here.
    assert min(errors.values()) < 0.5 * errors["baseline"]
