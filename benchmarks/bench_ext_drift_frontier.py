"""Extension: re-calibration policies under calibration drift.

The paper's temporal scheduling assumes piecewise-static noise; this
frontier models readout/gate rates that *drift mid-run* (a step jump
after two drift epochs) and compares three re-calibration policies at
three drift magnitudes: ``static`` (Globals once, never again),
``oracle`` (re-calibrates exactly when the true noise moved — an
upper bound no real system has), and ``online`` (the
``drift_adaptive`` estimator: probe circuits + CUSUM detection, costs
on the same ledger).

Catalog entry ``ext_drift_frontier``; the zero-drift column doubles as
a false-alarm check — the online detector must stay silent there.
"""

from conftest import print_tables

from repro.sweeps import ResultStore, get_entry, run_entry


def test_drift_policy_frontier(benchmark, tmp_path):
    entry = get_entry("ext_drift_frontier")
    store = ResultStore(tmp_path / "drift.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    by = {}
    for record in outcome.records:
        options = record["point"]["options"]
        by[(options["magnitude"], options["policy"])] = record["result"]

    # Detection: the online policy re-calibrates iff there is drift —
    # no false alarms at zero drift, at least one alarm per step.
    for policy in ("static", "oracle", "online"):
        assert by[(0.0, policy)]["recalibrations"] == 0
    for magnitude in (1.0, 2.0):
        assert by[(magnitude, "online")]["recalibrations"] > 0
        # Static scheduling has no detector at all.
        assert by[(magnitude, "static")]["recalibrations"] == 0

    # Cost ordering at every magnitude: static executes the fewest
    # circuits, the oracle (fresh Globals every epoch) the most, and
    # the online policy sits between — probes are cheaper than
    # paranoid re-calibration.
    for magnitude in (0.0, 1.0, 2.0):
        static = by[(magnitude, "static")]["circuits"]
        online = by[(magnitude, "online")]["circuits"]
        oracle = by[(magnitude, "oracle")]["circuits"]
        assert static < online < oracle

    # Drift hurts every policy: heavier drift, larger mean error.
    for policy in ("static", "oracle", "online"):
        assert (
            by[(2.0, policy)]["mean_error"]
            > by[(0.0, policy)]["mean_error"]
        )
