"""Fig. 8: circuits executed per VQA iteration vs qubit count.

Regenerates every curve: Traditional VQA (~Q^4), JigSaw+VQA (~Q^5), and
VarSaw at sparsities k = 1, 0.1, 0.01, 0.001 (~Q..Q^4).  Asserts the
orderings and the crossovers the figure shows.

Ported to the declarative catalog (entry ``fig8``): the analytic series
is one checkpointed ``cost_model`` point; rows are byte-identical to
the pre-port output.
"""

from conftest import print_tables

from repro.core import jigsaw_cost, traditional_cost, varsaw_cost
from repro.sweeps import ResultStore, get_entry, run_entry
from repro.sweeps.catalog import FIG8_QUBITS, FIG8_SPARSITIES


def test_fig8_cost_scaling(benchmark, tmp_path):
    entry = get_entry("fig8")
    store = ResultStore(tmp_path / "fig8.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    for q in FIG8_QUBITS:
        # JigSaw is the costliest curve everywhere.
        assert jigsaw_cost(q) >= traditional_cost(q)
        # Sparsity strictly orders the VarSaw family.
        costs = [varsaw_cost(q, k) for k in FIG8_SPARSITIES]
        assert costs == sorted(costs, reverse=True)
    # VarSaw k=1 overlaps Traditional at scale (the figure's overlap).
    assert varsaw_cost(1000, 1.0) / traditional_cost(1000) < 1.01
    # VarSaw is at least O(Q) below JigSaw.
    assert jigsaw_cost(1000) / varsaw_cost(1000, 1.0) > 500
    # High sparsity beats even the baseline (Section 3.3).
    assert varsaw_cost(100, 0.001) < traditional_cost(100)
    # Asymptotic slopes on the log-log plot.
    slope = (
        (jigsaw_cost(1000) / jigsaw_cost(500)) ** (1 / 1)  # ratio at 2x Q
    )
    assert 2**5 * 0.8 < slope < 2**5 * 1.2  # ~Q^5
    slope_trad = traditional_cost(1000) / traditional_cost(500)
    assert abs(slope_trad - 2**4) < 0.5  # ~Q^4
