"""Fig. 16: VarSaw's temporal optimization on 'real devices' (TFIM-5).

The paper runs a 5-qubit, 3-term TFIM VQE on IBM Lagos and Jakarta.
Hardware is substituted with the Lagos/Jakarta-like noise presets
(documented in DESIGN.md); the experiment itself is identical: VarSaw with
Global sparsity vs VarSaw without, same circuit budget.  Paper findings:
sparse VarSaw completes ~4x the iterations and improves the objective
1.5-3x.
"""

from conftest import fmt, print_table

from repro.analysis import fixed_budget_runs, scaled
from repro.ansatz import EfficientSU2
from repro.hamiltonian import ground_state_energy, paper_tfim
from repro.noise import ibm_jakarta_like, ibm_lagos_like
from repro.workloads import Workload

KINDS = ("varsaw_no_sparsity", "varsaw_max_sparsity")


def tfim_workload(device) -> Workload:
    ham = paper_tfim()
    return Workload(
        key="TFIM-5x3",
        hamiltonian=ham,
        ansatz=EfficientSU2(5, reps=2, entanglement="full"),
        device=device,
        ideal_energy=ground_state_energy(ham),
    )


def test_fig16_tfim_on_device_models(benchmark):
    budget = scaled(6_000, 60_000)
    shots = scaled(256, 1024)
    devices = {
        "lagos": ibm_lagos_like(scale=2.0),
        "jakarta": ibm_jakarta_like(scale=2.0),
    }

    def experiment():
        out = {}
        for name, device in devices.items():
            workload = tfim_workload(device)
            out[name] = (
                workload,
                fixed_budget_runs(
                    KINDS,
                    workload,
                    circuit_budget=budget,
                    shots=shots,
                    seed=16,
                ),
            )
        return out

    results = benchmark.pedantic(experiment, iterations=1, rounds=1)
    rows = []
    for name, (workload, runs) in results.items():
        for kind, run in runs.items():
            rows.append(
                [name, kind, fmt(run.energy), run.iterations,
                 run.result.circuits_executed]
            )
    ideal = next(iter(results.values()))[0].ideal_energy
    print_table(
        f"Fig. 16: TFIM-5 (3 Pauli terms), ideal = {ideal:.3f}, "
        f"budget = {budget} circuits",
        ["device", "scheme", "energy", "iterations", "circuits"],
        rows,
    )

    for name, (workload, runs) in results.items():
        sparse = runs["varsaw_max_sparsity"]
        dense = runs["varsaw_no_sparsity"]
        # Sparse VarSaw completes several times the iterations (paper: ~4x).
        assert sparse.iterations > 1.5 * dense.iterations, name
        # And its objective is at least competitive.
        assert sparse.energy <= dense.energy + 0.3, name
