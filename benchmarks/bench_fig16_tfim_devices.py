"""Fig. 16: VarSaw's temporal optimization on 'real devices' (TFIM-5).

The paper runs a 5-qubit, 3-term TFIM VQE on IBM Lagos and Jakarta.
Hardware is substituted with the Lagos/Jakarta-like noise presets; the
experiment itself is identical: VarSaw with Global sparsity vs VarSaw
without, same circuit budget.  Paper findings: sparse VarSaw completes
~4x the iterations and improves the objective 1.5-3x.

Ported to the declarative catalog (entry ``fig16``): the paper's TFIM is
the ``{"named": "paper_tfim"}`` workload, the devices are grid cells;
rows are byte-identical to the pre-port output.
"""

from conftest import print_tables

from repro.sweeps import ResultStore, get_entry, run_entry, select

KINDS = ("varsaw_no_sparsity", "varsaw_max_sparsity")
DEVICES = {"lagos": "ibm_lagos_like", "jakarta": "ibm_jakarta_like"}


def test_fig16_tfim_on_device_models(benchmark, tmp_path):
    entry = get_entry("fig16")
    store = ResultStore(tmp_path / "fig16.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    for name, preset in DEVICES.items():
        records = select(
            outcome.records, point__device__preset=preset
        )
        runs = {r["point"]["scheme"]: r["result"] for r in records}
        sparse = runs["varsaw_max_sparsity"]
        dense = runs["varsaw_no_sparsity"]
        # Sparse VarSaw completes several times the iterations (paper: ~4x).
        assert sparse["iterations"] > 1.5 * dense["iterations"], name
        # And its objective is at least competitive.
        assert sparse["energy"] <= dense["energy"] + 0.3, name
