"""Fig. 12: Pauli-term reduction in measurement subsets, VarSaw vs JigSaw.

For every Table 2 molecule, prints JigSaw and VarSaw subset counts
relative to the baseline Pauli circuits (orange columns) and the
VarSaw:JigSaw reduction ratio (green line).  Paper means: JigSaw ~5.5x the
baseline, VarSaw ~0.2x, reduction ~25x on average and >1000x for Cr2-34.

The 34-qubit Cr2 workload joins under ``REPRO_SCALE=full`` (it adds ~10s).

Ported to the declarative catalog (entry ``fig12``): one ``structure``
point per molecule through the checkpointed sweep runner; rows are
byte-identical to the pre-port output.
"""

from conftest import print_tables

from repro.analysis import geometric_mean
from repro.sweeps import ResultStore, get_entry, run_entry
from repro.sweeps.catalog import fig12_rows


def test_fig12_subset_reduction(benchmark, tmp_path):
    entry = get_entry("fig12")
    store = ResultStore(tmp_path / "fig12.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    rows = fig12_rows(outcome.records)
    mean_ratio = geometric_mean([r["ratio"] for r in rows])
    print(f"geometric-mean reduction ratio: {mean_ratio:.1f}x "
          "(paper mean ~25x)")

    by_key = {r["key"]: r for r in rows}
    # JigSaw's relative overhead grows with qubit count...
    assert by_key["H2-4"]["jig_rel"] < by_key["CH4-8"]["jig_rel"]
    assert by_key["CH4-8"]["jig_rel"] < by_key["C2H4-20"]["jig_rel"]
    # ...while VarSaw's relative subset count shrinks.
    assert by_key["CH4-6"]["var_rel"] > by_key["H6-10"]["var_rel"]
    assert by_key["H6-10"]["var_rel"] > by_key["C2H4-20"]["var_rel"]
    # Reduction ratio grows with size; the largest system exceeds 100x
    # (paper: >1000x for Cr2-34, which runs at full scale).
    ratios = [r["ratio"] for r in rows]
    assert ratios[-1] == max(ratios)
    assert by_key["C2H4-20"]["ratio"] > 100
    if "Cr2-34" in by_key:
        assert by_key["Cr2-34"]["ratio"] > 1000
    # Mean reduction is the paper's order of magnitude.
    assert mean_ratio > 10
