"""Fig. 12: Pauli-term reduction in measurement subsets, VarSaw vs JigSaw.

For every Table 2 molecule, prints JigSaw and VarSaw subset counts
relative to the baseline Pauli circuits (orange columns) and the
VarSaw:JigSaw reduction ratio (green line).  Paper means: JigSaw ~5.5x the
baseline, VarSaw ~0.2x, reduction ~25x on average and >1000x for Cr2-34.

The 34-qubit Cr2 workload joins under ``REPRO_SCALE=full`` (it adds ~10s).
"""

from conftest import fmt, print_table

from repro.analysis import geometric_mean, scaled
from repro.core import count_jigsaw_subsets, count_varsaw_subsets
from repro.hamiltonian import build_hamiltonian, molecule_keys

QUICK_KEYS = [k for k in molecule_keys() if k != "Cr2-34"]
FULL_KEYS = molecule_keys()


def test_fig12_subset_reduction(benchmark):
    keys = scaled(QUICK_KEYS, FULL_KEYS)

    def experiment():
        rows = []
        for key in keys:
            ham = build_hamiltonian(key)
            baseline = len(ham.measurement_groups())
            jig = count_jigsaw_subsets(ham, window=2)
            var = count_varsaw_subsets(ham, window=2)
            rows.append(
                {
                    "key": key,
                    "baseline": baseline,
                    "jigsaw": jig,
                    "varsaw": var,
                    "jig_rel": jig / baseline,
                    "var_rel": var / baseline,
                    "ratio": jig / var,
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        "Fig. 12: subsets relative to baseline Paulis",
        ["workload", "baseline", "JigSaw", "VarSaw",
         "JigSaw/base", "VarSaw/base", "JigSaw:VarSaw"],
        [
            [r["key"], r["baseline"], r["jigsaw"], r["varsaw"],
             fmt(r["jig_rel"]), fmt(r["var_rel"], 3), fmt(r["ratio"], 1)]
            for r in rows
        ],
    )
    mean_ratio = geometric_mean([r["ratio"] for r in rows])
    print(f"geometric-mean reduction ratio: {mean_ratio:.1f}x "
          "(paper mean ~25x)")

    by_key = {r["key"]: r for r in rows}
    # JigSaw's relative overhead grows with qubit count...
    assert by_key["H2-4"]["jig_rel"] < by_key["CH4-8"]["jig_rel"]
    assert by_key["CH4-8"]["jig_rel"] < by_key["C2H4-20"]["jig_rel"]
    # ...while VarSaw's relative subset count shrinks.
    assert by_key["CH4-6"]["var_rel"] > by_key["H6-10"]["var_rel"]
    assert by_key["H6-10"]["var_rel"] > by_key["C2H4-20"]["var_rel"]
    # Reduction ratio grows with size; the largest system exceeds 100x
    # (paper: >1000x for Cr2-34, which runs at full scale).
    ratios = [r["ratio"] for r in rows]
    assert ratios[-1] == max(ratios)
    assert by_key["C2H4-20"]["ratio"] > 100
    if "Cr2-34" in by_key:
        assert by_key["Cr2-34"]["ratio"] > 1000
    # Mean reduction is the paper's order of magnitude.
    assert mean_ratio > 10
