"""Extension (Section 7.3): selective mitigation — cost vs accuracy.

"There is potential to employ measurement error mitigation only in
specific phases of VQA and to only specific terms in the Hamiltonian."
This bench sweeps the term-selection mass fraction and reports the
accuracy/cost trade-off curve at fixed parameters, plus a phase-gated
tuning run.
"""

from conftest import fmt, print_table

import numpy as np

from repro.analysis import optimal_parameters, scaled
from repro.core import PhasePolicy, SelectiveVarSawEstimator, TermSelector
from repro.noise import SimulatorBackend, ibmq_mumbai_like
from repro.workloads import make_estimator, make_workload

MASS_FRACTIONS = (0.25, 0.5, 0.75, 1.0)


def test_ext_term_selective_tradeoff(benchmark):
    workload = make_workload("CH4-6")
    shots = scaled(2048, 8192)
    device = ibmq_mumbai_like(scale=2.0)

    def experiment():
        params = optimal_parameters(workload, iterations=300)
        ideal = make_estimator(
            "ideal", workload, SimulatorBackend(seed=0)
        ).evaluate(params)
        baseline_backend = SimulatorBackend(device, seed=0)
        baseline = make_estimator(
            "baseline", workload, baseline_backend, shots=shots
        ).evaluate(params)
        rows = []
        for fraction in MASS_FRACTIONS:
            backend = SimulatorBackend(device, seed=0)
            est = SelectiveVarSawEstimator(
                workload.hamiltonian,
                workload.ansatz,
                backend,
                shots=shots,
                global_mode="always",
                term_selector=TermSelector(fraction),
            )
            energy = est.evaluate(params)
            rows.append(
                {
                    "fraction": fraction,
                    "subsets": est.circuits_per_subset_pass,
                    "error": abs(energy - ideal),
                }
            )
        return ideal, baseline, rows

    ideal, baseline, rows = benchmark.pedantic(
        experiment, iterations=1, rounds=1
    )
    print_table(
        f"Extension: term-selective mitigation on CH4-6 "
        f"(ideal@params {ideal:.2f}, baseline error "
        f"{abs(baseline - ideal):.3f})",
        ["mass fraction", "subset circuits", "|error| vs ideal"],
        [
            [f"{r['fraction']:.2f}", r["subsets"], fmt(r["error"], 3)]
            for r in rows
        ],
    )
    # Subset cost grows with selected mass...
    costs = [r["subsets"] for r in rows]
    assert costs == sorted(costs)
    # ...full selection does at least as well as the unmitigated baseline
    # and partial selection lands in between.
    base_error = abs(baseline - ideal)
    assert rows[-1]["error"] < base_error
    assert rows[0]["subsets"] < rows[-1]["subsets"]


def test_ext_phase_selective_run(benchmark):
    """Mitigate only the tuning endgame: cheaper than always-on, more
    accurate at the end than never-on."""
    workload = make_workload(scaled("H2-4", "CH4-6"))
    shots = scaled(256, 1024)
    iterations = scaled(60, 600)
    device = ibmq_mumbai_like(scale=2.0)

    def experiment():
        from repro.optimizers import SPSA
        from repro.vqe import run_vqe

        params0 = optimal_parameters(workload, iterations=300)
        out = {}
        for label, policy in (
            ("always", None),
            ("endgame", PhasePolicy(2 * iterations, start_fraction=0.5)),
        ):
            backend = SimulatorBackend(device, seed=7)
            est = SelectiveVarSawEstimator(
                workload.hamiltonian,
                workload.ansatz,
                backend,
                shots=shots,
                phase_policy=policy,
            )
            result = run_vqe(
                est,
                optimizer=SPSA(a=0.3, seed=7),
                max_iterations=iterations,
                initial_params=params0,
                seed=7,
            )
            out[label] = {
                "energy": result.energy,
                "circuits": result.circuits_executed,
            }
        return out

    out = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        "Extension: phase-selective mitigation",
        ["policy", "final energy", "circuits"],
        [
            [label, fmt(v["energy"]), v["circuits"]]
            for label, v in out.items()
        ],
    )
    # Endgame-only mitigation is cheaper than always-on...
    assert out["endgame"]["circuits"] < out["always"]["circuits"]
    # ...at comparable accuracy.
    assert out["endgame"]["energy"] <= out["always"]["energy"] + 0.3
