"""Extension (Section 7.3): selective mitigation — cost vs accuracy.

"There is potential to employ measurement error mitigation only in
specific phases of VQA and to only specific terms in the Hamiltonian."
This bench sweeps the term-selection mass fraction and reports the
accuracy/cost trade-off curve at fixed parameters, plus a phase-gated
tuning run.

Ported to the declarative catalog (entry ``ext_selective_mitigation``):
``energy`` / ``term_selective`` / ``phase_selective`` points; rows are
byte-identical to the pre-port output.
"""

from conftest import print_table

from repro.sweeps import ResultStore, get_entry, run_entry, select

ENTRY = "ext_selective_mitigation"
_STATE: dict = {}


def _run(benchmark, tmp_path_factory):
    if not _STATE:
        store = ResultStore(tmp_path_factory.mktemp(ENTRY) / "store.jsonl")
        entry = get_entry(ENTRY)
        outcome = benchmark.pedantic(
            lambda: run_entry(entry, store), iterations=1, rounds=1
        )
        _STATE["outcome"] = outcome
        _STATE["tables"] = outcome.tables()
        assert run_entry(entry, store).executed == []
    else:
        benchmark.pedantic(lambda: _STATE["outcome"], iterations=1,
                           rounds=1)
    return _STATE


def test_ext_term_selective_tradeoff(benchmark, tmp_path_factory):
    state = _run(benchmark, tmp_path_factory)
    table = state["tables"][0]
    print_table(table.title, table.headers, table.rows)

    records = state["outcome"].records
    ideal = select(
        records, point__task="energy", point__scheme="ideal"
    )[0]["result"]["energy"]
    baseline = select(
        records, point__task="energy", point__scheme="baseline"
    )[0]["result"]["energy"]
    rows = [
        r["result"]
        for r in select(records, point__task="term_selective")
    ]
    # Subset cost grows with selected mass...
    costs = [r["subsets"] for r in rows]
    assert costs == sorted(costs)
    # ...full selection does at least as well as the unmitigated baseline
    # and partial selection lands in between.
    base_error = abs(baseline - ideal)
    assert rows[-1]["error"] < base_error
    assert rows[0]["subsets"] < rows[-1]["subsets"]


def test_ext_phase_selective_run(benchmark, tmp_path_factory):
    """Mitigate only the tuning endgame: cheaper than always-on, more
    accurate at the end than never-on."""
    state = _run(benchmark, tmp_path_factory)
    table = state["tables"][1]
    print_table(table.title, table.headers, table.rows)

    out = {
        r["point"]["options"]["policy"]: r["result"]
        for r in select(
            state["outcome"].records, point__task="phase_selective"
        )
    }
    # Endgame-only mitigation is cheaper than always-on...
    assert out["endgame"]["circuits"] < out["always"]["circuits"]
    # ...at comparable accuracy.
    assert out["endgame"]["energy"] <= out["always"]["energy"] + 0.3
