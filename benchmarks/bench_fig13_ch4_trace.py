"""Fig. 13: CH4 VQE energy traces under a fixed circuit budget.

Four scenarios run the same number of circuits: noisy Baseline, JigSaw,
VarSaw, and the noise-free Ideal.  The paper's shape: VarSaw reaches the
lowest (best) energy of the noisy schemes — close to Ideal — while JigSaw,
throttled by its per-iteration cost, completes only a fraction of the
iterations.

Scale note: at quick scale the runs warm-start from a short ideal tune so
the budgeted phase probes each scheme's *achievable accuracy* (the
figure's message) rather than SPSA's early transient; ``REPRO_SCALE=full``
runs the paper's cold-start 2000-iteration regime.

Ported to the declarative catalog (entry ``fig13``): the three budgeted
schemes are grid points and the Ideal trace is the entry's *followup*
point (its iteration count is data-dependent — the max over the noisy
runs).  Rows are byte-identical to the pre-port output.
"""

from conftest import print_tables

from repro.sweeps import ResultStore, get_entry, run_entry, select


def test_fig13_ch4_energy_trace(benchmark, tmp_path):
    entry = get_entry("fig13")
    store = ResultStore(tmp_path / "fig13.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())

    runs = {
        r["point"]["scheme"]: r["result"] for r in outcome.records
    }
    trace = select(
        outcome.records, point__scheme="varsaw"
    )[0]["result"]["energy_history"]
    step = max(1, len(trace) // 8)
    print(
        "VarSaw best-so-far trace (iter:energy):",
        ", ".join(f"{i}:{trace[i]:.2f}" for i in range(0, len(trace), step)),
    )

    # The grid (followup included) is fully checkpointed: a re-run
    # executes nothing.
    assert run_entry(entry, store).executed == []

    # JigSaw completes the fewest iterations (its per-iteration cost is
    # ~Qx higher); VarSaw completes the most of the mitigated schemes.
    assert runs["varsaw"]["iterations"] > 3 * runs["jigsaw"]["iterations"]
    assert runs["baseline"]["iterations"] > runs["jigsaw"]["iterations"]
    # VarSaw achieves the best energy among the noisy schemes.
    noisy_best = min(
        runs[k]["energy"] for k in ("baseline", "jigsaw")
    )
    assert runs["varsaw"]["energy"] <= noisy_best + 0.05
    # And the ideal is the floor.
    assert runs["ideal"]["energy"] <= runs["varsaw"]["energy"] + 1e-9
