"""Fig. 13: CH4 VQE energy traces under a fixed circuit budget.

Four scenarios run the same number of circuits: noisy Baseline, JigSaw,
VarSaw, and the noise-free Ideal.  The paper's shape: VarSaw reaches the
lowest (best) energy of the noisy schemes — close to Ideal — while JigSaw,
throttled by its per-iteration cost, completes only a fraction of the
iterations.

Scale note: at quick scale the runs warm-start from a short ideal tune so
the budgeted phase probes each scheme's *achievable accuracy* (the
figure's message) rather than SPSA's early transient; ``REPRO_SCALE=full``
runs the paper's cold-start 2000-iteration regime.
"""

from conftest import fmt, print_table

from repro.analysis import (
    fixed_budget_runs,
    optimal_parameters,
    run_tuning,
    scaled,
)
from repro.noise import SimulatorBackend, ibmq_mumbai_like
from repro.optimizers import SPSA
from repro.vqe import run_vqe
from repro.workloads import make_estimator, make_workload

KINDS = ("baseline", "jigsaw", "varsaw")


def test_fig13_ch4_energy_trace(benchmark):
    workload = make_workload("CH4-6")
    budget = scaled(30_000, 600_000)
    shots = scaled(256, 1024)
    device = ibmq_mumbai_like(scale=2.0)
    warm_start = scaled(True, False)

    def experiment():
        initial = (
            optimal_parameters(workload, iterations=300)
            if warm_start
            else None
        )
        runs = {}
        for kind in KINDS:
            backend = SimulatorBackend(device, seed=13)
            est = make_estimator(kind, workload, backend, shots=shots)
            result = run_vqe(
                est,
                optimizer=SPSA(a=0.3, seed=13),
                max_iterations=100_000,
                circuit_budget=budget,
                initial_params=initial,
                seed=13,
            )
            runs[kind] = result
        max_iters = max(r.iterations for r in runs.values())
        ideal_backend = SimulatorBackend(seed=13)
        ideal_est = make_estimator("ideal", workload, ideal_backend)
        runs["ideal"] = run_vqe(
            ideal_est,
            optimizer=SPSA(a=0.3, seed=13),
            max_iterations=max_iters,
            initial_params=initial,
            seed=13,
        )
        return runs

    runs = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        f"Fig. 13: {workload.key}, fixed budget of {budget} circuits "
        f"(ideal ground energy {workload.ideal_energy:.2f})",
        ["scheme", "final energy", "iterations", "circuits used"],
        [
            [kind, fmt(r.energy), r.iterations, r.circuits_executed]
            for kind, r in runs.items()
        ],
    )
    trace = runs["varsaw"].energy_history
    step = max(1, len(trace) // 8)
    print(
        "VarSaw best-so-far trace (iter:energy):",
        ", ".join(f"{i}:{trace[i]:.2f}" for i in range(0, len(trace), step)),
    )

    # JigSaw completes the fewest iterations (its per-iteration cost is
    # ~Qx higher); VarSaw completes the most of the mitigated schemes.
    assert runs["varsaw"].iterations > 3 * runs["jigsaw"].iterations
    assert runs["baseline"].iterations > runs["jigsaw"].iterations
    # VarSaw achieves the best energy among the noisy schemes.
    noisy_best = min(runs[k].energy for k in ("baseline", "jigsaw"))
    assert runs["varsaw"].energy <= noisy_best + 0.05
    # And the ideal is the floor.
    assert runs["ideal"].energy <= runs["varsaw"].energy + 1e-9
