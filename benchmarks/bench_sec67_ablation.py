"""Section 6.7: isolated effect of each VarSaw optimization.

The paper decomposes the cost win into the spatial and temporal parts:

* spatial vs JigSaw: ~5x fewer circuits on average (subsets only);
* temporal vs baseline: Globals ~1% of iterations -> >10x fewer circuits;
* both together: ~25x below JigSaw, ~10x below the baseline.

This bench computes all four per-iteration cost quantities from the real
workload structures plus a measured temporal run, then checks the stacking
arithmetic the paper walks through.

Ported to the declarative catalog (entry ``sec67``): per workload, one
``structure`` point (subset counts) and one ``tuning`` point (the
measured global fraction); rows are byte-identical to the pre-port
output.
"""

from conftest import print_tables

from repro.sweeps import ResultStore, get_entry, run_entry
from repro.sweeps.catalog import sec67_rows


def test_sec67_optimization_ablation(benchmark, tmp_path):
    entry = get_entry("sec67")
    store = ResultStore(tmp_path / "sec67.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    rows = sec67_rows(outcome.records)
    for r in rows:
        # Spatial alone already beats JigSaw substantially...
        assert r["spatial"] < 0.5 * r["jigsaw"], r["key"]
        # ...temporal stacks on top: full VarSaw under spatial-only...
        assert r["full"] < r["spatial"], r["key"]
        # ...and the paper's headline stack-up: full VarSaw is several
        # times below JigSaw and at worst on par with the baseline (the
        # "below baseline" margin widens with molecule size — see the
        # largest-workload check below).
        assert r["jigsaw"] / r["full"] > 4, r["key"]
        assert r["full"] < 1.1 * r["baseline"], r["key"]
        # Temporal-only (keep JigSaw's unreduced subsets, sparse globals)
        # is still far above full VarSaw — temporal optimization is only
        # really useful after spatial (the paper's Section 6.7 note).
        jig_subsets = r["jigsaw"] - r["baseline"]
        temporal_only = r["fraction"] * r["baseline"] + jig_subsets
        assert temporal_only > r["full"], r["key"]
    # Subsets shrink relative to the baseline as molecules grow, so the
    # largest workload in the sweep lands strictly below the baseline —
    # the >10x full-scale figure comes from the biggest systems.
    largest = max(rows, key=lambda r: r["baseline"])
    assert largest["full"] < largest["baseline"]
