"""Section 6.7: isolated effect of each VarSaw optimization.

The paper decomposes the cost win into the spatial and temporal parts:

* spatial vs JigSaw: ~5x fewer circuits on average (subsets only);
* temporal vs baseline: Globals ~1% of iterations -> >10x fewer circuits;
* both together: ~25x below JigSaw, ~10x below the baseline.

This bench computes all four per-iteration cost quantities from the real
workload structures plus a measured temporal run, then checks the stacking
arithmetic the paper walks through.
"""

from conftest import fmt, print_table

from repro.analysis import run_tuning, scaled
from repro.core import count_jigsaw_subsets, count_varsaw_subsets
from repro.hamiltonian import build_hamiltonian
from repro.noise import ibmq_mumbai_like
from repro.workloads import make_workload

QUICK_KEYS = ["CH4-6", "H2O-6"]
FULL_KEYS = ["LiH-6", "H2O-6", "CH4-6", "LiH-8", "H2O-8", "CH4-8"]


def test_sec67_optimization_ablation(benchmark):
    keys = scaled(QUICK_KEYS, FULL_KEYS)
    iterations = scaled(60, 500)
    shots = scaled(256, 1024)
    device = ibmq_mumbai_like(scale=2.0)

    def experiment():
        rows = []
        for key in keys:
            ham = build_hamiltonian(key)
            baseline = len(ham.measurement_groups())
            jig_subsets = count_jigsaw_subsets(ham)
            var_subsets = count_varsaw_subsets(ham)
            # Measure the adaptive scheduler's realized global fraction.
            workload = make_workload(key)
            run = run_tuning(
                "varsaw", workload, max_iterations=iterations,
                shots=shots, seed=67, device=device,
            )
            fraction = run.global_fraction
            # Per-iteration circuit costs of each configuration.
            cost_baseline = baseline
            cost_jigsaw = baseline + jig_subsets
            cost_spatial_only = baseline + var_subsets  # globals every iter
            cost_full = fraction * baseline + var_subsets
            rows.append(
                {
                    "key": key,
                    "baseline": cost_baseline,
                    "jigsaw": cost_jigsaw,
                    "spatial": cost_spatial_only,
                    "full": cost_full,
                    "fraction": fraction,
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        "Section 6.7: per-iteration circuit cost by configuration",
        ["workload", "baseline", "JigSaw", "VarSaw spatial-only",
         "VarSaw full", "global fraction", "full vs JigSaw", "full vs base"],
        [
            [r["key"], r["baseline"], r["jigsaw"], r["spatial"],
             fmt(r["full"], 1), fmt(r["fraction"], 3),
             fmt(r["jigsaw"] / r["full"], 1) + "x",
             fmt(r["baseline"] / r["full"], 1) + "x"]
            for r in rows
        ],
    )
    for r in rows:
        # Spatial alone already beats JigSaw substantially...
        assert r["spatial"] < 0.5 * r["jigsaw"], r["key"]
        # ...temporal stacks on top: full VarSaw under spatial-only...
        assert r["full"] < r["spatial"], r["key"]
        # ...and the paper's headline stack-up: full VarSaw is several
        # times below JigSaw and at worst on par with the baseline (the
        # "below baseline" margin widens with molecule size — see the
        # largest-workload check below).
        assert r["jigsaw"] / r["full"] > 4, r["key"]
        assert r["full"] < 1.1 * r["baseline"], r["key"]
        # Temporal-only (keep JigSaw's unreduced subsets, sparse globals)
        # is still far above full VarSaw — temporal optimization is only
        # really useful after spatial (the paper's Section 6.7 note).
        jig_subsets = r["jigsaw"] - r["baseline"]
        temporal_only = r["fraction"] * r["baseline"] + jig_subsets
        assert temporal_only > r["full"], r["key"]
    # Subsets shrink relative to the baseline as molecules grow, so the
    # largest workload in the sweep lands strictly below the baseline —
    # the >10x full-scale figure comes from the biggest systems.
    largest = max(rows, key=lambda r: r["baseline"])
    assert largest["full"] < largest["baseline"]
