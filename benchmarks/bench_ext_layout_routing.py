"""Extension: layout & routing costs behind the paper's premises.

Two claims the paper takes from its Qiskit substrate are made measurable
here:

1. Subset circuits win partly by *mapping measured qubits to the best
   readout lines* (Section 1, benefit a).  We quantify the readout-error
   gap between best-qubit placement and default placement on the
   Mumbai-like device.
2. Ansatz entanglement structure (Table 3's full / linear / circular /
   asymmetric sweep) has very different *routing* costs on a real
   heavy-hex topology: full entanglement pays a large SWAP overhead that
   linear entanglement avoids entirely.

Ported to the declarative catalog (entry ``ext_layout_routing``):
``readout_placement`` / ``routing`` points; rows are byte-identical to
the pre-port output.
"""

from conftest import print_table

from repro.sweeps import ResultStore, get_entry, run_entry, select

ENTRY = "ext_layout_routing"
_STATE: dict = {}


def _run(benchmark, tmp_path_factory):
    if not _STATE:
        store = ResultStore(tmp_path_factory.mktemp(ENTRY) / "store.jsonl")
        entry = get_entry(ENTRY)
        outcome = benchmark.pedantic(
            lambda: run_entry(entry, store), iterations=1, rounds=1
        )
        _STATE["outcome"] = outcome
        _STATE["tables"] = outcome.tables()
        assert run_entry(entry, store).executed == []
    else:
        benchmark.pedantic(lambda: _STATE["outcome"], iterations=1,
                           rounds=1)
    return _STATE


def test_subset_placement_readout_gain(benchmark, tmp_path_factory):
    """Best-qubit measurement placement vs default placement."""
    state = _run(benchmark, tmp_path_factory)
    table = state["tables"][0]
    print_table(table.title, table.headers, table.rows)
    rows = [
        record["result"]
        for record in select(
            state["outcome"].records, point__task="readout_placement"
        )
    ]
    for r in rows:
        assert r["best"] <= r["default"]
    # best-k mean error is monotone nondecreasing in the window size:
    # wider subsets are forced onto progressively worse readout lines.
    best_means = [r["best"] for r in rows]
    assert best_means == sorted(best_means)


def test_ansatz_routing_overhead(benchmark, tmp_path_factory):
    """SWAP cost of Table 3's ansatz types on the heavy-hex topology."""
    state = _run(benchmark, tmp_path_factory)
    table = state["tables"][1]
    print_table(table.title, table.headers, table.rows)
    rows = [
        record["result"]
        for record in select(
            state["outcome"].records, point__task="routing"
        )
    ]
    by_type = {r["entanglement"]: r for r in rows}
    # Linear entanglement routes SWAP-free on a line-containing topology;
    # full entanglement cannot.
    assert by_type["linear"]["swaps"] == 0
    assert by_type["full"]["swaps"] > 0
    # Full entanglement pays the largest native gate bill.
    assert by_type["full"]["native_cx"] == max(
        r["native_cx"] for r in rows
    )
