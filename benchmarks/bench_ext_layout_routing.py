"""Extension: layout & routing costs behind the paper's premises.

Two claims the paper takes from its Qiskit substrate are made measurable
here:

1. Subset circuits win partly by *mapping measured qubits to the best
   readout lines* (Section 1, benefit a).  We quantify the readout-error
   gap between best-qubit placement and default placement on the
   Mumbai-like device.
2. Ansatz entanglement structure (Table 3's full / linear / circular /
   asymmetric sweep) has very different *routing* costs on a real
   heavy-hex topology: full entanglement pays a large SWAP overhead that
   linear entanglement avoids entirely.
"""

import numpy as np
from conftest import fmt, print_table, run_once

from repro.ansatz import ENTANGLEMENT_TYPES, EfficientSU2
from repro.layout import (
    noise_aware_layout,
    noise_aware_path_layout,
    route_circuit,
)
from repro.noise import ibmq_mumbai_like


def test_subset_placement_readout_gain(benchmark):
    """Best-qubit measurement placement vs default placement."""

    def experiment():
        device = ibmq_mumbai_like()
        readout = device.readout
        rows = []
        for window in (2, 3, 4):
            default = [
                readout.qubit_errors[q].mean_error for q in range(window)
            ]
            best = [
                readout.qubit_errors[q].mean_error
                for q in readout.best_qubits(window)
            ]
            rows.append(
                {
                    "window": window,
                    "default": float(np.mean(default)),
                    "best": float(np.mean(best)),
                    "gain": float(np.mean(default)) / float(np.mean(best)),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Extension: subset measurement placement on ibmq_mumbai_like "
        "(mean readout error of measured window)",
        ["window", "default qubits", "best qubits", "gain"],
        [
            [
                r["window"],
                fmt(r["default"], 4),
                fmt(r["best"], 4),
                f"{r['gain']:.1f}x",
            ]
            for r in rows
        ],
    )
    for r in rows:
        assert r["best"] <= r["default"]
    # best-k mean error is monotone nondecreasing in the window size:
    # wider subsets are forced onto progressively worse readout lines.
    best_means = [r["best"] for r in rows]
    assert best_means == sorted(best_means)


def test_ansatz_routing_overhead(benchmark):
    """SWAP cost of Table 3's ansatz types on the heavy-hex topology."""

    def experiment():
        device = ibmq_mumbai_like()
        coupling = device.coupling_map
        rows = []
        for entanglement in ENTANGLEMENT_TYPES:
            ansatz = EfficientSU2(6, reps=2, entanglement=entanglement)
            bound = ansatz.bind(np.zeros(ansatz.num_parameters))
            # Ladder-shaped entanglement wants consecutive logicals on a
            # physical path; dense entanglement wants a compact region.
            if entanglement == "full":
                layout = noise_aware_layout(6, coupling, device.readout)
            else:
                layout = noise_aware_path_layout(
                    6, coupling, device.readout
                )
            routed = route_circuit(bound, coupling, layout)
            rows.append(
                {
                    "entanglement": entanglement,
                    "logical_cx": bound.num_two_qubit_gates,
                    "swaps": routed.swaps_inserted,
                    "native_cx": bound.num_two_qubit_gates
                    + routed.overhead,
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Extension: EfficientSU2(6, p=2) routing cost on heavy-hex "
        "(one more reason hardware-efficient = sparse entanglement)",
        ["entanglement", "logical CX", "SWAPs", "native CX"],
        [
            [
                r["entanglement"],
                r["logical_cx"],
                r["swaps"],
                r["native_cx"],
            ]
            for r in rows
        ],
    )
    by_type = {r["entanglement"]: r for r in rows}
    # Linear entanglement routes SWAP-free on a line-containing topology;
    # full entanglement cannot.
    assert by_type["linear"]["swaps"] == 0
    assert by_type["full"]["swaps"] > 0
    # Full entanglement pays the largest native gate bill.
    assert by_type["full"]["native_cx"] == max(
        r["native_cx"] for r in rows
    )
