"""Extension: execution-engine throughput on a repeated-parameter trace.

The estimators now submit whole-iteration batches to
:mod:`repro.engine`, which memoizes exact noisy PMFs and deduplicates
structurally identical circuits.  This bench replays one H2-4 VQE
parameter trace — with the parameter revisits that real tuning produces
(line searches, SPSA re-evaluations, multi-scheme comparisons over the
same trace) — through two engine configurations:

* **direct** — caches disabled: every unique submitted circuit is
  simulated every time (intra-batch dedup of structurally identical
  specs stays on — it is semantically invisible and always active);
* **engine** — default bounded cache: repeated circuits are served from
  the memo and only sampled.

Both paths charge identical circuit/shot ledgers (the paper's cost
metric counts submissions, not simulations) and, with the default
shared-RNG discipline, produce bit-identical energies.
"""

from __future__ import annotations

import time

from conftest import fmt, print_table, run_once

import numpy as np

from repro.engine import EngineConfig, ExecutionEngine
from repro.noise import SimulatorBackend, ibmq_mumbai_like
from repro.vqe import initial_parameters
from repro.workloads import make_estimator, make_workload

#: Distinct parameter vectors in the trace, and times each is revisited.
TRACE_POINTS = 12
TRACE_REPEATS = 3


def h2_trace(num_parameters: int) -> list[np.ndarray]:
    """A repeated-parameter VQE trace: a walk revisited REPEATS times."""
    rng = np.random.default_rng(21)
    theta = initial_parameters(num_parameters, seed=21)
    points = []
    for _ in range(TRACE_POINTS):
        theta = theta + rng.normal(0.0, 0.05, size=num_parameters)
        points.append(theta.copy())
    return points * TRACE_REPEATS


def replay(config: EngineConfig) -> dict:
    workload = make_workload("H2-4")
    device = ibmq_mumbai_like(scale=2.0)
    backend = SimulatorBackend(device, seed=7)
    engine = ExecutionEngine(backend, config)
    estimator = make_estimator(
        "varsaw", workload, backend, shots=256, engine=engine
    )
    trace = h2_trace(workload.ansatz.num_parameters)
    start = time.perf_counter()
    energies = [estimator.evaluate(theta) for theta in trace]
    elapsed = time.perf_counter() - start
    stats = engine.stats
    engine.close()
    return {
        "energies": energies,
        "seconds": elapsed,
        "circuits": backend.circuits_run,
        "shots": backend.shots_run,
        "simulations": stats.simulations,
        "hit_rate": stats.pmf_cache.hit_rate,
        "dedup": stats.dedup_coalesced,
    }


def test_engine_throughput_on_repeated_trace(benchmark):
    def experiment():
        direct = replay(EngineConfig(cache_size=0, state_cache_size=0))
        engine = replay(EngineConfig())
        return {"direct": direct, "engine": engine}

    stats = run_once(benchmark, experiment)
    direct, engine = stats["direct"], stats["engine"]
    speedup = direct["seconds"] / engine["seconds"]
    print_table(
        "Extension: engine-batched vs direct execution "
        f"(H2-4 VarSaw trace, {TRACE_POINTS} points x {TRACE_REPEATS} visits)",
        [
            "path",
            "wall-clock (s)",
            "circuits",
            "simulations",
            "cache hit rate",
            "speedup",
        ],
        [
            [
                "direct (no cache)",
                fmt(direct["seconds"], 3),
                direct["circuits"],
                direct["simulations"],
                "-",
                "1.00x",
            ],
            [
                "engine (cached)",
                fmt(engine["seconds"], 3),
                engine["circuits"],
                engine["simulations"],
                f"{engine['hit_rate']:.1%}",
                f"{speedup:.2f}x",
            ],
        ],
    )
    # The paper's cost metric is untouched: identical ledgers...
    assert engine["circuits"] == direct["circuits"]
    assert engine["shots"] == direct["shots"]
    # ...and identical energies (shared-RNG sampling order is preserved).
    assert engine["energies"] == direct["energies"]
    # The cache absorbs the revisits: fewer simulations than submissions,
    # a positive hit rate, and (on any reasonable machine) a wall-clock win.
    assert engine["hit_rate"] > 0.0
    assert engine["simulations"] < engine["circuits"]
    assert engine["simulations"] < direct["simulations"]


def test_worker_scaling_is_deterministic(benchmark):
    """workers=4 must reproduce workers=1 bit-for-bit on the same trace."""

    def experiment():
        results = {}
        for workers in (1, 4):
            workload = make_workload("H2-4")
            backend = SimulatorBackend(ibmq_mumbai_like(scale=2.0), seed=7)
            engine = ExecutionEngine(backend, EngineConfig(workers=workers))
            estimator = make_estimator(
                "varsaw", workload, backend, shots=256, engine=engine
            )
            trace = h2_trace(workload.ansatz.num_parameters)[:8]
            results[workers] = (
                [estimator.evaluate(theta) for theta in trace],
                backend.circuits_run,
            )
            engine.close()
        return results

    results = run_once(benchmark, experiment)
    assert results[1] == results[4]
