"""Extension: execution-engine throughput on a repeated-parameter trace.

The estimators submit whole-iteration batches to :mod:`repro.engine`,
which memoizes exact noisy PMFs and deduplicates structurally identical
circuits.  This bench replays one H2-4 VQE parameter trace — with the
parameter revisits that real tuning produces — through two engine
configurations (caches disabled vs the default bounded cache) and
asserts identical ledgers/energies with fewer simulations.

Ported to the declarative catalog (entry ``ext_engine_throughput``):
each replay is one ``engine_replay`` point.  The wall-clock column is
inherently volatile, so the golden-parity suite compares this entry
under the catalog's normalizer (timing cells masked).
"""

from conftest import print_table, record_entry_stat

from repro.sweeps import ResultStore, get_entry, run_entry, select

ENTRY = "ext_engine_throughput"
_STATE: dict = {}


def _run(benchmark, tmp_path_factory):
    if not _STATE:
        store = ResultStore(tmp_path_factory.mktemp(ENTRY) / "store.jsonl")
        entry = get_entry(ENTRY)
        outcome = benchmark.pedantic(
            lambda: run_entry(entry, store), iterations=1, rounds=1
        )
        _STATE["outcome"] = outcome
        _STATE["tables"] = outcome.tables()
        assert run_entry(entry, store).executed == []
    else:
        benchmark.pedantic(lambda: _STATE["outcome"], iterations=1,
                           rounds=1)
    return _STATE


def test_engine_throughput_on_repeated_trace(benchmark, tmp_path_factory):
    state = _run(benchmark, tmp_path_factory)
    table = state["tables"][0]
    print_table(table.title, table.headers, table.rows)

    records = state["outcome"].records
    direct = select(records, point__options={"cache": False})[0]["result"]
    engine = select(records, point__options={})[0]["result"]
    # The paper's cost metric is untouched: identical ledgers...
    assert engine["circuits"] == direct["circuits"]
    assert engine["shots"] == direct["shots"]
    # ...and identical energies (shared-RNG sampling order is preserved).
    assert engine["energies"] == direct["energies"]
    # The cache absorbs the revisits: fewer simulations than submissions,
    # a positive hit rate, and (on any reasonable machine) a wall-clock win.
    assert engine["hit_rate"] > 0.0
    assert engine["simulations"] < engine["circuits"]
    assert engine["simulations"] < direct["simulations"]
    # Compiled plans + the vectorized noise finisher make the cached
    # engine strictly faster than the plan-less direct row; CI gates on
    # the recorded ratio (see BENCH_ext_engine_throughput.json).
    assert engine["seconds"] < direct["seconds"]
    record_entry_stat(
        ENTRY, speedup=direct["seconds"] / engine["seconds"]
    )


def test_worker_scaling_is_deterministic(benchmark, tmp_path_factory):
    """workers=4 must reproduce workers=1 bit-for-bit on the same trace."""
    state = _run(benchmark, tmp_path_factory)
    records = state["outcome"].records
    results = {
        workers: select(
            records, point__options__workers=workers
        )[0]["result"]
        for workers in (1, 4)
    }
    assert results[1]["energies"] == results[4]["energies"]
    assert results[1]["circuits"] == results[4]["circuits"]
