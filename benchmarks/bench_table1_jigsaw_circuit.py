"""Table 1: JigSaw's circuit-level mitigation at optimal parameters.

The ansatz is tuned noise-free ("optimal parameters known from ideal
simulation"), then evaluated under noise with and without JigSaw.  The
paper's claim: JigSaw recovers most (>70%) of the measurement-error-
induced energy inaccuracy for LiH, H2O, H2, and CH4.
"""

from conftest import fmt, print_table

from repro.analysis import (
    energy_at_params,
    energy_error,
    mean_energy_at_params,
    optimal_parameters,
    percent_inaccuracy_mitigated,
    scaled,
)
from repro.noise import ibmq_mumbai_like
from repro.workloads import make_workload

WORKLOADS = ["LiH-6", "H2O-6", "H2-4", "CH4-6"]


def test_table1_jigsaw_circuit_level(benchmark):
    shots = scaled(2048, 8192)
    trials = scaled(2, 5)
    tune_iterations = scaled(300, 1500)
    device = ibmq_mumbai_like(scale=2.0)

    def experiment():
        rows = []
        for key in WORKLOADS:
            workload = make_workload(key)
            params = optimal_parameters(workload, iterations=tune_iterations)
            # The noise-free energy *at these parameters* is the reference
            # the noise-induced error is measured against (any residual
            # tuning gap to the true ground state is common to every row).
            ref = energy_at_params("ideal", workload, params)
            common = dict(trials=trials, device=device, shots=shots)
            noisy = mean_energy_at_params(
                "baseline", workload, params, **common
            )
            jigsaw = mean_energy_at_params(
                "jigsaw", workload, params, **common
            )
            rows.append(
                {
                    "key": key,
                    "ground": workload.ideal_energy,
                    "ref": ref,
                    "noisy": noisy,
                    "jigsaw": jigsaw,
                    "recovered": percent_inaccuracy_mitigated(
                        ref, noisy, jigsaw
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, iterations=1, rounds=1)
    print_table(
        "Table 1: energies at optimal parameters (subset size 2)",
        ["Workload", "Ground", "Ref@params", "Noisy VQE", "VQE+JigSaw",
         "% recovered"],
        [
            [r["key"], fmt(r["ground"]), fmt(r["ref"]), fmt(r["noisy"]),
             fmt(r["jigsaw"]), fmt(r["recovered"], 0)]
            for r in rows
        ],
    )
    for r in rows:
        # JigSaw lands strictly closer to the reference than the noisy run.
        assert energy_error(r["jigsaw"], r["ref"]) < energy_error(
            r["noisy"], r["ref"]
        ), r["key"]
    # Meaningful recovery on average (paper: >70%).
    mean_recovered = sum(r["recovered"] for r in rows) / len(rows)
    print(f"mean % inaccuracy recovered: {mean_recovered:.0f}%")
    assert mean_recovered > 40
