"""Table 1: JigSaw's circuit-level mitigation at optimal parameters.

The ansatz is tuned noise-free ("optimal parameters known from ideal
simulation"), then evaluated under noise with and without JigSaw.  The
paper's claim: JigSaw recovers most (>70%) of the measurement-error-
induced energy inaccuracy for LiH, H2O, H2, and CH4.

Ported to the declarative catalog (entry ``table1``): the reference and
trial-averaged evaluations are ``energy`` task points; rows are
byte-identical to the pre-port output.
"""

from conftest import print_tables

from repro.analysis import energy_error
from repro.sweeps import ResultStore, get_entry, run_entry
from repro.sweeps.catalog import table1_rows


def test_table1_jigsaw_circuit_level(benchmark, tmp_path):
    entry = get_entry("table1")
    store = ResultStore(tmp_path / "table1.jsonl")
    outcome = benchmark.pedantic(
        lambda: run_entry(entry, store), iterations=1, rounds=1
    )
    print_tables(outcome.tables())
    assert run_entry(entry, store).executed == []

    rows = table1_rows(outcome.records)
    for r in rows:
        # JigSaw lands strictly closer to the reference than the noisy run.
        assert energy_error(r["jigsaw"], r["ref"]) < energy_error(
            r["noisy"], r["ref"]
        ), r["key"]
    # Meaningful recovery on average (paper: >70%).
    mean_recovered = sum(r["recovered"] for r in rows) / len(rows)
    print(f"mean % inaccuracy recovered: {mean_recovered:.0f}%")
    assert mean_recovered > 40
