"""Extension: measurement-mitigation shootout on fixed circuits.

The paper compares VarSaw against JigSaw and (in Fig. 18) IBM's full
matrix mitigation.  This bench lines up every circuit-level technique in
the library on the same noisy GHZ workloads — the canonical
readout-error victim — reporting distribution fidelity and circuit cost:

* raw             — no mitigation
* bias-aware      — invert-and-measure polarity averaging [Tannu'19]
* MBM             — full tensored confusion-matrix inversion [IBM]
* M3              — observed-subspace inversion [Nation'21 / Qiskit]
* JigSaw          — subsetting + Bayesian reconstruction [Das'21]
"""

import numpy as np
from conftest import fmt, print_table, run_once

from repro.circuits import Circuit
from repro.mitigation import (
    M3Mitigator,
    MatrixMitigator,
    invert_and_measure,
    jigsaw_mitigate,
)
from repro.noise import SimulatorBackend, ibmq_mumbai_like
from repro.sim import PMF

SHOTS = 8192
NOISE_SCALE = 2.0


def ghz(n):
    qc = Circuit(n)
    qc.h(0)
    for q in range(n - 1):
        qc.cx(q, q + 1)
    qc.measure_all()
    return qc


def ghz_target(n):
    probs = np.zeros(2**n)
    probs[0] = probs[-1] = 0.5
    return PMF(probs)


def run_shootout(n_qubits):
    device = ibmq_mumbai_like(scale=NOISE_SCALE)
    circuit = ghz(n_qubits)
    target = ghz_target(n_qubits)

    def fresh():
        return SimulatorBackend(device, seed=37)

    results = {}

    backend = fresh()
    raw = backend.run(circuit, SHOTS).to_pmf()
    results["raw"] = (raw.tvd(target), 1)

    backend = fresh()
    averaged = invert_and_measure(backend, circuit, SHOTS)
    results["bias-aware"] = (averaged.tvd(target), 2)

    backend = fresh()
    counts = backend.run(circuit, SHOTS)
    mbm = MatrixMitigator.from_device(backend, range(n_qubits), n_qubits)
    results["MBM"] = (mbm.mitigate_pmf(counts.to_pmf()).tvd(target), 1)

    backend = fresh()
    counts = backend.run(circuit, SHOTS)
    m3 = M3Mitigator.from_device(backend, range(n_qubits), n_qubits)
    results["M3"] = (m3.mitigate_counts(counts).tvd(target), 1)

    backend = fresh()
    jig = jigsaw_mitigate(backend, circuit, shots=SHOTS, window=2)
    results["JigSaw"] = (jig.output.tvd(target), jig.circuits_executed)

    return results


def test_mitigation_shootout(benchmark):
    def experiment():
        return {n: run_shootout(n) for n in (4, 6, 8)}

    stats = run_once(benchmark, experiment)
    for n, results in stats.items():
        print_table(
            f"Extension: mitigation shootout, GHZ-{n} on "
            f"ibmq_mumbai_like(x{NOISE_SCALE:g}) — TVD to ideal "
            "(lower is better)",
            ["technique", "TVD", "circuits"],
            [
                [name, fmt(tvd, 4), circuits]
                for name, (tvd, circuits) in results.items()
            ],
        )
    for n, results in stats.items():
        raw_tvd = results["raw"][0]
        # JigSaw beats raw at every width — subsetting degrades
        # gracefully where matrix inversion cannot.
        assert results["JigSaw"][0] < 0.6 * raw_tvd
        # Bias-aware averaging never makes the distribution worse
        # (it halves the worst-case asymmetric bias).
        assert results["bias-aware"][0] < raw_tvd * 1.1
    # Matrix methods dominate at small width...
    for n in (4, 6):
        assert stats[n]["M3"][0] < 0.4 * stats[n]["raw"][0]
        assert stats[n]["MBM"][0] < 0.4 * stats[n]["raw"][0]
    # ...but amplify sampling noise catastrophically at GHZ-8 under 2x
    # noise, while JigSaw still recovers most of the infidelity — the
    # MICRO'21 motivation for subsetting, reproduced end to end.
    assert stats[8]["JigSaw"][0] < stats[8]["M3"][0]
    assert stats[8]["JigSaw"][0] < 0.5 * stats[8]["raw"][0]


def test_mitigation_stacking(benchmark):
    """M3-corrected Globals inside JigSaw: Fig. 18's stacking, per circuit.

    The legitimate composition mitigates the *Global* distribution before
    Bayesian reconstruction (correcting JigSaw's already-mitigated output
    would double-count the inverse channel).
    """
    from repro.mitigation import bayesian_reconstruct

    def experiment():
        n = 6
        device = ibmq_mumbai_like(scale=NOISE_SCALE)
        target = ghz_target(n)
        backend = SimulatorBackend(device, seed=41)
        jig = jigsaw_mitigate(backend, ghz(n), shots=SHOTS, window=2)
        m3 = M3Mitigator.from_device(backend, range(n), n)
        corrected_global = m3.mitigate_pmf(jig.global_pmf)
        stacked = bayesian_reconstruct(corrected_global, jig.local_pmfs)
        return {
            "jigsaw": jig.output.tvd(target),
            "jigsaw+m3 global": stacked.tvd(target),
        }

    stats = run_once(benchmark, experiment)
    print_table(
        "Extension: M3-corrected Globals inside JigSaw (GHZ-6)",
        ["scheme", "TVD"],
        [[k, fmt(v, 4)] for k, v in stats.items()],
    )
    # Fig. 18's shape: stacking helps or is negligible, never a blow-up.
    assert stats["jigsaw+m3 global"] < stats["jigsaw"] * 1.1
