"""Extension: measurement-mitigation shootout on fixed circuits.

The paper compares VarSaw against JigSaw and (in Fig. 18) IBM's full
matrix mitigation.  This bench lines up every circuit-level technique in
the library on the same noisy GHZ workloads — the canonical
readout-error victim — reporting distribution fidelity and circuit cost:

* raw             — no mitigation
* bias-aware      — invert-and-measure polarity averaging [Tannu'19]
* MBM             — full tensored confusion-matrix inversion [IBM]
* M3              — observed-subspace inversion [Nation'21 / Qiskit]
* JigSaw          — subsetting + Bayesian reconstruction [Das'21]

Ported to the declarative catalog (entry ``ext_mitigation_shootout``):
one ``mitigation_shootout`` point per GHZ width plus the stacking
point; rows are byte-identical to the pre-port output.
"""

from conftest import print_table

from repro.sweeps import ResultStore, get_entry, run_entry, select

ENTRY = "ext_mitigation_shootout"
WIDTHS = (4, 6, 8)
_STATE: dict = {}


def _run(benchmark, tmp_path_factory):
    if not _STATE:
        store = ResultStore(tmp_path_factory.mktemp(ENTRY) / "store.jsonl")
        entry = get_entry(ENTRY)
        outcome = benchmark.pedantic(
            lambda: run_entry(entry, store), iterations=1, rounds=1
        )
        _STATE["outcome"] = outcome
        _STATE["tables"] = outcome.tables()
        assert run_entry(entry, store).executed == []
    else:
        benchmark.pedantic(lambda: _STATE["outcome"], iterations=1,
                           rounds=1)
    return _STATE


def test_mitigation_shootout(benchmark, tmp_path_factory):
    state = _run(benchmark, tmp_path_factory)
    for table in state["tables"][:3]:
        print_table(table.title, table.headers, table.rows)

    stats = {
        n: select(
            state["outcome"].records,
            point__task="mitigation_shootout",
            point__options__n_qubits=n,
        )[0]["result"]
        for n in WIDTHS
    }
    for n, results in stats.items():
        raw_tvd = results["raw"][0]
        # JigSaw beats raw at every width — subsetting degrades
        # gracefully where matrix inversion cannot.
        assert results["JigSaw"][0] < 0.6 * raw_tvd
        # Bias-aware averaging never makes the distribution worse
        # (it halves the worst-case asymmetric bias).
        assert results["bias-aware"][0] < raw_tvd * 1.1
    # Matrix methods dominate at small width...
    for n in (4, 6):
        assert stats[n]["M3"][0] < 0.4 * stats[n]["raw"][0]
        assert stats[n]["MBM"][0] < 0.4 * stats[n]["raw"][0]
    # ...but amplify sampling noise catastrophically at GHZ-8 under 2x
    # noise, while JigSaw still recovers most of the infidelity — the
    # MICRO'21 motivation for subsetting, reproduced end to end.
    assert stats[8]["JigSaw"][0] < stats[8]["M3"][0]
    assert stats[8]["JigSaw"][0] < 0.5 * stats[8]["raw"][0]


def test_mitigation_stacking(benchmark, tmp_path_factory):
    """M3-corrected Globals inside JigSaw: Fig. 18's stacking, per circuit."""
    state = _run(benchmark, tmp_path_factory)
    table = state["tables"][3]
    print_table(table.title, table.headers, table.rows)
    stacking = select(
        state["outcome"].records, point__task="mitigation_stacking"
    )[0]["result"]
    # Fig. 18's shape: stacking helps or is negligible, never a blow-up.
    assert stacking["jigsaw+m3 global"] < stacking["jigsaw"] * 1.1
