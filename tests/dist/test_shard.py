"""Sharded sweeps: byte-identity, resume, work-stealing, stale claims."""

from __future__ import annotations

import json

import pytest

from repro.dist.claims import ClaimQueue
from repro.dist.diff import diff_stores, store_digest
from repro.dist.shard import shard_aux_path
from repro.dist.shardworker import run_shard
from repro.sweeps import ResultStore, run_sweep
from repro.sweeps.spec import Point


def _grid(n: int = 3) -> list[Point]:
    return [
        Point(task="trotter_error", options={"steps": s})
        for s in range(1, n + 1)
    ]


@pytest.fixture
def serial_store(tmp_path):
    store = ResultStore(tmp_path / "serial.jsonl")
    run_sweep(_grid(), store)
    return store


def test_sharded_records_match_serial(tmp_path, serial_store):
    sharded = ResultStore(tmp_path / "sharded.jsonl")
    report = run_sweep(_grid(), sharded, shards=2)
    assert diff_stores(serial_store, sharded) == []
    assert store_digest(sharded) == store_digest(serial_store)
    assert len(report.executed) == 3
    stats = report.shard_stats
    assert stats["shards"] == 2
    assert stats["executions"] >= 3
    assert sum(stats["shard_executions"]) + stats["inline"] == (
        stats["executions"]
    )
    # The claim queue exists next to the store (the CI artifact).
    assert shard_aux_path(sharded.path, "claims").exists()


def test_sharded_resume_executes_nothing(tmp_path):
    store = ResultStore(tmp_path / "resume.jsonl")
    run_sweep(_grid(), store, shards=2)
    report = run_sweep(_grid(), store, shards=2)
    assert report.executed == []
    assert report.skipped == 3
    assert report.shard_stats == {}


def test_killed_shard_loses_nothing(tmp_path, serial_store, monkeypatch):
    # Shard 0 SIGKILLs itself while holding a live claim after its
    # first execution; survivors steal the orphaned point after a
    # short grace period and the coordinator still returns a full,
    # byte-identical grid.
    monkeypatch.setenv("REPRO_DIST_KILL_SHARD", "0:1")
    monkeypatch.setenv("REPRO_DIST_STEAL_S", "0.3")
    store = ResultStore(tmp_path / "killed.jsonl")
    report = run_sweep(_grid(), store, shards=2)
    assert diff_stores(serial_store, store) == []
    assert len(report.executed) == 3


def test_stale_and_replayed_claims_never_skip_points(tmp_path):
    # A dead shard's claims — duplicated (replayed) and followed by a
    # torn tail — cover *every* point before the worker starts.
    # Claims are advisory: after the grace period the worker steals
    # and completes all of them.
    points = _grid()
    items = [(p, p.fingerprint()) for p in points]
    claims_path = tmp_path / "stale.claims.jsonl"
    queue = ClaimQueue(claims_path)
    for _, fingerprint in items:
        queue.claim(fingerprint, shard=99)
    lines = claims_path.read_text()
    with claims_path.open("a") as handle:
        handle.write(lines)  # replay every claim verbatim
        handle.write('{"torn week')  # killed writer mid-line
    store_path = tmp_path / "worker0.jsonl"
    summary = run_shard(
        {
            "shard": 0,
            "shards": 1,
            "store": str(store_path),
            "claims": str(claims_path),
            "sibling_stores": [str(store_path)],
            "coordinator_store": str(tmp_path / "main.jsonl"),
            "summary": str(tmp_path / "summary.json"),
            "steal_timeout_s": 0.1,
            "points": [
                {"point": p.to_dict(), "fingerprint": fp, "cost": 1.0}
                for p, fp in items
            ],
        }
    )
    assert summary["executed"] == len(points)
    assert summary["stolen"] == len(points)
    store = ResultStore(store_path)
    assert store.keys() == {fp for _, fp in items}
    assert json.loads(
        (tmp_path / "summary.json").read_text()
    ) == summary
    # The replayed journal still resolves one deterministic owner.
    reloaded = ClaimQueue(claims_path)
    assert all(reloaded.owner(fp) == 99 for _, fp in items)
