"""Wire-protocol tests: exact round trips and protocol errors."""

from __future__ import annotations

import io
import struct

import numpy as np
import pytest

from repro.circuits import Circuit, Parameter
from repro.dist.wire import (
    MAX_FRAME_BYTES,
    WIRE_SCHEMA_VERSION,
    WireError,
    circuit_from_wire,
    circuit_to_wire,
    decode_message,
    encode_message,
    execute_request,
    read_frame,
    state_from_wire,
    state_to_wire,
    write_frame,
)
from repro.noise import SimulatorBackend


def _sample_circuit() -> Circuit:
    circuit = Circuit(3, name="wire-sample")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.rz(0.3125, 2)
    circuit.cx(1, 2)
    circuit.measure([0, 2])
    return circuit


def test_circuit_round_trip_is_exact():
    circuit = _sample_circuit()
    rebuilt = circuit_from_wire(circuit_to_wire(circuit))
    assert rebuilt.n_qubits == circuit.n_qubits
    assert rebuilt.name == circuit.name
    assert sorted(rebuilt.measured_qubits) == sorted(
        circuit.measured_qubits
    )
    local = SimulatorBackend(None, seed=0)
    np.testing.assert_array_equal(
        local.circuit_probabilities(rebuilt),
        local.circuit_probabilities(circuit),
    )


def test_unbound_parameter_rejected():
    circuit = Circuit(1)
    circuit.rz(Parameter("theta"), 0)
    with pytest.raises(ValueError, match="unbound"):
        circuit_to_wire(circuit)


def test_malformed_wire_circuit_raises_wire_error():
    with pytest.raises(WireError):
        circuit_from_wire({"gates": []})  # no qubit count
    with pytest.raises(WireError):
        circuit_from_wire({"n": 2, "gates": [["h"]]})  # no qubits


def test_statevector_round_trip_is_exact():
    rng = np.random.default_rng(5)
    state = rng.normal(size=8) + 1j * rng.normal(size=8)
    rebuilt = state_from_wire(state_to_wire(state))
    np.testing.assert_array_equal(rebuilt, state)


def test_statevector_length_mismatch():
    with pytest.raises(WireError):
        state_from_wire({"re": [1.0, 0.0], "im": [0.0]})


def test_decode_rejects_garbage_and_non_objects():
    with pytest.raises(WireError):
        decode_message(b"\xff\xfe not json")
    with pytest.raises(WireError):
        decode_message(b"[1, 2, 3]")
    assert decode_message(encode_message({"op": "ping"})) == {
        "op": "ping"
    }


def test_frame_round_trip_and_errors():
    stream = io.BytesIO()
    write_frame(stream, b"hello")
    write_frame(stream, b"")
    stream.seek(0)
    assert read_frame(stream) == b"hello"
    assert read_frame(stream) == b""
    with pytest.raises(EOFError):
        read_frame(stream)
    # A frame truncated mid-payload is EOF, not garbage data.
    torn = io.BytesIO(struct.pack(">I", 10) + b"abc")
    with pytest.raises(EOFError):
        read_frame(torn)
    # An absurd length header is a protocol error.
    huge = io.BytesIO(struct.pack(">I", MAX_FRAME_BYTES + 1))
    with pytest.raises(WireError):
        read_frame(huge)


def _request(op: str, **fields) -> dict:
    message = {"op": op, "id": 7, "schema": WIRE_SCHEMA_VERSION}
    message.update(fields)
    return message


def test_execute_request_ping_echoes_worker_id():
    reply = execute_request(
        _request("ping"), {"worker_id": "w-test"}
    )
    assert reply["ok"] and reply["worker"] == "w-test"
    assert reply["id"] == 7


def test_execute_request_rejects_schema_mismatch_and_unknown_op():
    bad_schema = execute_request({"op": "ping", "schema": 999}, {})
    assert not bad_schema["ok"] and "schema" in bad_schema["error"]
    unknown = execute_request(_request("frobnicate"), {})
    assert not unknown["ok"] and "unknown wire op" in unknown["error"]


def test_execute_request_probs_matches_local_backend():
    circuit = _sample_circuit()
    reply = execute_request(
        _request(
            "probs",
            backend={"kind": "dense"},
            circuits=[circuit_to_wire(circuit)] * 2,
        ),
        {},
    )
    assert reply["ok"]
    local = SimulatorBackend(None, seed=0).circuit_probabilities(circuit)
    for row in reply["results"]:
        np.testing.assert_array_equal(np.asarray(row), local)


def test_execute_request_rejects_non_worker_backend_kind():
    reply = execute_request(
        _request("probs", backend={"kind": "density"}, circuits=[]),
        {},
    )
    assert not reply["ok"] and "worker backend kind" in reply["error"]
