"""Pinned tests for static point costs, ordering, and SweepProgress."""

from __future__ import annotations

import pytest

from repro.dist.costs import (
    SweepProgress,
    estimate_point_cost,
    order_by_cost,
    point_qubits,
)
from repro.sweeps.spec import Point


def _tuning(seed: int = 0, iterations: int = 20, **kw) -> Point:
    kw.setdefault("workload", {"key": "H2-4"})
    return Point(
        scheme="baseline", seed=seed, max_iterations=iterations, **kw
    )


def test_point_qubits_resolution_order():
    assert point_qubits(_tuning(workload={"model": "tfim",
                                          "n_qubits": 6})) == 6
    assert point_qubits(_tuning(workload={"key": "H2O-6"})) == 6
    assert point_qubits(
        Point(task="quench", options={"n_qubits": 5, "times": [0.1]})
    ) == 5
    assert point_qubits(Point(task="trotter_error",
                              options={"steps": 1})) == 4


def test_cost_ordering_is_pinned():
    # The satellite's pinned ordering: task kind x qubits x iterations.
    quench = Point(
        task="quench_sweep", options={"n_qubits": 5, "times": [0.1]}
    )
    qaoa = _tuning(
        workload={"qaoa": "ring", "n_qubits": 4, "reps": 1},
        iterations=20,
    )
    tuning = _tuning(iterations=20)
    short_tuning = _tuning(iterations=2)
    trotter = Point(task="trotter_error", options={"steps": 1})
    costs = [
        estimate_point_cost(p)
        for p in (quench, qaoa, tuning, trotter, short_tuning)
    ]
    assert costs == sorted(costs, reverse=True)
    # Iteration count scales iterative tasks linearly.
    assert estimate_point_cost(tuning) == pytest.approx(
        10 * estimate_point_cost(short_tuning) / 1
    )
    # Wider systems cost more (Pauli terms x statevector factor).
    assert estimate_point_cost(
        _tuning(workload={"key": "H2O-6"})
    ) > estimate_point_cost(tuning)


def test_order_by_cost_descends_and_is_stable():
    cheap_a = (Point(task="trotter_error", options={"steps": 1}), "a")
    cheap_b = (Point(task="trotter_error", options={"steps": 2}), "b")
    costly = (
        Point(task="quench_sweep",
              options={"n_qubits": 5, "times": [0.1]}),
        "c",
    )
    ordered = order_by_cost([cheap_a, cheap_b, costly])
    assert [fp for _, fp in ordered] == ["c", "a", "b"]
    # Equal-cost points keep their submission order (stable sort).
    assert order_by_cost([cheap_b, cheap_a])[0][1] == "b"


def test_sweep_progress_cost_fraction_and_eta():
    halfway = SweepProgress(
        points_done=3, points_total=4,
        cost_done=2.0, cost_total=6.0, elapsed_s=10.0,
    )
    assert halfway.cost_fraction == pytest.approx(2.0 / 6.0)
    # Throughput so far: 2 cost units / 10 s -> 4 remaining take 20 s.
    assert halfway.eta_s == pytest.approx(20.0)

    fresh = SweepProgress(0, 4, 0.0, 6.0, 0.0)
    assert fresh.eta_s is None
    assert fresh.cost_fraction == 0.0

    done = SweepProgress(4, 4, 9.0, 6.0, 1.0)
    assert done.cost_fraction == 1.0  # clamped

    empty = SweepProgress(0, 0, 0.0, 0.0, 0.0)
    assert empty.cost_fraction == 1.0
