"""Tests for the repro.dist subsystem."""
