"""The ``remote`` backend: registry, parity, and cache-key folding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import backend_kinds, make_backend
from repro.dist.remote import RemoteBackendSpec
from repro.engine.spec import device_fingerprint
from repro.noise import SimulatorBackend, ibmq_mumbai_like
from repro.sweeps.runner import execute_point
from repro.sweeps.spec import Point

from .test_wire import _sample_circuit


def test_remote_is_a_registered_builtin_kind():
    assert "remote" in backend_kinds()


def test_remote_matches_dense_bit_for_bit():
    circuit = _sample_circuit()
    dense = SimulatorBackend(None, seed=0)
    remote = make_backend({"kind": "remote", "workers": 1})
    try:
        np.testing.assert_array_equal(
            remote.circuit_probabilities(circuit),
            dense.circuit_probabilities(circuit),
        )
        np.testing.assert_array_equal(
            remote.prepare_state(circuit),
            dense.prepare_state(circuit),
        )
        batched = remote.circuit_probabilities_batch([circuit, circuit])
        for row in batched:
            np.testing.assert_array_equal(
                row, dense.circuit_probabilities(circuit)
            )
    finally:
        remote.close()


def test_clifford_worker_matches_local_clifford():
    ghz = _ghz_circuit()
    local = make_backend("clifford")
    remote = make_backend(
        {"kind": "remote", "worker_backend": "clifford", "workers": 1}
    )
    try:
        np.testing.assert_array_equal(
            remote.circuit_probabilities(ghz),
            local.circuit_probabilities(ghz),
        )
    finally:
        remote.close()


def _ghz_circuit():
    from repro.circuits import Circuit

    circuit = Circuit(3, name="ghz")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    circuit.measure_all()
    return circuit


def test_cache_keys_fold_worker_kind_in_and_transport_out():
    device = ibmq_mumbai_like()
    dense_fp = device_fingerprint(SimulatorBackend(device, seed=0))
    remote_dense = RemoteBackendSpec().create(device, seed=0)
    remote_wide = RemoteBackendSpec(workers=7, max_retries=9).create(
        device, seed=0
    )
    remote_clifford = RemoteBackendSpec(
        worker_backend="clifford"
    ).create(device, seed=0)
    # A remote backend whose workers simulate densely hits the same
    # memoized PMFs as a local dense backend...
    assert device_fingerprint(remote_dense) == dense_fp
    # ...pool width and retry budget are transport, not physics...
    assert device_fingerprint(remote_wide) == dense_fp
    # ...but the worker's simulation strategy is physics.
    assert device_fingerprint(remote_clifford) != dense_fp


def test_spec_validation_errors():
    with pytest.raises(ValueError):
        RemoteBackendSpec(worker_backend="density")
    with pytest.raises(ValueError):
        RemoteBackendSpec(workers=0)
    with pytest.raises(ValueError):
        RemoteBackendSpec(transport="socket")  # no addresses
    with pytest.raises(ValueError):
        RemoteBackendSpec(transport="pipes", addresses=("h:1",))
    with pytest.raises(ValueError):
        RemoteBackendSpec(transport="carrier-pigeon")
    # A valid socket spec builds without connecting anywhere.
    RemoteBackendSpec(transport="socket", addresses=("127.0.0.1:7631",))


def test_tuning_point_on_remote_backend_matches_dense():
    base = dict(
        workload={"key": "H2-4"},
        scheme="baseline",
        seed=3,
        shots=32,
        max_iterations=2,
    )
    local_result, _ = execute_point(Point(**base), {})
    remote_result, _ = execute_point(
        Point(backend={"kind": "remote", "workers": 1}, **base), {}
    )
    # The backend field is part of the record's point payload, but the
    # computed result must be bit-identical to the dense run.
    assert remote_result == local_result
