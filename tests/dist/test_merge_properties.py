"""Property tests: shard-journal merging and claim replay.

The distributed invariants, stated over *arbitrary* interleavings:

* however finished records are scattered across K shard journals —
  duplicated, reordered, with torn garbage appended by killed
  writers — the coordinator's first-wins merge reproduces the serial
  store byte-for-byte;
* however a claim journal is replayed and interleaved, ownership is
  deterministic and completion (judged only from stores) is
  unaffected — no point is ever skipped.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.claims import ClaimQueue
from repro.sweeps import ResultStore
from repro.sweeps.spec import Point

#: Torn tails an interrupted writer can leave behind.
_GARBAGE = ['{"torn', "not json at all", '["a list line"]', '{}']


def _serial_store(tmp_path, n: int) -> ResultStore:
    store = ResultStore(tmp_path / "serial.jsonl")
    for i in range(n):
        point = Point(task="synthetic", options={"i": i})
        store.append(
            point, {"value": i * 1.5}, wall_time_s=0.001 * i
        )
    return store


@settings(max_examples=25, deadline=None)
@given(data=st.data(), n=st.integers(1, 6), shards=st.integers(1, 3))
def test_scattered_journals_merge_to_serial(tmp_path_factory, data,
                                            n, shards):
    tmp_path = tmp_path_factory.mktemp("merge")
    serial = _serial_store(tmp_path, n)
    records = list(serial.records())
    # Scatter: each record lands in >= 1 journal, possibly several.
    placements = [
        (
            record,
            data.draw(
                st.lists(
                    st.integers(0, shards - 1),
                    min_size=1, max_size=shards, unique=True,
                )
            ),
        )
        for record in records
    ]
    lines: list[list[str]] = [[] for _ in range(shards)]
    for record, journals in placements:
        text = json.dumps(record, sort_keys=True) + "\n"
        for index in journals:
            copies = data.draw(st.integers(1, 2))  # replayed appends
            lines[index].extend([text] * copies)
    shard_paths = []
    for index in range(shards):
        order = data.draw(st.permutations(lines[index]))
        path = tmp_path / f"shard{index}.jsonl"
        content = "".join(order)
        if data.draw(st.booleans()):
            content += data.draw(st.sampled_from(_GARBAGE))
        path.write_text(content)
        shard_paths.append(path)
    merged = ResultStore(tmp_path / "merged.jsonl")
    for path in shard_paths:
        merged.merge_from(path)
    # Byte-for-byte: identical records in, identical records out —
    # including the volatile fields, because every copy is verbatim.
    assert {r["fingerprint"]: r for r in merged.records()} == {
        r["fingerprint"]: r for r in records
    }


@settings(max_examples=25, deadline=None)
@given(
    data=st.data(),
    n=st.integers(1, 5),
    claimers=st.integers(1, 4),
)
def test_claim_replay_is_deterministic_and_skips_nothing(
    tmp_path_factory, data, n, claimers
):
    tmp_path = tmp_path_factory.mktemp("claims")
    fingerprints = [f"fp{i}" for i in range(n)]
    # An arbitrary interleaving of (possibly conflicting, possibly
    # replayed) claims across several shards.
    events = data.draw(
        st.lists(
            st.tuples(
                st.sampled_from(fingerprints),
                st.integers(0, claimers - 1),
            ),
            min_size=1,
            max_size=4 * n,
        )
    )
    path = tmp_path / "claims.jsonl"
    queue = ClaimQueue(path)
    first_owner: dict[str, int] = {}
    for fingerprint, shard in events:
        queue.claim(fingerprint, shard)
        first_owner.setdefault(fingerprint, shard)
    # Replay the whole journal verbatim plus a torn tail.
    text = path.read_text()
    with path.open("a") as handle:
        handle.write(text)
        handle.write(data.draw(st.sampled_from(_GARBAGE)))
    reloaded = ClaimQueue(path)
    for fingerprint in fingerprints:
        expected = first_owner.get(fingerprint)
        assert reloaded.owner(fingerprint) == expected
    # Loading is idempotent.
    reloaded.load()
    for fingerprint, shard in first_owner.items():
        assert reloaded.owner(fingerprint) == shard
    # (The end-to-end "claims never skip execution" guarantee is
    # exercised with a live shard worker in test_shard.py.)
