"""CLI surface of the dist subsystem: store-diff, flags, progress."""

from __future__ import annotations

import pytest

from repro.cli import _sweep_progress, main
from repro.dist.costs import SweepProgress
from repro.sweeps import ResultStore
from repro.sweeps.spec import Point


def _store(path, values: dict[int, float]) -> ResultStore:
    store = ResultStore(path)
    for i, value in values.items():
        point = Point(task="synthetic", options={"i": i})
        store.append(point, {"value": value}, wall_time_s=0.01)
    return store


def test_store_diff_identical(tmp_path, capsys):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    _store(a, {0: 1.0, 1: 2.0})
    _store(b, {0: 1.0, 1: 2.0})
    assert main(["store-diff", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "stores identical" in out and "2 records" in out


def test_store_diff_reports_differences(tmp_path, capsys):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    _store(a, {0: 1.0, 1: 2.0})
    _store(b, {0: 1.0, 1: 2.5, 2: 3.0})
    assert main(["store-diff", str(a), str(b)]) == 1
    out = capsys.readouterr().out
    assert "records differ" in out
    assert "only in right" in out


def test_store_diff_missing_file(tmp_path, capsys):
    a = tmp_path / "a.jsonl"
    _store(a, {0: 1.0})
    assert main(["store-diff", str(a), str(tmp_path / "nope.jsonl")]) == 2


def test_sweep_parser_rejects_zero_shards(tmp_path):
    grid = tmp_path / "grid.json"
    grid.write_text("{}")
    with pytest.raises(SystemExit):
        main([
            "sweep", str(grid),
            "--out", str(tmp_path / "out.jsonl"),
            "--shards", "0",
        ])


def test_progress_line_shows_cost_fraction_and_eta(capsys):
    point = Point(task="trotter_error", options={"steps": 1})
    record = {"result": {"steps": 1}, "wall_time_s": 0.25}
    state = SweepProgress(
        points_done=1, points_total=3,
        cost_done=2.0, cost_total=8.0, elapsed_s=4.0,
    )
    _sweep_progress(1, 3, point, record, state)
    out = capsys.readouterr().out
    assert "[1/3]" in out
    assert "25% of est. cost" in out
    assert "eta 12s" in out


def test_progress_line_without_state(capsys):
    point = Point(task="trotter_error", options={"steps": 1})
    record = {"result": {"steps": 1}, "wall_time_s": 0.25}
    _sweep_progress(2, 2, point, record)
    out = capsys.readouterr().out
    assert "[2/2]" in out
    assert "est. cost" not in out
