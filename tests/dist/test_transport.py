"""Transport tests: pipe/socket channels and the retrying pool."""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.dist.transport import (
    PipeChannel,
    RemoteExecutionError,
    SocketChannel,
    TransportError,
    WorkerPool,
    serve_socket_worker,
)
from repro.dist.wire import circuit_to_wire
from repro.noise import SimulatorBackend
from repro.obs import REGISTRY, snapshot_delta

from .test_wire import _sample_circuit


@pytest.fixture
def pipe_pool():
    pool = WorkerPool([PipeChannel(), PipeChannel()], max_retries=2)
    yield pool
    pool.close()


def test_pipe_pool_probs_match_local(pipe_pool):
    circuit = _sample_circuit()
    reply = pipe_pool.submit(
        {
            "op": "probs",
            "backend": {"kind": "dense"},
            "circuits": [circuit_to_wire(circuit)],
        }
    )
    local = SimulatorBackend(None, seed=0).circuit_probabilities(circuit)
    np.testing.assert_array_equal(np.asarray(reply["results"][0]), local)


def test_killed_worker_is_restarted_and_request_retried():
    channel = PipeChannel()
    pool = WorkerPool([channel], max_retries=2)
    try:
        assert pool.submit({"op": "ping"})["ok"]
        before = REGISTRY.snapshot()
        os.kill(channel.worker_pid, signal.SIGKILL)
        time.sleep(0.1)
        # The dead worker surfaces as a TransportError mid-request;
        # the pool restarts the channel and resubmits transparently.
        assert pool.submit({"op": "ping"})["ok"]
        delta = snapshot_delta(REGISTRY.snapshot(), before)
        assert delta.get("repro_dist_worker_deaths_total", 0) >= 1
        assert delta.get("repro_dist_retries_total", 0) >= 1
    finally:
        pool.close()


def test_crash_op_exhausts_retries():
    pool = WorkerPool([PipeChannel()], max_retries=1)
    try:
        # Every resubmission lands on a fresh worker that also crashes,
        # so the bounded retry budget runs out and the failure surfaces.
        with pytest.raises(TransportError):
            pool.submit({"op": "crash"})
    finally:
        pool.close()


def test_application_errors_are_not_retried():
    pool = WorkerPool([PipeChannel()], max_retries=2)
    try:
        before = REGISTRY.snapshot()
        with pytest.raises(RemoteExecutionError):
            pool.submit({"op": "frobnicate"})
        delta = snapshot_delta(REGISTRY.snapshot(), before)
        assert delta.get("repro_dist_retries_total", 0) == 0
    finally:
        pool.close()


def test_socket_worker_round_trip():
    ready = threading.Event()
    server, port = serve_socket_worker(ready=ready)
    assert ready.wait(timeout=10)
    circuit = _sample_circuit()
    pool = WorkerPool([SocketChannel(f"127.0.0.1:{port}")])
    try:
        ping = pool.submit({"op": "ping"})
        assert ping["ok"] and ping["worker"] == f"socket:{port}"
        reply = pool.submit(
            {
                "op": "probs",
                "backend": {"kind": "dense"},
                "circuits": [circuit_to_wire(circuit)],
            }
        )
        local = SimulatorBackend(None, seed=0).circuit_probabilities(
            circuit
        )
        np.testing.assert_array_equal(
            np.asarray(reply["results"][0]), local
        )
    finally:
        pool.close()
        server.close()


def test_socket_channel_rejects_bad_address():
    with pytest.raises(ValueError, match="host:port"):
        SocketChannel("nonsense")
