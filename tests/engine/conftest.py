"""Shared fixtures for the execution-engine tests."""

import pytest

from repro import make_workload
from repro.noise import SimulatorBackend, ibmq_mumbai_like


@pytest.fixture(scope="module")
def h2_workload():
    return make_workload("H2-4")


@pytest.fixture(scope="module")
def noisy_device():
    return ibmq_mumbai_like(scale=2.0)


@pytest.fixture
def backend(noisy_device):
    return SimulatorBackend(noisy_device, seed=7)
