"""Snapshot subtraction: CacheStats/EngineStats/LedgerSnapshot deltas.

The serve subsystem charges tenants and the CLI prints end-of-run
summaries by subtracting snapshots around a phase, so the subtraction
algebra gets property coverage — and a concurrency test pins that
per-batch deltas sum to the engine's lifetime totals.
"""

import threading

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.api import LedgerSnapshot, Session
from repro.engine import CacheStats, EngineStats

counts = st.integers(min_value=0, max_value=10**9)


def cache_stats(draw=None):
    return st.builds(
        CacheStats,
        hits=counts, misses=counts, evictions=counts,
        size=counts, maxsize=counts, bytes=counts, max_bytes=counts,
    )


class TestCacheStatsDelta:
    @given(after=cache_stats(), before=cache_stats())
    def test_fieldwise_subtraction(self, after, before):
        delta = after - before
        assert delta.hits == after.hits - before.hits
        assert delta.misses == after.misses - before.misses
        assert delta.evictions == after.evictions - before.evictions
        assert delta.size == after.size - before.size
        assert delta.bytes == after.bytes - before.bytes
        # Capacity is a configuration level, not a counter: preserved.
        assert delta.maxsize == after.maxsize
        assert delta.max_bytes == after.max_bytes

    @given(stats=cache_stats())
    def test_self_subtraction_zeroes_counters(self, stats):
        delta = stats - stats
        assert (delta.hits, delta.misses, delta.evictions) == (0, 0, 0)
        assert delta.requests == 0
        assert delta.hit_rate == 0.0

    @given(after=cache_stats(), before=cache_stats())
    def test_requests_decomposes(self, after, before):
        delta = after - before
        assert delta.requests == after.requests - before.requests


class TestEngineStatsDelta:
    @given(
        after=st.builds(
            EngineStats,
            jobs_submitted=counts, batches_run=counts,
            simulations=counts, dedup_coalesced=counts,
            pmf_cache=cache_stats(), state_cache=cache_stats(),
        ),
        before=st.builds(
            EngineStats,
            jobs_submitted=counts, batches_run=counts,
            simulations=counts, dedup_coalesced=counts,
            pmf_cache=cache_stats(), state_cache=cache_stats(),
        ),
    )
    def test_fieldwise_and_nested(self, after, before):
        delta = after - before
        assert delta.jobs_submitted == (
            after.jobs_submitted - before.jobs_submitted
        )
        assert delta.batches_run == after.batches_run - before.batches_run
        assert delta.simulations == after.simulations - before.simulations
        assert delta.dedup_coalesced == (
            after.dedup_coalesced - before.dedup_coalesced
        )
        assert delta.pmf_cache == after.pmf_cache - before.pmf_cache
        assert delta.state_cache == after.state_cache - before.state_cache


class TestLedgerSnapshotDelta:
    @given(
        after=st.builds(
            LedgerSnapshot,
            circuits=counts, shots=counts, simulations=counts,
            cache_hits=counts, cache_requests=counts,
        ),
        before=st.builds(
            LedgerSnapshot,
            circuits=counts, shots=counts, simulations=counts,
            cache_hits=counts, cache_requests=counts,
        ),
    )
    def test_fieldwise_subtraction(self, after, before):
        delta = after - before
        assert delta.circuits == after.circuits - before.circuits
        assert delta.shots == after.shots - before.shots
        assert delta.simulations == after.simulations - before.simulations
        assert delta.cache_hits == after.cache_hits - before.cache_hits
        assert delta.cache_requests == (
            after.cache_requests - before.cache_requests
        )

    @given(
        a=st.builds(
            LedgerSnapshot,
            circuits=counts, shots=counts, simulations=counts,
            cache_hits=counts, cache_requests=counts,
        ),
        b=st.builds(
            LedgerSnapshot,
            circuits=counts, shots=counts, simulations=counts,
            cache_hits=counts, cache_requests=counts,
        ),
        c=st.builds(
            LedgerSnapshot,
            circuits=counts, shots=counts, simulations=counts,
            cache_hits=counts, cache_requests=counts,
        ),
    )
    def test_deltas_telescope(self, a, b, c):
        """(c - b) + (b - a) == c - a, field by field."""
        left = c - b
        right = b - a
        total = c - a
        assert left.circuits + right.circuits == total.circuits
        assert left.shots + right.shots == total.shots
        assert left.simulations + right.simulations == total.simulations


class TestConcurrentDeltas:
    def test_per_phase_deltas_sum_to_lifetime_totals(self, h2_workload):
        """Serialized snapshot windows around concurrent estimator use.

        Four threads share one session; each phase (thread) takes its
        ledger delta under a lock serializing estimator calls.  The
        per-phase deltas must sum exactly to the session's lifetime
        ledger — the property tenant charging relies on.
        """
        session = Session("ibmq_mumbai_like", seed=11)
        estimator = session.estimator("baseline", h2_workload, shots=32)
        params = np.zeros(h2_workload.ansatz.num_parameters)
        lock = threading.Lock()
        deltas = []

        def phase():
            with lock:
                before = session.ledger()
                estimator.evaluate(params)
                deltas.append(session.ledger() - before)

        threads = [threading.Thread(target=phase) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = session.ledger()
        assert sum(d.circuits for d in deltas) == total.circuits
        assert sum(d.shots for d in deltas) == total.shots
        assert sum(d.simulations for d in deltas) == total.simulations
        assert all(d.circuits > 0 for d in deltas)
        session.close()
