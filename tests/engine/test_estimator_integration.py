"""End-to-end: every estimator family routes through the engine with
seed-exact cost accounting and worker-count-independent results."""

import numpy as np
import pytest

from repro import make_estimator, run_vqe
from repro.core import SelectiveVarSawEstimator, TermSelector
from repro.engine import EngineConfig, ExecutionEngine
from repro.noise import SimulatorBackend
from repro.vqe import GeneralCommutationEstimator

FAMILIES = ("baseline", "jigsaw", "varsaw", "varsaw_max_sparsity")


def fixed_params(estimator, seed=13):
    rng = np.random.default_rng(seed)
    return rng.uniform(-0.2, 0.2, estimator.ansatz.num_parameters)


class TestEstimatorsUseEngine:
    @pytest.mark.parametrize("kind", FAMILIES)
    def test_jobs_flow_through_engine(self, kind, h2_workload, noisy_device):
        backend = SimulatorBackend(noisy_device, seed=7)
        estimator = make_estimator(kind, h2_workload, backend, shots=64)
        estimator.evaluate(fixed_params(estimator))
        stats = estimator.engine.stats
        assert stats.jobs_submitted > 0
        # Every executed circuit was charged through the engine.
        assert backend.circuits_run == stats.jobs_submitted

    def test_gc_estimator_uses_engine(self, h2_workload, noisy_device):
        backend = SimulatorBackend(noisy_device, seed=7)
        estimator = GeneralCommutationEstimator(
            h2_workload.hamiltonian, h2_workload.ansatz, backend, shots=64
        )
        estimator.evaluate(fixed_params(estimator))
        assert estimator.engine.stats.jobs_submitted == len(
            estimator.gc_groups
        )
        assert backend.circuits_run == len(estimator.gc_groups)

    def test_selective_estimator_uses_engine(self, h2_workload, noisy_device):
        backend = SimulatorBackend(noisy_device, seed=7)
        estimator = SelectiveVarSawEstimator(
            h2_workload.hamiltonian,
            h2_workload.ansatz,
            backend,
            shots=64,
            term_selector=TermSelector(0.6),
        )
        estimator.evaluate(fixed_params(estimator))
        assert estimator.engine.stats.jobs_submitted == backend.circuits_run
        assert backend.circuits_run > 0


class TestCostLedgerParity:
    @pytest.mark.parametrize("kind", FAMILIES)
    def test_ledger_matches_per_iteration_cost_model(
        self, kind, h2_workload, noisy_device
    ):
        """Ledger equals the analytic per-evaluation circuit count."""
        backend = SimulatorBackend(noisy_device, seed=7)
        estimator = make_estimator(kind, h2_workload, backend, shots=64)
        estimator.evaluate(fixed_params(estimator))
        if kind in ("baseline", "jigsaw"):
            expected = estimator.circuits_per_evaluation
        else:  # varsaw variants: first evaluation always runs Globals
            expected = (
                estimator.circuits_per_subset_pass
                + estimator.circuits_per_global_pass
            )
        assert backend.circuits_run == expected
        assert backend.shots_run == 64 * expected


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("kind", ("baseline", "varsaw"))
    def test_run_vqe_identical_energy_workers_1_vs_4(
        self, kind, h2_workload, noisy_device
    ):
        def run(workers):
            backend = SimulatorBackend(noisy_device, seed=7)
            estimator = make_estimator(
                kind, h2_workload, backend, shots=32, workers=workers
            )
            result = run_vqe(estimator, max_iterations=6, seed=7)
            estimator.engine.close()
            return result

        serial = run(1)
        parallel = run(4)
        assert serial.energy == parallel.energy
        assert serial.energy_history == parallel.energy_history
        assert serial.circuits_executed == parallel.circuits_executed
        assert serial.shots_executed == parallel.shots_executed

    def test_per_job_mode_also_worker_invariant(
        self, h2_workload, noisy_device
    ):
        def run(workers):
            backend = SimulatorBackend(noisy_device, seed=7)
            estimator = make_estimator(
                "baseline",
                h2_workload,
                backend,
                shots=32,
                engine=EngineConfig(workers=workers, rng_mode="per_job"),
            )
            result = run_vqe(estimator, max_iterations=4, seed=7)
            estimator.engine.close()
            return result

        assert run(1).energy == run(4).energy


class TestCacheAcrossEvaluations:
    def test_repeated_parameters_hit_the_cache(
        self, h2_workload, noisy_device
    ):
        backend = SimulatorBackend(noisy_device, seed=7)
        estimator = make_estimator("baseline", h2_workload, backend, shots=64)
        theta = fixed_params(estimator)
        e1 = estimator.evaluate(theta)
        sims_after_first = estimator.engine.stats.simulations
        e2 = estimator.evaluate(theta)
        stats = estimator.engine.stats
        # Second evaluation re-used every PMF (and the prepared state):
        # no new simulations, one cache hit per unique circuit.
        assert stats.simulations == sims_after_first
        assert stats.pmf_cache.hits == sims_after_first
        assert stats.state_cache.hits == 1
        # ... but was still charged and re-sampled.
        assert backend.circuits_run == 2 * estimator.num_groups
        assert e1 != e2  # independent shot noise

    def test_shared_engine_across_estimators(self, h2_workload, noisy_device):
        backend = SimulatorBackend(noisy_device, seed=7)
        engine = ExecutionEngine(backend)
        baseline = make_estimator(
            "baseline", h2_workload, backend, shots=64, engine=engine
        )
        jigsaw = make_estimator(
            "jigsaw", h2_workload, backend, shots=64, engine=engine
        )
        theta = fixed_params(baseline)
        baseline.evaluate(theta)
        hits_before = engine.stats.pmf_cache.hits
        jigsaw.evaluate(theta)
        # JigSaw's Globals are the same circuits the baseline ran.
        assert engine.stats.pmf_cache.hits >= hits_before + 1
