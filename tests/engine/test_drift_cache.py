"""Drift state must partition every PMF-cache and session key.

Regression suite for the calibration-drift cache audit: the engine's
memoized PMFs, the serve coalescer's shared sessions, and the device
fingerprint itself must all treat two drift clock states as two
devices — even when their concrete noise rates happen to coincide.
"""

import pytest

from repro.circuits import Circuit
from repro.engine import ExecutionEngine
from repro.engine.spec import device_fingerprint
from repro.noise import (
    ConstantDrift,
    DriftingDeviceModel,
    SimulatorBackend,
    StepDrift,
    ibm_lagos_like,
)
from repro.serve import JobSpec


def ghz(n_qubits=4):
    circuit = Circuit(n_qubits)
    circuit.h(0)
    for q in range(1, n_qubits):
        circuit.cx(0, q)
    circuit.measure_all()
    return circuit


def run_once(engine, circuit, shots=64):
    batch = engine.new_batch()
    batch.submit_circuit(circuit, shots)
    batch.run()


class TestDeviceFingerprint:
    def test_static_and_drifting_differ_even_at_identical_rates(self):
        static = SimulatorBackend(ibm_lagos_like(), seed=1)
        drifted = SimulatorBackend(
            DriftingDeviceModel(
                ibm_lagos_like(), StepDrift(period=8, magnitude=1.0, at=1)
            ),
            seed=1,
        )
        # Epoch 0: rates are byte-identical, fingerprints must not be.
        assert device_fingerprint(static) != device_fingerprint(drifted)

    def test_fingerprint_changes_across_epoch_boundary(self):
        device = DriftingDeviceModel(
            ibm_lagos_like(), StepDrift(period=4, magnitude=1.0, at=5)
        )
        backend = SimulatorBackend(device, seed=1)
        before = device_fingerprint(backend)
        device.advance_clock(3)
        assert device_fingerprint(backend) == before  # same epoch
        device.advance_clock(1)
        # Epoch 1: still pre-step, so the *rates* are unchanged — the
        # clock state alone must move the fingerprint.
        after = device_fingerprint(backend)
        assert after != before

    def test_constant_drift_fingerprint_still_advances(self):
        # Even a constant schedule is a distinct calibration regime per
        # epoch; replay correctness beats a warmer cache here.
        device = DriftingDeviceModel(
            ibm_lagos_like(), ConstantDrift(period=2)
        )
        backend = SimulatorBackend(device, seed=1)
        before = device_fingerprint(backend)
        device.advance_clock(2)
        assert device_fingerprint(backend) != before


class TestEnginePmfCache:
    def test_static_device_reuses_cached_pmfs(self):
        engine = ExecutionEngine(SimulatorBackend(ibm_lagos_like(), seed=2))
        circuit = ghz()
        run_once(engine, circuit)
        run_once(engine, circuit)
        assert engine.stats.pmf_cache.hits >= 1

    def test_drifting_device_misses_across_epoch_boundary(self):
        # period=1 -> every charged circuit opens a new epoch, so the
        # second submission may not reuse the first PMF even though the
        # step hasn't hit yet and the rates are identical.
        device = DriftingDeviceModel(
            ibm_lagos_like(), StepDrift(period=1, magnitude=1.0, at=100)
        )
        engine = ExecutionEngine(SimulatorBackend(device, seed=2))
        circuit = ghz()
        run_once(engine, circuit)
        run_once(engine, circuit)
        assert engine.stats.pmf_cache.hits == 0

    def test_drifting_device_hits_within_an_epoch(self):
        # Epoch quantization is the cache-warmth contract: submissions
        # inside one epoch still share PMFs.
        device = DriftingDeviceModel(
            ibm_lagos_like(), StepDrift(period=64, magnitude=1.0, at=1)
        )
        engine = ExecutionEngine(SimulatorBackend(device, seed=2))
        circuit = ghz()
        run_once(engine, circuit)
        run_once(engine, circuit)
        assert engine.stats.pmf_cache.hits >= 1


class TestServeSessionKeys:
    def test_drift_payload_separates_coalescer_sessions(self):
        plain = JobSpec(
            workload={"key": "H2-4"},
            device={"preset": "ibm_lagos_like", "scale": 1.0},
        )
        drifted = JobSpec(
            workload={"key": "H2-4"},
            device={
                "preset": "ibm_lagos_like",
                "scale": 1.0,
                "drift": {"kind": "step", "period": 8, "magnitude": 1.0,
                          "at": 1},
            },
        )
        assert plain.session_key() != drifted.session_key()
        assert plain.fingerprint() != drifted.fingerprint()

    def test_distinct_schedules_get_distinct_sessions(self):
        def job(drift):
            return JobSpec(
                workload={"key": "H2-4"},
                device={"preset": "ibm_lagos_like", "drift": drift},
            )

        step = job({"kind": "step", "magnitude": 1.0})
        ramp = job({"kind": "linear", "magnitude": 1.0})
        assert step.session_key() != ramp.session_key()

    def test_admission_validates_drift_payloads(self):
        with pytest.raises(ValueError):
            JobSpec(
                workload={"key": "H2-4"},
                device={
                    "preset": "ibm_lagos_like",
                    "drift": {"kind": "quadratic"},
                },
            )
        with pytest.raises(ValueError):
            JobSpec(
                workload={"key": "H2-4"},
                device={
                    "preset": "ibm_lagos_like",
                    "drift": {"kind": "step", "magnitdue": 2.0},
                },
            )
