"""Unit tests for the engine's bounded LRU cache."""

import pytest

from repro.engine import LRUCache


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_eviction_respects_bound(self):
        cache = LRUCache(3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert cache.stats.evictions == 7
        # Only the three most recent entries survive.
        assert 9 in cache and 8 in cache and 7 in cache
        assert 0 not in cache

    def test_lru_ordering(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" so "b" is the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_zero_size_disables_storage(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_put_existing_key_updates_without_eviction(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert cache.stats.evictions == 0

    def test_clear_keeps_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_empty_hit_rate_is_zero(self):
        assert LRUCache(2).stats.hit_rate == 0.0
