"""Unit tests for the engine's bounded LRU cache."""

import numpy as np
import pytest

from repro.engine import EngineConfig, ExecutionEngine, LRUCache
from repro.engine.cache import approx_nbytes
from repro.sim import PMF


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_eviction_respects_bound(self):
        cache = LRUCache(3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert cache.stats.evictions == 7
        # Only the three most recent entries survive.
        assert 9 in cache and 8 in cache and 7 in cache
        assert 0 not in cache

    def test_lru_ordering(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" so "b" is the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_zero_size_disables_storage(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_put_existing_key_updates_without_eviction(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert cache.stats.evictions == 0

    def test_clear_keeps_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_empty_hit_rate_is_zero(self):
        assert LRUCache(2).stats.hit_rate == 0.0


class TestByteBound:
    def test_approx_nbytes_understands_payloads(self):
        state = np.zeros(2**6, dtype=complex)
        assert approx_nbytes(state) >= state.nbytes
        pmf = PMF.uniform(6)
        assert approx_nbytes(pmf) >= pmf.probs.nbytes

    def test_byte_budget_evicts_before_entry_cap(self):
        # Each value is ~8 KiB; a 20 KiB budget holds only two of them
        # even though the entry cap would allow 100.
        cache = LRUCache(100, max_bytes=20 * 1024)
        for i in range(5):
            cache.put(i, np.zeros(1024))
        assert len(cache) == 2
        assert cache.stats.evictions == 3
        assert 4 in cache and 3 in cache
        assert cache.bytes <= 20 * 1024

    def test_oversized_value_not_retained(self):
        cache = LRUCache(4, max_bytes=1024)
        cache.put("big", np.zeros(1024))  # 8 KiB > the whole budget
        assert "big" not in cache
        assert cache.bytes == 0

    def test_oversized_value_does_not_flush_smaller_entries(self):
        cache = LRUCache(8, max_bytes=8 * 1024)
        cache.put("a", np.zeros(256))
        cache.put("b", np.zeros(256))
        cache.put("big", np.zeros(4096))  # 32 KiB > the whole budget
        assert "big" not in cache
        assert "a" in cache and "b" in cache
        assert cache.stats.evictions == 0

    def test_oversized_replacement_drops_stale_value(self):
        cache = LRUCache(8, max_bytes=8 * 1024)
        cache.put("a", np.zeros(256))
        cache.put("a", np.zeros(4096))  # replacement exceeds the budget
        assert "a" not in cache
        assert cache.bytes == 0

    def test_replacing_key_updates_byte_accounting(self):
        cache = LRUCache(4, max_bytes=1 << 20)
        cache.put("a", np.zeros(1024))
        before = cache.bytes
        cache.put("a", np.zeros(2048))
        assert cache.bytes > before
        cache.clear()
        assert cache.bytes == 0

    def test_zero_max_bytes_is_unbounded(self):
        cache = LRUCache(8, max_bytes=0)
        for i in range(8):
            cache.put(i, np.zeros(4096))
        assert len(cache) == 8
        assert cache.stats.evictions == 0

    def test_negative_max_bytes_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(4, max_bytes=-1)


class TestEngineByteBudgets:
    def test_auto_budget_scales_with_device_width(self, backend):
        engine = ExecutionEngine(backend)
        n = backend.device.n_qubits
        expected = max(16 * 2**20, 8 * 2**n * 32)
        assert engine._pmf_cache.max_bytes == expected
        assert engine._state_cache.max_bytes == max(
            16 * 2**20, 16 * 2**n * 16
        )

    def test_explicit_budget_overrides_auto(self, backend):
        engine = ExecutionEngine(
            backend,
            EngineConfig(cache_bytes=4096, state_cache_bytes=0),
        )
        assert engine._pmf_cache.max_bytes == 4096
        assert engine._state_cache.max_bytes == 0

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(cache_bytes=-1)
        with pytest.raises(ValueError):
            EngineConfig(state_cache_bytes=-2)

    def test_stats_surface_byte_budgets(self, backend):
        engine = ExecutionEngine(backend, EngineConfig(cache_bytes=1 << 20))
        stats = engine.stats
        assert stats.pmf_cache.max_bytes == 1 << 20
        assert stats.pmf_cache.bytes == 0
