"""Compiled-plan cache behavior and plan-path bit-identity."""

import numpy as np
import pytest

from repro.backends.clifford import CliffordBackend
from repro.backends.density import DensityBackend
from repro.engine import EngineConfig
from repro.engine.engine import ExecutionEngine
from repro.engine.spec import CircuitSpec
from repro.circuits import Circuit
from repro.noise import DeviceModel, ReadoutErrorModel, SimulatorBackend


def ansatz(theta, phi=0.25):
    qc = Circuit(3)
    qc.h(0)
    qc.cx(0, 1)
    qc.ry(theta, 2)
    qc.cx(1, 2)
    qc.rz(phi, 0)
    qc.measure((0, 1, 2))
    return qc


def run_trace(engine, thetas, shots=128):
    batch = engine.new_batch()
    handles = [
        batch.submit(CircuitSpec(ansatz(t), shots, False)) for t in thetas
    ]
    batch.run()
    return handles


class TestPlanCache:
    def test_one_plan_serves_every_binding(self, backend):
        engine = ExecutionEngine(backend, EngineConfig())
        run_trace(engine, [0.1, 0.2, 0.3])
        stats = engine.stats.plan_cache
        # One structure: a single compile, reused for the whole batch
        # (hit counts depend on grouping, misses must stay at one).
        assert stats.misses == 1
        run_trace(engine, [0.4, 0.5])
        after = engine.stats.plan_cache
        assert after.misses == 1
        assert after.hits > stats.hits
        engine.close()

    def test_distinct_structures_compile_separately(self, backend):
        engine = ExecutionEngine(backend, EngineConfig())
        other = ansatz(0.1)
        other.x(2)
        batch = engine.new_batch()
        batch.submit(CircuitSpec(ansatz(0.1), 64, False))
        batch.submit(CircuitSpec(other, 64, False))
        batch.run()
        assert engine.stats.plan_cache.misses == 2
        engine.close()

    def test_clear_caches_drops_plans(self, backend):
        engine = ExecutionEngine(backend, EngineConfig())
        run_trace(engine, [0.1])
        assert engine.stats.plan_cache.size == 1
        engine.clear_caches()
        assert engine.stats.plan_cache.size == 0
        engine.close()

    def test_plan_cache_size_zero_disables_the_plan_path(self, backend):
        engine = ExecutionEngine(
            backend, EngineConfig(plan_cache_size=0)
        )
        assert not engine._plan_batching
        assert not engine._plan_prepare
        assert not engine._suffix_plans
        run_trace(engine, [0.1, 0.2])
        stats = engine.stats.plan_cache
        assert stats.misses == 0 and stats.hits == 0
        engine.close()


class TestPlanPathBitIdentity:
    def test_plan_path_matches_scalar_path_bitwise(self, noisy_device):
        thetas = [0.1, 0.7, -1.3, 0.7]

        def run(plan_cache_size):
            backend = SimulatorBackend(noisy_device, seed=7)
            engine = ExecutionEngine(
                backend,
                EngineConfig(
                    cache_size=0,
                    state_cache_size=0,
                    plan_cache_size=plan_cache_size,
                ),
            )
            handles = run_trace(engine, thetas)
            engine.close()
            return handles

        planned = run(64)
        scalar = run(0)
        for a, b in zip(planned, scalar):
            assert np.array_equal(a.pmf().probs, b.pmf().probs)
            assert a.result().data == b.result().data

    def test_prepare_states_matches_prepare_state_bitwise(
        self, noisy_device
    ):
        circuits = [ansatz(t) for t in (0.3, 0.9, 0.3, -2.0)]
        batched_engine = ExecutionEngine(
            SimulatorBackend(noisy_device, seed=7), EngineConfig()
        )
        single_engine = ExecutionEngine(
            SimulatorBackend(noisy_device, seed=7), EngineConfig()
        )
        batched = batched_engine.prepare_states(circuits)
        singles = [single_engine.prepare_state(c) for c in circuits]
        for a, b in zip(batched, singles):
            assert np.array_equal(a, b)
        batched_engine.close()
        single_engine.close()


class TestCapabilityGating:
    def test_dense_backend_supports_plan_batching(self, backend):
        assert backend.supports_plan_batching()
        assert backend.supports_suffix_plans()

    @pytest.mark.parametrize("cls", [CliffordBackend, DensityBackend])
    def test_overriding_backends_are_excluded(self, cls, noisy_device):
        backend = cls(noisy_device, seed=7)
        assert not backend.supports_plan_batching()
        engine = ExecutionEngine(backend, EngineConfig())
        assert not engine._plan_batching

    def test_noise_pipeline_override_disables_batching(self, noisy_device):
        class CustomNoise(SimulatorBackend):
            def _pmf_from_probs(self, *args, **kwargs):
                return super()._pmf_from_probs(*args, **kwargs)

        backend = CustomNoise(noisy_device, seed=7)
        assert not backend.supports_plan_batching()
        assert not backend.supports_suffix_plans()


class TestVectorizedFinisher:
    def test_batch_rows_match_scalar_pipeline_bitwise(self, backend):
        rng = np.random.default_rng(11)
        rows = []
        for _ in range(6):
            probs = rng.random(8)
            rows.append((probs, 3, (0, 2), False, (4, 2)))
        rows.append((rng.random(8), 3, (0, 1, 2), True, (0, 0)))
        batch = backend.exact_pmfs_from_probs_batch(rows)
        for row, pmf in zip(rows, batch):
            expected = backend._pmf_from_probs(
                row[0], row[1], list(row[2]), row[3], row[4]
            )
            assert pmf.qubits == expected.qubits
            assert np.array_equal(pmf.probs, expected.probs)

    def test_custom_readout_falls_back_to_scalar_rows(self, noisy_device):
        class TracingReadout(ReadoutErrorModel):
            pass

        readout = noisy_device.readout
        device = DeviceModel(
            noisy_device.name,
            TracingReadout(
                readout.qubit_errors,
                readout.crosstalk_strength,
                readout.scale,
            ),
            noisy_device.gate_noise,
            noisy_device.topology,
        )
        backend = SimulatorBackend(device, seed=7)
        probs = np.full(8, 1 / 8)
        rows = [(probs, 3, (0, 1, 2), False, (2, 1))]
        batch = backend.exact_pmfs_from_probs_batch(rows)
        expected = backend._pmf_from_probs(probs, 3, [0, 1, 2], False, (2, 1))
        assert np.array_equal(batch[0].probs, expected.probs)
