"""Behavioral tests for ExecutionEngine: dedup, caching, charging, RNG."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.engine import (
    CircuitSpec,
    EngineConfig,
    ExecutionEngine,
    StateSpec,
    circuit_fingerprint,
    ensure_engine,
)
from repro.noise import SimulatorBackend
from repro.pauli import PauliString


def ghz(n=3):
    qc = Circuit(n)
    qc.h(0)
    for q in range(n - 1):
        qc.cx(q, q + 1)
    qc.measure_all()
    return qc


class TestDedupFanOut:
    def test_identical_specs_simulate_once_but_charge_per_spec(self, backend):
        engine = ExecutionEngine(backend)
        batch = engine.new_batch()
        handles = [batch.submit_circuit(ghz(), shots=100) for _ in range(4)]
        batch.run()
        stats = engine.stats
        assert stats.simulations == 1
        assert stats.dedup_coalesced == 3
        # Ledger: one circuit + 100 shots per *submitted* spec.
        assert backend.circuits_run == 4
        assert backend.shots_run == 400
        # Every handle got its own sampled result over the right qubits.
        for h in handles:
            assert h.result().shots == 100
            assert h.result().qubits == (0, 1, 2)

    def test_duplicates_sample_independently(self, backend):
        engine = ExecutionEngine(backend)
        batch = engine.new_batch()
        h1 = batch.submit_circuit(ghz(), shots=4096)
        h2 = batch.submit_circuit(ghz(), shots=4096)
        batch.run()
        # Same exact PMF underneath, but independent shot noise on top.
        assert h1.pmf() is h2.pmf()
        assert h1.result().data != h2.result().data

    def test_different_shots_share_one_simulation(self, backend):
        engine = ExecutionEngine(backend)
        batch = engine.new_batch()
        batch.submit_circuit(ghz(), shots=10)
        batch.submit_circuit(ghz(), shots=20)
        batch.run()
        assert engine.stats.simulations == 1
        assert backend.circuits_run == 2
        assert backend.shots_run == 30


class TestPMFCache:
    def test_hits_across_batches(self, backend):
        engine = ExecutionEngine(backend)
        engine.run_spec(CircuitSpec(ghz(), shots=10))
        engine.run_spec(CircuitSpec(ghz(), shots=10))
        stats = engine.stats.pmf_cache
        assert stats.misses == 1
        assert stats.hits == 1
        assert engine.stats.simulations == 1
        assert backend.circuits_run == 2

    def test_eviction_respects_configured_bound(self, backend):
        engine = ExecutionEngine(backend, EngineConfig(cache_size=2))
        circuits = []
        for theta in (0.1, 0.2, 0.3, 0.4):
            qc = Circuit(2)
            qc.ry(theta, 0)
            qc.cx(0, 1)
            qc.measure_all()
            circuits.append(qc)
        for qc in circuits:
            engine.run_spec(CircuitSpec(qc, shots=5))
        stats = engine.stats.pmf_cache
        assert stats.size <= 2
        assert stats.evictions == 2

    def test_cache_disabled_resimulates(self, backend):
        engine = ExecutionEngine(backend, EngineConfig(cache_size=0))
        engine.run_spec(CircuitSpec(ghz(), shots=10))
        engine.run_spec(CircuitSpec(ghz(), shots=10))
        assert engine.stats.simulations == 2

    def test_caching_does_not_change_results(self, noisy_device):
        outcomes = []
        for size in (0, 64):
            backend = SimulatorBackend(noisy_device, seed=11)
            engine = ExecutionEngine(backend, EngineConfig(cache_size=size))
            counts = [
                engine.run_spec(CircuitSpec(ghz(), shots=50)).data
                for _ in range(3)
            ]
            outcomes.append(counts)
        assert outcomes[0] == outcomes[1]


class TestStatePreparation:
    def test_prepare_state_cached_and_uncharged(self, backend, h2_workload):
        engine = ExecutionEngine(backend)
        circ = h2_workload.ansatz.bind(
            np.zeros(h2_workload.ansatz.num_parameters)
        )
        s1 = engine.prepare_state(circ)
        s2 = engine.prepare_state(circ)
        assert s1 is s2
        assert engine.stats.state_cache.hits == 1
        assert backend.circuits_run == 0


class TestRNGModes:
    def test_shared_mode_matches_direct_backend_path(self, noisy_device):
        direct = SimulatorBackend(noisy_device, seed=3)
        c_direct = [direct.run(ghz(), shots=64) for _ in range(3)]

        engined = SimulatorBackend(noisy_device, seed=3)
        engine = ExecutionEngine(engined)
        batch = engine.new_batch()
        handles = [batch.submit_circuit(ghz(), shots=64) for _ in range(3)]
        batch.run()
        for direct_counts, handle in zip(c_direct, handles):
            assert handle.result().data == direct_counts.data
        assert (direct.circuits_run, direct.shots_run) == (
            engined.circuits_run,
            engined.shots_run,
        )

    @pytest.mark.parametrize("workers", [1, 3])
    def test_per_job_mode_reproducible_across_worker_counts(
        self, noisy_device, workers
    ):
        def run(workers):
            backend = SimulatorBackend(noisy_device, seed=5)
            engine = ExecutionEngine(
                backend,
                EngineConfig(workers=workers, rng_mode="per_job"),
            )
            batch = engine.new_batch()
            handles = []
            for pauli in ("XXX", "YYY", "ZZZ", "XYZ"):
                suffix = PauliString(pauli).basis_rotation()
                state = engine.prepare_state(ghz())
                handles.append(
                    batch.submit_state(state, suffix, range(3), shots=32)
                )
            batch.run()
            engine.close()
            return [h.result().data for h in handles]

        assert run(1) == run(workers)


class TestWorkers:
    def test_thread_pool_matches_serial_in_shared_mode(self, noisy_device):
        def run(workers):
            backend = SimulatorBackend(noisy_device, seed=9)
            engine = ExecutionEngine(backend, EngineConfig(workers=workers))
            batch = engine.new_batch()
            handles = []
            for theta in np.linspace(0.0, 1.0, 6):
                qc = Circuit(3)
                qc.ry(float(theta), 0)
                qc.cx(0, 1)
                qc.cx(1, 2)
                qc.measure_all()
                handles.append(batch.submit_circuit(qc, shots=40))
            batch.run()
            engine.close()
            return [h.result().data for h in handles], backend.circuits_run

        assert run(1) == run(4)


class TestBatchLifecycle:
    def test_result_before_run_raises(self, backend):
        engine = ExecutionEngine(backend)
        handle = engine.new_batch().submit_circuit(ghz(), shots=5)
        assert not handle.done()
        with pytest.raises(RuntimeError):
            handle.result()

    def test_batch_runs_only_once(self, backend):
        engine = ExecutionEngine(backend)
        batch = engine.new_batch()
        batch.submit_circuit(ghz(), shots=5)
        batch.run()
        with pytest.raises(RuntimeError):
            batch.run()
        with pytest.raises(RuntimeError):
            batch.submit_circuit(ghz(), shots=5)

    def test_empty_batch_is_a_no_op(self, backend):
        engine = ExecutionEngine(backend)
        assert engine.new_batch().run() == []
        assert backend.circuits_run == 0


class TestSpecs:
    def test_unmeasured_circuit_rejected(self):
        qc = Circuit(2)
        qc.h(0)
        with pytest.raises(ValueError):
            CircuitSpec(qc, shots=10)

    def test_nonpositive_shots_rejected(self):
        with pytest.raises(ValueError):
            CircuitSpec(ghz(), shots=0)
        with pytest.raises(ValueError):
            StateSpec(
                state=np.array([1.0 + 0j, 0.0]),
                suffix=None,
                measured_qubits=(0,),
                shots=0,
            )

    def test_unbound_circuit_fingerprint_rejected(self):
        from repro.circuits.parameter import Parameter

        qc = Circuit(1)
        qc.ry(Parameter("theta"), 0)
        qc.measure_all()
        with pytest.raises(ValueError):
            circuit_fingerprint(qc)

    def test_fingerprint_sensitivity(self):
        base = ghz()
        assert circuit_fingerprint(base) == circuit_fingerprint(ghz())
        other = ghz()
        other.z(2)
        assert circuit_fingerprint(base) != circuit_fingerprint(other)

    def test_device_config_partitions_the_cache(self, noisy_device):
        # Same circuit, different noise flags -> distinct cache entries.
        b1 = SimulatorBackend(noisy_device, seed=1)
        b2 = SimulatorBackend(noisy_device, seed=1, readout_enabled=False)
        from repro.engine import device_fingerprint

        assert device_fingerprint(b1) != device_fingerprint(b2)


class TestEnsureEngine:
    def test_none_builds_default(self, backend):
        engine = ensure_engine(None, backend)
        assert isinstance(engine, ExecutionEngine)
        assert engine.backend is backend

    def test_none_resolves_to_shared_engine_per_backend(self, backend):
        # Estimators that don't ask for a specific engine pool one
        # engine (and its caches) per backend.
        assert ensure_engine(None, backend) is ensure_engine(None, backend)

    def test_estimators_on_one_backend_share_the_engine(
        self, h2_workload, backend
    ):
        from repro import make_estimator

        baseline = make_estimator("baseline", h2_workload, backend, shots=32)
        jigsaw = make_estimator("jigsaw", h2_workload, backend, shots=32)
        assert baseline.engine is jigsaw.engine

    def test_config_still_builds_private_engines(self, backend):
        config = EngineConfig(cache_size=8)
        first = ensure_engine(config, backend)
        second = ensure_engine(config, backend)
        assert first is not second
        assert first is not ensure_engine(None, backend)

    def test_config_builds_engine(self, backend):
        engine = ensure_engine(EngineConfig(workers=2), backend)
        assert engine.config.workers == 2
        engine.close()

    def test_existing_engine_passes_through(self, backend):
        engine = ExecutionEngine(backend)
        assert ensure_engine(engine, backend) is engine

    def test_mismatched_backend_rejected(self, backend, noisy_device):
        other = SimulatorBackend(noisy_device, seed=0)
        with pytest.raises(ValueError):
            ensure_engine(ExecutionEngine(other), backend)

    def test_bad_type_rejected(self, backend):
        with pytest.raises(TypeError):
            ensure_engine("turbo", backend)


class TestConfigValidation:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(workers=0)
        with pytest.raises(ValueError):
            EngineConfig(cache_size=-1)
        with pytest.raises(ValueError):
            EngineConfig(rng_mode="chaotic")
