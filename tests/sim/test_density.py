"""Unit tests for the density-matrix reference simulator."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.pauli import PauliString
from repro.sim import (
    DensityMatrix,
    amplitude_damping_kraus,
    depolarizing_kraus,
    probabilities,
    run_density_matrix,
    run_statevector,
)


def bell() -> Circuit:
    qc = Circuit(2)
    qc.h(0)
    qc.cx(0, 1)
    return qc


class TestKrausChannels:
    @pytest.mark.parametrize("p", [0.0, 0.1, 0.5, 1.0])
    def test_depolarizing_trace_preserving(self, p):
        ops = depolarizing_kraus(p)
        total = sum(k.conj().T @ k for k in ops)
        assert np.allclose(total, np.eye(2))

    @pytest.mark.parametrize("g", [0.0, 0.3, 1.0])
    def test_damping_trace_preserving(self, g):
        ops = amplitude_damping_kraus(g)
        total = sum(k.conj().T @ k for k in ops)
        assert np.allclose(total, np.eye(2))

    def test_bounds(self):
        with pytest.raises(ValueError):
            depolarizing_kraus(1.5)
        with pytest.raises(ValueError):
            amplitude_damping_kraus(-0.1)

    def test_full_depolarizing_mixes_completely(self):
        rho = DensityMatrix.zero_state(1)
        rho.apply_channel(depolarizing_kraus(1.0), 0)
        assert np.allclose(rho.matrix, np.eye(2) / 2)

    def test_damping_decays_excited_state(self):
        qc = Circuit(1)
        qc.x(0)
        rho = run_density_matrix(qc, amplitude_damping=0.25)
        # After X and one damping step: p(|1>) = 0.75.
        assert rho.probabilities()[1] == pytest.approx(0.75)


class TestDensityMatrix:
    def test_zero_state(self):
        rho = DensityMatrix.zero_state(2)
        assert rho.trace() == pytest.approx(1.0)
        assert rho.purity() == pytest.approx(1.0)
        assert rho.probabilities()[0] == pytest.approx(1.0)

    def test_from_statevector_pure(self):
        state = run_statevector(bell())
        rho = DensityMatrix.from_statevector(state)
        assert rho.purity() == pytest.approx(1.0)

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            DensityMatrix(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            DensityMatrix(np.zeros((3, 3)))

    def test_expectation_matches_statevector(self):
        state = run_statevector(bell())
        rho = DensityMatrix.from_statevector(state)
        for label in ("ZZ", "XX", "ZI"):
            op = PauliString(label).to_matrix()
            expected = np.vdot(state, op @ state).real
            assert rho.expectation(op) == pytest.approx(expected)

    def test_partial_trace_bell(self):
        state = run_statevector(bell())
        rho = DensityMatrix.from_statevector(state)
        reduced = rho.partial_trace([0])
        # Each half of a Bell pair is maximally mixed.
        assert np.allclose(reduced.matrix, np.eye(2) / 2)
        assert reduced.purity() == pytest.approx(0.5)

    def test_partial_trace_keep_order(self):
        qc = Circuit(2)
        qc.x(1)
        rho = run_density_matrix(qc)
        keep1 = rho.partial_trace([1])
        assert keep1.probabilities()[1] == pytest.approx(1.0)


class TestRunDensityMatrix:
    def test_noiseless_matches_statevector(self):
        qc = Circuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.ry(0.6, 2)
        qc.cz(1, 2)
        rho = run_density_matrix(qc)
        assert np.allclose(
            rho.probabilities(), probabilities(run_statevector(qc))
        )
        assert rho.purity() == pytest.approx(1.0)

    def test_gate_noise_reduces_purity(self):
        rho = run_density_matrix(bell(), gate_error_2q=0.05)
        assert rho.purity() < 1.0
        assert rho.trace() == pytest.approx(1.0)

    def test_unbound_rejected(self):
        from repro.circuits import Parameter

        qc = Circuit(1)
        qc.rx(Parameter("a"), 0)
        with pytest.raises(ValueError):
            run_density_matrix(qc)

    def test_validates_rates(self):
        with pytest.raises(ValueError):
            run_density_matrix(bell(), gate_error_1q=2.0)

    def test_global_depolarizing_approximation_quality(self):
        """The fast backend's uniform-mix approximation tracks the true
        local-channel result on the Bell circuit's distribution."""
        error = 0.02
        exact = run_density_matrix(bell(), gate_error_1q=error,
                                   gate_error_2q=error)
        exact_probs = exact.probabilities()
        ideal = probabilities(run_statevector(bell()))
        # Fast approximation: mix toward uniform with the survival model.
        lam = 1.0 - (1.0 - error) ** 1 * (1.0 - error) ** 1
        approx = (1 - lam) * ideal + lam * np.full(4, 0.25)
        assert np.abs(exact_probs - approx).max() < 0.02

    def test_noise_contracts_pauli_expectations(self):
        zz = PauliString("ZZ").to_matrix()
        clean = run_density_matrix(bell())
        noisy = run_density_matrix(bell(), gate_error_2q=0.1)
        assert abs(noisy.expectation(zz)) < abs(clean.expectation(zz))
