"""Unit tests for the statevector engine."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit, Parameter
from repro.sim import apply_gate, probabilities, run_statevector, zero_state


class TestZeroState:
    def test_shape_and_norm(self):
        state = zero_state(3)
        assert state.shape == (8,)
        assert state[0] == 1.0
        assert np.isclose(np.linalg.norm(state), 1.0)


class TestApplyGate:
    def test_x_on_msb_qubit(self):
        # Qubit 0 is the most significant bit: X(q0)|000> = |100>.
        state = zero_state(3)
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        out = apply_gate(state, x, (0,), 3)
        assert np.isclose(out[0b100], 1.0)

    def test_x_on_lsb_qubit(self):
        state = zero_state(3)
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        out = apply_gate(state, x, (2,), 3)
        assert np.isclose(out[0b001], 1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            apply_gate(zero_state(2), np.eye(4), (0,), 2)


class TestRunStatevector:
    def test_ghz_state(self):
        qc = Circuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.cx(1, 2)
        state = run_statevector(qc)
        probs = probabilities(state)
        assert np.isclose(probs[0b000], 0.5)
        assert np.isclose(probs[0b111], 0.5)

    def test_bell_state(self):
        qc = Circuit(2)
        qc.h(0)
        qc.cx(0, 1)
        probs = probabilities(run_statevector(qc))
        assert np.allclose(probs, [0.5, 0, 0, 0.5])

    def test_unbound_circuit_rejected(self):
        qc = Circuit(1)
        qc.rx(Parameter("a"), 0)
        with pytest.raises(ValueError, match="unbound"):
            run_statevector(qc)

    def test_identity_gate_noop(self):
        qc = Circuit(1)
        qc.i(0)
        assert np.allclose(run_statevector(qc), zero_state(1))

    def test_initial_state_resume(self):
        # Running H then X equals running H, capturing, then X from capture.
        full = Circuit(1)
        full.h(0)
        full.x(0)
        prefix = Circuit(1)
        prefix.h(0)
        suffix = Circuit(1)
        suffix.x(0)
        mid = run_statevector(prefix)
        assert np.allclose(
            run_statevector(full),
            run_statevector(suffix, initial_state=mid),
        )

    def test_initial_state_wrong_shape(self):
        qc = Circuit(2)
        qc.h(0)
        with pytest.raises(ValueError):
            run_statevector(qc, initial_state=zero_state(3))

    def test_rotation_angle_sweep_normalized(self):
        for theta in np.linspace(0, 2 * math.pi, 7):
            qc = Circuit(2)
            qc.ry(float(theta), 0)
            qc.cx(0, 1)
            state = run_statevector(qc)
            assert np.isclose(np.linalg.norm(state), 1.0)

    def test_swap_gate(self):
        qc = Circuit(2)
        qc.x(0)
        qc.swap(0, 1)
        probs = probabilities(run_statevector(qc))
        assert np.isclose(probs[0b01], 1.0)

    def test_cz_phase(self):
        qc = Circuit(2)
        qc.x(0)
        qc.x(1)
        qc.cz(0, 1)
        state = run_statevector(qc)
        assert np.isclose(state[0b11], -1.0)


class TestProbabilities:
    def test_renormalizes(self):
        state = np.array([1.0, 1.0], dtype=complex)
        assert np.allclose(probabilities(state), [0.5, 0.5])

    def test_zero_norm_rejected(self):
        with pytest.raises(ValueError):
            probabilities(np.zeros(2, dtype=complex))
