"""Unit tests for compiled circuit plans."""

import numpy as np
import pytest

from repro.circuits import Circuit, Parameter, gate_matrix
from repro.sim import probabilities, run_statevector
from repro.sim.plan import compile_plan, structure_fingerprint
from repro.sim.statevector import apply_gate, zero_state


def interpret(circuit, initial_state=None):
    """The historical gate-by-gate tensordot interpreter (reference)."""
    state = (
        zero_state(circuit.n_qubits)
        if initial_state is None
        else initial_state.astype(complex, copy=True)
    )
    for ins in circuit.instructions:
        if ins.name == "i":
            continue
        state = apply_gate(
            state,
            gate_matrix(ins.name, ins.param),
            ins.qubits,
            circuit.n_qubits,
        )
    return state


def ansatz(theta=0.3, phi=-1.1):
    qc = Circuit(3)
    qc.h(0)
    qc.cx(0, 1)
    qc.ry(theta, 2)
    qc.cx(1, 2)
    qc.rz(phi, 0)
    qc.measure((0, 1, 2))
    return qc


class TestStructureFingerprint:
    def test_parameters_do_not_change_the_key(self):
        assert structure_fingerprint(ansatz(0.1, 0.2)) == (
            structure_fingerprint(ansatz(2.5, -0.9))
        )

    def test_structure_changes_the_key(self):
        other = ansatz()
        other.x(1)
        assert structure_fingerprint(ansatz()) != (
            structure_fingerprint(other)
        )

    def test_measurement_set_is_excluded(self):
        partial = ansatz()
        full = ansatz()
        full.measure((0, 1, 2))
        partial_only = Circuit(3)
        assert structure_fingerprint(partial) == structure_fingerprint(full)
        assert structure_fingerprint(partial) != (
            structure_fingerprint(partial_only)
        )

    def test_unbound_circuits_are_compilable_structures(self):
        qc = Circuit(1)
        qc.ry(Parameter("a"), 0)
        bound = Circuit(1)
        bound.ry(0.7, 0)
        assert structure_fingerprint(qc) == structure_fingerprint(bound)


class TestCompile:
    def test_gate_load_counts_the_original_instructions(self):
        # x(0) x(0) fuses away, but depolarizing noise must still be
        # charged for both gates: the plan records pre-fusion counts.
        qc = Circuit(2)
        qc.x(0)
        qc.x(0)
        qc.cx(0, 1)
        plan = compile_plan(qc)
        assert plan.gate_load == (2, 1)
        assert plan.fused_gates == 2
        assert len(plan._ops) == 1

    def test_identity_gates_are_dropped_like_the_interpreter(self):
        qc = Circuit(1)
        qc.i(0)
        qc.x(0)
        plan = compile_plan(qc)
        assert len(plan._ops) == 1
        assert plan.fused_gates == 1

    def test_h_pairs_are_not_fused(self):
        # H·H only rounds to identity; the bit-exact plan keeps both.
        qc = Circuit(1)
        qc.h(0)
        qc.h(0)
        assert len(compile_plan(qc)._ops) == 2

    def test_rotation_slots_in_instruction_order(self):
        plan = compile_plan(ansatz())
        assert plan.num_slots == 2
        assert plan.slot_values(ansatz(0.5, 1.5)) == [0.5, 1.5]


class TestBinding:
    def test_unbound_parameter_rejected_at_binding(self):
        qc = Circuit(1)
        qc.ry(Parameter("a"), 0)
        plan = compile_plan(qc)
        with pytest.raises(ValueError, match="unbound parameter"):
            plan.slot_values(qc)

    def test_slot_count_mismatch_rejected(self):
        plan = compile_plan(ansatz())
        extra = ansatz()
        extra.rx(0.1, 1)
        with pytest.raises(ValueError, match="rotation parameters"):
            plan.slot_values(extra)
        with pytest.raises(ValueError, match="slot values"):
            plan.run([0.1])

    def test_wrong_initial_state_shape_rejected(self):
        plan = compile_plan(ansatz())
        with pytest.raises(ValueError, match="wrong shape"):
            plan.run([0.1, 0.2], initial_state=np.ones(4, dtype=complex))


class TestExecution:
    def test_run_matches_interpreter_bitwise(self):
        qc = ansatz(0.7, -0.4)
        plan = compile_plan(qc)
        planned = probabilities(plan.run(plan.slot_values(qc)))
        direct = probabilities(interpret(qc))
        assert np.array_equal(planned, direct)

    def test_run_statevector_routes_through_a_plan(self):
        qc = ansatz(0.7, -0.4)
        assert np.array_equal(
            probabilities(run_statevector(qc)),
            probabilities(interpret(qc)),
        )

    def test_run_from_initial_state(self):
        qc = Circuit(2)
        qc.cx(0, 1)
        plan = compile_plan(qc)
        state = np.zeros(4, dtype=complex)
        state[0b10] = 1.0
        out = plan.run([], initial_state=state)
        assert np.array_equal(
            probabilities(out), probabilities(interpret(qc, state))
        )
        # The caller's array is copied, never evolved in place.
        assert state[0b10] == 1.0

    def test_empty_circuit_plan_is_the_identity(self):
        plan = compile_plan(Circuit(2))
        out = plan.run([])
        assert out[0] == 1.0 and np.count_nonzero(out) == 1

    def test_run_batch_rows_match_run(self):
        qc = ansatz()
        plan = compile_plan(qc)
        bindings = [[0.1, 0.2], [1.3, -0.7], [0.0, 3.1]]
        batch = plan.run_batch(bindings)
        assert batch.shape == (3, 8)
        for row, values in zip(batch, bindings):
            assert np.array_equal(row, plan.run(values))

    def test_run_batch_empty(self):
        plan = compile_plan(ansatz())
        assert compile_plan(ansatz()).run_batch([]).shape == (0, 8)
        assert plan.run_batch([]).dtype == complex

    def test_fused_plan_probabilities_still_match(self):
        # A bit-exact pair around a disjoint-qubit gate cancels in the
        # plan, yet every probability bit survives.
        qc = Circuit(2)
        qc.x(0)
        qc.ry(0.9, 1)
        qc.x(0)
        qc.cx(0, 1)
        plan = compile_plan(qc)
        assert plan.fused_gates == 2
        assert np.array_equal(
            probabilities(plan.run(plan.slot_values(qc))),
            probabilities(interpret(qc)),
        )
