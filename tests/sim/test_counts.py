"""Unit tests for the Counts container."""

import numpy as np
import pytest

from repro.sim import PMF, Counts


class TestConstruction:
    def test_basic(self):
        counts = Counts({"00": 10, "11": 30}, qubits=(0, 1))
        assert counts.shots == 40
        assert counts["11"] == 30
        assert counts["01"] == 0

    def test_bad_bitstring_length(self):
        with pytest.raises(ValueError):
            Counts({"000": 1}, qubits=(0, 1))

    def test_bad_characters(self):
        with pytest.raises(ValueError):
            Counts({"0x": 1}, qubits=(0, 1))

    def test_negative_count(self):
        with pytest.raises(ValueError):
            Counts({"00": -1}, qubits=(0, 1))

    def test_zero_entries_dropped(self):
        counts = Counts({"00": 0, "01": 5}, qubits=(0, 1))
        assert set(counts) == {"01"}


class TestConversion:
    def test_to_pmf_normalizes(self):
        counts = Counts({"0": 1, "1": 3}, qubits=(5,))
        pmf = counts.to_pmf()
        assert pmf.qubits == (5,)
        assert np.allclose(pmf.probs, [0.25, 0.75])

    def test_empty_to_pmf_rejected(self):
        with pytest.raises(ValueError):
            Counts({}, qubits=(0,)).to_pmf()

    def test_from_pmf_samples_total(self, rng):
        counts = Counts.from_pmf_samples(PMF([0.5, 0.5]), 100, rng)
        assert counts.shots == 100

    def test_roundtrip_statistics(self, rng):
        pmf = PMF([0.1, 0.2, 0.3, 0.4])
        counts = Counts.from_pmf_samples(pmf, 100_000, rng)
        assert pmf.tvd(counts.to_pmf()) < 0.01


class TestMergeAndMode:
    def test_merge_adds(self):
        a = Counts({"0": 2}, qubits=(0,))
        b = Counts({"0": 3, "1": 1}, qubits=(0,))
        merged = a.merge(b)
        assert merged["0"] == 5 and merged["1"] == 1

    def test_merge_qubit_mismatch(self):
        with pytest.raises(ValueError):
            Counts({"0": 1}, qubits=(0,)).merge(Counts({"0": 1}, qubits=(1,)))

    def test_most_frequent(self):
        counts = Counts({"01": 5, "10": 9}, qubits=(0, 1))
        assert counts.most_frequent() == "10"

    def test_most_frequent_empty(self):
        with pytest.raises(ValueError):
            Counts({}, qubits=(0,)).most_frequent()
