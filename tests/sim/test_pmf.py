"""Unit tests for the PMF type."""

import numpy as np
import pytest

from repro.sim import PMF


class TestConstruction:
    def test_normalizes(self):
        pmf = PMF([1.0, 3.0])
        assert np.allclose(pmf.probs, [0.25, 0.75])

    def test_default_labels(self):
        assert PMF([0.5, 0.5]).qubits == (0,)
        assert PMF([0.25] * 4).qubits == (0, 1)

    def test_custom_labels(self):
        pmf = PMF([0.25] * 4, qubits=(3, 1))
        assert pmf.qubits == (3, 1)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            PMF([0.5, 0.25, 0.25])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PMF([0.5, -0.5])

    def test_zero_sum_rejected(self):
        with pytest.raises(ValueError):
            PMF([0.0, 0.0])

    def test_label_count_mismatch(self):
        with pytest.raises(ValueError):
            PMF([0.5, 0.5], qubits=(0, 1))

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            PMF([0.25] * 4, qubits=(1, 1))

    def test_uniform(self):
        pmf = PMF.uniform(3)
        assert np.allclose(pmf.probs, 1 / 8)

    def test_point(self):
        pmf = PMF.point(2, 0b10)
        assert pmf.prob_of("10") == 1.0


class TestAccessors:
    def test_prob_of_bitstring(self):
        pmf = PMF([0.1, 0.2, 0.3, 0.4])
        assert np.isclose(pmf.prob_of("11"), 0.4)

    def test_prob_of_wrong_length(self):
        with pytest.raises(ValueError):
            PMF([0.5, 0.5]).prob_of("00")

    def test_as_dict_cutoff(self):
        pmf = PMF([0.9, 0.1, 0.0, 0.0])
        d = pmf.as_dict()
        assert set(d) == {"00", "01"}


class TestMarginal:
    def test_marginal_of_product_distribution(self):
        # p(q0) = (0.7, 0.3), p(q1) = (0.4, 0.6), independent.
        joint = np.outer([0.7, 0.3], [0.4, 0.6]).reshape(-1)
        pmf = PMF(joint)
        assert np.allclose(pmf.marginal([0]).probs, [0.7, 0.3])
        assert np.allclose(pmf.marginal([1]).probs, [0.4, 0.6])

    def test_marginal_keeps_requested_order(self):
        joint = np.outer([0.7, 0.3], [0.4, 0.6]).reshape(-1)
        pmf = PMF(joint)
        swapped = pmf.marginal([1, 0])
        assert swapped.qubits == (1, 0)
        assert np.allclose(swapped.probs, np.outer([0.4, 0.6], [0.7, 0.3]).reshape(-1))

    def test_marginal_correlated(self):
        # Perfectly correlated bits: p(00) = p(11) = 0.5.
        pmf = PMF([0.5, 0.0, 0.0, 0.5])
        assert np.allclose(pmf.marginal([0]).probs, [0.5, 0.5])

    def test_marginal_full_set_is_identity(self):
        pmf = PMF([0.1, 0.2, 0.3, 0.4])
        assert np.allclose(pmf.marginal([0, 1]).probs, pmf.probs)

    def test_marginal_unknown_label(self):
        with pytest.raises(ValueError):
            PMF([0.5, 0.5]).marginal([3])

    def test_marginal_respects_labels(self):
        pmf = PMF([0.5, 0.0, 0.0, 0.5], qubits=(4, 7))
        marg = pmf.marginal([7])
        assert marg.qubits == (7,)
        assert np.allclose(marg.probs, [0.5, 0.5])


class TestDistances:
    def test_tvd_identical_zero(self):
        pmf = PMF([0.3, 0.7])
        assert pmf.tvd(pmf) == 0.0

    def test_tvd_disjoint_one(self):
        assert PMF([1.0, 0.0]).tvd(PMF([0.0, 1.0])) == 1.0

    def test_hellinger_bounds(self):
        a = PMF([0.3, 0.7])
        b = PMF([0.6, 0.4])
        assert 0.0 < a.hellinger(b) < 1.0

    def test_fidelity_identical_one(self):
        pmf = PMF([0.2, 0.8])
        assert np.isclose(pmf.fidelity(pmf), 1.0)

    def test_distance_label_mismatch(self):
        with pytest.raises(ValueError):
            PMF([0.5, 0.5], qubits=(0,)).tvd(PMF([0.5, 0.5], qubits=(1,)))


class TestSamplingAndMixing:
    def test_sample_counts_converges(self, rng):
        pmf = PMF([0.25, 0.75])
        emp = pmf.sample_counts(200_000, rng)
        assert pmf.tvd(emp) < 0.01

    def test_sample_needs_positive_shots(self, rng):
        with pytest.raises(ValueError):
            PMF([1.0, 0.0]).sample_counts(0, rng)

    def test_mix_weights(self):
        a = PMF([1.0, 0.0])
        b = PMF([0.0, 1.0])
        assert np.allclose(a.mix(b, 0.25).probs, [0.75, 0.25])

    def test_mix_weight_bounds(self):
        a = PMF([1.0, 0.0])
        with pytest.raises(ValueError):
            a.mix(a, 1.5)

    def test_relabel(self):
        pmf = PMF([0.5, 0.5]).relabel((9,))
        assert pmf.qubits == (9,)

    def test_equality(self):
        assert PMF([0.5, 0.5]) == PMF([1.0, 1.0])
        assert PMF([0.5, 0.5]) != PMF([0.4, 0.6])
