"""The hard invariant: observability never changes a result.

Every run here executes twice — tracing disabled, then enabled onto a
journal — and asserts byte-identical outputs: energies, ledgers, and
stored catalog records.  Spans only observe.
"""

import json

import pytest

from repro import obs
from repro.noise import SimulatorBackend, ibmq_mumbai_like
from repro.sweeps.runner import execute_tuning
from repro.workloads import make_workload


def tuning_outcome():
    """One small deterministic tuning run's complete numeric output."""
    workload = make_workload("H2-4")
    backend = SimulatorBackend(ibmq_mumbai_like(scale=2.0), seed=5)
    run = execute_tuning(
        "varsaw", workload, max_iterations=3, shots=64, seed=5,
        backend=backend,
    )
    return {
        "energy": run.energy,
        "history": list(run.result.energy_history),
        "circuits": run.result.circuits_executed,
        "shots": run.result.shots_executed,
        "ledger": (backend.circuits_run, backend.shots_run),
    }


class TestTuningParity:
    def test_results_identical_with_tracing_on(self, tmp_path):
        baseline = tuning_outcome()
        obs.enable(tmp_path / "trace.jsonl")
        traced = tuning_outcome()
        obs.disable()
        assert traced == baseline

    def test_trace_captured_engine_phases(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable(path)
        tuning_outcome()
        obs.disable()
        report = obs.render_trace_report(path)
        assert "engine.batch" in report
        assert "engine.simulate" in report
        assert "engine.sample" in report


class TestCatalogParity:
    """fig8 (a pure cost-model grid) reproduces identically traced."""

    @pytest.fixture
    def run_fig8(self, tmp_path):
        from repro.sweeps import ResultStore, reproduce

        def run(name):
            store = ResultStore(tmp_path / f"{name}.jsonl")
            (outcome,) = reproduce(["fig8"], store)
            # Stored records carry wall clocks/timestamps; the paper
            # numbers are the result payloads, keyed by fingerprint.
            return {
                record["fingerprint"]: json.dumps(
                    record["result"], sort_keys=True
                )
                for record in outcome.records
            }

        return run

    def test_records_identical_with_tracing_on(self, tmp_path, run_fig8):
        baseline = run_fig8("off")
        obs.enable(tmp_path / "trace.jsonl")
        traced = run_fig8("on")
        obs.disable()
        assert traced == baseline
        assert baseline  # the grid actually produced records

    def test_sweep_points_appear_in_the_trace(self, tmp_path, run_fig8):
        path = tmp_path / "trace.jsonl"
        obs.enable(path)
        run_fig8("traced")
        obs.disable()
        report = obs.render_trace_report(path)
        assert "sweep.point" in report
        assert "sweep points (" in report


class TestMetricsParity:
    def test_engine_counters_match_the_ledger(self):
        before = obs.REGISTRY.snapshot()
        outcome = tuning_outcome()
        delta = obs.snapshot_delta(obs.REGISTRY.snapshot(), before)
        assert delta["repro_engine_jobs_total"] == outcome["circuits"]
        assert delta["repro_engine_shots_total"] == outcome["shots"]
