"""The offline ``repro trace`` report over a synthetic span journal."""

import time

import pytest

from repro import obs
from repro.obs import load_trace, render_trace_report


@pytest.fixture
def trace_path(tmp_path):
    """A small journaled trace with nesting, points, and requests."""
    path = tmp_path / "trace.jsonl"
    obs.enable(path)
    with obs.span("sweep.point", label="pt-slow", task="tuning"):
        with obs.span("engine.batch", jobs=4):
            with obs.span("engine.simulate", simulations=3):
                time.sleep(0.01)  # the dominant phase, unambiguously
            obs.record("engine.sample", 0.0005)
    obs.record(
        "sweep.point", 0.001, label="pt-fast", task="tuning",
        executor="process",
    )
    obs.record(
        "serve.request", 0.002, tenant="alice", path="executed",
        queue_wait_s=0.001, state="complete",
    )
    obs.record(
        "serve.request", 0.001, tenant="bob", path="coalesced",
        queue_wait_s=0.001, state="complete",
    )
    obs.disable()
    return path


class TestLoadTrace:
    def test_records_sorted_by_span_id(self, trace_path):
        spans = load_trace(trace_path)
        ids = [record["span_id"] for record in spans]
        assert ids == sorted(ids)
        assert len(spans) == 7

    def test_id_order_is_topological(self, trace_path):
        spans = load_trace(trace_path)
        seen = set()
        for record in spans:
            parent = record["parent_id"]
            assert parent is None or parent in seen
            seen.add(record["span_id"])


class TestRenderReport:
    def test_all_sections_present(self, trace_path):
        report = render_trace_report(trace_path)
        assert "span tree (aggregated by name):" in report
        assert "critical path:" in report
        assert "spans by self time:" in report
        assert "sweep points (2 spans" in report
        assert "serve requests by tenant (2 spans):" in report

    def test_tree_nests_engine_phases_under_the_point(self, trace_path):
        report = render_trace_report(trace_path)
        tree = report.split("critical path:")[0]
        assert "engine.batch" in tree
        assert "engine.simulate" in tree

    def test_critical_path_descends_longest_children(self, trace_path):
        report = render_trace_report(trace_path)
        path_line = report.split("critical path:")[1].splitlines()[1]
        assert path_line.strip().startswith("sweep.point[label=pt-slow]")
        assert "engine.batch" in path_line

    def test_per_point_lists_slowest_first(self, trace_path):
        report = render_trace_report(trace_path)
        section = report.split("sweep points")[1]
        assert section.index("pt-slow") < section.index("pt-fast")

    def test_per_tenant_counts_paths(self, trace_path):
        report = render_trace_report(trace_path)
        section = report.split("serve requests by tenant")[1]
        assert "alice" in section and "1 executed" in section
        assert "bob" in section and "1 coalesced" in section

    def test_top_respects_limit(self, trace_path):
        report = render_trace_report(trace_path, top=1)
        assert "top 1 spans by self time:" in report
        assert "... and 1 more" in report  # 2 points, top=1

    def test_empty_journal(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert "no spans" in render_trace_report(path)
