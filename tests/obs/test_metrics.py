"""The metrics registry: instruments, Prometheus text, snapshots."""

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    snapshot_delta,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labeled_series_are_independent(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(tenant="alice")
        counter.inc(3, tenant="bob")
        assert counter.value(tenant="alice") == 1
        assert counter.value(tenant="bob") == 3
        assert counter.value(tenant="carol") == 0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_render_is_prometheus_text(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "Jobs executed")
        counter.inc(7, tenant="alice")
        text = registry.render()
        assert "# HELP jobs_total Jobs executed" in text
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{tenant="alice"} 7' in text


class TestGauge:
    def test_set_and_inc(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value() == 3

    def test_unset_series_renders_zero(self):
        registry = MetricsRegistry()
        registry.gauge("depth")
        assert "depth 0" in registry.render()


class TestHistogram:
    def test_cumulative_bucket_render(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        text = registry.render()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text
        assert hist.sum() == pytest.approx(6.05)

    def test_observation_on_edge_lands_in_bucket(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        hist.observe(1.0)
        assert 'h_bucket{le="1"} 1' in "\n".join(hist.render())

    def test_needs_at_least_one_edge(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=())

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestCallbackGauge:
    def test_scalar_callback(self):
        registry = MetricsRegistry()
        registry.gauge_callback("depth", lambda: 4)
        assert "depth 4" in registry.render()

    def test_labeled_family_callback(self):
        registry = MetricsRegistry()
        registry.gauge_callback(
            "charges",
            lambda: [({"tenant": "alice"}, 2.0), ({"tenant": "bob"}, 3.0)],
        )
        text = registry.render()
        assert 'charges{tenant="alice"} 2' in text
        assert 'charges{tenant="bob"} 3' in text

    def test_raising_callback_renders_no_samples(self):
        registry = MetricsRegistry()

        def boom():
            raise RuntimeError("scrape must survive")

        registry.gauge_callback("bad", boom)
        text = registry.render()
        assert "# TYPE bad gauge" in text
        assert "\nbad " not in text

    def test_duplicate_name_rejected(self):
        registry = MetricsRegistry()
        registry.gauge_callback("x", lambda: 0)
        with pytest.raises(ValueError):
            registry.gauge_callback("x", lambda: 1)


class TestRegistry:
    def test_instruments_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_flattens_labels(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2, tenant="alice")
        registry.gauge("g").set(1.5)
        snap = registry.snapshot()
        assert snap['c{tenant="alice"}'] == 2
        assert snap["g"] == 1.5

    def test_histogram_snapshot_exposes_sum_and_count(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(0.2)
        snap = registry.snapshot()
        assert snap["h_sum"] == pytest.approx(0.2)
        assert snap["h_count"] == 1


class TestSnapshotDelta:
    def test_subtracts_keywise_and_drops_zeros(self):
        before = {"a": 1.0, "b": 2.0}
        after = {"a": 3.0, "b": 2.0, "c": 5.0}
        assert snapshot_delta(after, before) == {"a": 2.0, "c": 5.0}

    def test_registry_snapshots_delta_one_phase(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(10)
        before = registry.snapshot()
        counter.inc(4)
        delta = snapshot_delta(registry.snapshot(), before)
        assert delta == {"c": 4.0}
