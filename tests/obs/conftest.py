"""Shared fixtures: every obs test leaves global tracing disabled."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _tracing_disabled():
    """Reset the global tracer around each test (it is process state)."""
    obs.disable()
    yield
    obs.disable()
