"""Tracer behavior: no-op path, nesting, journaling, thread safety."""

import threading

from repro import obs
from repro.io import Journal
from repro.obs.trace import NULL_SPAN, _FLUSH_THRESHOLD


class TestDisabledPath:
    def test_span_returns_the_shared_null_span(self):
        assert obs.span("anything", key="value") is NULL_SPAN

    def test_null_span_is_a_working_context_manager(self):
        with obs.span("x") as span:
            assert span.set(a=1) is span

    def test_record_is_a_no_op(self):
        obs.record("x", 0.5, tenant="alice")  # must not raise

    def test_enabled_reports_state(self):
        assert not obs.enabled()
        obs.enable(None)
        assert obs.enabled()
        obs.disable()
        assert not obs.enabled()


class TestMemoryTracer:
    def test_span_records_name_attrs_duration(self):
        tracer = obs.enable(None)
        with obs.span("work", label="w1") as span:
            span.set(extra=2)
        (record,) = tracer.spans()
        assert record["name"] == "work"
        assert record["attrs"] == {"label": "w1", "extra": 2}
        assert record["duration_s"] >= 0.0
        assert record["parent_id"] is None

    def test_nested_spans_parent_on_the_stack(self):
        tracer = obs.enable(None)
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        inner, outer = tracer.spans()
        assert inner["name"] == "inner"
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None

    def test_record_logs_a_pre_measured_event(self):
        tracer = obs.enable(None)
        with obs.span("parent"):
            obs.record("event", 1.25, executor="process")
        event, parent = tracer.spans()
        assert event["duration_s"] == 1.25
        assert event["parent_id"] == parent["span_id"]
        assert event["attrs"] == {"executor": "process"}

    def test_span_ids_are_unique_across_threads(self):
        tracer = obs.enable(None)

        def work():
            for _ in range(50):
                with obs.span("t"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ids = [record["span_id"] for record in tracer.spans()]
        assert len(ids) == 200
        assert len(set(ids)) == 200

    def test_parenting_is_per_thread(self):
        tracer = obs.enable(None)
        done = threading.Event()

        def other_thread():
            with obs.span("other"):
                pass
            done.set()

        with obs.span("main"):
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
        done.wait()
        by_name = {r["name"]: r for r in tracer.spans()}
        # The other thread's span must NOT parent under "main".
        assert by_name["other"]["parent_id"] is None


class TestJournaledTracer:
    def test_flush_writes_jsonl_spans(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable(path)
        with obs.span("a"):
            with obs.span("b"):
                pass
        obs.disable()  # flushes
        journal = Journal(
            path, obs.TRACE_SCHEMA_VERSION, key_field="span_id"
        )
        names = {r["name"] for r in journal.records()}
        assert names == {"a", "b"}

    def test_buffer_auto_flushes_past_threshold(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable(path)
        for _ in range(_FLUSH_THRESHOLD + 1):
            with obs.span("tick"):
                pass
        # The journal received spans before any explicit flush.
        assert path.exists()
        assert len(path.read_text().splitlines()) >= _FLUSH_THRESHOLD

    def test_len_counts_flushed_and_buffered(self, tmp_path):
        tracer = obs.enable(tmp_path / "trace.jsonl")
        for _ in range(5):
            with obs.span("tick"):
                pass
        assert len(tracer) == 5
        tracer.flush()
        assert len(tracer) == 5
        assert tracer.spans() == []  # buffer drained after flush

    def test_enable_replaces_and_flushes_previous_tracer(self, tmp_path):
        first = tmp_path / "first.jsonl"
        obs.enable(first)
        with obs.span("early"):
            pass
        obs.enable(None)  # replace; the first tracer must flush
        journal = Journal(
            first, obs.TRACE_SCHEMA_VERSION, key_field="span_id"
        )
        assert [r["name"] for r in journal.records()] == ["early"]
