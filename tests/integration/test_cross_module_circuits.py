"""Cross-module circuit round trips for the extension subsystems.

The QASM exporter, ASCII drawer, transpiler, and tableau interpreter
were written before the routed/GC/QAOA circuits existed; these tests pin
down that every new circuit producer emits circuits the rest of the
toolchain accepts.
"""

import numpy as np
import pytest

from repro.circuits.drawer import draw
from repro.circuits.qasm import from_qasm, to_qasm
from repro.clifford import CliffordTableau, diagonalize_commuting
from repro.layout import CouplingMap, route_circuit
from repro.qaoa import QAOAAnsatz, ring_maxcut
from repro.sim.statevector import run_statevector


def assert_same_statevector(a, b):
    assert np.allclose(run_statevector(a), run_statevector(b), atol=1e-9)


class TestQasmRoundTrips:
    def test_routed_circuit_roundtrip(self):
        from repro.circuits import Circuit

        qc = Circuit(3)
        qc.h(0)
        qc.cx(0, 2)
        routed = route_circuit(qc, CouplingMap.line(3))
        text = to_qasm(routed.circuit)
        assert "swap" in text
        back = from_qasm(text)
        assert_same_statevector(routed.circuit, back)

    def test_gc_measurement_circuit_roundtrip(self):
        group = diagonalize_commuting(["XX", "YY", "ZZ"], 2)
        back = from_qasm(to_qasm(group.circuit))
        assert_same_statevector(group.circuit, back)
        # The tableau interprets the re-imported circuit identically.
        assert CliffordTableau.from_circuit(back) == (
            CliffordTableau.from_circuit(group.circuit)
        )

    def test_qaoa_circuit_roundtrip(self):
        ansatz = QAOAAnsatz(ring_maxcut(4), reps=2)
        bound = ansatz.bind([0.3, 0.7, 0.2, 0.5])
        back = from_qasm(to_qasm(bound))
        assert_same_statevector(bound, back)


class TestDrawerAcceptsEverything:
    def test_draws_gc_circuit(self):
        group = diagonalize_commuting(["XXI", "YYI", "ZZI"], 3)
        art = draw(group.circuit)
        assert "q0" in art

    def test_draws_qaoa_circuit(self):
        ansatz = QAOAAnsatz(ring_maxcut(4), reps=1)
        art = draw(ansatz.bind([0.3, 0.7]))
        assert "q3" in art

    def test_draws_routed_circuit(self):
        from repro.circuits import Circuit

        qc = Circuit(3)
        qc.cx(0, 2)
        routed = route_circuit(qc, CouplingMap.line(3))
        art = draw(routed.circuit)
        assert "q2" in art


class TestTranspilerOnNewCircuits:
    def test_transpile_preserves_gc_rotation(self):
        from repro.circuits.transpile import transpile

        group = diagonalize_commuting(["XX", "YY", "ZZ"], 2)
        optimized = transpile(group.circuit)
        assert_same_statevector(group.circuit, optimized)
        assert optimized.num_gates <= group.circuit.num_gates

    def test_transpile_preserves_qaoa(self):
        from repro.circuits.transpile import transpile

        ansatz = QAOAAnsatz(ring_maxcut(4), reps=1)
        bound = ansatz.bind([0.4, 0.9])
        optimized = transpile(bound)
        assert_same_statevector(bound, optimized)
