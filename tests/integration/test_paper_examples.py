"""Integration tests pinning the paper's worked examples end to end."""

import pytest

from repro.core import count_jigsaw_subsets, count_varsaw_subsets, varsaw_subset_plan
from repro.hamiltonian import Hamiltonian, build_hamiltonian
from repro.pauli import PauliString, all_strings, cover_reduce, measuring_parents


class TestFig6Pipeline:
    """Eq. 1 -> Eq. 2 -> Eq. 3 -> Eq. 4, exactly as printed."""

    def test_full_chain(self, fig6_paulis):
        # (1) 10 Hamiltonian terms.
        assert len(fig6_paulis) == 10
        # (2) trivial commutation -> 7 circuits.
        groups = cover_reduce(fig6_paulis, 4)
        assert len(groups) == 7
        # (3) JigSaw's 2-qubit sliding window over the 7 -> 21 subsets.
        ham = Hamiltonian([(1.0, p) for p in fig6_paulis])
        assert count_jigsaw_subsets(ham, window=2) == 21
        # (4) VarSaw aggregate-then-commute -> 9 subsets.
        assert count_varsaw_subsets(ham, window=2) == 9

    def test_eq4_subset_identities(self, fig6_paulis):
        plan = varsaw_subset_plan(fig6_paulis, window=2)
        assert {s.label for s in plan.as_strings()} == {
            "ZZII", "IIZX", "ZXII", "IXXI", "IIXZ",
            "XZII", "IXZI", "IIZZ", "XXII",
        }


class TestFig7Caption:
    def test_arrow_counts(self):
        universe = all_strings(3, "IXZ")
        counts = {
            label: len(measuring_parents(PauliString(label), universe))
            for label in ("III", "IIZ", "IZZ", "ZZZ")
        }
        assert counts == {"III": 26, "IIZ": 8, "IZZ": 2, "ZZZ": 0}


class TestTable2Counts:
    @pytest.mark.parametrize(
        "key,qubits,terms",
        [
            ("H2-4", 4, 15),
            ("H2O-6", 6, 62),
            ("CH4-6", 6, 94),
            ("LiH-6", 6, 118),
            ("LiH-8", 8, 193),
            ("CH4-8", 8, 241),
        ],
    )
    def test_workload_dimensions(self, key, qubits, terms):
        ham = build_hamiltonian(key)
        assert ham.n_qubits == qubits
        assert ham.num_terms == terms


class TestFig12Shape:
    """The qualitative claims of the subset-reduction evaluation."""

    def test_jigsaw_overhead_grows_with_qubits(self):
        overheads = {}
        for key in ("H2-4", "CH4-6", "CH4-8", "H6-10"):
            ham = build_hamiltonian(key)
            overheads[key] = count_jigsaw_subsets(ham) / len(
                ham.measurement_groups()
            )
        assert (
            overheads["H2-4"]
            < overheads["CH4-6"]
            < overheads["CH4-8"]
            < overheads["H6-10"]
        )

    def test_varsaw_relative_subsets_shrink_with_size(self):
        relative = {}
        for key in ("CH4-6", "CH4-8", "H6-10"):
            ham = build_hamiltonian(key)
            relative[key] = count_varsaw_subsets(ham) / len(
                ham.measurement_groups()
            )
        assert relative["CH4-6"] > relative["CH4-8"] > relative["H6-10"]

    def test_reduction_ratio_exceeds_paper_minimum(self):
        """The paper's smallest reported ratio is 3.6 (LiH-6); check ours
        is the same order for the 6-qubit molecules."""
        for key in ("LiH-6", "CH4-6", "H2O-6"):
            ham = build_hamiltonian(key)
            ratio = count_jigsaw_subsets(ham) / count_varsaw_subsets(ham)
            assert ratio > 3.0, key
