"""Cross-validation between independent implementations of the same physics.

The fast backend applies noise analytically on probability vectors; these
tests validate it against brute-force Monte Carlo (per-shot bit flipping)
and against the density-matrix reference simulator.
"""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.noise import (
    QubitReadoutError,
    ReadoutErrorModel,
    SimulatorBackend,
    ibmq_mumbai_like,
)
from repro.sim import PMF, probabilities, run_density_matrix, run_statevector


class TestReadoutChannelVsMonteCarlo:
    def test_analytic_channel_matches_bit_flip_sampling(self, rng):
        """Apply the confusion matrices analytically vs flipping sampled
        bits one shot at a time: the distributions must agree."""
        errors = [
            QubitReadoutError(0.05, 0.12),
            QubitReadoutError(0.02, 0.30),
        ]
        model = ReadoutErrorModel(errors, crosstalk_strength=0.0)
        ideal = PMF([0.45, 0.05, 0.15, 0.35], qubits=(0, 1))
        analytic = model.apply(ideal, {0: 0, 1: 1})

        shots = 400_000
        outcomes = rng.choice(4, size=shots, p=ideal.probs)
        bits = np.stack(
            [(outcomes >> 1) & 1, outcomes & 1], axis=1
        ).astype(bool)
        for j, err in enumerate(errors):
            flips_01 = rng.random(shots) < err.p01
            flips_10 = rng.random(shots) < err.p10
            bits[:, j] = np.where(
                bits[:, j], ~flips_10, flips_01
            )
        observed = bits[:, 0].astype(int) * 2 + bits[:, 1].astype(int)
        empirical = np.bincount(observed, minlength=4) / shots
        assert np.abs(analytic.probs - empirical).max() < 0.005

    def test_crosstalk_inflation_matches_direct_scaling(self):
        """The crosstalk factor applied inside ``apply`` equals scaling
        the per-qubit error rates by hand."""
        base = QubitReadoutError(0.04, 0.08)
        model = ReadoutErrorModel([base, base], crosstalk_strength=0.25)
        ideal = PMF([1.0, 0.0, 0.0, 0.0], qubits=(0, 1))
        noisy = model.apply(ideal, {0: 0, 1: 1})
        inflated = base.scaled(1.25)
        manual = ReadoutErrorModel(
            [inflated, inflated], crosstalk_strength=0.0
        ).apply(ideal, {0: 0, 1: 1})
        assert np.allclose(noisy.probs, manual.probs)


class TestBackendVsDensityMatrix:
    def test_noiseless_agreement(self):
        qc = Circuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.ry(0.9, 2)
        qc.cx(1, 2)
        qc.measure_all()
        backend = SimulatorBackend(seed=0)
        fast = backend.exact_pmf(qc)
        rho = run_density_matrix(qc)
        assert np.allclose(fast.probs, rho.probabilities(), atol=1e-10)

    def test_depolarizing_approximation_tracks_reference(self):
        """The backend's global-depolarizing shortcut stays within a few
        percent (TVD) of true local channels at realistic error rates."""
        device = ibmq_mumbai_like()
        e1 = device.gate_noise.error_1q
        e2 = device.gate_noise.error_2q
        qc = Circuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.cx(1, 2)
        qc.ry(0.5, 0)
        qc.measure_all()
        backend = SimulatorBackend(device, seed=0, readout_enabled=False)
        fast = backend.exact_pmf(qc)
        rho = run_density_matrix(qc, gate_error_1q=e1, gate_error_2q=e2)
        reference = PMF(rho.probabilities())
        assert fast.tvd(reference) < 0.02


class TestExpectationPaths:
    def test_three_ways_to_compute_energy_agree(self, h2, h2_ansatz):
        """Matrix expectation == grouped-PMF assembly == density matrix."""
        params = np.linspace(-0.5, 0.5, h2_ansatz.num_parameters)
        bound = h2_ansatz.bind(params)
        state = run_statevector(bound)
        via_matrix = h2.expectation_exact(state)

        from repro.sim import DensityMatrix

        rho = DensityMatrix.from_statevector(state)
        via_density = rho.expectation(h2.to_sparse_matrix().toarray())

        from repro.vqe import IdealEstimator

        via_estimator = IdealEstimator(h2, h2_ansatz).evaluate(params)

        assert via_matrix == pytest.approx(via_density, abs=1e-9)
        assert via_matrix == pytest.approx(via_estimator, abs=1e-9)
