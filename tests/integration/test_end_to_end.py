"""End-to-end VQE integration tests on the smallest workload.

These run real (tiny) versions of the paper's dynamic experiments and
assert the qualitative outcomes: mitigation helps under noise, VarSaw is
cheaper than JigSaw, sparsity buys iterations under a fixed budget.
"""

import numpy as np
import pytest

from repro.noise import SimulatorBackend, ibmq_mumbai_like
from repro.optimizers import SPSA
from repro.vqe import run_vqe
from repro.workloads import make_estimator, make_workload


@pytest.fixture(scope="module")
def workload():
    return make_workload("H2-4", reps=1, entanglement="linear")


def tuned_params(workload, iterations=250, seed=3):
    ideal = make_estimator("ideal", workload, SimulatorBackend(seed=0))
    return run_vqe(ideal, max_iterations=iterations, seed=seed).parameters


class TestFixedBudgetEconomics:
    def test_varsaw_completes_more_iterations_than_jigsaw(self, workload):
        """Fig. 13/15: same circuit budget, many more VarSaw iterations."""
        budget = 3000
        results = {}
        for kind in ("jigsaw", "varsaw"):
            backend = SimulatorBackend(workload.device, seed=5)
            est = make_estimator(kind, workload, backend, shots=32)
            results[kind] = run_vqe(
                est,
                optimizer=SPSA(a=0.3, seed=5),
                max_iterations=10_000,
                circuit_budget=budget,
                seed=5,
            )
        assert (
            results["varsaw"].iterations
            > 1.5 * results["jigsaw"].iterations
        )

    def test_budget_respected(self, workload):
        budget = 1500
        backend = SimulatorBackend(workload.device, seed=6)
        est = make_estimator("varsaw", workload, backend, shots=32)
        result = run_vqe(
            est,
            optimizer=SPSA(a=0.3, seed=6),
            max_iterations=10_000,
            circuit_budget=budget,
            seed=6,
        )
        per_eval = est.circuits_per_subset_pass + est.circuits_per_global_pass
        assert result.circuits_executed <= budget + 2 * per_eval


class TestMitigationAtOptimum:
    def test_varsaw_recovers_energy_at_tuned_params(self, workload):
        """Table 1-style: evaluate all schemes at near-optimal parameters;
        mitigation should land closer to ideal than the noisy baseline."""
        params = tuned_params(workload)
        device = ibmq_mumbai_like(scale=2.0)
        ideal_est = make_estimator(
            "ideal", workload, SimulatorBackend(seed=0)
        )
        e_ideal = ideal_est.evaluate(params)
        base_err, var_err = [], []
        for seed in range(3):
            backend = SimulatorBackend(device, seed=seed)
            base = make_estimator("baseline", workload, backend, shots=4096)
            var = make_estimator(
                "varsaw_no_sparsity", workload, backend, shots=4096
            )
            base_err.append(abs(base.evaluate(params) - e_ideal))
            var_err.append(abs(var.evaluate(params) - e_ideal))
        assert np.mean(var_err) < np.mean(base_err)


class TestTemporalSparsityDynamics:
    def test_max_sparsity_is_cheapest(self, workload):
        """Fig. 9's cost side: Max-Sparsity spends far fewer circuits for
        the same number of evaluations."""
        costs = {}
        for kind in ("varsaw_no_sparsity", "varsaw_max_sparsity"):
            backend = SimulatorBackend(workload.device, seed=7)
            est = make_estimator(kind, workload, backend, shots=32)
            params = np.zeros(workload.ansatz.num_parameters)
            for _ in range(6):
                est.evaluate(params)
            costs[kind] = backend.circuits_run
        # H2-4 is the least favorable case (few groups per subset pass);
        # larger molecules widen this gap dramatically (Fig. 8).
        assert costs["varsaw_max_sparsity"] < 0.75 * costs["varsaw_no_sparsity"]

    def test_adaptive_global_fraction_low_under_noise(self, workload):
        """Fig. 14 secondary axis: few Globals are needed in practice.

        When measurement error dominates shot noise, stale priors win the
        Fig. 11 comparison and the hill climber drives the Global period
        up (the optimum the paper reports is ~1 Global per 100 iters).
        """
        backend = SimulatorBackend(ibmq_mumbai_like(scale=2.0), seed=8)
        est = make_estimator(
            "varsaw", workload, backend, shots=512, initial_period=2
        )
        result = run_vqe(
            est,
            optimizer=SPSA(a=0.3, seed=8),
            max_iterations=40,
            seed=8,
        )
        assert result.iterations == 40
        assert est.global_fraction < 0.3
        assert est.scheduler.period > 2


class TestNoiseFreeSanity:
    def test_ideal_vqe_reaches_reference_region(self, workload):
        ideal = make_estimator("ideal", workload, SimulatorBackend(seed=0))
        result = run_vqe(ideal, max_iterations=400, seed=1)
        gap = result.energy - workload.ideal_energy
        assert gap >= -1e-9
        assert gap < 1.0
