"""Failure-injection and extreme-regime tests.

Mitigation pipelines must stay numerically sane when the inputs are
degenerate: maximal readout noise, single-shot statistics, concentrated
distributions, and adversarial scheduler feedback.
"""

import numpy as np
import pytest

from repro.core import GlobalScheduler, VarSawEstimator
from repro.mitigation import JigSawEstimator, bayesian_reconstruct
from repro.noise import (
    DepolarizingGateNoise,
    DeviceModel,
    QubitReadoutError,
    ReadoutErrorModel,
    SimulatorBackend,
    ibmq_mumbai_like,
)
from repro.sim import PMF
from repro.vqe import BaselineEstimator


def brutal_device(n_qubits: int = 4) -> DeviceModel:
    """A device with near-maximal readout error on every qubit."""
    readout = ReadoutErrorModel(
        [QubitReadoutError(0.45, 0.45) for _ in range(n_qubits)],
        crosstalk_strength=0.5,
    )
    return DeviceModel(
        "brutal", readout, DepolarizingGateNoise(0.0, 0.0)
    )


class TestExtremeNoise:
    def test_estimators_stay_finite_under_maximal_readout(
        self, h2, h2_ansatz
    ):
        backend = SimulatorBackend(brutal_device(), seed=0)
        params = np.full(h2_ansatz.num_parameters, 0.2)
        for estimator_cls in (BaselineEstimator, JigSawEstimator,
                              VarSawEstimator):
            est = estimator_cls(h2, h2_ansatz, backend, shots=128)
            energy = est.evaluate(params)
            assert np.isfinite(energy)

    def test_readout_error_caps_at_half(self):
        model = ReadoutErrorModel(
            [QubitReadoutError(0.4, 0.4)], crosstalk_strength=1.0, scale=5.0
        )
        err = model.effective_error(0, n_measured=1)
        assert err.p01 <= 0.5 and err.p10 <= 0.5

    def test_noise_scale_five_still_valid_pmfs(self, h2, h2_ansatz):
        backend = SimulatorBackend(ibmq_mumbai_like(scale=5.0), seed=1)
        est = BaselineEstimator(h2, h2_ansatz, backend, shots=64)
        energy = est.evaluate(np.zeros(h2_ansatz.num_parameters))
        assert np.isfinite(energy)


class TestDegenerateStatistics:
    def test_single_shot_evaluation(self, h2, h2_ansatz):
        backend = SimulatorBackend(ibmq_mumbai_like(), seed=2)
        est = VarSawEstimator(h2, h2_ansatz, backend, shots=1)
        energy = est.evaluate(np.zeros(h2_ansatz.num_parameters))
        assert np.isfinite(energy)

    def test_reconstruction_with_point_mass_locals(self):
        g = PMF([0.25] * 4)
        local = PMF([1.0, 0.0], qubits=(0,))
        out = bayesian_reconstruct(g, [local])
        assert np.isclose(out.probs.sum(), 1.0)
        assert out.probs[2] == 0.0 and out.probs[3] == 0.0

    def test_reconstruction_with_conflicting_locals(self):
        """Two locals that contradict each other: last evidence wins, no
        crash, normalized output."""
        g = PMF([0.25] * 4)
        says_zero = PMF([1.0, 0.0], qubits=(0,))
        says_one = PMF([0.0, 1.0], qubits=(0,))
        out = bayesian_reconstruct(g, [says_zero, says_one])
        assert np.isclose(out.probs.sum(), 1.0)


class TestSchedulerAdversarial:
    def test_alternating_feedback_stays_bounded(self):
        sched = GlobalScheduler(initial_period=4, min_period=1, max_period=64)
        sched.record_global(0)
        for i in range(100):
            sched.feedback(stale_at_least_as_good=bool(i % 2))
            assert 1 <= sched.period <= 64

    def test_all_fresh_wins_floors_at_min(self):
        sched = GlobalScheduler(initial_period=64, min_period=2, max_period=64)
        sched.record_global(0)
        for _ in range(20):
            sched.feedback(stale_at_least_as_good=False)
        assert sched.period == 2

    def test_due_monotone_after_growth(self):
        sched = GlobalScheduler(initial_period=2, max_period=16)
        executed = []
        for t in range(64):
            if sched.due(t):
                sched.record_global(t)
                sched.feedback(stale_at_least_as_good=True)
                executed.append(t)
            sched.record_evaluation()
        # Executions must be strictly increasing and not every step.
        assert executed == sorted(set(executed))
        assert len(executed) < 64


class TestBudgetEdgeCases:
    def test_zero_budget_runs_nothing(self, h2, h2_ansatz):
        from repro.optimizers import SPSA
        from repro.vqe import run_vqe

        backend = SimulatorBackend(seed=0)
        est = BaselineEstimator(h2, h2_ansatz, backend, shots=16)
        result = run_vqe(
            est,
            optimizer=SPSA(a=0.2, seed=0),
            max_iterations=100,
            circuit_budget=0,
            seed=0,
        )
        assert result.iterations == 0
        assert result.circuits_executed == 0

    def test_budget_smaller_than_one_iteration(self, h2, h2_ansatz):
        from repro.optimizers import SPSA
        from repro.vqe import run_vqe

        backend = SimulatorBackend(seed=0)
        est = BaselineEstimator(h2, h2_ansatz, backend, shots=16)
        result = run_vqe(
            est,
            optimizer=SPSA(a=0.2, seed=0),
            max_iterations=100,
            circuit_budget=1,
            seed=0,
        )
        # The first iteration completes (budget checked between
        # iterations, like a real queue), then the run stops.
        assert result.iterations == 1
        assert result.stop_reason == "budget_exhausted"
