"""Integration tests tying the extension subsystems into the VQE stack.

Each test exercises a full tuning or evaluation path through components
added beyond the paper's core reproduction: QAOA workloads, the
general-commutation estimator, calibration-gated VarSaw, and routed
execution on a real device topology.
"""

import numpy as np
import pytest

from repro.noise import SimulatorBackend, ibm_lagos_like, ibmq_mumbai_like
from repro.vqe import GeneralCommutationEstimator, run_vqe
from repro.workloads import make_estimator


class TestQAOAThroughTheFullStack:
    def test_varsaw_qaoa_tuning_run(self):
        from repro.qaoa import make_qaoa_workload

        workload = make_qaoa_workload("ring", 4, reps=1)
        backend = SimulatorBackend(ibmq_mumbai_like(scale=2.0), seed=31)
        estimator = make_estimator("varsaw", workload, backend, shots=256)
        result = run_vqe(estimator, max_iterations=60, seed=31)
        # The tuner must make real progress toward the max cut.
        assert result.energy < -1.5
        assert result.circuits_executed > 0
        assert 0.0 < estimator.global_fraction <= 1.0

    def test_qaoa_temporal_scheduler_engages(self):
        from repro.qaoa import make_qaoa_workload

        workload = make_qaoa_workload("ring", 4, reps=1)
        backend = SimulatorBackend(ibmq_mumbai_like(scale=2.0), seed=33)
        estimator = make_estimator("varsaw", workload, backend, shots=128)
        run_vqe(estimator, max_iterations=50, seed=33)
        # Under noise the adaptive scheduler should skip most Globals.
        assert estimator.global_fraction < 0.9


class TestGCEstimatorInTheLoop:
    def test_gc_vqe_tuning_improves(self):
        from repro.workloads import make_workload

        workload = make_workload("H2-4")
        backend = SimulatorBackend(ibmq_mumbai_like(), seed=37)
        estimator = GeneralCommutationEstimator(
            workload.hamiltonian, workload.ansatz, backend, shots=512
        )
        start = np.full(workload.ansatz.num_parameters, 0.1)
        start_energy = estimator.evaluate(start)
        result = run_vqe(
            estimator, max_iterations=80, seed=37, initial_params=start
        )
        assert result.energy < start_energy
        # GC runs far fewer circuits per iteration than the QWC cover.
        assert estimator.num_groups <= 3


class TestCalibrationGatedInTheLoop:
    def test_gated_varsaw_tuning_run(self):
        from repro.core import CalibrationGate, CalibrationGatedVarSawEstimator
        from repro.noise import (
            DepolarizingGateNoise,
            DeviceModel,
            QubitReadoutError,
            ReadoutErrorModel,
        )
        from repro.workloads import make_workload

        readout = ReadoutErrorModel(
            [
                QubitReadoutError(1e-5, 1e-5),
                QubitReadoutError(1e-5, 1e-5),
                QubitReadoutError(0.05, 0.08),
                QubitReadoutError(0.04, 0.07),
            ],
            crosstalk_strength=0.1,
        )
        device = DeviceModel(
            "split", readout, DepolarizingGateNoise(1e-4, 2e-3)
        )
        workload = make_workload("H2-4", device=device)
        backend = SimulatorBackend(device, seed=41)
        estimator = CalibrationGatedVarSawEstimator(
            workload.hamiltonian,
            workload.ansatz,
            backend,
            shots=256,
            gate=CalibrationGate(error_threshold=0.01),
        )
        assert estimator.subsets_skipped > 0
        result = run_vqe(estimator, max_iterations=60, seed=41)
        assert np.isfinite(result.energy)
        assert result.energy < workload.ideal_energy + 4.0


class TestRoutedExecutionOnRealTopology:
    def test_routed_ansatz_samples_match_logical(self):
        """Route a bound ansatz onto the Lagos H-shape and verify the
        noise-free outcome distribution matches the logical circuit."""
        from repro.ansatz import EfficientSU2
        from repro.layout import noise_aware_path_layout, route_circuit
        from repro.noise import ideal_device
        from repro.sim.statevector import probabilities, run_statevector

        device = ibm_lagos_like()
        coupling = device.coupling_map
        ansatz = EfficientSU2(4, reps=1, entanglement="linear")
        rng = np.random.default_rng(43)
        bound = ansatz.bind(rng.uniform(-1, 1, ansatz.num_parameters))
        layout = noise_aware_path_layout(4, coupling, device.readout)
        routed = route_circuit(bound, coupling, layout)

        expected = run_statevector(bound)
        routed_state = run_statevector(routed.circuit)
        # Read each logical amplitude out of the physical state: logical
        # qubit l lives at final_layout.physical(l); unused physical
        # qubits stay |0>.
        n_phys = routed.circuit.n_qubits
        actual = np.zeros(2**4, dtype=complex)
        for index in range(2**4):
            bits = format(index, "04b")
            phys = ["0"] * n_phys
            for l in range(4):
                phys[routed.final_layout.physical(l)] = bits[l]
            actual[index] = routed_state[int("".join(phys), 2)]
        assert np.allclose(
            probabilities(actual), probabilities(expected), atol=1e-9
        )

    def test_linear_ansatz_routes_free_on_lagos(self):
        from repro.ansatz import EfficientSU2
        from repro.layout import noise_aware_path_layout, route_circuit

        device = ibm_lagos_like()
        coupling = device.coupling_map
        ansatz = EfficientSU2(5, reps=2, entanglement="linear")
        bound = ansatz.bind(np.zeros(ansatz.num_parameters))
        layout = noise_aware_path_layout(5, coupling, device.readout)
        routed = route_circuit(bound, coupling, layout)
        assert routed.swaps_inserted == 0


class TestSweepsThroughTheFullStack:
    def test_sweep_record_matches_direct_run_tuning(self, tmp_path):
        """A declarative point reproduces the imperative path bit for bit.

        ``analysis.run_tuning`` and the sweep runner share one code path
        (``sweeps.runner.execute_tuning``); a stored sweep record must
        therefore carry exactly the energy a direct call produces.
        """
        from repro.analysis import run_tuning
        from repro.sweeps import Point, ResultStore, run_sweep
        from repro.workloads import make_workload

        workload = make_workload("H2-4")
        device = ibmq_mumbai_like(scale=2.0)
        direct = run_tuning(
            "varsaw", workload, max_iterations=4, shots=64, seed=9,
            device=device,
        )

        point = Point(
            workload={"key": "H2-4"},
            scheme="varsaw",
            device={"preset": "ibmq_mumbai_like", "scale": 2.0},
            seed=9,
            shots=64,
            max_iterations=4,
        )
        report = run_sweep([point], ResultStore(tmp_path / "s.jsonl"))
        record = report.records[point.fingerprint()]
        assert record["result"]["energy"] == direct.energy
        assert record["result"]["iterations"] == direct.result.iterations
        assert (
            record["result"]["circuits"]
            == direct.result.circuits_executed
        )
        assert record["result"]["global_fraction"] == pytest.approx(
            direct.global_fraction
        )
