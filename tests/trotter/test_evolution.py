"""Unit tests for Trotterized time evolution."""

import numpy as np
import pytest
import scipy.linalg

from repro.hamiltonian import Hamiltonian
from repro.hamiltonian.tfim import tfim_hamiltonian
from repro.pauli import PauliString
from repro.sim.statevector import run_statevector, zero_state
from repro.trotter import (
    evolve_exact,
    pauli_exponential,
    trotter_circuit,
    trotter_step,
)

from ..clifford.conftest import circuit_unitary, dense_pauli


def overlap(a: np.ndarray, b: np.ndarray) -> float:
    """|<a|b>| — global-phase-insensitive state agreement."""
    return float(abs(np.vdot(a, b)))


def random_state(rng, n):
    state = rng.normal(size=2**n) + 1j * rng.normal(size=2**n)
    return state / np.linalg.norm(state)


class TestPauliExponential:
    @pytest.mark.parametrize(
        "label", ["Z", "X", "Y", "ZZ", "XY", "YX", "XYZ", "ZIZ", "IYI"]
    )
    def test_matches_dense_exponential(self, label):
        theta = 0.73
        circuit = pauli_exponential(PauliString(label), theta)
        expected = scipy.linalg.expm(
            -1j * (theta / 2.0) * dense_pauli(PauliString(label))
        )
        assert np.allclose(circuit_unitary(circuit), expected, atol=1e-10)

    def test_identity_string_is_empty_circuit(self):
        circuit = pauli_exponential(PauliString("III"), 0.5)
        assert circuit.num_gates == 0

    def test_zero_angle_is_identity(self):
        circuit = pauli_exponential(PauliString("XY"), 0.0)
        assert np.allclose(circuit_unitary(circuit), np.eye(4), atol=1e-12)


class TestTrotterConvergence:
    def setup_method(self):
        self.ham = tfim_hamiltonian(4, coupling=1.0, field=0.9)
        self.rng = np.random.default_rng(7)
        self.state = random_state(self.rng, 4)
        self.time = 1.0
        self.exact = evolve_exact(self.ham, self.time, self.state)

    def trotter_error(self, n_steps, order):
        circuit = trotter_circuit(
            self.ham, self.time, n_steps, order=order
        )
        evolved = run_statevector(circuit, initial_state=self.state.copy())
        return 1.0 - overlap(evolved, self.exact)

    def test_first_order_error_shrinks_with_steps(self):
        errors = [self.trotter_error(n, 1) for n in (2, 4, 8, 16)]
        assert errors == sorted(errors, reverse=True)
        # O(1/n): quadrupling steps cuts the error by ~4.
        assert errors[-1] < errors[0] / 4

    def test_second_order_error_shrinks_faster(self):
        e1 = self.trotter_error(8, order=1)
        e2 = self.trotter_error(8, order=2)
        assert e2 < e1

    def test_second_order_scaling(self):
        errors = [self.trotter_error(n, 2) for n in (2, 4, 8)]
        # O(1/n^2): doubling steps cuts the error by ~4.
        assert errors[2] < errors[0] / 8

    def test_many_steps_converge_tight(self):
        assert self.trotter_error(64, order=2) < 1e-5


class TestTrotterStructure:
    def test_bad_order_rejected(self):
        ham = tfim_hamiltonian(3)
        with pytest.raises(ValueError, match="order"):
            trotter_step(ham, 0.1, order=3)

    def test_bad_steps_rejected(self):
        ham = tfim_hamiltonian(3)
        with pytest.raises(ValueError, match="steps"):
            trotter_circuit(ham, 1.0, 0)

    def test_step_gate_count_scales_with_terms(self):
        ham = tfim_hamiltonian(5)
        step1 = trotter_step(ham, 0.1, order=1)
        step2 = trotter_step(ham, 0.1, order=2)
        assert step2.num_gates == 2 * step1.num_gates

    def test_circuit_repeats_steps(self):
        ham = tfim_hamiltonian(3)
        one = trotter_circuit(ham, 0.5, 1)
        four = trotter_circuit(ham, 0.5, 4)
        assert four.num_gates == 4 * one.num_gates

    def test_identity_offset_only_global_phase(self):
        """Shifting the Hamiltonian must not change Trotter dynamics."""
        ham = tfim_hamiltonian(3)
        shifted = ham.shifted(2.5)
        state = zero_state(3)
        a = run_statevector(
            trotter_circuit(ham, 0.7, 8), initial_state=state.copy()
        )
        b = run_statevector(
            trotter_circuit(shifted, 0.7, 8), initial_state=state.copy()
        )
        assert np.allclose(a, b, atol=1e-12)


class TestExactEvolution:
    def test_unitary_preserves_norm(self):
        ham = tfim_hamiltonian(4)
        rng = np.random.default_rng(3)
        state = random_state(rng, 4)
        evolved = evolve_exact(ham, 2.3, state)
        assert np.linalg.norm(evolved) == pytest.approx(1.0)

    def test_zero_time_is_identity(self):
        ham = tfim_hamiltonian(3)
        state = zero_state(3)
        assert np.allclose(evolve_exact(ham, 0.0, state), state)

    def test_energy_conserved(self):
        ham = tfim_hamiltonian(4, coupling=1.0, field=0.6)
        rng = np.random.default_rng(9)
        state = random_state(rng, 4)
        before = ham.expectation_exact(state)
        after = ham.expectation_exact(evolve_exact(ham, 1.7, state))
        assert after == pytest.approx(before, abs=1e-9)

    def test_single_z_term_phases(self):
        # exp(-i t Z) on |1> gives phase e^{+it}.
        ham = Hamiltonian([(1.0, "Z")])
        state = np.array([0.0, 1.0], dtype=complex)
        evolved = evolve_exact(ham, 0.4, state)
        assert evolved[1] == pytest.approx(np.exp(1j * 0.4))
