"""Tests for temporally-sparse quench-sweep mitigation."""

import numpy as np
import pytest

from repro.hamiltonian.tfim import tfim_hamiltonian
from repro.noise import SimulatorBackend, ibmq_mumbai_like, ideal_device
from repro.sim.statevector import probabilities, zero_state
from repro.trotter import (
    average_magnetization,
    evolve_exact,
    sparse_quench_sweep,
)

TIMES = (0.25, 0.5, 0.75, 1.0)


@pytest.fixture
def tfim4():
    return tfim_hamiltonian(4, coupling=1.0, field=1.2)


class TestSweepMechanics:
    def test_one_output_per_time(self, tfim4):
        backend = SimulatorBackend(ibmq_mumbai_like(), seed=3)
        result = sparse_quench_sweep(
            backend, tfim4, TIMES, shots=512, global_period=2
        )
        assert len(result) == len(TIMES)
        assert result.times == TIMES

    def test_global_count_follows_period(self, tfim4):
        backend = SimulatorBackend(ibmq_mumbai_like(), seed=3)
        result = sparse_quench_sweep(
            backend, tfim4, TIMES, shots=256, global_period=2
        )
        assert result.globals_executed == 2  # points 0 and 2

    def test_period_one_is_dense_jigsaw(self, tfim4):
        backend = SimulatorBackend(ibmq_mumbai_like(), seed=3)
        result = sparse_quench_sweep(
            backend, tfim4, TIMES, shots=256, global_period=1
        )
        assert result.globals_executed == len(TIMES)

    def test_sparse_costs_less(self, tfim4):
        def cost(period):
            backend = SimulatorBackend(ibmq_mumbai_like(), seed=3)
            return sparse_quench_sweep(
                backend, tfim4, TIMES, shots=256, global_period=period
            ).circuits_executed

        assert cost(4) < cost(1)

    def test_empty_times_rejected(self, tfim4):
        backend = SimulatorBackend(ibmq_mumbai_like(), seed=3)
        with pytest.raises(ValueError, match="empty"):
            sparse_quench_sweep(backend, tfim4, [], shots=256)

    def test_unsorted_times_rejected(self, tfim4):
        backend = SimulatorBackend(ibmq_mumbai_like(), seed=3)
        with pytest.raises(ValueError, match="sorted"):
            sparse_quench_sweep(backend, tfim4, [1.0, 0.5], shots=256)

    def test_bad_period_rejected(self, tfim4):
        backend = SimulatorBackend(ibmq_mumbai_like(), seed=3)
        with pytest.raises(ValueError, match="period"):
            sparse_quench_sweep(
                backend, tfim4, TIMES, shots=256, global_period=0
            )


class TestSweepAccuracy:
    def test_noise_free_sweep_tracks_exact(self, tfim4):
        backend = SimulatorBackend(ideal_device(4), seed=5)
        result = sparse_quench_sweep(
            backend, tfim4, TIMES, shots=60_000, global_period=2
        )
        for t, output in zip(result.times, result.outputs):
            exact_probs = probabilities(
                evolve_exact(tfim4, t, zero_state(4))
            )
            got = average_magnetization(output.probs, 4)
            want = average_magnetization(exact_probs, 4)
            # Trotter error + stale-prior reconstruction + shot noise.
            assert got == pytest.approx(want, abs=0.12)

    def test_sparse_tracks_dense_under_noise(self, tfim4):
        """The staleness bet: sparse globals ≈ dense globals, cheaper."""

        def run(period):
            backend = SimulatorBackend(ibmq_mumbai_like(scale=2.0), seed=7)
            result = sparse_quench_sweep(
                backend, tfim4, TIMES, shots=4096, global_period=period
            )
            mags = [average_magnetization(o.probs, 4) for o in result.outputs]
            return mags, result.circuits_executed

        dense_mags, dense_cost = run(1)
        sparse_mags, sparse_cost = run(4)
        assert sparse_cost < dense_cost
        exact_mags = [
            average_magnetization(
                probabilities(evolve_exact(tfim4, t, zero_state(4))), 4
            )
            for t in TIMES
        ]
        dense_err = float(
            np.mean(np.abs(np.array(dense_mags) - exact_mags))
        )
        sparse_err = float(
            np.mean(np.abs(np.array(sparse_mags) - exact_mags))
        )
        # Comparable accuracy (generous band: one stale-prior bet).
        assert sparse_err < dense_err + 0.1
