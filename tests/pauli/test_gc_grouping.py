"""Unit tests for general-commutation grouping."""

import numpy as np
import pytest

from repro.hamiltonian import build_hamiltonian
from repro.pauli import (
    PauliString,
    anticommutation_graph,
    color_general_commuting,
    diagonalized_groups,
    group_general_commuting,
    group_qwc,
)


def all_pairwise_commute(group):
    return all(
        a.commutes_with(b) for i, a in enumerate(group) for b in group[i + 1:]
    )


class TestGreedyGrouping:
    def test_groups_are_mutually_commuting(self):
        paulis = ["XX", "YY", "ZZ", "XI", "IZ", "ZX"]
        for group in group_general_commuting(paulis, 2):
            assert all_pairwise_commute(group)

    def test_bell_family_is_one_group(self):
        # XX/YY/ZZ pairwise fully commute (but not qubit-wise).
        groups = group_general_commuting(["XX", "YY", "ZZ"], 2)
        assert len(groups) == 1

    def test_identity_strings_dropped(self):
        groups = group_general_commuting(["II", "ZZ"], 2)
        assert sum(len(g) for g in groups) == 1

    def test_empty_input(self):
        assert group_general_commuting([], 3) == []

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            group_general_commuting(["XX", "XXX"], 2)

    def test_every_input_appears_exactly_once(self):
        paulis = [
            "XXI", "YYI", "ZZI", "IXX", "IYY", "IZZ", "XIX", "ZIZ",
        ]
        groups = group_general_commuting(paulis, 3)
        flat = sorted(str(p) for g in groups for p in g)
        assert flat == sorted(paulis)


class TestColoring:
    def test_coloring_groups_are_commuting(self):
        paulis = ["XX", "YY", "ZZ", "XI", "IZ", "ZX", "XZ", "YI"]
        for group in color_general_commuting(paulis, 2):
            assert all_pairwise_commute(group)

    def test_anticommutation_graph_edges(self):
        graph = anticommutation_graph(["XI", "ZI", "IX"], 2)
        # XI vs ZI anti-commute; IX commutes with both.
        assert graph.number_of_edges() == 1

    def test_coloring_never_more_groups_than_paulis(self):
        paulis = ["XY", "YZ", "ZX", "XX", "YY", "ZZ"]
        groups = color_general_commuting(paulis, 2)
        assert 1 <= len(groups) <= len(paulis)

    def test_empty_input(self):
        assert color_general_commuting([], 2) == []

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            color_general_commuting(["XX"], 2, strategy="no_such_strategy")


class TestGCBeatsQWCOnCircuitCount:
    """GC merges at least as well as QWC — the paper's Section 3.1 premise."""

    @pytest.mark.parametrize("key", ["H2-4", "LiH-6"])
    def test_fewer_or_equal_groups_than_qwc(self, key):
        hamiltonian = build_hamiltonian(key)
        paulis = [
            p for _, p in hamiltonian.non_identity_terms()
        ]
        n = hamiltonian.n_qubits
        n_qwc = len(group_qwc(paulis, n))
        n_gc = len(color_general_commuting(paulis, n))
        assert n_gc <= n_qwc

    def test_fig6_hamiltonian_gc_versus_qwc(self, fig6_paulis):
        n_qwc = len(group_qwc(fig6_paulis, 4))
        n_gc = len(color_general_commuting(fig6_paulis, 4))
        assert n_gc <= n_qwc <= 7  # paper: QWC reaches 7 circuits


class TestDiagonalizedGroups:
    def test_every_group_carries_a_valid_circuit(self):
        paulis = ["XX", "YY", "ZZ", "XI", "IZ"]
        groups = diagonalized_groups(paulis, 2)
        total = sum(len(g) for g in groups)
        assert total == len(paulis)
        for group in groups:
            for sign, image in group.diagonals:
                assert sign in (1, -1)
                assert set(image.label) <= {"I", "Z"}

    def test_greedy_method(self):
        groups = diagonalized_groups(["XX", "YY"], 2, method="greedy")
        assert sum(len(g) for g in groups) == 2

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            diagonalized_groups(["XX"], 2, method="magic")

    def test_pauli_string_inputs_accepted(self):
        groups = diagonalized_groups(
            [PauliString("XX"), PauliString("ZZ")], 2
        )
        assert sum(len(g) for g in groups) == 2
