"""Unit tests for PauliString."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.pauli import PauliString
from repro.sim import probabilities, run_statevector


class TestConstruction:
    def test_uppercases(self):
        assert PauliString("xyz").label == "XYZ"

    def test_invalid_chars(self):
        with pytest.raises(ValueError):
            PauliString("XQ")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PauliString("")

    def test_immutable(self):
        p = PauliString("XZ")
        with pytest.raises(AttributeError):
            p.label = "ZZ"

    def test_identity_constructor(self):
        assert PauliString.identity(3).label == "III"

    def test_from_sparse(self):
        p = PauliString.from_sparse(4, {0: "Z", 2: "X"})
        assert p.label == "ZIXI"

    def test_from_sparse_out_of_range(self):
        with pytest.raises(ValueError):
            PauliString.from_sparse(2, {5: "Z"})


class TestStructure:
    def test_support_and_weight(self):
        p = PauliString("IZXI")
        assert p.support == (1, 2)
        assert p.weight == 2

    def test_is_identity(self):
        assert PauliString("II").is_identity()
        assert not PauliString("IZ").is_identity()

    def test_sparse(self):
        assert PauliString("ZIX").sparse() == {0: "Z", 2: "X"}

    def test_restricted_to(self):
        assert PauliString("ZXYZ").restricted_to([1, 2]).label == "IXYI"

    def test_indexing(self):
        assert PauliString("ZX")[1] == "X"


class TestCommutation:
    def test_full_commutation_xx_zz(self):
        # XX and ZZ anticommute at both sites -> commute overall.
        assert PauliString("XX").commutes_with(PauliString("ZZ"))

    def test_full_anticommutation_xz(self):
        assert not PauliString("XI").commutes_with(PauliString("ZI"))

    def test_qwc_requires_sitewise_agreement(self):
        assert PauliString("ZI").qubit_wise_commutes(PauliString("ZZ"))
        assert not PauliString("XX").qubit_wise_commutes(PauliString("ZZ"))

    def test_qwc_implies_commutation(self):
        a, b = PauliString("ZIX"), PauliString("ZZX")
        assert a.qubit_wise_commutes(b)
        assert a.commutes_with(b)

    def test_measured_by_direction(self):
        # 'IZZ' can be measured by 'ZZZ' but not vice versa (Fig. 7).
        assert PauliString("IZZ").can_be_measured_by(PauliString("ZZZ"))
        assert not PauliString("ZZZ").can_be_measured_by(PauliString("IZZ"))

    def test_identity_measured_by_anything(self):
        assert PauliString("II").can_be_measured_by(PauliString("XZ"))

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            PauliString("X").commutes_with(PauliString("XX"))


class TestMatrixAndExpectation:
    def test_matrix_of_z(self):
        assert np.allclose(PauliString("Z").to_matrix(), np.diag([1, -1]))

    def test_matrix_kron_order(self):
        # 'ZX' = Z (qubit 0, MSB) kron X (qubit 1, LSB).
        zx = PauliString("ZX").to_matrix()
        expected = np.kron(np.diag([1, -1]), np.array([[0, 1], [1, 0]]))
        assert np.allclose(zx, expected)

    def test_expectation_identity_is_one(self):
        probs = np.array([0.25] * 4)
        assert PauliString("II").expectation_from_probs(probs) == 1.0

    def test_expectation_z_on_zero_state(self):
        probs = np.array([1.0, 0.0])
        assert PauliString("Z").expectation_from_probs(probs) == 1.0

    def test_expectation_z_on_one_state(self):
        probs = np.array([0.0, 1.0])
        assert PauliString("Z").expectation_from_probs(probs) == -1.0

    def test_expectation_zz_correlated(self):
        probs = np.array([0.5, 0.0, 0.0, 0.5])  # p(00)=p(11)=1/2
        assert PauliString("ZZ").expectation_from_probs(probs) == 1.0

    def test_expectation_wrong_length(self):
        with pytest.raises(ValueError):
            PauliString("ZZ").expectation_from_probs(np.array([1.0, 0.0]))

    def test_expectation_matches_matrix_element(self):
        """Sampling in the rotated basis reproduces <psi|P|psi> exactly."""
        circuits = Circuit(2)
        circuits.ry(0.73, 0)
        circuits.cx(0, 1)
        circuits.rz(0.31, 1)
        state = run_statevector(circuits)
        for label in ["ZZ", "XX", "YY", "XZ", "ZX", "XI", "IY"]:
            pauli = PauliString(label)
            exact = np.vdot(state, pauli.to_matrix() @ state).real
            rotated = run_statevector(
                pauli.basis_rotation(), initial_state=state
            )
            sampled = pauli.expectation_from_probs(probabilities(rotated))
            assert sampled == pytest.approx(exact, abs=1e-10)


class TestBasisRotation:
    def test_z_positions_get_no_gates(self):
        qc = PauliString("ZIZ").basis_rotation()
        assert len(qc) == 0

    def test_x_gets_hadamard(self):
        qc = PauliString("XI").basis_rotation()
        assert [ins.name for ins in qc.instructions] == ["h"]
        assert qc.instructions[0].qubits == (0,)

    def test_y_gets_sdg_h(self):
        qc = PauliString("IY").basis_rotation()
        assert [ins.name for ins in qc.instructions] == ["sdg", "h"]

    def test_width_override_mismatch(self):
        with pytest.raises(ValueError):
            PauliString("X").basis_rotation(3)


class TestPlumbing:
    def test_equality_with_string(self):
        assert PauliString("XZ") == "xz"

    def test_hash_dedupe(self):
        assert len({PauliString("XZ"), PauliString("XZ")}) == 1

    def test_ordering(self):
        assert PauliString("IX") < PauliString("XZ")

    def test_str(self):
        assert str(PauliString("ZZ")) == "ZZ"
