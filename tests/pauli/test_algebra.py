"""Unit tests for Pauli products: checked against dense matrices."""

import itertools

import numpy as np
import pytest

from repro.pauli import PauliString, multiply, phase_product


class TestPhaseProduct:
    @pytest.mark.parametrize(
        "a,b", list(itertools.product("IXYZ", repeat=2))
    )
    def test_single_qubit_table_matches_matrices(self, a, b):
        pa, pb = PauliString(a), PauliString(b)
        phase, c = phase_product(pa, pb)
        assert np.allclose(
            pa.to_matrix() @ pb.to_matrix(), phase * c.to_matrix()
        )

    def test_multi_qubit_product(self):
        a = PauliString("XYZI")
        b = PauliString("ZZXY")
        phase, c = phase_product(a, b)
        assert np.allclose(
            a.to_matrix() @ b.to_matrix(), phase * c.to_matrix()
        )

    def test_self_product_is_identity(self):
        p = PauliString("XYZ")
        phase, c = phase_product(p, p)
        assert phase == 1 and c.is_identity()

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            phase_product(PauliString("X"), PauliString("XX"))

    def test_multiply_drops_phase(self):
        assert multiply(PauliString("X"), PauliString("Y")) == PauliString("Z")

    def test_commutator_consistency(self):
        """commutes_with agrees with the matrix commutator for samples."""
        samples = ["XXZ", "ZIY", "YYX", "IZZ", "XYZ", "ZZZ"]
        for la, lb in itertools.product(samples, repeat=2):
            a, b = PauliString(la), PauliString(lb)
            ma, mb = a.to_matrix(), b.to_matrix()
            commutes = np.allclose(ma @ mb, mb @ ma)
            assert a.commutes_with(b) == commutes
