"""Unit tests for the symplectic Pauli representation."""

import numpy as np
import pytest

from repro.pauli import PauliString, PauliTable, decode, encode, multiply


class TestEncodeDecode:
    @pytest.mark.parametrize("label", ["I", "X", "Y", "Z", "XYZI", "ZZXY"])
    def test_roundtrip(self, label):
        x, z = encode(PauliString(label))
        assert decode(x, z) == PauliString(label)

    def test_encoding_convention(self):
        x, z = encode(PauliString("XYZI"))
        assert list(x) == [True, True, False, False]
        assert list(z) == [False, True, True, False]

    def test_decode_shape_mismatch(self):
        with pytest.raises(ValueError):
            decode(np.zeros(2, dtype=bool), np.zeros(3, dtype=bool))


class TestPauliTable:
    LABELS = ["ZZIZ", "ZIZX", "ZXXZ", "XZIZ", "IXZZ", "XIZZ", "XXIX", "IIII"]

    def make(self):
        return PauliTable.from_strings(self.LABELS)

    def test_roundtrip(self):
        table = self.make()
        assert [str(p) for p in table.to_strings()] == self.LABELS

    def test_shape(self):
        table = self.make()
        assert len(table) == 8
        assert table.n_qubits == 4

    def test_weights(self):
        table = self.make()
        expected = [PauliString(l).weight for l in self.LABELS]
        assert list(table.weights()) == expected

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PauliTable.from_strings([])

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PauliTable.from_strings(["XX", "X"])

    def test_commutes_with_matches_strings(self):
        table = self.make()
        for other in ["ZZZZ", "XXXX", "XYZI", "IIZX"]:
            other_p = PauliString(other)
            expected = [
                PauliString(l).commutes_with(other_p) for l in self.LABELS
            ]
            assert list(table.commutes_with(other_p)) == expected

    def test_qwc_matches_strings(self):
        table = self.make()
        for other in ["ZZZZ", "XXXX", "XYZI", "IIZX"]:
            other_p = PauliString(other)
            expected = [
                PauliString(l).qubit_wise_commutes(other_p)
                for l in self.LABELS
            ]
            assert list(table.qubit_wise_commutes_with(other_p)) == expected

    def test_measured_by_matches_strings(self):
        table = self.make()
        for basis in ["ZZZZ", "XZZZ", "ZXXZ"]:
            basis_p = PauliString(basis)
            expected = [
                PauliString(l).can_be_measured_by(basis_p)
                for l in self.LABELS
            ]
            assert list(table.measured_by(basis_p)) == expected

    def test_pairwise_commutation_symmetric(self):
        table = self.make()
        matrix = table.pairwise_commutation()
        assert np.array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix))

    def test_pairwise_matches_pointwise(self):
        table = self.make()
        matrix = table.pairwise_commutation()
        for i, la in enumerate(self.LABELS):
            for j, lb in enumerate(self.LABELS):
                assert matrix[i, j] == PauliString(la).commutes_with(
                    PauliString(lb)
                )

    def test_multiply_rows_matches_algebra(self):
        table = self.make()
        for i in range(3):
            for j in range(3):
                expected = multiply(
                    PauliString(self.LABELS[i]), PauliString(self.LABELS[j])
                )
                assert table.multiply_rows(i, j) == expected

    def test_large_batch_performance_shape(self):
        """34-qubit, 1000-row batch processes without issue."""
        rng = np.random.default_rng(0)
        x = rng.random((1000, 34)) < 0.2
        z = rng.random((1000, 34)) < 0.2
        table = PauliTable(x, z)
        flags = table.commutes_with(PauliString("Z" * 34))
        assert flags.shape == (1000,)
