"""Unit tests for the commutation graph (Fig. 7)."""

from repro.pauli import (
    PauliString,
    all_strings,
    commutation_digraph,
    measuring_parents,
)


class TestAllStrings:
    def test_count_27_for_3q_ixz(self):
        assert len(all_strings(3, "IXZ")) == 27

    def test_count_full_alphabet(self):
        assert len(all_strings(2, "IXYZ")) == 16

    def test_unique(self):
        strings = all_strings(3, "IXZ")
        assert len(set(strings)) == len(strings)


class TestFig7ArrowCounts:
    """The arrow counts the paper quotes in Fig. 7's caption."""

    def setup_method(self):
        self.universe = all_strings(3, "IXZ")

    def test_iii_has_26_parents(self):
        assert len(measuring_parents(PauliString("III"), self.universe)) == 26

    def test_iiz_has_8_parents(self):
        assert len(measuring_parents(PauliString("IIZ"), self.universe)) == 8

    def test_izz_has_2_parents(self):
        parents = measuring_parents(PauliString("IZZ"), self.universe)
        assert sorted(str(p) for p in parents) == ["XZZ", "ZZZ"]

    def test_zzz_has_no_parents(self):
        assert measuring_parents(PauliString("ZZZ"), self.universe) == []


class TestDigraph:
    def test_edges_follow_measured_by(self):
        graph = commutation_digraph(["II", "IZ", "ZZ"])
        assert graph.has_edge(PauliString("IZ"), PauliString("ZZ"))
        assert not graph.has_edge(PauliString("ZZ"), PauliString("IZ"))

    def test_out_degree_matches_parent_count(self):
        universe = all_strings(2, "IXZ")
        graph = commutation_digraph(universe)
        for node in universe:
            assert graph.out_degree(node) == len(
                measuring_parents(node, universe)
            )

    def test_more_identities_more_parents(self):
        """I-heavy strings have larger commuting families (Section 3.2)."""
        universe = all_strings(3, "IXZ")
        parents_of = {
            str(p): len(measuring_parents(p, universe)) for p in universe
        }
        assert parents_of["IIX"] > parents_of["IXX"] > parents_of["XXX"]
