"""Unit tests for QWC grouping and the paper's trivial cover reduction."""

import pytest

from repro.pauli import (
    MeasurementGroup,
    PauliString,
    cover_reduce,
    greedy_cover,
    group_qwc,
)


class TestMeasurementGroup:
    def test_accepts_compatible(self):
        group = MeasurementGroup(3)
        group.add(PauliString("ZIZ"))
        assert group.accepts(PauliString("ZZI"))
        assert not group.accepts(PauliString("XII"))

    def test_add_conflict_raises(self):
        group = MeasurementGroup(2)
        group.add(PauliString("ZI"))
        with pytest.raises(ValueError):
            group.add(PauliString("XI"))

    def test_basis_string_z_fill(self):
        group = MeasurementGroup(3)
        group.add(PauliString("XII"))
        assert group.basis_string().label == "XZZ"

    def test_len_counts_members(self):
        group = MeasurementGroup(2)
        group.add(PauliString("ZI"))
        group.add(PauliString("IZ"))
        assert len(group) == 2


class TestGroupQwc:
    def test_singleton(self):
        groups = group_qwc(["ZZ"], 2)
        assert len(groups) == 1

    def test_merges_compatible(self):
        groups = group_qwc(["ZI", "IZ", "ZZ"], 2)
        assert len(groups) == 1
        assert len(groups[0].members) == 3

    def test_conflicting_terms_split(self):
        groups = group_qwc(["ZZ", "XX"], 2)
        assert len(groups) == 2

    def test_identity_skipped(self):
        groups = group_qwc(["II", "ZZ"], 2)
        assert len(groups) == 1
        assert groups[0].members == [PauliString("ZZ")]

    def test_every_member_measured_by_its_basis(self, fig6_paulis):
        for group in group_qwc(fig6_paulis, 4):
            basis = group.basis_string()
            for member in group.members:
                assert member.can_be_measured_by(basis)

    def test_all_terms_accounted(self, fig6_paulis):
        groups = group_qwc(fig6_paulis, 4)
        members = [m for g in groups for m in g.members]
        assert sorted(members) == sorted(fig6_paulis)

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            group_qwc(["ZZ", "Z"], 2)


class TestCoverReduce:
    def test_fig6_reduces_10_to_7(self, fig6_paulis):
        """The paper's Eq.1 -> Eq.2: exactly 7 circuits survive."""
        groups = cover_reduce(fig6_paulis, 4)
        assert len(groups) == 7
        representatives = {str(g.members[0]) for g in groups}
        assert representatives == {
            "ZZIZ", "ZIZX", "ZXXZ", "XZIZ", "IXZZ", "XIZZ", "XXIX",
        }

    def test_fig6_absorbed_terms(self, fig6_paulis):
        """ZZII, IIZX, ZXIZ (the red terms of Eq.1) are absorbed."""
        groups = cover_reduce(fig6_paulis, 4)
        absorbed = {
            str(m)
            for g in groups
            for m in g.members[1:]
        }
        assert absorbed == {"ZZII", "IIZX", "ZXIZ"}

    def test_members_measured_by_representative(self, fig6_paulis):
        for group in cover_reduce(fig6_paulis, 4):
            rep = group.members[0]
            for member in group.members:
                assert member.can_be_measured_by(group.basis_string())
                assert member.can_be_measured_by(
                    PauliString(
                        "".join(
                            rep[i] if rep[i] != "I" else "Z"
                            for i in range(4)
                        )
                    )
                )

    def test_duplicates_collapse(self):
        groups = cover_reduce(["ZZ", "ZZ", "ZZ"], 2)
        assert len(groups) == 1

    def test_identity_dropped(self):
        groups = cover_reduce(["II", "ZI"], 2)
        assert len(groups) == 1

    def test_no_merging_of_maximal_terms(self):
        # IX and XI are QWC-compatible but neither covers the other:
        # the paper's trivial commutation keeps both (unlike group_qwc).
        assert len(cover_reduce(["IX", "XI"], 2)) == 2
        assert len(group_qwc(["IX", "XI"], 2)) == 1

    def test_all_input_terms_preserved(self, fig6_paulis):
        groups = cover_reduce(fig6_paulis, 4)
        members = sorted(m for g in groups for m in g.members)
        assert members == sorted(set(fig6_paulis))


class TestGreedyCover:
    def test_maps_each_term_to_a_measuring_basis(self, fig6_paulis):
        mapping = greedy_cover(fig6_paulis, 4)
        for term in fig6_paulis:
            assert term.can_be_measured_by(mapping[term])

    def test_identity_maps_to_identity(self):
        mapping = greedy_cover([PauliString("II")], 2)
        assert mapping[PauliString("II")] == PauliString("II")
