"""The ``dense`` backend is bit-identical to the pre-registry path.

The acceptance bar for the backend registry: selecting ``dense`` (or
selecting nothing) through any layer — ``Session(backend=...)``, the
registry's ``make_backend``, a sweep point — produces the very same
energies and circuit/shot ledgers as constructing
:class:`repro.noise.SimulatorBackend` directly, for every registered
estimator kind.
"""

import numpy as np
import pytest

from repro.api import Session, estimator_kinds
from repro.backends import make_backend
from repro.noise import SimulatorBackend
from repro.sweeps import Point
from repro.sweeps.runner import execute_point
from repro.vqe import run_vqe
from repro.workloads import make_workload

ALL_KINDS = (
    "ideal",
    "baseline",
    "jigsaw",
    "varsaw",
    "varsaw_no_sparsity",
    "varsaw_max_sparsity",
    "gc",
    "selective",
    "calibration_gated",
    "drift_adaptive",
)


def test_all_ten_kinds_are_covered():
    assert set(ALL_KINDS) == set(estimator_kinds())


@pytest.fixture(scope="module")
def workload():
    return make_workload("H2-4", reps=1, entanglement="linear")


def _tune(backend, workload, kind):
    session = Session(backend=backend)
    estimator = session.estimator(kind, workload, shots=32)
    result = run_vqe(estimator, max_iterations=3, seed=11)
    return result, backend.circuits_run, backend.shots_run


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_dense_kind_matches_direct_backend(kind, workload):
    direct = SimulatorBackend(workload.device, seed=11)
    registry = make_backend("dense", workload.device, seed=11)
    r_direct, c_direct, s_direct = _tune(direct, workload, kind)
    r_registry, c_registry, s_registry = _tune(registry, workload, kind)
    assert r_registry.energy == r_direct.energy
    assert r_registry.energy_history == r_direct.energy_history
    assert (c_registry, s_registry) == (c_direct, s_direct)


@pytest.mark.parametrize("kind", ["baseline", "varsaw", "gc"])
def test_session_backend_kind_matches_default_session(kind, workload):
    implicit = Session(workload.device, seed=7)
    explicit = Session(workload.device, seed=7, backend="dense")
    r_implicit = run_vqe(
        implicit.estimator(kind, workload, shots=32),
        max_iterations=3, seed=7,
    )
    r_explicit = run_vqe(
        explicit.estimator(kind, workload, shots=32),
        max_iterations=3, seed=7,
    )
    assert r_explicit.energy == r_implicit.energy
    assert explicit.ledger() == implicit.ledger()


def test_sweep_point_backend_dense_matches_absent():
    base = dict(
        workload={"key": "H2-4"}, scheme="varsaw", seed=5, shots=32,
        max_iterations=2,
    )
    implicit, _ = execute_point(Point(**base))
    explicit, _ = execute_point(Point(**base, backend="dense"))
    assert explicit == implicit


def test_live_backend_adoption_still_exclusive(workload):
    with pytest.raises(ValueError, match="not both"):
        Session(workload.device, backend=SimulatorBackend())


def test_seed_composes_with_backend_kind(workload):
    session = Session(workload.device, seed=9, backend="clifford")
    assert session.seed == 9
    assert session.backend_kind == "clifford"
    assert np.isfinite(
        session.estimator("baseline", workload, shots=16).evaluate(
            np.zeros(workload.ansatz.num_parameters)
        )
    )
