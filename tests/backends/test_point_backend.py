"""Sweep points with the optional ``backend`` field.

The compatibility bar: points that do not set ``backend`` serialize and
fingerprint exactly as they did before the field existed, so every
checkpointed store, golden snapshot, and resume path is untouched.
"""

import pytest

from repro.sweeps import Point, ResultStore, SweepSpec, run_sweep
from repro.sweeps.runner import execute_point

#: Fingerprints recorded on the pre-backend-field code (PR 4 tree).
PINNED = {
    "molecule": "489687cab84c1759d8e144cc421e2758",
    "spin": "be228ddca3c908379b5e5bb6b9bea88c",
    "structure": "0a64fcd33c4eb5865927b9243ab266ad",
}


class TestFingerprintStability:
    def test_pinned_fingerprints_unchanged(self):
        assert Point(
            workload={"key": "H2-4"}, scheme="varsaw", seed=3
        ).fingerprint() == PINNED["molecule"]
        assert Point(
            workload={"model": "tfim", "n_qubits": 6},
            scheme="baseline", shots=128,
            device={"preset": "ibmq_mumbai_like", "scale": 2.0},
        ).fingerprint() == PINNED["spin"]
        assert Point(
            task="structure", options={"window": 2},
            workload={"key": "LiH-6"},
        ).fingerprint() == PINNED["structure"]

    def test_absent_backend_is_omitted_from_serialization(self):
        point = Point(workload={"key": "H2-4"}, scheme="varsaw")
        assert "backend" not in point.to_dict()

    def test_set_backend_changes_the_fingerprint(self):
        base = dict(workload={"key": "H2-4"}, scheme="varsaw", seed=3)
        plain = Point(**base)
        clifford = Point(**base, backend="clifford")
        density = Point(**base, backend={"kind": "density"})
        prints = {p.fingerprint() for p in (plain, clifford, density)}
        assert len(prints) == 3

    def test_round_trip_preserves_backend(self):
        point = Point(
            workload={"key": "H2-4"}, scheme="varsaw",
            backend={"kind": "density", "analytic": True},
        )
        assert Point.from_dict(point.to_dict()) == point

    def test_old_records_load_without_the_field(self):
        payload = Point(
            workload={"key": "H2-4"}, scheme="varsaw"
        ).to_dict()
        assert Point.from_dict(payload).backend is None


class TestValidation:
    def test_unknown_backend_kind_fails_at_point_build(self):
        with pytest.raises(ValueError, match="unknown backend kind"):
            Point(workload={"key": "H2-4"}, scheme="varsaw",
                  backend="statevector")

    def test_misspelled_backend_knob_fails_at_point_build(self):
        with pytest.raises(ValueError, match="accepted fields"):
            Point(workload={"key": "H2-4"}, scheme="varsaw",
                  backend={"kind": "clifford", "falback": "dense"})

    def test_backend_axis_validates_at_spec_build(self):
        with pytest.raises(ValueError, match="unknown backend kind"):
            SweepSpec(
                name="bad",
                base={"workload": {"key": "H2-4"}, "scheme": "varsaw"},
                axes={"backend": ["dense", "nope"]},
            )

    def test_backend_rejected_on_non_backend_aware_tasks(self):
        """Executors that build their own backends would silently
        ignore the field and mislabel results — refuse instead."""
        with pytest.raises(ValueError, match="does not honor"):
            Point(task="structure", workload={"key": "H2-4"},
                  options={"window": 2}, backend="clifford")
        with pytest.raises(ValueError, match="does not honor"):
            Point(task="engine_replay", backend="dense")

    def test_label_names_the_backend(self):
        point = Point(workload={"key": "H2-4"}, scheme="varsaw",
                      backend="clifford")
        assert "backend=clifford" in point.label()


class TestExecution:
    def test_density_point_executes_and_differs_from_dense(self):
        base = dict(
            workload={"key": "H2-4"}, scheme="baseline", seed=5,
            shots=32, max_iterations=2,
        )
        dense, _ = execute_point(Point(**base))
        density, _ = execute_point(
            Point(**base, backend={"kind": "density"})
        )
        assert dense["circuits"] == density["circuits"]
        assert dense["energy"] != density["energy"]

    def test_backend_axis_sweeps_and_resumes(self, tmp_path):
        spec = SweepSpec(
            name="backend-axis",
            base={
                "workload": {"key": "H2-4"}, "scheme": "baseline",
                "shots": 16, "max_iterations": 2,
            },
            axes={"backend": ["dense", "clifford"]},
        )
        store = ResultStore(tmp_path / "s.jsonl")
        report = run_sweep(spec, store)
        assert len(report.executed) == 2
        resumed = run_sweep(spec, store)
        assert resumed.executed == []
        assert resumed.skipped == 2
