"""The ``density`` backend: local noise channels + analytic counts."""

import numpy as np
import pytest

from repro.api import Session
from repro.backends import DensityBackend, make_backend
from repro.circuits import Circuit
from repro.noise import SimulatorBackend, ibmq_mumbai_like
from repro.sim import run_density_matrix
from repro.workloads import make_workload


def bell():
    circuit = Circuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure_all()
    return circuit


class TestAnalyticCounts:
    def test_counts_are_expected_values_not_samples(self):
        backend = make_backend("density", seed=0)
        counts = backend.run(bell(), shots=100)
        assert counts["00"] == pytest.approx(50.0)
        assert counts["11"] == pytest.approx(50.0)
        assert counts.shots == pytest.approx(100.0)

    def test_repeat_executions_are_identical(self):
        backend = make_backend("density", ibmq_mumbai_like(), seed=0)
        first = backend.run(bell(), shots=64)
        second = backend.run(bell(), shots=64)
        assert first.data == second.data

    def test_analytic_false_restores_sampling(self):
        device = ibmq_mumbai_like()
        sampled = make_backend(
            {"kind": "density", "analytic": False}, device, seed=4
        )
        counts = sampled.run(bell(), shots=64)
        assert all(float(v).is_integer() for v in counts.data.values())
        assert counts.shots == 64

    def test_ledger_is_charged_like_any_backend(self):
        backend = make_backend("density", seed=0)
        backend.run(bell(), shots=100)
        backend.run(bell(), shots=50)
        assert (backend.circuits_run, backend.shots_run) == (2, 150)


class TestExpectationParity:
    def test_ideal_device_estimator_matches_exact_expectation(self):
        """Zero noise + analytic counts = the exact expectation value."""
        workload = make_workload("H2-4", reps=1, entanglement="linear")
        params = np.full(workload.ansatz.num_parameters, 0.1)
        exact = Session().estimator("ideal", workload).evaluate(params)
        session = Session(seed=0, backend="density")
        noisy_free = session.estimator(
            "baseline", workload, shots=16
        ).evaluate(params)
        assert noisy_free == pytest.approx(exact, abs=1e-9)

    def test_zero_variance_across_seeds(self):
        """Analytic expectations do not depend on the sampling seed."""
        workload = make_workload("H2-4", reps=1, entanglement="linear")
        params = np.full(workload.ansatz.num_parameters, 0.1)
        device = ibmq_mumbai_like(scale=2.0)
        values = {
            Session(device, seed=seed, backend="density").estimator(
                "baseline", workload, shots=8
            ).evaluate(params)
            for seed in (0, 1, 2)
        }
        assert len(values) == 1

    def test_dense_sampling_converges_to_density_analytic(self):
        """Under readout-only noise the two backends share one model:
        dense sampling must converge on the density backend's analytic
        expectation as shots grow."""
        workload = make_workload("H2-4", reps=1, entanglement="linear")
        params = np.full(workload.ansatz.num_parameters, 0.1)
        device = ibmq_mumbai_like()
        analytic = Session(
            device, backend={"kind": "density", "gate_noise": False}
        ).estimator("baseline", workload, shots=8).evaluate(params)
        sampled = np.mean([
            Session(
                device, seed=s,
                backend={"kind": "dense", "gate_noise": False},
            ).estimator(
                "baseline", workload, shots=8192
            ).evaluate(params)
            for s in range(4)
        ])
        assert sampled == pytest.approx(analytic, abs=0.05)


class TestLocalNoiseModel:
    def test_full_circuit_probs_match_reference_density_matrix(self):
        device = ibmq_mumbai_like(scale=2.0)
        backend = DensityBackend(device, seed=0, readout_enabled=False)
        circuit = bell()
        gn = device.gate_noise
        reference = run_density_matrix(
            circuit,
            gate_error_1q=gn.error_1q * gn.scale,
            gate_error_2q=gn.error_2q * gn.scale,
        )
        assert np.allclose(
            backend.exact_pmf(circuit).probs,
            reference.probabilities(),
        )

    def test_gate_noise_kill_switch_gives_pure_evolution(self):
        backend = DensityBackend(
            ibmq_mumbai_like(scale=2.0),
            readout_enabled=False,
            gate_noise_enabled=False,
        )
        probs = backend.exact_pmf(bell()).probs
        assert probs[0] == pytest.approx(0.5)
        assert probs[3] == pytest.approx(0.5)

    def test_amplitude_damping_is_in_the_engine_cache_key(self):
        """Changing damping must never reuse a memoized PMF."""
        from repro.engine import (
            CircuitSpec,
            device_fingerprint,
            ensure_engine,
        )

        backend = make_backend(
            {"kind": "density", "readout": False}, seed=0
        )
        plain_fp = device_fingerprint(backend)
        engine = ensure_engine(None, backend)
        before = engine.run_spec(CircuitSpec(bell(), 100))
        backend.amplitude_damping = 0.3
        assert device_fingerprint(backend) != plain_fp
        after = engine.run_spec(CircuitSpec(bell(), 100))
        assert before.data != after.data

    def test_amplitude_damping_biases_toward_zero(self):
        damped = make_backend(
            {"kind": "density", "amplitude_damping": 0.2,
             "readout": False},
        )
        plain = make_backend({"kind": "density", "readout": False})
        assert (
            damped.exact_pmf(bell()).probs[0]
            > plain.exact_pmf(bell()).probs[0]
        )

    def test_no_double_counting_of_gate_noise(self):
        """exact_pmf applies local channels only — mixing the global
        depolarizing weight on top again would push the distribution
        measurably closer to uniform than the reference evolution."""
        device = ibmq_mumbai_like(scale=2.0)
        backend = DensityBackend(device, readout_enabled=False)
        dense = SimulatorBackend(device, readout_enabled=False)
        circuit = bell()
        gn = device.gate_noise
        reference = run_density_matrix(
            circuit,
            gate_error_1q=gn.error_1q * gn.scale,
            gate_error_2q=gn.error_2q * gn.scale,
        ).probabilities()
        assert np.allclose(backend.exact_pmf(circuit).probs, reference)
        # and the models genuinely differ from the dense approximation
        assert not np.allclose(
            dense.exact_pmf(circuit).probs, reference
        )
