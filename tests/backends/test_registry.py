"""The backend registry: round-trips, listings, and loud failures."""

from dataclasses import dataclass

import pytest

from repro.backends import (
    BackendSpec,
    backend_class,
    backend_kinds,
    backend_spec_from_dict,
    make_backend,
    make_backend_spec,
    register_backend,
    resolve_backend_spec,
)
from repro.noise import SimulatorBackend, ibmq_mumbai_like


class TestListing:
    def test_builtin_kinds_in_canonical_order(self):
        kinds = backend_kinds()
        assert kinds[:3] == ("dense", "clifford", "density")

    def test_at_least_three_backends_registered(self):
        assert len(backend_kinds()) >= 3

    def test_backend_class_resolves_every_listed_kind(self):
        for kind in backend_kinds():
            cls = backend_class(kind)
            assert issubclass(cls, BackendSpec)
            assert cls.kind == kind


class TestRoundTrip:
    @pytest.mark.parametrize("kind", ["dense", "clifford", "density"])
    def test_to_dict_from_dict_round_trip(self, kind):
        spec = make_backend_spec(kind)
        payload = spec.to_dict()
        assert payload["kind"] == kind
        assert BackendSpec.from_dict(payload) == spec
        assert backend_spec_from_dict(payload) == spec

    def test_fingerprint_stable_across_field_order(self):
        a = backend_spec_from_dict(
            {"kind": "density", "analytic": False, "readout": True}
        )
        b = backend_spec_from_dict(
            {"readout": True, "kind": "density", "analytic": False}
        )
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_differs_between_kinds_and_params(self):
        dense = make_backend_spec("dense")
        clifford = make_backend_spec("clifford")
        assert dense.fingerprint() != clifford.fingerprint()
        assert (
            make_backend_spec("density").fingerprint()
            != make_backend_spec("density", analytic=False).fingerprint()
        )

    def test_replace_validates(self):
        spec = make_backend_spec("clifford")
        assert spec.replace(fallback="error").fallback == "error"
        with pytest.raises(ValueError, match="unknown parameter"):
            spec.replace(nope=1)


class TestErrors:
    def test_unknown_kind_names_choices(self):
        with pytest.raises(ValueError, match="unknown backend kind"):
            make_backend_spec("statevector")

    def test_unknown_parameter_names_key_and_fields(self):
        with pytest.raises(
            ValueError, match="'fallbck'.*accepted fields"
        ):
            make_backend_spec("clifford", fallbck="dense")

    def test_payload_without_kind_rejected(self):
        with pytest.raises(ValueError, match="needs a 'kind'"):
            backend_spec_from_dict({"analytic": True})

    def test_out_of_range_field_rejected_eagerly(self):
        with pytest.raises(ValueError, match="amplitude_damping"):
            make_backend_spec("density", amplitude_damping=1.5)
        with pytest.raises(ValueError, match="fallback"):
            make_backend_spec("clifford", fallback="explode")

    def test_resolve_rejects_foreign_types(self):
        with pytest.raises(TypeError, match="backend must be"):
            resolve_backend_spec(42)

    def test_reregistering_kind_to_other_class_raises(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_backend("dense")
            @dataclass(frozen=True)
            class Impostor(BackendSpec):
                pass

    def test_decorating_non_spec_raises(self):
        with pytest.raises(TypeError, match="BackendSpec subclass"):
            register_backend("thing")(object)


class TestMakeBackend:
    def test_none_is_the_dense_default(self):
        backend = make_backend(None, ibmq_mumbai_like(), seed=3)
        assert type(backend) is SimulatorBackend
        assert backend.backend_kind == "dense"
        assert backend.seed == 3

    def test_every_kind_creates_over_a_device(self):
        device = ibmq_mumbai_like()
        for kind in backend_kinds():
            backend = make_backend(kind, device, seed=1)
            assert backend.device is device
            if kind == "remote":
                # The remote backend advertises its *worker's*
                # simulation kind so engine cache keys fold transport
                # out (see repro.dist.remote).
                assert backend.backend_kind == "dense"
            else:
                assert backend.backend_kind == kind

    def test_payload_dict_spelling(self):
        backend = make_backend({"kind": "density", "analytic": False})
        assert backend.analytic is False
