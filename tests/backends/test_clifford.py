"""The ``clifford`` backend: stabilizer dispatch + dense fallback."""

import numpy as np
import pytest

from repro.backends import CliffordBackend, make_backend
from repro.circuits import Circuit
from repro.clifford import is_clifford_circuit, stabilizer_probabilities
from repro.noise import SimulatorBackend, ibmq_mumbai_like
from repro.sim import probabilities, run_statevector


def ghz(n):
    circuit = Circuit(n)
    circuit.h(0)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    circuit.measure_all()
    return circuit


def random_clifford(n, gates, seed):
    rng = np.random.default_rng(seed)
    circuit = Circuit(n)
    one_q = ("h", "s", "sdg", "x", "y", "z", "sx")
    two_q = ("cx", "cz", "swap")
    for _ in range(gates):
        if n > 1 and rng.random() < 0.4:
            a, b = rng.choice(n, size=2, replace=False)
            circuit.append(str(rng.choice(two_q)), (int(a), int(b)))
        else:
            circuit.append(str(rng.choice(one_q)), int(rng.integers(n)))
    circuit.measure_all()
    return circuit


class TestStabilizerProbabilities:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_ghz_distribution_is_exact(self, n):
        probs = stabilizer_probabilities(ghz(n))
        expect = np.zeros(2**n)
        expect[0] = expect[-1] = 0.5
        assert np.array_equal(probs, expect)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_statevector_on_random_cliffords(self, seed):
        circuit = random_clifford(4, 25, seed)
        got = stabilizer_probabilities(circuit)
        expect = probabilities(run_statevector(circuit))
        assert np.allclose(got, expect, atol=1e-12)

    def test_rejects_non_clifford_gates(self):
        circuit = Circuit(2)
        circuit.rx(0.3, 0)
        assert not is_clifford_circuit(circuit)
        with pytest.raises(ValueError):
            stabilizer_probabilities(circuit)


class TestDispatch:
    def test_ghz_counts_match_dense_backend_bitwise(self):
        device = ibmq_mumbai_like()
        dense = SimulatorBackend(device, seed=3)
        clifford = make_backend("clifford", device, seed=3)
        circuit = ghz(5)
        c_dense = dense.run(circuit, shots=512)
        c_clifford = clifford.run(circuit, shots=512)
        assert c_clifford.data == c_dense.data
        assert clifford.stabilizer_runs == 1
        assert clifford.dense_fallbacks == 0
        assert (dense.circuits_run, dense.shots_run) == (
            clifford.circuits_run, clifford.shots_run
        )

    def test_noisy_pmf_pipeline_is_shared(self):
        device = ibmq_mumbai_like(scale=2.0)
        dense = SimulatorBackend(device, seed=0)
        clifford = CliffordBackend(device, seed=0)
        circuit = ghz(4)
        assert np.allclose(
            clifford.exact_pmf(circuit).probs,
            dense.exact_pmf(circuit).probs,
            atol=1e-12,
        )

    def test_non_clifford_circuit_falls_back_to_dense(self):
        clifford = make_backend("clifford", seed=1)
        circuit = Circuit(2)
        circuit.h(0)
        circuit.rz(0.7, 1)
        circuit.measure_all()
        dense = SimulatorBackend(seed=1)
        assert clifford.run(circuit, 64).data == dense.run(circuit, 64).data
        assert clifford.dense_fallbacks == 1
        assert clifford.stabilizer_runs == 0

    def test_dispatch_is_per_circuit(self):
        clifford = make_backend("clifford", seed=1)
        non_clifford = Circuit(2)
        non_clifford.ry(0.2, 0)
        non_clifford.measure_all()
        clifford.run(ghz(2), 16)
        clifford.run(non_clifford, 16)
        clifford.run(ghz(3), 16)
        assert clifford.stabilizer_runs == 2
        assert clifford.dense_fallbacks == 1

    def test_error_fallback_mode_raises(self):
        strict = make_backend({"kind": "clifford", "fallback": "error"})
        circuit = Circuit(1)
        circuit.rx(0.5, 0)
        circuit.measure_all()
        with pytest.raises(ValueError, match="non-Clifford"):
            strict.run(circuit, 16)
        strict.run(ghz(2), 16)  # Clifford circuits still execute

    def test_invalid_fallback_rejected(self):
        with pytest.raises(ValueError, match="fallback"):
            CliffordBackend(fallback="maybe")


class TestEngineIntegration:
    def test_engine_caches_are_keyed_by_backend_kind(self):
        from repro.engine import device_fingerprint

        device = ibmq_mumbai_like()
        dense = SimulatorBackend(device, seed=0)
        clifford = CliffordBackend(device, seed=0)
        assert device_fingerprint(dense) != device_fingerprint(clifford)

    def test_batched_execution_uses_the_fast_path(self):
        from repro.engine import ensure_engine

        clifford = make_backend("clifford", ibmq_mumbai_like(), seed=5)
        engine = ensure_engine(None, clifford)
        batch = engine.new_batch()
        handles = [batch.submit_circuit(ghz(4), 32) for _ in range(3)]
        batch.run()
        # three submissions dedup to one stabilizer simulation ...
        assert clifford.stabilizer_runs == 1
        # ... while the ledger still charges every submission.
        assert clifford.circuits_run == 3
        assert all(h.result().shots == 32 for h in handles)
