"""Unit tests for the estimator registry (repro.api.registry)."""

from dataclasses import dataclass

import pytest

from repro.api import (
    EstimatorSpec,
    estimator_kinds,
    make_spec,
    register_estimator,
    resolve_spec,
    spec_class,
    spec_from_dict,
)
from repro.api import registry as registry_module
from repro.core import (
    CalibrationGatedSpec,
    SelectiveSpec,
    VarSawMaxSparsitySpec,
    VarSawNoSparsitySpec,
    VarSawSpec,
)
from repro.mitigation import JigSawSpec
from repro.vqe import BaselineSpec, GeneralCommutationSpec, IdealSpec

EXPECTED = {
    "ideal": IdealSpec,
    "baseline": BaselineSpec,
    "jigsaw": JigSawSpec,
    "varsaw": VarSawSpec,
    "varsaw_no_sparsity": VarSawNoSparsitySpec,
    "varsaw_max_sparsity": VarSawMaxSparsitySpec,
    "gc": GeneralCommutationSpec,
    "selective": SelectiveSpec,
    "calibration_gated": CalibrationGatedSpec,
}


class TestKinds:
    def test_at_least_nine_kinds(self):
        assert len(estimator_kinds()) >= 9

    def test_builtin_classes_registered(self):
        for kind, cls in EXPECTED.items():
            assert spec_class(kind) is cls
            assert cls.kind == kind

    def test_legacy_kinds_first_in_canonical_order(self):
        kinds = estimator_kinds()
        assert kinds[:6] == (
            "ideal", "baseline", "jigsaw", "varsaw",
            "varsaw_no_sparsity", "varsaw_max_sparsity",
        )
        assert set(kinds[6:9]) == {"gc", "selective", "calibration_gated"}

    def test_unknown_kind_lists_choices(self):
        with pytest.raises(ValueError, match="unknown estimator kind"):
            spec_class("magic")
        with pytest.raises(ValueError, match="varsaw"):
            make_spec("magic")


class TestRegistration:
    def test_out_of_tree_registration(self):
        @register_estimator("unit_test_kind")
        @dataclass(frozen=True)
        class UnitTestSpec(EstimatorSpec):
            knob: int = 3

        try:
            assert "unit_test_kind" in estimator_kinds()
            # Out-of-tree kinds list after the built-ins.
            assert estimator_kinds().index("unit_test_kind") >= 9
            spec = make_spec("unit_test_kind", knob=5)
            assert spec.knob == 5
            assert spec.kind == "unit_test_kind"
        finally:
            del registry_module._REGISTRY["unit_test_kind"]

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_estimator("varsaw")
            @dataclass(frozen=True)
            class Impostor(EstimatorSpec):
                pass

    def test_redecorating_same_class_is_noop(self):
        assert register_estimator("varsaw")(VarSawSpec) is VarSawSpec

    def test_non_spec_class_rejected(self):
        with pytest.raises(TypeError, match="EstimatorSpec"):
            register_estimator("bad")(object)

    def test_empty_kind_rejected(self):
        with pytest.raises(ValueError):
            register_estimator("")


class TestResolveSpec:
    def test_from_kind_name(self):
        assert resolve_spec("varsaw", window=3) == make_spec(
            "varsaw", window=3
        )

    def test_from_payload(self):
        spec = resolve_spec({"kind": "jigsaw", "window": 4})
        assert isinstance(spec, JigSawSpec)
        assert spec.window == 4

    def test_from_spec_instance(self):
        spec = make_spec("varsaw")
        assert resolve_spec(spec) is spec
        assert resolve_spec(spec, window=5).window == 5

    def test_payload_without_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            spec_from_dict({"window": 2})

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            resolve_spec(42)
