"""Spec round-trips, fingerprints, and eager validation.

Satellite coverage for PR 4: every registered kind's spec
``to_dict()``/``from_dict()`` round-trips, fingerprints are stable
under field reordering (hypothesis), and validation fails loudly at
spec build time.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    EstimatorSpec,
    estimator_kinds,
    make_spec,
    spec_class,
    spec_from_dict,
)

ALL_KINDS = list(estimator_kinds())

#: One non-default parameter assignment per kind (skipping parameterless
#: kinds), so round-trips exercise real values, not just defaults.
NON_DEFAULTS = {
    "baseline": {"shots": 17},
    "jigsaw": {"window": 3, "subset_shots": 9},
    "varsaw": {"global_mode": "always", "initial_period": 4},
    "varsaw_no_sparsity": {"window": 4},
    "varsaw_max_sparsity": {"shots": 33},
    "gc": {"method": "greedy"},
    "selective": {"mass_fraction": 0.7, "phase_evaluations": 12,
                  "phase_start": 0.25},
    "calibration_gated": {"error_threshold": 0.25},
}


class TestRoundTrip:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_default_spec_round_trips(self, kind):
        spec = make_spec(kind)
        payload = spec.to_dict()
        assert payload["kind"] == kind
        assert json.loads(json.dumps(payload)) == payload
        assert EstimatorSpec.from_dict(payload) == spec
        assert spec_from_dict(payload) == spec

    @pytest.mark.parametrize("kind", sorted(NON_DEFAULTS))
    def test_non_default_spec_round_trips(self, kind):
        spec = make_spec(kind, **NON_DEFAULTS[kind])
        rebuilt = EstimatorSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert type(rebuilt) is type(spec)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_concrete_from_dict_checks_kind(self, kind):
        cls = spec_class(kind)
        assert cls.from_dict({"kind": kind}) == cls()
        with pytest.raises(ValueError, match="does not match"):
            cls.from_dict({"kind": "definitely_not_" + kind})

    def test_replace_round_trips(self):
        spec = make_spec("varsaw", window=3)
        assert spec.replace(window=2) == make_spec("varsaw")
        with pytest.raises(ValueError, match="'windw'"):
            spec.replace(windw=4)


class TestFingerprint:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_fingerprint_survives_round_trip(self, kind):
        spec = make_spec(kind, **NON_DEFAULTS.get(kind, {}))
        rebuilt = EstimatorSpec.from_dict(spec.to_dict())
        assert rebuilt.fingerprint() == spec.fingerprint()

    def test_fingerprint_distinguishes_kinds_and_values(self):
        prints = {
            make_spec(kind).fingerprint() for kind in ALL_KINDS
        }
        assert len(prints) == len(ALL_KINDS)
        assert (
            make_spec("varsaw", window=3).fingerprint()
            != make_spec("varsaw").fingerprint()
        )

    @settings(max_examples=40, deadline=None)
    @given(
        kind=st.sampled_from(sorted(NON_DEFAULTS)),
        order=st.randoms(use_true_random=False),
    )
    def test_fingerprint_stable_under_field_reordering(self, kind, order):
        """Payload dict insertion order never changes the digest."""
        spec = make_spec(kind, **NON_DEFAULTS[kind])
        items = list(spec.to_dict().items())
        order.shuffle(items)
        assert spec_from_dict(dict(items)).fingerprint() == (
            spec.fingerprint()
        )


class TestValidation:
    def test_unknown_key_names_offender_and_fields(self):
        with pytest.raises(ValueError) as excinfo:
            make_spec("jigsaw", windw=3)
        message = str(excinfo.value)
        assert "'windw'" in message
        assert "jigsaw" in message
        assert "window" in message and "shots" in message

    def test_multiple_unknown_keys_all_named(self):
        with pytest.raises(ValueError, match="'a'.*'b'"):
            make_spec("baseline", a=1, b=2)

    @pytest.mark.parametrize(
        ("kind", "params"),
        [
            ("baseline", {"shots": 0}),
            ("baseline", {"shots": "many"}),
            ("baseline", {"shots": True}),
            ("jigsaw", {"window": 0}),
            ("jigsaw", {"subset_shots": -1}),
            ("varsaw", {"global_mode": "sometimes"}),
            ("varsaw", {"max_period": 1, "initial_period": 8}),
            ("varsaw", {"mbm": "yes"}),
            ("varsaw_no_sparsity", {"global_mode": "never"}),
            ("varsaw_max_sparsity", {"global_mode": "adaptive"}),
            ("gc", {"method": "rainbow"}),
            ("selective", {"mass_fraction": 1.5}),
            ("selective", {"phase_evaluations": 0}),
            ("selective", {"phase_start": 0.9, "phase_end": 0.1}),
            ("calibration_gated", {"error_threshold": -0.1}),
            ("calibration_gated", {"error_threshold": True}),
        ],
    )
    def test_out_of_range_values_fail_eagerly(self, kind, params):
        with pytest.raises(ValueError):
            make_spec(kind, **params)

    def test_validation_runs_on_from_dict_too(self):
        with pytest.raises(ValueError):
            spec_from_dict({"kind": "varsaw", "window": 0})
