"""Session construction, ledger snapshots, and engine wiring."""

import numpy as np
import pytest

from repro.api import LedgerSnapshot, Session, make_spec
from repro.engine import EngineConfig, ExecutionEngine, shared_engine
from repro.noise import SimulatorBackend, ibm_lagos_like, ibmq_mumbai_like
from repro.workloads import make_workload


@pytest.fixture
def workload():
    return make_workload("H2-4", reps=1, entanglement="linear")


class TestConstruction:
    def test_device_model(self):
        device = ibm_lagos_like()
        session = Session(device, seed=3)
        assert session.device is device
        assert session.seed == 3
        assert session.backend.device is device

    def test_device_preset_name(self):
        session = Session("ibm_lagos_like", seed=1)
        assert session.device.name == "ibm_lagos_like"

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown device preset"):
            Session("ibm_nowhere_like")

    def test_default_is_ideal_device(self):
        assert Session().device.name == "ideal"

    def test_noise_scale_applied(self):
        base = ibmq_mumbai_like()
        session = Session(base, seed=0, noise_scale=2.0)
        scaled = base.with_noise_scale(2.0)
        assert session.device.readout.qubit_errors[0].p01 == (
            scaled.readout.qubit_errors[0].p01
        )

    def test_noise_scale_without_device_rejected(self):
        with pytest.raises(ValueError, match="noise_scale"):
            Session(noise_scale=2.0)

    def test_adopt_backend(self):
        backend = SimulatorBackend(ibm_lagos_like(), seed=9)
        session = Session(backend=backend)
        assert session.backend is backend
        assert session.seed == 9

    def test_backend_and_device_mutually_exclusive(self):
        backend = SimulatorBackend(seed=0)
        with pytest.raises(ValueError, match="not both"):
            Session(ibm_lagos_like(), backend=backend)
        with pytest.raises(ValueError, match="not both"):
            Session(backend=backend, seed=1)


class TestEngineWiring:
    def test_default_engine_is_backend_shared(self):
        session = Session(ibm_lagos_like(), seed=0)
        assert session.engine is shared_engine(session.backend)

    def test_engine_config_builds_private_engine(self):
        session = Session(ibm_lagos_like(), seed=0,
                          engine=EngineConfig(cache_size=4))
        assert session.engine is not shared_engine(session.backend)
        assert session.engine.config.cache_size == 4

    def test_ready_engine_adopted(self):
        backend = SimulatorBackend(ibm_lagos_like(), seed=0)
        engine = ExecutionEngine(backend)
        session = Session(backend=backend, engine=engine)
        assert session.engine is engine

    def test_estimators_share_the_session_engine(self, workload):
        session = Session(workload.device, seed=0)
        first = session.estimator("baseline", workload, shots=16)
        second = session.estimator("varsaw", workload, shots=16)
        assert first.engine is session.engine
        assert second.engine is session.engine

    def test_context_manager_closes_engine(self):
        with Session(ibm_lagos_like(), seed=0) as session:
            assert session.engine is not None
        # Idempotent close.
        session.close()


class TestSpecResolution:
    def test_soft_shots_ignored_by_parameterless_kind(self, workload):
        session = Session(workload.device, seed=0)
        spec = session.spec("ideal", shots=512)
        assert spec.field_names() == ()

    def test_soft_shots_applied_when_accepted(self):
        session = Session()
        assert session.spec("baseline", shots=64).shots == 64

    def test_payload_pins_win_over_soft_defaults(self):
        session = Session()
        spec = session.spec({"kind": "gc", "shots": 128}, shots=64)
        assert spec.shots == 128

    def test_strict_params_reject_misspellings(self):
        with pytest.raises(ValueError, match="'windw'"):
            Session().spec("varsaw", windw=3)

    def test_spec_instance_passes_through(self):
        spec = make_spec("varsaw", window=3)
        assert Session().spec(spec) is spec
        # A built spec is complete: soft defaults never alter it
        # (`replace` is the explicit way to change fields).
        assert Session().spec(spec, shots=64).shots == spec.shots
        assert Session().spec(spec).window == 3

    def test_payload_without_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Session().spec({"window": 2})


class TestLedger:
    def test_ledger_counts_work(self, workload):
        session = Session(workload.device, seed=0)
        start = session.ledger()
        assert start == LedgerSnapshot(0, 0, 0, 0, 0)
        estimator = session.estimator("baseline", workload, shots=16)
        estimator.evaluate(np.zeros(workload.ansatz.num_parameters))
        after = session.ledger()
        delta = after - start
        assert delta.circuits > 0
        assert delta.shots == delta.circuits * 16
        assert delta.simulations > 0

    def test_ledger_matches_backend_counters(self, workload):
        session = Session(workload.device, seed=0)
        estimator = session.estimator("varsaw", workload, shots=16)
        estimator.evaluate(np.zeros(workload.ansatz.num_parameters))
        ledger = session.ledger()
        assert ledger.circuits == session.backend.circuits_run
        assert ledger.shots == session.backend.shots_run
