"""Bit-identity: the Session/spec path vs the legacy constructions.

The api_redesign acceptance bar: with a fixed seed, constructing through
``Session.estimator`` (or the ``make_estimator`` shim, which now
resolves through the registry) yields *bit-identical* energies and
cost ledgers to the historical direct-constructor / string-factory
paths, for every registered kind.
"""

import numpy as np
import pytest

from repro.api import Session, make_spec
from repro.core import (
    CalibrationGate,
    CalibrationGatedVarSawEstimator,
    PhasePolicy,
    SelectiveVarSawEstimator,
    TermSelector,
    VarSawEstimator,
)
from repro.mitigation import JigSawEstimator, MatrixMitigator
from repro.noise import SimulatorBackend
from repro.vqe import (
    BaselineEstimator,
    GeneralCommutationEstimator,
    IdealEstimator,
    run_vqe,
)
from repro.workloads import make_estimator, make_workload

LEGACY_FACTORY_KINDS = (
    "ideal",
    "baseline",
    "jigsaw",
    "varsaw",
    "varsaw_no_sparsity",
    "varsaw_max_sparsity",
)


@pytest.fixture(scope="module")
def workload():
    return make_workload("H2-4", reps=1, entanglement="linear")


def _params(workload):
    return np.full(workload.ansatz.num_parameters, 0.1)


class TestSessionVsLegacyFactory:
    @pytest.mark.parametrize("kind", LEGACY_FACTORY_KINDS)
    def test_tuning_runs_bit_identical(self, kind, workload):
        backend = SimulatorBackend(workload.device, seed=11)
        legacy = run_vqe(
            make_estimator(kind, workload, backend, shots=32),
            max_iterations=3,
            seed=11,
        )
        session = Session(workload.device, seed=11)
        ours = run_vqe(
            session.estimator(kind, workload, shots=32),
            max_iterations=3,
            seed=11,
        )
        assert ours.energy == legacy.energy
        assert ours.energy_history == legacy.energy_history
        assert session.backend.circuits_run == backend.circuits_run
        assert session.backend.shots_run == backend.shots_run


class TestSessionVsDirectConstructors:
    """The kinds the legacy factory never exposed, against the direct
    constructor calls the benchmarks used to hand-wire."""

    CASES = {
        "ideal": (IdealEstimator, {}, {}),
        "baseline": (BaselineEstimator, {"shots": 32}, {"shots": 32}),
        "jigsaw": (
            JigSawEstimator,
            {"shots": 32, "window": 3},
            {"shots": 32, "window": 3},
        ),
        "varsaw": (
            VarSawEstimator,
            {"shots": 32, "global_mode": "always"},
            {"shots": 32, "global_mode": "always"},
        ),
        "gc": (
            GeneralCommutationEstimator,
            {"shots": 32},
            {"shots": 32},
        ),
        "selective": (
            SelectiveVarSawEstimator,
            {
                "shots": 32,
                "global_mode": "always",
                "term_selector": TermSelector(0.8),
                "phase_policy": PhasePolicy(10, start_fraction=0.5),
            },
            {
                "shots": 32,
                "global_mode": "always",
                "mass_fraction": 0.8,
                "phase_evaluations": 10,
                "phase_start": 0.5,
            },
        ),
        "calibration_gated": (
            CalibrationGatedVarSawEstimator,
            {"shots": 32, "gate": CalibrationGate(error_threshold=0.02)},
            {"shots": 32, "error_threshold": 0.02},
        ),
    }

    @pytest.mark.parametrize("kind", sorted(CASES))
    def test_evaluations_bit_identical(self, kind, workload):
        cls, ctor_kwargs, spec_params = self.CASES[kind]
        params = _params(workload)

        backend = SimulatorBackend(workload.device, seed=5)
        legacy = cls(
            workload.hamiltonian, workload.ansatz, backend, **ctor_kwargs
        )
        legacy_energies = [legacy.evaluate(params) for _ in range(3)]

        session = Session(workload.device, seed=5)
        ours = session.estimator(kind, workload, **spec_params)
        assert type(ours) is cls
        energies = [ours.evaluate(params) for _ in range(3)]

        assert energies == legacy_energies
        assert session.backend.circuits_run == backend.circuits_run
        assert session.backend.shots_run == backend.shots_run


class TestMbmMaterialization:
    def test_mbm_flag_matches_hand_wired_mitigator(self, workload):
        params = _params(workload)
        backend = SimulatorBackend(workload.device, seed=2)
        mitigator = MatrixMitigator.from_device(
            SimulatorBackend(workload.device), range(workload.n_qubits)
        )
        legacy = VarSawEstimator(
            workload.hamiltonian,
            workload.ansatz,
            backend,
            shots=32,
            mbm=mitigator,
        )
        session = Session(workload.device, seed=2)
        ours = session.estimator("varsaw", workload, shots=32, mbm=True)
        assert ours.evaluate(params) == legacy.evaluate(params)

    def test_live_mbm_object_still_accepted_by_shim(self, workload):
        backend = SimulatorBackend(workload.device, seed=2)
        mitigator = MatrixMitigator.from_device(
            SimulatorBackend(workload.device), range(workload.n_qubits)
        )
        estimator = make_estimator(
            "varsaw", workload, backend, shots=32, mbm=mitigator
        )
        assert estimator.mbm is mitigator


class TestSpecDrivenPointParity:
    def test_inline_spec_point_matches_scheme_point(self, tmp_path):
        """A Point whose estimator payload carries the kind produces the
        same stored numbers as the classic scheme field."""
        from repro.sweeps import Point, ResultStore, run_sweep

        base = dict(
            workload={"key": "H2-4"},
            shots=16,
            max_iterations=2,
            seed=3,
        )
        classic = Point(scheme="varsaw", estimator={"window": 2}, **base)
        inline = Point(
            estimator={"kind": "varsaw", "window": 2}, **base
        )
        store = ResultStore(tmp_path / "parity.jsonl")
        report = run_sweep([classic, inline], store)
        records = list(report.records.values())
        assert len(records) == 2
        assert records[0]["result"] == records[1]["result"]

    def test_energy_task_honors_inline_kind_and_pinned_shots(
        self, tmp_path
    ):
        """Every estimator-building task decodes the payload through
        Point.estimator_args — inline kinds and payload-pinned shots
        must not crash the energy task (PR 4 review regression)."""
        from repro.sweeps import Point, ResultStore, run_sweep

        base = dict(
            workload={"key": "H2-4"},
            task="energy",
            shots=16,
            seed=3,
            options={"params_iterations": 40},
        )
        points = [
            Point(
                estimator={"kind": "gc", "shots": 32, "method": "color"},
                **base,
            ),
            Point(scheme="varsaw", estimator={"shots": 32}, **base),
        ]
        store = ResultStore(tmp_path / "energy.jsonl")
        report = run_sweep(points, store)
        for record in report.records.values():
            assert record["result"]["energy"] != 0.0
        # The pinned shot count actually drove the evaluation: the
        # classic-scheme point with the same payload-free spelling at
        # 32 shots matches the payload-pinned row bit for bit.
        classic = Point(
            scheme="varsaw", shots=32, task="energy", seed=3,
            workload={"key": "H2-4"},
            options={"params_iterations": 40},
        )
        report2 = run_sweep([classic], ResultStore(tmp_path / "c.jsonl"))
        [classic_record] = report2.records.values()
        pinned_record = store.get(points[1].fingerprint())
        assert classic_record["result"] == pinned_record["result"]

    def test_zne_task_honors_inline_kind(self, tmp_path):
        from repro.sweeps import Point, ResultStore, run_sweep

        point = Point(
            workload={"key": "H2-4"},
            task="zne",
            estimator={"kind": "gc"},
            shots=16,
            seed=3,
            options={"params_iterations": 40, "scales": [1.0, 2.0]},
        )
        store = ResultStore(tmp_path / "zne.jsonl")
        report = run_sweep([point], store)
        [record] = report.records.values()
        assert record["result"]["energy"] != 0.0
