"""The shared JSONL journal core: append, load, tolerate, merge."""

import json
import threading

import pytest

from repro.io import Journal, LoadReport


def journal(path, **overrides):
    kwargs = {"key_field": "key", "required_fields": ("value",)}
    kwargs.update(overrides)
    return Journal(path, 1, **kwargs)


def record(key, value=0, schema=1):
    return {"schema": schema, "key": key, "value": value}


class TestAppendLoad:
    def test_roundtrip(self, tmp_path):
        j = journal(tmp_path / "j.jsonl")
        assert j.append_record("a", record("a", 1)) is True
        assert j.append_record("b", record("b", 2)) is True

        reloaded = journal(tmp_path / "j.jsonl")
        assert len(reloaded) == 2
        assert "a" in reloaded
        assert reloaded.get("a")["value"] == 1
        assert reloaded.keys() == {"a", "b"}

    def test_first_record_wins(self, tmp_path):
        j = journal(tmp_path / "j.jsonl")
        assert j.append_record("a", record("a", 1)) is True
        assert j.append_record("a", record("a", 99)) is False
        assert j.get("a")["value"] == 1
        # Nothing was written for the refused duplicate.
        lines = (tmp_path / "j.jsonl").read_text().splitlines()
        assert len(lines) == 1

    def test_records_in_file_order(self, tmp_path):
        j = journal(tmp_path / "j.jsonl")
        for key in ("c", "a", "b"):
            j.append_record(key, record(key))
        assert [r["key"] for r in j.records()] == ["c", "a", "b"]

    def test_missing_file_is_empty(self, tmp_path):
        j = journal(tmp_path / "absent.jsonl")
        assert len(j) == 0
        assert j.get("a") is None

    def test_one_json_line_per_record(self, tmp_path):
        j = journal(tmp_path / "j.jsonl")
        j.append_record("a", record("a", 1))
        (line,) = (tmp_path / "j.jsonl").read_text().splitlines()
        assert json.loads(line) == record("a", 1)


class TestTolerantLoading:
    def test_torn_tail_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = journal(path)
        j.append_record("a", record("a"))
        with path.open("a") as handle:
            handle.write('{"schema": 1, "key": "torn", "val')

        reloaded = journal(path)
        assert reloaded.keys() == {"a"}
        assert reloaded.load_report.corrupt_lines == 1

    def test_incompatible_schema_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = journal(path)
        j.append_record("a", record("a"))
        with path.open("a") as handle:
            handle.write(json.dumps(record("b", schema=2)) + "\n")

        reloaded = journal(path)
        assert reloaded.keys() == {"a"}
        assert reloaded.load_report.incompatible_records == 1

    def test_missing_required_field_is_corrupt(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with path.open("w") as handle:
            handle.write('{"schema": 1, "key": "a"}\n')

        reloaded = journal(path)
        assert len(reloaded) == 0
        assert reloaded.load_report.corrupt_lines == 1

    def test_duplicate_lines_counted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with path.open("w") as handle:
            handle.write(json.dumps(record("a", 1)) + "\n")
            handle.write(json.dumps(record("a", 2)) + "\n")

        reloaded = journal(path)
        assert reloaded.get("a")["value"] == 1
        assert reloaded.load_report.duplicate_records == 1

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with path.open("w") as handle:
            handle.write("\n" + json.dumps(record("a")) + "\n\n")
        reloaded = journal(path)
        assert reloaded.keys() == {"a"}
        assert reloaded.load_report == LoadReport(
            records={"a": record("a")},
            corrupt_lines=0,
            incompatible_records=0,
            duplicate_records=0,
        )


class TestMerge:
    def test_merge_from_journal(self, tmp_path):
        a = journal(tmp_path / "a.jsonl")
        b = journal(tmp_path / "b.jsonl")
        a.append_record("x", record("x", 1))
        b.append_record("x", record("x", 99))
        b.append_record("y", record("y", 2))

        assert a.merge_from(b) == 1
        assert a.get("x")["value"] == 1  # existing record untouched
        assert a.get("y")["value"] == 2

    def test_merge_from_path(self, tmp_path):
        a = journal(tmp_path / "a.jsonl")
        b = journal(tmp_path / "b.jsonl")
        b.append_record("y", record("y"))
        assert a.merge_from(tmp_path / "b.jsonl") == 1
        assert "y" in a


class TestConcurrency:
    def test_concurrent_appends_all_land(self, tmp_path):
        j = journal(tmp_path / "j.jsonl")

        def write(start):
            for i in range(start, start + 25):
                j.append_record(f"k{i}", record(f"k{i}", i))

        threads = [
            threading.Thread(target=write, args=(n * 25,))
            for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        reloaded = journal(tmp_path / "j.jsonl")
        assert len(reloaded) == 100
        assert reloaded.load_report.corrupt_lines == 0


class TestValidation:
    def test_repr_names_path_and_count(self, tmp_path):
        j = journal(tmp_path / "j.jsonl")
        j.append_record("a", record("a"))
        assert "j.jsonl" in repr(j)
        assert "1 records" in repr(j)

    def test_key_field_respected(self, tmp_path):
        j = Journal(tmp_path / "j.jsonl", 1, key_field="name")
        j.append_record("n1", {"schema": 1, "name": "n1"})
        reloaded = Journal(tmp_path / "j.jsonl", 1, key_field="name")
        assert "n1" in reloaded

    def test_record_without_key_field_corrupt(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with path.open("w") as handle:
            handle.write('{"schema": 1, "value": 3}\n')
        reloaded = journal(path)
        assert reloaded.load_report.corrupt_lines == 1

    def test_non_mapping_line_corrupt(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with path.open("w") as handle:
            handle.write("[1, 2, 3]\n")
        reloaded = journal(path)
        assert len(reloaded) == 0
        assert reloaded.load_report.corrupt_lines == 1


@pytest.mark.parametrize("n", [0, 1, 5])
def test_len_matches_appends(tmp_path, n):
    j = journal(tmp_path / "j.jsonl")
    for i in range(n):
        j.append_record(f"k{i}", record(f"k{i}"))
    assert len(j) == n
