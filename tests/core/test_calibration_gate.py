"""Unit tests for calibration-gated VarSaw (Section 7.1 extension)."""

import numpy as np
import pytest

from repro.core import (
    CalibrationGate,
    CalibrationGatedVarSawEstimator,
    VarSawEstimator,
    varsaw_subset_plan,
)
from repro.hamiltonian import Hamiltonian
from repro.noise import (
    DepolarizingGateNoise,
    DeviceModel,
    QubitReadoutError,
    ReadoutErrorModel,
    SimulatorBackend,
)
from repro.workloads import make_workload


def lopsided_device(errors):
    """A device whose per-qubit readout errors are given exactly."""
    readout = ReadoutErrorModel(
        [QubitReadoutError(e, e) for e in errors],
        crosstalk_strength=0.0,
    )
    return DeviceModel(
        "lopsided", readout, DepolarizingGateNoise(0.0, 0.0)
    )


@pytest.fixture
def split_quality_device():
    """Qubits 0-1 nearly perfect, qubits 2-3 poor."""
    return lopsided_device([1e-5, 1e-5, 0.06, 0.08])


class TestCalibrationGate:
    def test_windows_on_good_qubits_skipped(self, split_quality_device):
        ham = Hamiltonian([(1.0, "ZZZZ"), (0.5, "XXXX")])
        plan = varsaw_subset_plan(ham, window=2)
        gate = CalibrationGate(error_threshold=0.01)
        kept = gate.keep_indices(plan, split_quality_device.readout)
        for index in kept:
            support = plan.support(index)
            assert any(q >= 2 for q in support)
        skipped = set(range(plan.num_subsets)) - set(kept)
        for index in skipped:
            assert all(q <= 1 for q in plan.support(index))

    def test_zero_threshold_keeps_everything(self, split_quality_device):
        ham = Hamiltonian([(1.0, "ZZZZ")])
        plan = varsaw_subset_plan(ham, window=2)
        gate = CalibrationGate(error_threshold=0.0)
        assert gate.keep_indices(
            plan, split_quality_device.readout
        ) == list(range(plan.num_subsets))

    def test_huge_threshold_skips_everything(self, split_quality_device):
        ham = Hamiltonian([(1.0, "ZZZZ")])
        plan = varsaw_subset_plan(ham, window=2)
        gate = CalibrationGate(error_threshold=0.5)
        assert gate.keep_indices(plan, split_quality_device.readout) == []

    def test_explicit_mapping_respected(self, split_quality_device):
        ham = Hamiltonian([(1.0, "ZZ")])
        plan = varsaw_subset_plan(ham, window=2)
        gate = CalibrationGate(error_threshold=0.01)
        # Map both logical qubits onto the good physical lines:
        mapping = {0: 0, 1: 1}
        assert gate.keep_indices(
            plan, split_quality_device.readout, mapping
        ) == []
        # ...or onto the bad ones:
        mapping = {0: 2, 1: 3}
        assert len(gate.keep_indices(
            plan, split_quality_device.readout, mapping
        )) == plan.num_subsets

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            CalibrationGate(error_threshold=-0.1)


class TestGatedEstimator:
    def test_skips_recorded_and_plan_pruned(self, split_quality_device):
        workload = make_workload("H2-4", device=split_quality_device)
        backend = SimulatorBackend(split_quality_device, seed=5)
        plain = VarSawEstimator(
            workload.hamiltonian, workload.ansatz, backend, shots=128
        )
        gated = CalibrationGatedVarSawEstimator(
            workload.hamiltonian,
            workload.ansatz,
            SimulatorBackend(split_quality_device, seed=5),
            shots=128,
            gate=CalibrationGate(error_threshold=0.01),
        )
        assert gated.subsets_skipped > 0
        assert (
            gated.plan.num_subsets + gated.subsets_skipped
            == plain.plan.num_subsets
        )

    def test_evaluation_still_works_and_costs_less(
        self, split_quality_device
    ):
        workload = make_workload("H2-4", device=split_quality_device)
        params = np.full(workload.ansatz.num_parameters, 0.1)

        backend_plain = SimulatorBackend(split_quality_device, seed=7)
        plain = VarSawEstimator(
            workload.hamiltonian, workload.ansatz, backend_plain, shots=128
        )
        plain.evaluate(params)

        backend_gated = SimulatorBackend(split_quality_device, seed=7)
        gated = CalibrationGatedVarSawEstimator(
            workload.hamiltonian,
            workload.ansatz,
            backend_gated,
            shots=128,
            gate=CalibrationGate(error_threshold=0.01),
        )
        value = gated.evaluate(params)
        assert np.isfinite(value)
        assert backend_gated.circuits_run < backend_plain.circuits_run

    def test_default_gate_constructed(self, split_quality_device):
        workload = make_workload("H2-4", device=split_quality_device)
        gated = CalibrationGatedVarSawEstimator(
            workload.hamiltonian,
            workload.ansatz,
            SimulatorBackend(split_quality_device, seed=9),
            shots=128,
        )
        assert gated.gate.error_threshold == pytest.approx(0.01)

    def test_accuracy_preserved_when_skipping_clean_windows(
        self, split_quality_device
    ):
        """Skipping subsets on near-perfect qubits costs ~no accuracy."""
        workload = make_workload("H2-4", device=split_quality_device)
        params = np.full(workload.ansatz.num_parameters, 0.1)
        from repro.vqe import IdealEstimator

        exact = IdealEstimator(
            workload.hamiltonian, workload.ansatz
        ).evaluate(params)

        def mean_error(estimator_factory, trials=5):
            errors = []
            for seed in range(trials):
                estimator = estimator_factory(seed)
                errors.append(abs(estimator.evaluate(params) - exact))
            return float(np.mean(errors))

        plain_err = mean_error(
            lambda s: VarSawEstimator(
                workload.hamiltonian,
                workload.ansatz,
                SimulatorBackend(split_quality_device, seed=s),
                shots=2048,
            )
        )
        gated_err = mean_error(
            lambda s: CalibrationGatedVarSawEstimator(
                workload.hamiltonian,
                workload.ansatz,
                SimulatorBackend(split_quality_device, seed=s),
                shots=2048,
                gate=CalibrationGate(error_threshold=0.01),
            )
        )
        assert gated_err < plain_err + 0.25
