"""Unit tests for the end-to-end VarSaw estimator."""

import numpy as np
import pytest

from repro.core import VarSawEstimator
from repro.mitigation import JigSawEstimator
from repro.noise import SimulatorBackend, ibmq_mumbai_like
from repro.vqe import BaselineEstimator, IdealEstimator


def make_varsaw(h2, h2_ansatz, backend, **kw):
    kw.setdefault("shots", 64)
    return VarSawEstimator(h2, h2_ansatz, backend, **kw)


class TestCostAccounting:
    def test_first_evaluation_runs_globals_and_subsets(self, h2, h2_ansatz):
        backend = SimulatorBackend(seed=0)
        est = make_varsaw(h2, h2_ansatz, backend)
        est.evaluate(np.zeros(h2_ansatz.num_parameters))
        assert backend.circuits_run == (
            est.circuits_per_subset_pass + est.circuits_per_global_pass
        )

    def test_non_global_evaluations_run_subsets_only(self, h2, h2_ansatz):
        backend = SimulatorBackend(seed=0)
        est = make_varsaw(h2, h2_ansatz, backend, global_mode="never")
        params = np.zeros(h2_ansatz.num_parameters)
        est.evaluate(params)
        first = backend.circuits_run
        est.evaluate(params)
        assert backend.circuits_run - first == est.circuits_per_subset_pass

    def test_always_mode_runs_globals_every_time(self, h2, h2_ansatz):
        backend = SimulatorBackend(seed=0)
        est = make_varsaw(h2, h2_ansatz, backend, global_mode="always")
        params = np.zeros(h2_ansatz.num_parameters)
        for _ in range(3):
            est.evaluate(params)
        assert backend.circuits_run == 3 * (
            est.circuits_per_subset_pass + est.circuits_per_global_pass
        )

    def test_varsaw_cheaper_than_jigsaw_per_iteration(self, h2, h2_ansatz):
        """The headline: VarSaw's steady-state cost is far below JigSaw."""
        backend = SimulatorBackend(seed=0)
        var = make_varsaw(h2, h2_ansatz, backend, global_mode="never")
        jig = JigSawEstimator(h2, h2_ansatz, backend, shots=64)
        assert var.circuits_per_subset_pass < jig.circuits_per_evaluation

    def test_global_fraction_tracked(self, h2, h2_ansatz):
        backend = SimulatorBackend(seed=0)
        est = make_varsaw(h2, h2_ansatz, backend, global_mode="never")
        params = np.zeros(h2_ansatz.num_parameters)
        for _ in range(4):
            est.evaluate(params)
        assert est.global_fraction == pytest.approx(0.25)


class TestMitigationQuality:
    def test_noise_free_varsaw_consistent_with_ideal(self, h2, h2_ansatz):
        backend = SimulatorBackend(seed=1)
        est = make_varsaw(h2, h2_ansatz, backend, shots=50_000)
        ideal = IdealEstimator(h2, h2_ansatz)
        params = np.full(h2_ansatz.num_parameters, 0.2)
        assert est.evaluate(params) == pytest.approx(
            ideal.evaluate(params), abs=0.1
        )

    def test_varsaw_beats_baseline_under_noise(self, h2, h2_ansatz):
        """Fig. 14's mechanism at a fixed parameter point."""
        params = np.full(h2_ansatz.num_parameters, 0.3)
        ideal = IdealEstimator(h2, h2_ansatz).evaluate(params)
        device = ibmq_mumbai_like(scale=2.0)
        base_err, var_err = [], []
        for seed in range(3):
            backend = SimulatorBackend(device, seed=seed)
            base = BaselineEstimator(h2, h2_ansatz, backend, shots=4096)
            var = make_varsaw(h2, h2_ansatz, backend, shots=4096)
            base_err.append(abs(base.evaluate(params) - ideal))
            var_err.append(abs(var.evaluate(params) - ideal))
        assert np.mean(var_err) < np.mean(base_err)


class TestTemporalDynamics:
    def test_adaptive_scheduler_moves_period(self, h2, h2_ansatz):
        backend = SimulatorBackend(ibmq_mumbai_like(), seed=2)
        est = make_varsaw(
            h2, h2_ansatz, backend, global_mode="adaptive",
            initial_period=2,
        )
        rng = np.random.default_rng(0)
        for _ in range(12):
            est.evaluate(rng.normal(0, 0.1, h2_ansatz.num_parameters))
        assert est.scheduler.evaluations_seen == 12
        assert est.scheduler.globals_executed < 12
        assert len(est.scheduler.period_history) == 12

    def test_prior_reused_between_evaluations(self, h2, h2_ansatz):
        backend = SimulatorBackend(seed=0)
        est = make_varsaw(h2, h2_ansatz, backend, global_mode="never")
        params = np.zeros(h2_ansatz.num_parameters)
        est.evaluate(params)
        prior_after_first = est._prior
        est.evaluate(params)
        assert est._prior is not prior_after_first  # updated each eval

    def test_reset_temporal_state(self, h2, h2_ansatz):
        backend = SimulatorBackend(seed=0)
        est = make_varsaw(h2, h2_ansatz, backend, global_mode="adaptive")
        params = np.zeros(h2_ansatz.num_parameters)
        est.evaluate(params)
        est.reset_temporal_state()
        assert est._prior is None
        assert est.scheduler.evaluations_seen == 0
        # Next evaluation runs globals again.
        before = backend.circuits_run
        est.evaluate(params)
        assert backend.circuits_run - before > est.circuits_per_subset_pass


class TestConstruction:
    def test_plan_matches_spatial_module(self, h2, h2_ansatz):
        from repro.core import varsaw_subset_plan

        backend = SimulatorBackend(seed=0)
        est = make_varsaw(h2, h2_ansatz, backend)
        expected = varsaw_subset_plan(h2, window=2)
        assert est.plan.assignments == expected.assignments

    def test_every_group_has_locals(self, h2, h2_ansatz):
        backend = SimulatorBackend(seed=0)
        est = make_varsaw(h2, h2_ansatz, backend)
        assert all(est._compatible)

    def test_invalid_global_mode(self, h2, h2_ansatz):
        with pytest.raises(ValueError):
            make_varsaw(
                h2, h2_ansatz, SimulatorBackend(), global_mode="bogus"
            )
