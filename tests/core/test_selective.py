"""Unit tests for selective (term/phase) mitigation."""

import numpy as np
import pytest

from repro.core import PhasePolicy, SelectiveVarSawEstimator, TermSelector
from repro.hamiltonian import Hamiltonian
from repro.noise import SimulatorBackend, ibmq_mumbai_like
from repro.vqe.expectation import assign_terms_to_groups


class TestTermSelector:
    def make_groups(self):
        ham = Hamiltonian(
            [(10.0, "ZZII"), (0.5, "XXII"), (0.01, "IIXX")]
        )
        _, group_terms = assign_terms_to_groups(ham)
        return ham, group_terms

    def test_selects_heaviest_first(self):
        _, group_terms = self.make_groups()
        masses = [
            sum(abs(c) for c, _ in members) for members in group_terms
        ]
        selected = TermSelector(mass_fraction=0.9).select(group_terms)
        assert masses.index(max(masses)) in selected

    def test_full_mass_selects_everything(self):
        _, group_terms = self.make_groups()
        assert TermSelector(1.0).select(group_terms) == set(
            range(len(group_terms))
        )

    def test_small_mass_selects_one(self):
        _, group_terms = self.make_groups()
        assert len(TermSelector(0.5).select(group_terms)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TermSelector(1.5)


class TestPhasePolicy:
    def test_window(self):
        policy = PhasePolicy(100, start_fraction=0.5, end_fraction=1.0)
        assert not policy.active(0)
        assert not policy.active(49)
        assert policy.active(50)
        assert policy.active(99)
        assert policy.active(150)  # clamps at 1.0

    def test_always_active_default(self):
        policy = PhasePolicy(10)
        assert all(policy.active(t) for t in range(20))

    def test_validation(self):
        with pytest.raises(ValueError):
            PhasePolicy(0)
        with pytest.raises(ValueError):
            PhasePolicy(10, start_fraction=0.8, end_fraction=0.2)


class TestSelectiveEstimator:
    @pytest.fixture
    def setup(self, h2, h2_ansatz):
        backend = SimulatorBackend(ibmq_mumbai_like(), seed=0)
        return h2, h2_ansatz, backend

    def test_full_selection_equals_varsaw_cost(self, setup):
        h2, ansatz, backend = setup
        est = SelectiveVarSawEstimator(
            h2, ansatz, backend, shots=64,
            term_selector=TermSelector(1.0),
        )
        params = np.zeros(ansatz.num_parameters)
        est.evaluate(params)
        assert backend.circuits_run == (
            est.plan.num_subsets + est.circuits_per_global_pass
        )

    def test_partial_selection_runs_fewer_subsets(self, setup):
        h2, ansatz, backend = setup
        full = SelectiveVarSawEstimator(
            h2, ansatz, SimulatorBackend(seed=0), shots=64,
            term_selector=TermSelector(1.0),
        )
        partial = SelectiveVarSawEstimator(
            h2, ansatz, backend, shots=64,
            term_selector=TermSelector(0.5),
        )
        assert (
            partial.circuits_per_subset_pass
            < full.circuits_per_subset_pass
        )

    def test_phase_policy_disables_mitigation_early(self, setup):
        h2, ansatz, backend = setup
        est = SelectiveVarSawEstimator(
            h2, ansatz, backend, shots=64,
            phase_policy=PhasePolicy(10, start_fraction=0.5),
        )
        params = np.zeros(ansatz.num_parameters)
        est.evaluate(params)  # t=0: inactive -> baseline path
        baseline_cost = backend.circuits_run
        assert baseline_cost == len(est.bases)
        for _ in range(5):
            est.evaluate(params)  # t=1..5; t=5 activates mitigation
        assert backend.circuits_run > 6 * len(est.bases)

    def test_energy_reasonable_with_partial_mitigation(self, setup):
        """Partial mitigation still produces a sane energy estimate."""
        from repro.vqe import IdealEstimator

        h2, ansatz, backend = setup
        est = SelectiveVarSawEstimator(
            h2, ansatz, backend, shots=8192,
            term_selector=TermSelector(0.8),
        )
        params = np.full(ansatz.num_parameters, 0.2)
        ideal = IdealEstimator(h2, ansatz).evaluate(params)
        assert est.evaluate(params) == pytest.approx(ideal, abs=0.5)

    def test_selected_groups_have_subsets(self, setup):
        h2, ansatz, backend = setup
        est = SelectiveVarSawEstimator(
            h2, ansatz, backend, shots=64,
            term_selector=TermSelector(0.7),
        )
        for g in est.mitigated_groups:
            assert set(est._compatible[g]) <= set(est._active_subsets)
