"""Unit tests for VarSaw's spatial optimization."""

import pytest

from repro.core import (
    count_jigsaw_subsets,
    count_varsaw_subsets,
    reduce_assignments,
    varsaw_subset_plan,
)
from repro.hamiltonian import Hamiltonian, build_hamiltonian
from repro.pauli import PauliString


class TestReduceAssignments:
    def test_dedupes_repeats(self):
        reduced = reduce_assignments([{0: "Z"}, {0: "Z"}], max_support=2)
        assert len(reduced) == 1

    def test_absorbs_covered_singletons(self):
        reduced = reduce_assignments(
            [{0: "Z", 1: "Z"}, {1: "Z"}], max_support=2
        )
        assert reduced == [{0: "Z", 1: "Z"}]

    def test_conflicting_kept_separate(self):
        reduced = reduce_assignments([{0: "Z"}, {0: "X"}], max_support=2)
        assert len(reduced) == 2

    def test_extension_merges_disjoint_singletons(self):
        reduced = reduce_assignments(
            [{0: "Z"}, {1: "X"}], max_support=2, allow_extension=True
        )
        assert reduced == [{0: "Z", 1: "X"}]

    def test_extension_respects_support_cap(self):
        reduced = reduce_assignments(
            [{0: "Z", 1: "Z"}, {2: "X"}], max_support=2
        )
        assert len(reduced) == 2

    def test_no_extension_keeps_uncovered_apart(self):
        reduced = reduce_assignments(
            [{0: "Z"}, {1: "X"}], max_support=2, allow_extension=False
        )
        assert len(reduced) == 2

    def test_empty_assignments_dropped(self):
        assert reduce_assignments([{}, {0: "Z"}], max_support=2) == [{0: "Z"}]

    def test_deterministic_order(self):
        subsets = [{1: "X"}, {0: "Z", 1: "Z"}, {2: "Y"}, {0: "Z"}]
        assert reduce_assignments(subsets, 2) == reduce_assignments(
            list(reversed(subsets)), 2
        )


class TestFig6WorkedExample:
    """Section 3.2's end-to-end trace: 21 JigSaw subsets -> 9 VarSaw."""

    def test_varsaw_produces_exactly_eq4(self, fig6_paulis):
        plan = varsaw_subset_plan(fig6_paulis, window=2)
        assert plan.num_subsets == 9
        produced = {s.label for s in plan.as_strings()}
        # Eq. 4: ZZ--, --ZX, ZX--, -XX-, --XZ, XZ--, -XZ-, --ZZ, XX--.
        expected = {
            "ZZII", "IIZX", "ZXII", "IXXI", "IIXZ",
            "XZII", "IXZI", "IIZZ", "XXII",
        }
        assert produced == expected

    def test_reduction_ratio_2_3x(self, fig6_hamiltonian):
        jig = count_jigsaw_subsets(fig6_hamiltonian, window=2)
        var = count_varsaw_subsets(fig6_hamiltonian, window=2)
        assert jig == 21 and var == 9
        assert jig / var == pytest.approx(21 / 9)


class TestSubsetPlan:
    def test_supports_sorted(self, fig6_paulis):
        plan = varsaw_subset_plan(fig6_paulis, window=2)
        for i in range(plan.num_subsets):
            support = plan.support(i)
            assert list(support) == sorted(support)
            assert len(support) <= plan.window

    def test_rotation_circuits_match_assignment(self, fig6_paulis):
        plan = varsaw_subset_plan(fig6_paulis, window=2)
        for i, assignment in enumerate(plan.assignments):
            rotation = plan.rotation_circuit(i)
            h_qubits = {
                ins.qubits[0]
                for ins in rotation.instructions
                if ins.name == "h"
            }
            x_or_y = {q for q, c in assignment.items() if c in "XY"}
            assert h_qubits == x_or_y

    def test_compatibility_with_group_basis(self, fig6_paulis):
        plan = varsaw_subset_plan(fig6_paulis, window=2)
        basis = PauliString("ZZZZ")
        for i in plan.compatible_with(basis):
            assert all(
                basis[q] == c for q, c in plan.assignments[i].items()
            )

    def test_every_group_has_compatible_subsets(self, fig6_hamiltonian):
        """Each measurement group finds at least one usable Local-PMF."""
        plan = varsaw_subset_plan(fig6_hamiltonian, window=2)
        for group in fig6_hamiltonian.measurement_groups():
            basis = group.basis_string()
            assert plan.compatible_with(basis)

    def test_hamiltonian_and_list_inputs_agree(self, fig6_hamiltonian, fig6_paulis):
        a = varsaw_subset_plan(fig6_hamiltonian, window=2)
        b = varsaw_subset_plan(fig6_paulis, window=2)
        assert a.assignments == b.assignments

    def test_identity_only_rejected(self):
        with pytest.raises(ValueError):
            varsaw_subset_plan([PauliString("II")], window=2)


class TestScaling:
    """Section 3.2: redundancy — and VarSaw's win — grows with size."""

    def test_reduction_ratio_grows_with_molecule_size(self):
        ratios = []
        for key in ["H2-4", "CH4-6", "CH4-8"]:
            ham = build_hamiltonian(key)
            ratios.append(
                count_jigsaw_subsets(ham) / count_varsaw_subsets(ham)
            )
        assert ratios[0] < ratios[1] < ratios[2]

    def test_varsaw_subsets_bounded_by_window_bases(self):
        """Reduced subsets can never exceed 9 bases per window pair plus
        leftover singletons — O(Q) for the sliding window."""
        ham = build_hamiltonian("CH4-8")
        n = ham.n_qubits
        assert count_varsaw_subsets(ham) <= 9 * (n * (n - 1) // 2)

    def test_subsets_below_baseline_terms_for_large_molecules(self):
        """Fig. 12: VarSaw subsets fall below the baseline Pauli count."""
        ham = build_hamiltonian("H6-10")
        assert count_varsaw_subsets(ham) < len(ham.measurement_groups())


class TestLargerWindows:
    @pytest.mark.parametrize("window", [2, 3, 4])
    def test_window_sizes_reduce(self, fig6_paulis, window):
        plan = varsaw_subset_plan(fig6_paulis, window=window)
        assert plan.num_subsets >= 1
        for assignment in plan.assignments:
            assert len(assignment) <= window

    def test_smaller_windows_give_fewer_subsets(self):
        """Appendix A: smaller subsets produce the fewest total circuits."""
        ham = build_hamiltonian("LiH-6")
        counts = [
            count_varsaw_subsets(ham, window=w) for w in (2, 3, 4, 5)
        ]
        assert counts[0] == min(counts)
