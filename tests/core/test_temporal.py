"""Unit tests for the Global scheduler (temporal optimization)."""

import pytest

from repro.core import GlobalScheduler


class TestModes:
    def test_always_mode_every_iteration(self):
        sched = GlobalScheduler(mode="always")
        assert all(sched.due(t) for t in range(10))

    def test_never_mode_only_first(self):
        sched = GlobalScheduler(mode="never")
        assert sched.due(0)
        assert not any(sched.due(t) for t in range(1, 50))

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            GlobalScheduler(mode="sometimes")

    def test_period_bounds_validation(self):
        with pytest.raises(ValueError):
            GlobalScheduler(initial_period=0)
        with pytest.raises(ValueError):
            GlobalScheduler(initial_period=10, max_period=5)


class TestAdaptiveHillClimbing:
    def test_initial_due_at_zero(self):
        sched = GlobalScheduler(initial_period=2)
        assert sched.due(0)

    def test_period_doubles_on_stale_win(self):
        sched = GlobalScheduler(initial_period=2)
        sched.record_global(0)
        sched.feedback(stale_at_least_as_good=True)
        assert sched.period == 4
        assert not sched.due(1)
        assert not sched.due(3)
        assert sched.due(4)

    def test_period_halves_on_fresh_win(self):
        sched = GlobalScheduler(initial_period=8)
        sched.record_global(0)
        sched.feedback(stale_at_least_as_good=False)
        assert sched.period == 4

    def test_period_respects_bounds(self):
        sched = GlobalScheduler(
            initial_period=2, min_period=1, max_period=8
        )
        sched.record_global(0)
        for _ in range(10):
            sched.feedback(stale_at_least_as_good=True)
        assert sched.period == 8
        for _ in range(10):
            sched.feedback(stale_at_least_as_good=False)
        assert sched.period == 1

    def test_sparsity_sequence(self):
        """A run where stale always wins: Globals get exponentially rare."""
        sched = GlobalScheduler(initial_period=2, max_period=64)
        executed = []
        for t in range(100):
            if sched.due(t):
                sched.record_global(t)
                sched.feedback(stale_at_least_as_good=True)
                executed.append(t)
            sched.record_evaluation()
        assert executed[0] == 0
        # Gaps grow: 0, 4(=0+2*2? climbing), ... strictly increasing gaps.
        gaps = [b - a for a, b in zip(executed, executed[1:])]
        assert all(g2 >= g1 for g1, g2 in zip(gaps, gaps[1:]))
        assert sched.global_fraction < 0.2

    def test_feedback_noop_in_extreme_modes(self):
        for mode in ("always", "never"):
            sched = GlobalScheduler(mode=mode)
            sched.record_global(0)
            sched.feedback(stale_at_least_as_good=True)
            assert sched.period == sched.period  # unchanged, no error
            assert sched.due(1) == (mode == "always")


class TestBookkeeping:
    def test_global_fraction(self):
        sched = GlobalScheduler(mode="always")
        for t in range(4):
            if sched.due(t):
                sched.record_global(t)
            sched.record_evaluation()
        assert sched.global_fraction == 1.0

    def test_global_fraction_empty(self):
        assert GlobalScheduler().global_fraction == 0.0

    def test_period_history_recorded(self):
        sched = GlobalScheduler()
        for _ in range(5):
            sched.record_evaluation()
        assert len(sched.period_history) == 5

    def test_repr(self):
        assert "adaptive" in repr(GlobalScheduler())
