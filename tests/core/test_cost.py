"""Unit tests for the Fig. 8 analytic cost model."""

import pytest

from repro.core import (
    figure8_series,
    jigsaw_cost,
    pauli_terms,
    traditional_cost,
    varsaw_cost,
    varsaw_subset_pool,
)


class TestComponents:
    def test_pauli_terms_q4_scaling(self):
        assert pauli_terms(10) == pytest.approx(100.0)
        assert pauli_terms(100) / pauli_terms(10) == pytest.approx(1e4)

    def test_pauli_terms_floor_of_one(self):
        assert pauli_terms(1) == 1.0

    def test_invalid_qubits(self):
        with pytest.raises(ValueError):
            pauli_terms(0)

    def test_jigsaw_q5_scaling(self):
        """JigSaw per-iteration cost grows ~Q^5 (Section 3.2)."""
        ratio = jigsaw_cost(200) / jigsaw_cost(100)
        assert 2**5 * 0.8 < ratio < 2**5 * 1.2

    def test_traditional_q4_scaling(self):
        ratio = traditional_cost(200) / traditional_cost(100)
        assert ratio == pytest.approx(16.0)

    def test_varsaw_subset_pool_linear_at_scale(self):
        """The commuted pool saturates at 9 bases per window: O(Q)."""
        ratio = varsaw_subset_pool(800) / varsaw_subset_pool(400)
        assert ratio == pytest.approx(2.0, rel=0.01)

    def test_varsaw_k_bounds(self):
        with pytest.raises(ValueError):
            varsaw_cost(10, k=1.5)


class TestFig8Shape:
    """The orderings and crossovers visible in Fig. 8."""

    def test_jigsaw_always_costliest(self):
        for q in (10, 50, 200, 1000):
            assert jigsaw_cost(q) > traditional_cost(q)
            assert jigsaw_cost(q) > varsaw_cost(q, k=1.0)

    def test_varsaw_k1_tracks_traditional(self):
        """The k=1 line overlaps Traditional VQA at scale."""
        for q in (100, 500, 1000):
            assert varsaw_cost(q, k=1.0) == pytest.approx(
                traditional_cost(q), rel=0.05
            )

    def test_varsaw_at_least_q_below_jigsaw(self):
        """VarSaw is at least O(Q) cheaper than JigSaw (Section 3.2)."""
        for q in (50, 200, 1000):
            assert jigsaw_cost(q) / varsaw_cost(q, k=1.0) > 0.5 * q

    def test_sparsity_orders_curves(self):
        for q in (50, 200, 1000):
            costs = [varsaw_cost(q, k) for k in (1.0, 0.1, 0.01, 0.001)]
            assert costs == sorted(costs, reverse=True)

    def test_high_sparsity_beats_traditional(self):
        """Section 3.3: sparse VarSaw undercuts even the baseline."""
        assert varsaw_cost(100, k=0.001) < traditional_cost(100)

    def test_series_structure(self):
        series = figure8_series(qubit_counts=[10, 100, 1000])
        assert "Traditional VQA" in series
        assert "JigSaw + VQA" in series
        assert "VarSaw (k=0.001)" in series
        assert len(series["Traditional VQA"]) == 3
        q, cost = series["JigSaw + VQA"][1]
        assert q == 100 and cost == jigsaw_cost(100)
