"""Unit tests for the phase-tracking Clifford tableau."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.clifford import CLIFFORD_GATES, CliffordTableau
from repro.pauli import PauliString

from .conftest import circuit_unitary, dense_pauli, random_clifford_circuit


class TestIdentity:
    def test_fresh_tableau_is_identity(self):
        assert CliffordTableau(3).is_identity()

    def test_identity_conjugation_fixes_every_pauli(self):
        tab = CliffordTableau(2)
        for label in ("IX", "ZY", "XX", "YZ"):
            sign, image = tab.conjugate(PauliString(label))
            assert sign == 1
            assert image.label == label

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            CliffordTableau(0)

    def test_conjugate_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CliffordTableau(2).conjugate(PauliString("XXX"))

    def test_conjugate_bad_sign_rejected(self):
        with pytest.raises(ValueError):
            CliffordTableau(2).conjugate(PauliString("XX"), sign=2)


class TestSingleGateActions:
    """Known conjugation identities, one gate at a time."""

    @pytest.mark.parametrize(
        "gate, pauli, expected_sign, expected",
        [
            ("h", "X", 1, "Z"),
            ("h", "Z", 1, "X"),
            ("h", "Y", -1, "Y"),
            ("s", "X", 1, "Y"),
            ("s", "Y", -1, "X"),
            ("s", "Z", 1, "Z"),
            ("sdg", "X", -1, "Y"),
            ("sdg", "Y", 1, "X"),
            ("x", "Z", -1, "Z"),
            ("x", "Y", -1, "Y"),
            ("x", "X", 1, "X"),
            ("z", "X", -1, "X"),
            ("y", "X", -1, "X"),
            ("y", "Z", -1, "Z"),
            ("sx", "Z", -1, "Y"),
            ("sx", "Y", 1, "Z"),
            ("sx", "X", 1, "X"),
        ],
    )
    def test_single_qubit_rules(self, gate, pauli, expected_sign, expected):
        tab = CliffordTableau(1)
        tab.apply_gate(gate, (0,))
        sign, image = tab.conjugate(PauliString(pauli))
        assert (sign, image.label) == (expected_sign, expected)

    @pytest.mark.parametrize(
        "pauli, expected",
        [
            ("XI", "XX"),
            ("IX", "IX"),
            ("ZI", "ZI"),
            ("IZ", "ZZ"),
            ("YI", "YX"),
            ("IY", "ZY"),
        ],
    )
    def test_cx_propagation(self, pauli, expected):
        tab = CliffordTableau(2)
        tab.cx(0, 1)
        sign, image = tab.conjugate(PauliString(pauli))
        assert sign == 1
        assert image.label == expected

    @pytest.mark.parametrize(
        "pauli, expected",
        [("XI", "XZ"), ("IX", "ZX"), ("ZI", "ZI"), ("IZ", "IZ")],
    )
    def test_cz_propagation(self, pauli, expected):
        tab = CliffordTableau(2)
        tab.cz(0, 1)
        sign, image = tab.conjugate(PauliString(pauli))
        assert sign == 1
        assert image.label == expected

    def test_swap_moves_paulis(self):
        tab = CliffordTableau(2)
        tab.swap(0, 1)
        sign, image = tab.conjugate(PauliString("XZ"))
        assert sign == 1
        assert image.label == "ZX"

    def test_cx_same_qubit_rejected(self):
        with pytest.raises(ValueError):
            CliffordTableau(2).cx(1, 1)

    def test_out_of_range_qubit_rejected(self):
        with pytest.raises(ValueError):
            CliffordTableau(2).h(2)


class TestFromCircuit:
    def test_non_clifford_gate_rejected(self):
        qc = Circuit(1)
        qc.rz(0.3, 0)
        with pytest.raises(ValueError, match="not a Clifford"):
            CliffordTableau.from_circuit(qc)

    def test_identity_gate_is_noop(self):
        qc = Circuit(2)
        qc.i(0)
        qc.i(1)
        assert CliffordTableau.from_circuit(qc).is_identity()

    def test_s_four_times_is_identity(self):
        qc = Circuit(1)
        for _ in range(4):
            qc.s(0)
        assert CliffordTableau.from_circuit(qc).is_identity()

    def test_s_then_sdg_is_identity(self):
        qc = Circuit(1)
        qc.s(0)
        qc.sdg(0)
        assert CliffordTableau.from_circuit(qc).is_identity()

    def test_hh_identity(self):
        qc = Circuit(1)
        qc.h(0)
        qc.h(0)
        assert CliffordTableau.from_circuit(qc).is_identity()

    def test_gate_set_constant_matches_dispatch(self):
        # Every advertised gate name round-trips through apply_gate.
        for name in CLIFFORD_GATES:
            tab = CliffordTableau(2)
            qubits = (0, 1) if name in ("cx", "cz", "swap") else (0,)
            tab.apply_gate(name, qubits)  # must not raise


class TestAgainstDenseUnitaries:
    """U P U† computed densely must equal the tableau's signed image."""

    @pytest.mark.parametrize("n_qubits", [1, 2, 3])
    def test_random_circuits_random_paulis(self, rng, n_qubits):
        for _ in range(8):
            qc = random_clifford_circuit(rng, n_qubits)
            tab = CliffordTableau.from_circuit(qc)
            unitary = circuit_unitary(qc)
            label = "".join(rng.choice(list("IXYZ"), size=n_qubits))
            pauli = PauliString(label)
            sign, image = tab.conjugate(pauli)
            lhs = unitary @ dense_pauli(pauli) @ unitary.conj().T
            assert np.allclose(lhs, sign * dense_pauli(image), atol=1e-9)

    def test_negative_input_sign_propagates(self, rng):
        qc = random_clifford_circuit(rng, 2)
        tab = CliffordTableau.from_circuit(qc)
        pauli = PauliString("XY")
        s_pos, img_pos = tab.conjugate(pauli, sign=1)
        s_neg, img_neg = tab.conjugate(pauli, sign=-1)
        assert img_pos.label == img_neg.label
        assert s_neg == -s_pos


class TestComposition:
    def test_then_matches_sequential_circuit(self, rng):
        qc1 = random_clifford_circuit(rng, 3)
        qc2 = random_clifford_circuit(rng, 3)
        combined = qc1.compose(qc2)
        lhs = CliffordTableau.from_circuit(qc1).then(
            CliffordTableau.from_circuit(qc2)
        )
        rhs = CliffordTableau.from_circuit(combined)
        assert lhs == rhs

    def test_then_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CliffordTableau(2).then(CliffordTableau(3))

    def test_inverse_roundtrip(self, rng):
        for _ in range(5):
            qc = random_clifford_circuit(rng, 3)
            tab = CliffordTableau.from_circuit(qc)
            assert tab.then(tab.inverse()).is_identity()
            assert tab.inverse().then(tab).is_identity()

    def test_copy_is_independent(self):
        tab = CliffordTableau(2)
        clone = tab.copy()
        clone.h(0)
        assert tab.is_identity()
        assert not clone.is_identity()

    def test_equality_against_other_types(self):
        assert CliffordTableau(1) != "not a tableau"
