"""Unit tests for simultaneous diagonalization of commuting families."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.clifford import CliffordTableau, diagonalize_commuting
from repro.pauli import PauliString
from repro.sim.statevector import probabilities, run_statevector

from .conftest import random_clifford_circuit


def assert_all_diagonal(group):
    for sign, image in group.diagonals:
        assert sign in (1, -1)
        assert set(image.label) <= {"I", "Z"}


class TestBasicFamilies:
    def test_bell_family(self):
        group = diagonalize_commuting(["XX", "YY", "ZZ"], 2)
        assert_all_diagonal(group)
        assert len(group) == 3

    def test_single_z_string_needs_no_gates(self):
        group = diagonalize_commuting(["ZIZ"], 3)
        assert group.circuit.num_gates == 0
        assert group.diagonals[0] == (1, PauliString("ZIZ"))

    def test_single_x_string_uses_h_only(self):
        group = diagonalize_commuting(["XII"], 3)
        assert group.entangling_gates == 0
        sign, image = group.diagonals[0]
        assert sign == 1
        assert image.label == "ZII"

    def test_qwc_family_needs_no_entanglement(self):
        # Qubit-wise commuting strings diagonalize with 1-qubit gates only
        # when each string is measured in its own per-qubit basis... the
        # generic algorithm may still entangle; assert correctness, not
        # gate count, and separately that a pure-Z family is free.
        group = diagonalize_commuting(["ZZI", "IZZ", "ZIZ"], 3)
        assert group.circuit.num_gates == 0
        assert_all_diagonal(group)

    def test_anticommuting_family_rejected(self):
        with pytest.raises(ValueError, match="commute"):
            diagonalize_commuting(["XI", "ZI"], 2)

    def test_empty_family_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            diagonalize_commuting([], 2)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            diagonalize_commuting(["XX", "XXX"], 2)

    def test_identity_member_maps_to_identity(self):
        group = diagonalize_commuting(["II", "ZZ"], 2)
        sign, image = group.diagonals[0]
        assert sign == 1
        assert image.label == "II"

    def test_dependent_members_come_out_diagonal(self):
        # XX·YY = -ZZ: the third member is a product of the first two.
        group = diagonalize_commuting(["XX", "YY", "ZZ", "II"], 2)
        assert_all_diagonal(group)


class TestExpectationCorrectness:
    """Measuring via the group circuit must reproduce exact expectations."""

    def random_state_circuit(self, rng, n):
        qc = Circuit(n)
        for q in range(n):
            qc.ry(float(rng.uniform(0, np.pi)), q)
            qc.rz(float(rng.uniform(0, 2 * np.pi)), q)
        for q in range(n - 1):
            qc.cx(q, q + 1)
        for q in range(n):
            qc.ry(float(rng.uniform(0, np.pi)), q)
        return qc

    @pytest.mark.parametrize(
        "family, n",
        [
            (["XX", "YY", "ZZ"], 2),
            (["XXI", "IXX", "XIX"], 3),
            (["ZZI", "IZZ", "XXX"], 3),
            (["XYZI", "YXIZ"], 4),
        ],
    )
    def test_group_expectations_match_exact(self, rng, family, n):
        from .conftest import dense_pauli

        prep = self.random_state_circuit(rng, n)
        state = run_statevector(prep)
        group = diagonalize_commuting(family, n)
        rotated = run_statevector(group.circuit, initial_state=state)
        probs = probabilities(rotated)
        for i, label in enumerate(family):
            exact = float(
                np.real(
                    state.conj() @ (dense_pauli(PauliString(label)) @ state)
                )
            )
            via_group = group.expectation(i, probs)
            assert via_group == pytest.approx(exact, abs=1e-9)

    def test_random_commuting_families(self, rng):
        # Generate commuting families by conjugating Z-only strings
        # through a random Clifford — guaranteed mutually commuting.
        for _ in range(6):
            n = int(rng.integers(2, 5))
            scrambler = random_clifford_circuit(rng, n)
            tab = CliffordTableau.from_circuit(scrambler)
            family = []
            for _ in range(int(rng.integers(2, 5))):
                z_mask = rng.integers(0, 2, size=n)
                if not z_mask.any():
                    z_mask[0] = 1
                label = "".join("Z" if b else "I" for b in z_mask)
                _, image = tab.conjugate(PauliString(label))
                family.append(image)
            group = diagonalize_commuting(family, n)
            assert_all_diagonal(group)


class TestCostAccounting:
    def test_entangling_gates_counts_two_qubit_gates(self):
        group = diagonalize_commuting(["XX", "YY", "ZZ"], 2)
        two_qubit = sum(
            1
            for inst in group.circuit.instructions
            if len(inst.qubits) == 2
        )
        assert group.entangling_gates == two_qubit

    def test_gc_rotation_deeper_than_qwc_rotation(self):
        # The paper's stated reason for skipping GC: entangling rotations.
        family = ["XX", "YY", "ZZ"]
        group = diagonalize_commuting(family, 2)
        qwc_rotation = PauliString("XX").basis_rotation()
        assert group.entangling_gates > qwc_rotation.num_two_qubit_gates
