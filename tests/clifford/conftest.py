"""Shared helpers for the Clifford substrate tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.gates import gate_matrix
from repro.pauli.pauli import PAULI_MATRICES, PauliString
from repro.sim.statevector import apply_gate

CLIFFORD_1Q = ("h", "s", "sdg", "x", "y", "z", "sx")
CLIFFORD_2Q = ("cx", "cz", "swap")


def dense_pauli(pauli: PauliString) -> np.ndarray:
    """The 2^n x 2^n matrix of a Pauli string (qubit 0 = MSB)."""
    matrix = np.array([[1.0 + 0j]])
    for char in pauli.label:
        matrix = np.kron(matrix, PAULI_MATRICES[char])
    return matrix


def circuit_unitary(circuit: Circuit) -> np.ndarray:
    """The full unitary of a (small) circuit, column by column."""
    n = circuit.n_qubits
    dim = 2**n
    unitary = np.zeros((dim, dim), dtype=complex)
    for col in range(dim):
        state = np.zeros(dim, dtype=complex)
        state[col] = 1.0
        for inst in circuit.instructions:
            state = apply_gate(
                state, gate_matrix(inst.name, inst.param), inst.qubits, n
            )
        unitary[:, col] = state
    return unitary


def random_clifford_circuit(
    rng: np.random.Generator, n_qubits: int, n_gates: int = 12
) -> Circuit:
    """A random circuit over the Clifford gate set."""
    qc = Circuit(n_qubits, name="random_clifford")
    for _ in range(n_gates):
        if n_qubits >= 2 and rng.random() < 0.4:
            name = str(rng.choice(CLIFFORD_2Q))
            a, b = rng.choice(n_qubits, size=2, replace=False)
            getattr(qc, name)(int(a), int(b))
        else:
            name = str(rng.choice(CLIFFORD_1Q))
            getattr(qc, name)(int(rng.integers(n_qubits)))
    return qc


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(424242)
