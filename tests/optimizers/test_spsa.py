"""Unit tests for SPSA."""

import numpy as np
import pytest

from repro.optimizers import SPSA


def quadratic(x):
    return float(np.sum((x - 1.0) ** 2))


class TestSPSA:
    def test_minimizes_quadratic(self):
        opt = SPSA(a=0.5, c=0.1, seed=0)
        result = opt.minimize(quadratic, np.zeros(4), max_iterations=300)
        assert result.fun < 0.05
        assert np.allclose(result.x, 1.0, atol=0.3)

    def test_two_evaluations_per_iteration(self):
        calls = []

        def counted(x):
            calls.append(1)
            return quadratic(x)

        opt = SPSA(a=0.5, seed=0)  # fixed gain: no calibration evals
        result = opt.minimize(counted, np.zeros(2), max_iterations=50)
        assert len(calls) == 100
        assert result.evaluations == 100

    def test_auto_calibration_costs_extra_evaluations(self):
        calls = []

        def counted(x):
            calls.append(1)
            return quadratic(x)

        opt = SPSA(seed=0, calibration_samples=4)
        result = opt.minimize(counted, np.zeros(2), max_iterations=10)
        assert result.evaluations == 2 * 10 + 2 * 4

    def test_auto_calibration_handles_flat_landscape(self):
        opt = SPSA(seed=0)
        result = opt.minimize(lambda x: 0.0, np.zeros(2), max_iterations=5)
        assert np.isfinite(result.fun)

    def test_handles_noisy_objective(self):
        rng = np.random.default_rng(7)

        def noisy(x):
            return quadratic(x) + float(rng.normal(0, 0.05))

        opt = SPSA(a=0.5, c=0.2, seed=1)
        result = opt.minimize(noisy, np.zeros(3), max_iterations=400)
        assert result.fun < 0.3

    def test_history_is_monotone_best_so_far(self):
        opt = SPSA(seed=2)
        result = opt.minimize(quadratic, np.zeros(2), max_iterations=60)
        assert all(
            later <= earlier + 1e-12
            for earlier, later in zip(result.history, result.history[1:])
        )
        assert len(result.history) == 60

    def test_should_stop_halts_early(self):
        opt = SPSA(seed=0)
        count = [0]

        def stop_after_five():
            count[0] += 1
            return count[0] > 5

        result = opt.minimize(
            quadratic,
            np.zeros(2),
            max_iterations=100,
            should_stop=stop_after_five,
        )
        assert result.iterations == 5
        assert result.stop_reason == "budget_exhausted"

    def test_callback_invoked_each_iteration(self):
        seen = []
        opt = SPSA(seed=0)
        opt.minimize(
            quadratic,
            np.zeros(2),
            max_iterations=10,
            callback=lambda k, x, f: seen.append(k),
        )
        assert seen == list(range(10))

    def test_seed_reproducibility(self):
        r1 = SPSA(seed=5).minimize(quadratic, np.zeros(3), 50)
        r2 = SPSA(seed=5).minimize(quadratic, np.zeros(3), 50)
        assert np.allclose(r1.x, r2.x)
        assert r1.fun == r2.fun

    def test_invalid_gains(self):
        with pytest.raises(ValueError):
            SPSA(a=0.0)
        with pytest.raises(ValueError):
            SPSA(c=-1.0)

    def test_does_not_mutate_x0(self):
        x0 = np.zeros(3)
        SPSA(seed=0).minimize(quadratic, x0, 20)
        assert np.all(x0 == 0.0)

    def test_blocking_rejects_bad_steps(self):
        destructive = SPSA(a=50.0, c=0.1, seed=3)
        blocked = SPSA(a=50.0, c=0.1, seed=3, blocking=0.5)
        r_free = destructive.minimize(quadratic, np.zeros(2), 100)
        r_blocked = blocked.minimize(quadratic, np.zeros(2), 100)
        # With a destructive step size, blocking keeps the iterate from
        # wandering as far as the unblocked run.
        assert np.linalg.norm(r_blocked.x - 1.0) <= np.linalg.norm(
            r_free.x - 1.0
        )
