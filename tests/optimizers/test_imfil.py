"""Unit tests for Implicit Filtering."""

import numpy as np
import pytest

from repro.optimizers import ImFil


def quadratic(x):
    return float(np.sum((x - 0.5) ** 2))


class TestImFil:
    def test_minimizes_quadratic(self):
        result = ImFil(h0=0.5).minimize(
            quadratic, np.zeros(3), max_iterations=200
        )
        assert result.fun < 0.01

    def test_filters_small_noise(self):
        rng = np.random.default_rng(0)

        def noisy(x):
            return quadratic(x) + float(rng.normal(0, 1e-3))

        result = ImFil(h0=0.5).minimize(
            noisy, np.zeros(2), max_iterations=150
        )
        assert result.fun < 0.05

    def test_stencil_convergence_stop(self):
        # A constant function: every stencil fails, h shrinks to h_min.
        result = ImFil(h0=0.1, h_min=0.05).minimize(
            lambda x: 1.0, np.zeros(2), max_iterations=100
        )
        assert result.stop_reason == "stencil_converged"
        assert result.iterations < 100

    def test_should_stop_respected(self):
        result = ImFil().minimize(
            quadratic,
            np.zeros(2),
            max_iterations=100,
            should_stop=lambda: True,
        )
        assert result.iterations == 0
        assert result.stop_reason == "budget_exhausted"

    def test_history_monotone(self):
        result = ImFil().minimize(quadratic, np.zeros(2), 50)
        assert all(
            b <= a + 1e-12
            for a, b in zip(result.history, result.history[1:])
        )

    def test_invalid_scales(self):
        with pytest.raises(ValueError):
            ImFil(h0=-1.0)
        with pytest.raises(ValueError):
            ImFil(h0=0.1, h_min=0.5)

    def test_callback(self):
        seen = []
        ImFil().minimize(
            quadratic,
            np.zeros(2),
            10,
            callback=lambda k, x, f: seen.append((k, f)),
        )
        assert len(seen) == 10

    def test_best_x_returned(self):
        result = ImFil(h0=0.5).minimize(quadratic, np.zeros(2), 150)
        assert quadratic(result.x) == pytest.approx(result.fun, abs=1e-9)
