"""Unit tests for the Nelder-Mead simplex optimizer."""

import numpy as np
import pytest

from repro.optimizers import NelderMead


def sphere(x):
    return float(np.sum(x**2))

def rosenbrock(x):
    return float(
        np.sum(100.0 * (x[1:] - x[:-1] ** 2) ** 2 + (1 - x[:-1]) ** 2)
    )


class TestConvergence:
    def test_sphere_2d(self):
        result = NelderMead(initial_step=0.5).minimize(
            sphere, np.array([2.0, -1.5]), max_iterations=200
        )
        assert result.fun < 1e-6
        assert np.allclose(result.x, 0.0, atol=1e-3)

    def test_sphere_high_dim_adaptive(self):
        result = NelderMead(initial_step=0.5, adaptive=True).minimize(
            sphere, np.full(8, 1.0), max_iterations=800
        )
        assert result.fun < 1e-4

    def test_rosenbrock_2d(self):
        result = NelderMead(initial_step=0.5).minimize(
            rosenbrock, np.array([-1.0, 1.0]), max_iterations=600
        )
        assert result.fun < 1e-4
        assert np.allclose(result.x, 1.0, atol=0.05)

    def test_shifted_quadratic(self):
        target = np.array([0.3, -0.7, 1.1])

        def fun(x):
            return float(np.sum((x - target) ** 2))

        result = NelderMead().minimize(
            fun, np.zeros(3), max_iterations=400
        )
        assert np.allclose(result.x, target, atol=1e-3)

    def test_noisy_quadratic_still_improves(self):
        rng = np.random.default_rng(5)

        def noisy(x):
            return sphere(x) + float(rng.normal(0, 0.01))

        start = np.full(4, 1.5)
        result = NelderMead(initial_step=0.4).minimize(
            noisy, start, max_iterations=150
        )
        assert result.fun < sphere(start) * 0.1


class TestProtocolBehavior:
    def test_history_is_monotone_best_so_far(self):
        result = NelderMead().minimize(
            sphere, np.array([1.0, 1.0]), max_iterations=50
        )
        # Nelder-Mead never discards its best vertex, so the per-
        # iteration best is non-increasing.
        assert all(
            b <= a + 1e-12
            for a, b in zip(result.history, result.history[1:])
        )

    def test_budget_stop(self):
        calls = {"n": 0}

        def counted(x):
            calls["n"] += 1
            return sphere(x)

        result = NelderMead().minimize(
            counted,
            np.array([1.0, 1.0]),
            max_iterations=1000,
            should_stop=lambda: calls["n"] >= 20,
        )
        assert result.stop_reason == "budget_exhausted"
        assert result.iterations < 1000

    def test_callback_sees_best_vertex(self):
        seen = []

        def callback(iteration, x, value):
            seen.append((iteration, value))

        NelderMead().minimize(
            sphere, np.array([1.0, 0.5]), max_iterations=20,
            callback=callback,
        )
        assert len(seen) == 20
        assert seen[0][0] == 0

    def test_evaluation_accounting(self):
        calls = {"n": 0}

        def counted(x):
            calls["n"] += 1
            return sphere(x)

        result = NelderMead().minimize(
            counted, np.array([1.0, 1.0]), max_iterations=30
        )
        assert result.evaluations == calls["n"]

    def test_bad_initial_step_rejected(self):
        with pytest.raises(ValueError):
            NelderMead(initial_step=0.0)

    def test_non_adaptive_coefficients(self):
        result = NelderMead(adaptive=False).minimize(
            sphere, np.array([1.0, 1.0]), max_iterations=150
        )
        assert result.fun < 1e-5


class TestVQEIntegration:
    def test_tunes_a_small_vqe(self):
        from repro.noise import SimulatorBackend, ideal_device
        from repro.vqe import run_vqe
        from repro.workloads import make_estimator, make_workload

        workload = make_workload("H2-4")
        backend = SimulatorBackend(ideal_device(4), seed=3)
        estimator = make_estimator("baseline", workload, backend, shots=512)
        start = np.full(workload.ansatz.num_parameters, 0.1)
        start_energy = estimator.evaluate(start)
        result = run_vqe(
            estimator,
            optimizer=NelderMead(initial_step=0.3),
            max_iterations=60,
            initial_params=start,
        )
        assert result.energy < start_energy
