"""Unit tests for parameter-shift gradients and the gradient optimizer."""

import numpy as np
import pytest

from repro.optimizers import ParameterShift, parameter_shift_gradient


class TestParameterShiftGradient:
    def test_exact_for_trig_objective(self):
        """The rule is exact for functions built from sin/cos of params —
        which includes every VQE objective of an RY/RZ ansatz."""

        def objective(x):
            return float(np.cos(x[0]) + 0.5 * np.sin(x[1]))

        x = np.array([0.3, -0.8])
        gradient, evals = parameter_shift_gradient(objective, x)
        assert gradient[0] == pytest.approx(-np.sin(0.3), abs=1e-12)
        assert gradient[1] == pytest.approx(0.5 * np.cos(-0.8), abs=1e-12)
        assert evals == 4

    def test_matches_vqe_objective(self, h2, h2_ansatz):
        """Against the exact VQE energy: parameter-shift == numeric grad."""
        from repro.vqe import IdealEstimator

        est = IdealEstimator(h2, h2_ansatz)
        x = np.linspace(-0.3, 0.4, h2_ansatz.num_parameters)
        gradient, _ = parameter_shift_gradient(est.evaluate, x)
        eps = 1e-6
        for i in range(0, x.size, 5):  # spot-check a few coordinates
            step = np.zeros_like(x)
            step[i] = eps
            numeric = (est.evaluate(x + step) - est.evaluate(x - step)) / (
                2 * eps
            )
            assert gradient[i] == pytest.approx(numeric, abs=1e-4)


class TestParameterShiftOptimizer:
    def test_minimizes_vqe_objective(self, h2, h2_ansatz):
        from repro.hamiltonian import ground_state_energy
        from repro.vqe import IdealEstimator

        est = IdealEstimator(h2, h2_ansatz)
        rng = np.random.default_rng(0)
        x0 = rng.uniform(-0.1, 0.1, h2_ansatz.num_parameters)
        opt = ParameterShift(learning_rate=0.2, momentum=0.5)
        result = opt.minimize(est.evaluate, x0, max_iterations=60)
        start = est.evaluate(x0)
        e0 = ground_state_energy(h2)
        assert result.fun < start
        # Gradient descent closes most of the gap in 60 iterations.
        assert (result.fun - e0) < 0.5 * (start - e0)

    def test_evaluation_accounting(self):
        calls = [0]

        def fun(x):
            calls[0] += 1
            return float(np.sum(np.cos(x)))

        opt = ParameterShift(learning_rate=0.1)
        result = opt.minimize(fun, np.zeros(3), max_iterations=5)
        # Per iteration: 2*3 gradient evals + 1 value eval.
        assert calls[0] == result.evaluations == 5 * 7

    def test_should_stop(self):
        opt = ParameterShift()
        result = opt.minimize(
            lambda x: float(x @ x),
            np.ones(2),
            max_iterations=100,
            should_stop=lambda: True,
        )
        assert result.iterations == 0
        assert result.stop_reason == "budget_exhausted"

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterShift(learning_rate=0.0)
        with pytest.raises(ValueError):
            ParameterShift(momentum=1.0)
        with pytest.raises(ValueError):
            ParameterShift(decay=-0.1)

    def test_history_monotone(self):
        opt = ParameterShift(learning_rate=0.3)
        result = opt.minimize(
            lambda x: float(np.sum(np.cos(x))), np.full(3, 0.5), 30
        )
        assert all(
            b <= a + 1e-12
            for a, b in zip(result.history, result.history[1:])
        )
