"""Unit tests for coupling maps."""

import pytest

from repro.layout import CouplingMap


class TestConstruction:
    def test_line(self):
        cm = CouplingMap.line(5)
        assert cm.n_qubits == 5
        assert cm.n_edges == 4
        assert cm.are_adjacent(2, 3)
        assert not cm.are_adjacent(0, 4)

    def test_ring(self):
        cm = CouplingMap.ring(5)
        assert cm.n_edges == 5
        assert cm.are_adjacent(4, 0)

    def test_tiny_ring_rejected(self):
        with pytest.raises(ValueError):
            CouplingMap.ring(2)

    def test_grid(self):
        cm = CouplingMap.grid(2, 3)
        assert cm.n_qubits == 6
        # row neighbors and column neighbors
        assert cm.are_adjacent(0, 1)
        assert cm.are_adjacent(0, 3)
        assert not cm.are_adjacent(2, 3)

    def test_full(self):
        cm = CouplingMap.full(4)
        assert cm.n_edges == 6

    def test_bad_edges_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            CouplingMap(3, [(0, 5)])
        with pytest.raises(ValueError, match="self-loop"):
            CouplingMap(3, [(1, 1)])

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            CouplingMap(0, [])


class TestDeviceTopologies:
    def test_heavy_hex_27(self):
        cm = CouplingMap.heavy_hex_27()
        assert cm.n_qubits == 27
        assert cm.is_connected()
        # heavy-hex degree never exceeds 3
        assert all(len(cm.neighbors(q)) <= 3 for q in range(27))

    def test_h_shape_7(self):
        cm = CouplingMap.h_shape_7()
        assert cm.n_qubits == 7
        assert cm.is_connected()
        assert cm.n_edges == 6  # a tree
        assert sorted(cm.neighbors(1)) == [0, 2, 3]
        assert sorted(cm.neighbors(5)) == [3, 4, 6]


class TestDistances:
    def test_line_distance(self):
        cm = CouplingMap.line(6)
        assert cm.distance(0, 5) == 5
        assert cm.distance(3, 3) == 0

    def test_ring_wraps(self):
        cm = CouplingMap.ring(6)
        assert cm.distance(0, 5) == 1
        assert cm.distance(0, 3) == 3

    def test_shortest_path_endpoints(self):
        cm = CouplingMap.grid(3, 3)
        path = cm.shortest_path(0, 8)
        assert path[0] == 0
        assert path[-1] == 8
        assert len(path) == cm.distance(0, 8) + 1
        for a, b in zip(path, path[1:]):
            assert cm.are_adjacent(a, b)

    def test_disconnected_rejected(self):
        cm = CouplingMap(4, [(0, 1), (2, 3)])
        assert not cm.is_connected()
        with pytest.raises(ValueError, match="disconnected"):
            cm.distance(0, 3)
        with pytest.raises(ValueError, match="disconnected"):
            cm.shortest_path(0, 3)

    def test_connected_subset(self):
        cm = CouplingMap.line(5)
        assert cm.connected_subset([1, 2, 3])
        assert not cm.connected_subset([0, 2])
        assert cm.connected_subset([4])
        assert not cm.connected_subset([])
