"""Routing tests: SWAP insertion and exact unitary equivalence."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.layout import (
    CouplingMap,
    Layout,
    RoutedCircuit,
    decompose_swaps,
    route_circuit,
)
from repro.sim.statevector import run_statevector


def logical_state_from_routed(
    routed: RoutedCircuit, n_logical: int
) -> np.ndarray:
    """Project the routed physical state back to logical qubit order.

    Physical qubits not holding a logical qubit must be |0>; the logical
    amplitude of basis state ``b`` is the physical amplitude of the
    basis state with ``b[l]`` at ``final_layout.physical(l)``.
    """
    state = run_statevector(routed.circuit)
    n_phys = routed.circuit.n_qubits
    out = np.zeros(2**n_logical, dtype=complex)
    for logical_index in range(2**n_logical):
        bits = format(logical_index, f"0{n_logical}b")
        phys_bits = ["0"] * n_phys
        for l in range(n_logical):
            phys_bits[routed.final_layout.physical(l)] = bits[l]
        out[logical_index] = state[int("".join(phys_bits), 2)]
    return out


def random_circuit(rng, n_qubits, n_gates=15):
    qc = Circuit(n_qubits)
    for _ in range(n_gates):
        if n_qubits >= 2 and rng.random() < 0.45:
            a, b = rng.choice(n_qubits, size=2, replace=False)
            if rng.random() < 0.5:
                qc.cx(int(a), int(b))
            else:
                qc.cz(int(a), int(b))
        else:
            q = int(rng.integers(n_qubits))
            qc.ry(float(rng.normal()), q)
            qc.rz(float(rng.normal()), q)
    return qc


class TestBasicRouting:
    def test_adjacent_gates_untouched(self):
        qc = Circuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.cx(1, 2)
        routed = route_circuit(qc, CouplingMap.line(3))
        assert routed.swaps_inserted == 0
        assert routed.final_layout == routed.initial_layout
        assert routed.circuit.num_gates == 3

    def test_distant_gate_needs_swaps(self):
        qc = Circuit(3)
        qc.cx(0, 2)
        routed = route_circuit(qc, CouplingMap.line(3))
        assert routed.swaps_inserted == 1
        assert routed.overhead == 3

    def test_full_connectivity_never_swaps(self):
        rng = np.random.default_rng(3)
        qc = random_circuit(rng, 4)
        routed = route_circuit(qc, CouplingMap.full(4))
        assert routed.swaps_inserted == 0

    def test_wider_device_than_circuit(self):
        qc = Circuit(2)
        qc.cx(0, 1)
        layout = Layout.from_physical_list([0, 4])
        routed = route_circuit(qc, CouplingMap.line(5), layout)
        assert routed.circuit.n_qubits == 5
        assert routed.swaps_inserted == 3

    def test_layout_width_mismatch_rejected(self):
        qc = Circuit(3)
        with pytest.raises(ValueError, match="width"):
            route_circuit(qc, CouplingMap.line(3), Layout.trivial(2))

    def test_layout_outside_device_rejected(self):
        qc = Circuit(2)
        layout = Layout.from_physical_list([0, 7])
        with pytest.raises(ValueError, match="outside"):
            route_circuit(qc, CouplingMap.line(3), layout)

    def test_measured_qubits_follow_layout(self):
        qc = Circuit(2)
        qc.cx(0, 1)
        qc.measure_all()
        layout = Layout.from_physical_list([2, 0])
        routed = route_circuit(qc, CouplingMap.line(3), layout)
        expected = {
            routed.final_layout.physical(0),
            routed.final_layout.physical(1),
        }
        assert routed.circuit.measured_qubits == expected


class TestUnitaryEquivalence:
    @pytest.mark.parametrize(
        "coupling_factory",
        [
            lambda: CouplingMap.line(4),
            lambda: CouplingMap.ring(4),
            lambda: CouplingMap.grid(2, 2),
        ],
    )
    def test_random_circuits_equivalent(self, coupling_factory):
        rng = np.random.default_rng(17)
        coupling = coupling_factory()
        for _ in range(6):
            qc = random_circuit(rng, 4)
            routed = route_circuit(qc, coupling)
            expected = run_statevector(qc)
            actual = logical_state_from_routed(routed, 4)
            assert np.allclose(actual, expected, atol=1e-9)

    def test_nontrivial_initial_layout_equivalent(self):
        rng = np.random.default_rng(23)
        qc = random_circuit(rng, 3)
        layout = Layout.from_physical_list([3, 0, 2])
        routed = route_circuit(qc, CouplingMap.line(5), layout)
        expected = run_statevector(qc)
        actual = logical_state_from_routed(routed, 3)
        assert np.allclose(actual, expected, atol=1e-9)

    def test_h_shape_device_equivalent(self):
        rng = np.random.default_rng(29)
        qc = random_circuit(rng, 5)
        routed = route_circuit(qc, CouplingMap.h_shape_7())
        expected = run_statevector(qc)
        actual = logical_state_from_routed(routed, 5)
        assert np.allclose(actual, expected, atol=1e-9)


class TestSwapDecomposition:
    def test_decomposed_swaps_equivalent(self):
        rng = np.random.default_rng(31)
        qc = random_circuit(rng, 3)
        routed = route_circuit(qc, CouplingMap.line(3))
        native = decompose_swaps(routed.circuit)
        assert all(
            inst.name != "swap" for inst in native.instructions
        )
        assert np.allclose(
            run_statevector(native),
            run_statevector(routed.circuit),
            atol=1e-9,
        )

    def test_cx_count_accounting(self):
        qc = Circuit(3)
        qc.cx(0, 2)
        routed = route_circuit(qc, CouplingMap.line(3))
        native = decompose_swaps(routed.circuit)
        assert native.num_two_qubit_gates == 1 + routed.overhead
