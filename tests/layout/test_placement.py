"""Unit tests for layouts and noise-aware placement."""

import pytest

from repro.layout import (
    CouplingMap,
    Layout,
    best_measurement_placement,
    noise_aware_layout,
    noise_aware_path_layout,
)
from repro.noise import QubitReadoutError, ReadoutErrorModel


def readout_with_errors(errors):
    return ReadoutErrorModel(
        [QubitReadoutError(e, e) for e in errors]
    )


class TestLayout:
    def test_trivial(self):
        layout = Layout.trivial(3)
        assert layout.physical_qubits() == [0, 1, 2]

    def test_from_physical_list(self):
        layout = Layout.from_physical_list([4, 2, 0])
        assert layout.physical(0) == 4
        assert layout.logical(2) == 1
        assert layout.logical(3) is None

    def test_duplicate_physical_rejected(self):
        with pytest.raises(ValueError, match="share"):
            Layout({0: 1, 1: 1})

    def test_gapped_logicals_rejected(self):
        with pytest.raises(ValueError, match="0..n-1"):
            Layout({0: 0, 2: 2})

    def test_swap_physicals(self):
        layout = Layout.from_physical_list([0, 1, 2])
        swapped = layout.swap_physicals(1, 2)
        assert swapped.physical(1) == 2
        assert swapped.physical(2) == 1
        assert swapped.physical(0) == 0
        # swapping untouched physicals is a no-op for the mapping
        assert layout.swap_physicals(5, 6) == layout

    def test_equality(self):
        assert Layout.trivial(2) == Layout({0: 0, 1: 1})
        assert Layout.trivial(2) != Layout({0: 1, 1: 0})


class TestNoiseAwareLayout:
    def test_picks_low_error_connected_region(self):
        # Line of 6; the best three qubits by readout are 3, 4, 5.
        readout = readout_with_errors([0.09, 0.08, 0.07, 0.01, 0.02, 0.03])
        layout = noise_aware_layout(3, CouplingMap.line(6), readout)
        assert sorted(layout.physical_qubits()) == [3, 4, 5]

    def test_connectivity_beats_greedy_error(self):
        # Qubits 0 and 5 are the two best but are far apart: a 2-qubit
        # layout must be a connected pair, so one of them pairs with a
        # neighbor instead.
        readout = readout_with_errors([0.001, 0.05, 0.06, 0.07, 0.05, 0.002])
        layout = noise_aware_layout(2, CouplingMap.line(6), readout)
        physicals = sorted(layout.physical_qubits())
        assert physicals in ([0, 1], [4, 5])

    def test_best_lines_go_to_low_logical_indices(self):
        readout = readout_with_errors([0.05, 0.01, 0.03, 0.02])
        layout = noise_aware_layout(4, CouplingMap.line(4), readout)
        # logical 0 gets the best physical line (qubit 1)
        assert layout.physical(0) == 1

    def test_too_many_logicals_rejected(self):
        readout = readout_with_errors([0.01] * 3)
        with pytest.raises(ValueError, match="logical"):
            noise_aware_layout(4, CouplingMap.line(3), readout)

    def test_width_mismatch_rejected(self):
        readout = readout_with_errors([0.01] * 4)
        with pytest.raises(ValueError, match="width"):
            noise_aware_layout(2, CouplingMap.line(5), readout)

    def test_disconnected_device_uses_largest_component(self):
        readout = readout_with_errors([0.01, 0.02, 0.03, 0.04, 0.05])
        coupling = CouplingMap(5, [(0, 1), (2, 3), (3, 4)])
        layout = noise_aware_layout(3, coupling, readout)
        assert sorted(layout.physical_qubits()) == [2, 3, 4]

    def test_region_too_small_everywhere_rejected(self):
        readout = readout_with_errors([0.01, 0.02, 0.03, 0.04])
        coupling = CouplingMap(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="no connected region"):
            noise_aware_layout(3, coupling, readout)

    def test_heavy_hex_full_placement(self):
        readout = readout_with_errors(
            [0.01 + 0.001 * q for q in range(27)]
        )
        coupling = CouplingMap.heavy_hex_27()
        layout = noise_aware_layout(6, coupling, readout)
        assert coupling.connected_subset(layout.physical_qubits())


class TestBestMeasurementPlacement:
    def test_measured_qubits_get_best_lines(self):
        readout = readout_with_errors([0.05, 0.01, 0.04, 0.02])
        placement = best_measurement_placement(
            [0, 1], CouplingMap.line(4), readout
        )
        assert sorted(placement.values()) == [1, 3]

    def test_duplicates_rejected(self):
        readout = readout_with_errors([0.01] * 4)
        with pytest.raises(ValueError, match="duplicate"):
            best_measurement_placement(
                [0, 0], CouplingMap.line(4), readout
            )

    def test_too_many_measured_rejected(self):
        readout = readout_with_errors([0.01] * 2)
        with pytest.raises(ValueError, match="more measured"):
            best_measurement_placement(
                [0, 1, 2], CouplingMap.line(2), readout
            )


class TestPathLayout:
    def test_path_is_physically_consecutive(self):
        readout = readout_with_errors([0.05, 0.01, 0.02, 0.03, 0.04, 0.06])
        coupling = CouplingMap.line(6)
        layout = noise_aware_path_layout(4, coupling, readout)
        physicals = layout.physical_qubits()
        for a, b in zip(physicals, physicals[1:]):
            assert coupling.are_adjacent(a, b)

    def test_picks_lowest_error_path(self):
        readout = readout_with_errors([0.09, 0.08, 0.01, 0.01, 0.01, 0.09])
        layout = noise_aware_path_layout(3, CouplingMap.line(6), readout)
        assert sorted(layout.physical_qubits()) == [2, 3, 4]

    def test_single_qubit_path(self):
        readout = readout_with_errors([0.05, 0.01, 0.03])
        layout = noise_aware_path_layout(1, CouplingMap.line(3), readout)
        assert layout.physical_qubits() == [1]

    def test_heavy_hex_paths_exist_up_to_device_diameter(self):
        from repro.noise import ibmq_mumbai_like

        device = ibmq_mumbai_like()
        coupling = device.coupling_map
        for n in (2, 4, 6, 8):
            layout = noise_aware_path_layout(n, coupling, device.readout)
            physicals = layout.physical_qubits()
            assert len(set(physicals)) == n
            for a, b in zip(physicals, physicals[1:]):
                assert coupling.are_adjacent(a, b)

    def test_no_path_long_enough_rejected(self):
        # Star graph: longest simple path is 3 nodes.
        readout = readout_with_errors([0.01] * 4)
        star = CouplingMap(4, [(0, 1), (0, 2), (0, 3)])
        with pytest.raises(ValueError, match="no simple path"):
            noise_aware_path_layout(4, star, readout)

    def test_too_many_logicals_rejected(self):
        readout = readout_with_errors([0.01] * 2)
        with pytest.raises(ValueError, match="logical"):
            noise_aware_path_layout(3, CouplingMap.line(2), readout)
