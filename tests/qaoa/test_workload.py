"""Integration tests: QAOA workloads through the estimator stack."""

import numpy as np
import pytest

from repro.noise import SimulatorBackend, ibmq_mumbai_like, ideal_device
from repro.qaoa import make_qaoa_workload
from repro.vqe import run_vqe
from repro.workloads import make_estimator


class TestWorkloadFactory:
    def test_ring_workload_shape(self):
        wl = make_qaoa_workload("ring", 6, reps=2)
        assert wl.n_qubits == 6
        assert wl.ideal_energy == pytest.approx(-6.0)
        assert wl.ansatz.num_parameters == 4

    def test_regular3_workload(self):
        wl = make_qaoa_workload("regular3", 8, reps=1)
        assert wl.n_qubits == 8
        assert wl.ideal_energy < 0

    def test_unknown_problem_rejected(self):
        with pytest.raises(ValueError, match="unknown QAOA problem"):
            make_qaoa_workload("clique_cover", 6)

    def test_too_small_device_rejected(self):
        from repro.noise import ibm_lagos_like

        with pytest.raises(ValueError, match="qubits"):
            make_qaoa_workload("ring", 12, device=ibm_lagos_like())


class TestEstimatorIntegration:
    @pytest.mark.parametrize(
        "kind", ["ideal", "baseline", "jigsaw", "varsaw"]
    )
    def test_every_scheme_evaluates(self, kind):
        wl = make_qaoa_workload("ring", 4, reps=1)
        backend = SimulatorBackend(ibmq_mumbai_like(), seed=5)
        estimator = make_estimator(kind, wl, backend, shots=256)
        value = estimator.evaluate(np.array([0.5, 0.3]))
        # Energies live between the ground state and the trivial offset.
        assert wl.ideal_energy - 1.0 < value < 1.0

    def test_ideal_estimator_matches_exact_expectation(self):
        wl = make_qaoa_workload("ring", 4, reps=1)
        backend = SimulatorBackend(seed=5)
        from repro.hamiltonian import Hamiltonian
        from repro.sim.statevector import run_statevector

        estimator = make_estimator("ideal", wl, backend)
        params = np.array([0.7, 0.4])
        state = run_statevector(wl.ansatz.bind(params))
        exact = wl.hamiltonian.expectation_exact(state)
        assert estimator.evaluate(params) == pytest.approx(exact, abs=1e-9)

    def test_varsaw_cheaper_per_iteration_than_jigsaw(self):
        wl = make_qaoa_workload("ring", 6, reps=1)
        params = np.array([0.5, 0.3])
        costs = {}
        for kind in ("jigsaw", "varsaw"):
            backend = SimulatorBackend(ibmq_mumbai_like(), seed=5)
            estimator = make_estimator(kind, wl, backend, shots=128)
            estimator.evaluate(params)
            costs[kind] = backend.circuits_run
        assert costs["varsaw"] < costs["jigsaw"]


class TestShortTuningRun:
    def test_qaoa_vqe_loop_improves_energy(self):
        wl = make_qaoa_workload("ring", 4, reps=1)
        backend = SimulatorBackend(ideal_device(4), seed=9)
        estimator = make_estimator("baseline", wl, backend, shots=512)
        start = estimator.evaluate(np.array([0.05, 0.05]))
        result = run_vqe(
            estimator,
            max_iterations=40,
            seed=9,
            initial_params=np.array([0.05, 0.05]),
        )
        assert result.energy <= start + 1e-6
        assert result.iterations_completed() > 0
