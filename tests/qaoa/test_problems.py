"""Unit tests for QAOA problem Hamiltonians."""

import networkx as nx
import numpy as np
import pytest

from repro.hamiltonian import ground_state_energy
from repro.qaoa import (
    best_cut_brute_force,
    cut_value,
    maxcut_hamiltonian,
    number_partition_hamiltonian,
    random_regular_maxcut,
    ring_maxcut,
)


class TestMaxCutHamiltonian:
    def test_ground_energy_is_negative_maxcut(self):
        graph = nx.cycle_graph(6)
        ham = maxcut_hamiltonian(graph)
        best, _ = best_cut_brute_force(graph)
        assert ground_state_energy(ham) == pytest.approx(-best)

    def test_weighted_graph(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=2.5)
        graph.add_edge(1, 2, weight=0.5)
        ham = maxcut_hamiltonian(graph)
        best, _ = best_cut_brute_force(graph)
        assert best == pytest.approx(3.0)
        assert ground_state_energy(ham) == pytest.approx(-3.0)

    def test_triangle_is_frustrated(self):
        # A triangle can cut at most 2 of its 3 edges.
        graph = nx.complete_graph(3)
        ham = maxcut_hamiltonian(graph)
        assert ground_state_energy(ham) == pytest.approx(-2.0)

    def test_terms_are_zz_plus_identity(self):
        ham = maxcut_hamiltonian(nx.cycle_graph(4))
        for _, pauli in ham.non_identity_terms():
            assert pauli.weight == 2
            assert set(pauli.label) == {"I", "Z"}

    def test_single_node_rejected(self):
        with pytest.raises(ValueError):
            maxcut_hamiltonian(nx.empty_graph(1))

    def test_edgeless_graph_rejected(self):
        with pytest.raises(ValueError, match="no edges"):
            maxcut_hamiltonian(nx.empty_graph(3))

    def test_bad_node_labels_rejected(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(ValueError, match="0..n-1"):
            maxcut_hamiltonian(graph)


class TestRingAndRegular:
    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_even_ring_cuts_completely(self, n):
        assert ground_state_energy(ring_maxcut(n)) == pytest.approx(-n)

    @pytest.mark.parametrize("n", [5, 7])
    def test_odd_ring_is_frustrated(self, n):
        assert ground_state_energy(ring_maxcut(n)) == pytest.approx(-(n - 1))

    def test_tiny_ring_rejected(self):
        with pytest.raises(ValueError):
            ring_maxcut(2)

    def test_regular_graph_term_count(self):
        ham = random_regular_maxcut(8, degree=3, seed=1)
        # 3-regular on 8 nodes: 12 edges -> 12 ZZ terms + identity offset.
        assert len(ham.non_identity_terms()) == 12

    def test_regular_graph_parity_rejected(self):
        with pytest.raises(ValueError):
            random_regular_maxcut(5, degree=3)

    def test_seed_reproducibility(self):
        a = random_regular_maxcut(8, seed=3)
        b = random_regular_maxcut(8, seed=3)
        assert [
            (c, str(p)) for c, p in a.non_identity_terms()
        ] == [(c, str(p)) for c, p in b.non_identity_terms()]


class TestCutUtilities:
    def test_cut_value_counts_cut_edges(self):
        graph = nx.cycle_graph(4)
        assert cut_value(graph, [0, 1, 0, 1]) == pytest.approx(4.0)
        assert cut_value(graph, [0, 0, 0, 0]) == pytest.approx(0.0)

    def test_cut_value_accepts_plus_minus_one(self):
        graph = nx.cycle_graph(4)
        assert cut_value(graph, [1, -1, 1, -1]) == pytest.approx(4.0)

    def test_brute_force_cap(self):
        with pytest.raises(ValueError, match="capped"):
            best_cut_brute_force(nx.cycle_graph(21))

    def test_brute_force_argmax_achieves_value(self):
        graph = nx.random_regular_graph(3, 8, seed=5)
        best, bits = best_cut_brute_force(graph)
        assert cut_value(graph, bits) == pytest.approx(best)


class TestNumberPartition:
    def test_balanced_set_reaches_zero(self):
        # {1, 2, 3} splits as {1, 2} vs {3}: residual 0.
        ham = number_partition_hamiltonian([1, 2, 3])
        assert ground_state_energy(ham) == pytest.approx(0.0)

    def test_unbalanceable_set_has_positive_floor(self):
        ham = number_partition_hamiltonian([1, 1, 3])
        # best split {1,1} vs {3}: residual 1, squared 1.
        assert ground_state_energy(ham) == pytest.approx(1.0)

    def test_too_few_numbers_rejected(self):
        with pytest.raises(ValueError):
            number_partition_hamiltonian([5])

    def test_all_terms_diagonal(self):
        ham = number_partition_hamiltonian([2, 3, 5, 7])
        for _, pauli in ham.non_identity_terms():
            assert set(pauli.label) <= {"I", "Z"}
