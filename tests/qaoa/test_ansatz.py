"""Unit tests for the QAOA ansatz."""

import numpy as np
import pytest
import scipy.linalg

from repro.hamiltonian import Hamiltonian, ground_state_energy
from repro.qaoa import QAOAAnsatz, ring_maxcut
from repro.sim.statevector import run_statevector


class TestConstruction:
    def test_parameter_count(self):
        ansatz = QAOAAnsatz(ring_maxcut(4), reps=3)
        assert ansatz.num_parameters == 6

    def test_zero_reps_rejected(self):
        with pytest.raises(ValueError):
            QAOAAnsatz(ring_maxcut(4), reps=0)

    def test_non_diagonal_hamiltonian_rejected(self):
        ham = Hamiltonian([(1.0, "XZ"), (0.5, "ZZ")])
        with pytest.raises(ValueError, match="diagonal"):
            QAOAAnsatz(ham)

    def test_wrong_parameter_shape_rejected(self):
        ansatz = QAOAAnsatz(ring_maxcut(4), reps=1)
        with pytest.raises(ValueError, match="expected 2 parameters"):
            ansatz.bind([0.1, 0.2, 0.3])

    def test_repr_mentions_problem(self):
        assert "ring-maxcut-4" in repr(QAOAAnsatz(ring_maxcut(4)))

    def test_entanglement_label(self):
        assert QAOAAnsatz(ring_maxcut(4)).entanglement == "problem"

    def test_gate_load_counts(self):
        ones, twos = QAOAAnsatz(ring_maxcut(4), reps=1).gate_load
        # ring-4: 4 H + 4 RZ + 4 RX = 12 one-qubit, 2 CX per edge = 8.
        assert (ones, twos) == (12, 8)


class TestStatePreparation:
    def test_gamma_zero_gives_uniform_energy(self):
        # With γ=0 the cost layer is trivial and β only rotates |+>
        # states into other product states with <ZZ> = 0: the energy is
        # the identity offset.
        ham = ring_maxcut(6)
        ansatz = QAOAAnsatz(ham, reps=1)
        state = run_statevector(ansatz.bind([0.0, 0.37]))
        assert ham.expectation_exact(state) == pytest.approx(
            ham.identity_coefficient
        )

    def test_cost_layer_is_exact_exponential(self):
        """The circuit at β=0 equals exp(-iγ(H - offset)) exactly."""
        ham = ring_maxcut(4)
        gamma = 0.613
        ansatz = QAOAAnsatz(ham, reps=1)
        state = run_statevector(ansatz.bind([gamma, 0.0]))
        dense = ham.to_sparse_matrix().toarray()
        offset = ham.identity_coefficient * np.eye(dense.shape[0])
        plus = np.full(2**4, 0.25, dtype=complex)  # |+>^4
        expected = scipy.linalg.expm(-1j * gamma * (dense - offset)) @ plus
        assert np.allclose(state, expected, atol=1e-10)

    def test_many_body_z_term_ladder(self):
        """ZZZ cost terms compile to the CX parity ladder correctly."""
        ham = Hamiltonian([(0.8, "ZZZ")])
        gamma = 0.29
        ansatz = QAOAAnsatz(ham, reps=1)
        state = run_statevector(ansatz.bind([gamma, 0.0]))
        dense = ham.to_sparse_matrix().toarray()
        plus = np.full(2**3, 2 ** (-1.5), dtype=complex)
        expected = scipy.linalg.expm(-1j * gamma * dense) @ plus
        assert np.allclose(state, expected, atol=1e-10)

    def test_single_z_term(self):
        ham = Hamiltonian([(1.3, "IZ")])
        ansatz = QAOAAnsatz(ham, reps=1)
        state = run_statevector(ansatz.bind([0.41, 0.0]))
        dense = ham.to_sparse_matrix().toarray()
        plus = np.full(4, 0.5, dtype=complex)
        expected = scipy.linalg.expm(-1j * 0.41 * dense) @ plus
        assert np.allclose(state, expected, atol=1e-10)


class TestOptimizationQuality:
    def test_p1_grid_beats_random_guessing(self):
        """A coarse p=1 grid already digs well below the offset energy."""
        ham = ring_maxcut(4)
        ansatz = QAOAAnsatz(ham, reps=1)
        offset = ham.identity_coefficient
        best = offset
        for gamma in np.linspace(0.1, 1.2, 8):
            for beta in np.linspace(0.1, 1.2, 8):
                state = run_statevector(ansatz.bind([gamma, beta]))
                best = min(best, ham.expectation_exact(state))
        ground = ground_state_energy(ham)
        # p=1 on a ring tops out at exactly half the offset-to-ground gap
        # (the 3/4 approximation ratio); a coarse grid should get close.
        assert best < offset + 0.45 * (ground - offset)

    def test_depth_improves_floor(self):
        """Best p=2 energy (seeded search) is <= best p=1 energy."""
        ham = ring_maxcut(4)
        rng = np.random.default_rng(11)

        def best_energy(reps, trials=60):
            ansatz = QAOAAnsatz(ham, reps=reps)
            best = np.inf
            for _ in range(trials):
                params = rng.uniform(0, np.pi, size=ansatz.num_parameters)
                state = run_statevector(ansatz.bind(params))
                best = min(best, ham.expectation_exact(state))
            return best

        assert best_energy(2) <= best_energy(1) + 1e-9
