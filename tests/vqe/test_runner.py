"""Unit tests for the VQE loop."""

import numpy as np
import pytest

from repro.noise import SimulatorBackend
from repro.optimizers import ImFil
from repro.vqe import BaselineEstimator, IdealEstimator, initial_parameters, run_vqe


class TestInitialParameters:
    def test_shape_and_spread(self):
        params = initial_parameters(10, seed=0, spread=0.1)
        assert params.shape == (10,)
        assert np.all(np.abs(params) <= 0.1)

    def test_seeded(self):
        assert np.allclose(
            initial_parameters(5, seed=1), initial_parameters(5, seed=1)
        )


class TestRunVqe:
    def test_ideal_vqe_approaches_ground_state(self, h2, h2_ansatz):
        est = IdealEstimator(h2, h2_ansatz)
        result = run_vqe(est, max_iterations=250, seed=0)
        from repro.hamiltonian import ground_state_energy

        e0 = ground_state_energy(h2)
        # 250 SPSA iterations should close most of the gap from the random
        # start.
        start = est.evaluate(initial_parameters(h2_ansatz.num_parameters, 0))
        assert result.energy < start
        assert result.energy - e0 < 0.6 * (start - e0)

    def test_histories_aligned(self, h2, h2_ansatz):
        backend = SimulatorBackend(seed=0)
        est = BaselineEstimator(h2, h2_ansatz, backend, shots=32)
        result = run_vqe(est, max_iterations=10, seed=0)
        assert len(result.energy_history) == len(result.circuit_history) == 10
        assert result.iterations_completed() == 10

    def test_circuit_budget_stops_run(self, h2, h2_ansatz):
        from repro.optimizers import SPSA

        backend = SimulatorBackend(seed=0)
        est = BaselineEstimator(h2, h2_ansatz, backend, shots=16)
        per_iter = 2 * est.circuits_per_evaluation  # SPSA: 2 evals/iter
        budget = 5 * per_iter
        result = run_vqe(
            est,
            optimizer=SPSA(a=0.2, seed=0),  # fixed gain: no calibration
            max_iterations=1000,
            circuit_budget=budget,
            seed=0,
        )
        assert result.stop_reason == "budget_exhausted"
        assert result.circuits_executed <= budget + per_iter
        assert result.iterations < 1000

    def test_budget_counted_from_run_start(self, h2, h2_ansatz):
        """Pre-existing backend charges don't eat the run's budget."""
        backend = SimulatorBackend(seed=0)
        est = BaselineEstimator(h2, h2_ansatz, backend, shots=16)
        est.evaluate(np.zeros(h2_ansatz.num_parameters))  # outside the run
        spent_before = backend.circuits_run
        result = run_vqe(
            est,
            max_iterations=3,
            circuit_budget=10 * est.circuits_per_evaluation,
            seed=0,
        )
        assert result.circuits_executed == backend.circuits_run - spent_before

    def test_custom_optimizer(self, h2, h2_ansatz):
        est = IdealEstimator(h2, h2_ansatz)
        result = run_vqe(
            est, optimizer=ImFil(h0=0.3), max_iterations=20, seed=0
        )
        assert result.iterations <= 20

    def test_explicit_initial_params(self, h2, h2_ansatz):
        est = IdealEstimator(h2, h2_ansatz)
        x0 = np.zeros(h2_ansatz.num_parameters)
        result = run_vqe(est, max_iterations=5, initial_params=x0, seed=0)
        assert result.energy <= est.evaluate(x0) + 1e-9
