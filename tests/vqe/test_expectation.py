"""Unit tests for expectation assembly from group PMFs."""

import numpy as np
import pytest

from repro.hamiltonian import Hamiltonian
from repro.pauli import PauliString
from repro.sim import PMF
from repro.vqe import (
    assign_terms_to_groups,
    energy_from_group_pmfs,
    term_expectation,
)


class TestTermExpectation:
    def test_requires_full_register(self):
        pmf = PMF([0.5, 0.5], qubits=(1,))
        with pytest.raises(ValueError):
            term_expectation(pmf, PauliString("Z"))

    def test_z_parity(self):
        pmf = PMF([0.0, 0.0, 0.0, 1.0])  # |11>
        assert term_expectation(pmf, PauliString("ZZ")) == 1.0
        assert term_expectation(pmf, PauliString("ZI")) == -1.0


class TestAssignTerms:
    def test_every_term_assigned_to_covering_basis(self, fig6_hamiltonian):
        bases, group_terms = assign_terms_to_groups(fig6_hamiltonian)
        assert len(bases) == 7
        for basis, members in zip(bases, group_terms):
            for _, term in members:
                assert term.can_be_measured_by(basis)

    def test_coefficients_preserved(self, fig6_hamiltonian):
        _, group_terms = assign_terms_to_groups(fig6_hamiltonian)
        collected = {
            term: coeff
            for members in group_terms
            for coeff, term in members
        }
        for coeff, term in fig6_hamiltonian.terms:
            assert collected[term] == pytest.approx(coeff)

    def test_duplicate_bases_keep_separate_groups(self, h2):
        """H2's ZZ-pair groups Z-fill to the same basis but stay apart."""
        bases, group_terms = assign_terms_to_groups(h2)
        assert len(bases) > len(set(bases))
        all_terms = [t for ms in group_terms for _, t in ms]
        assert len(all_terms) == len(h2.non_identity_terms())

    def test_identity_excluded_from_groups(self):
        ham = Hamiltonian([(3.0, "II"), (1.0, "ZZ")])
        _, group_terms = assign_terms_to_groups(ham)
        members = [t for ms in group_terms for _, t in ms]
        assert PauliString("II") not in members


class TestEnergyAssembly:
    def test_identity_offset_included(self):
        ham = Hamiltonian([(3.0, "II"), (1.0, "ZZ")])
        bases, group_terms = assign_terms_to_groups(ham)
        pmfs = [PMF([1.0, 0.0, 0.0, 0.0])]  # |00>: <ZZ> = 1
        energy = energy_from_group_pmfs(ham, pmfs, group_terms)
        assert energy == pytest.approx(4.0)

    def test_pmf_count_mismatch_rejected(self):
        ham = Hamiltonian([(1.0, "ZZ")])
        _, group_terms = assign_terms_to_groups(ham)
        with pytest.raises(ValueError):
            energy_from_group_pmfs(ham, [], group_terms)

    def test_matches_exact_expectation_with_exact_pmfs(self, h2, h2_ansatz):
        """Infinite-shot, noise-free group PMFs reproduce <H> exactly."""
        from repro.sim import probabilities, run_statevector

        params = np.linspace(-0.4, 0.6, h2_ansatz.num_parameters)
        bound = h2_ansatz.bind(params)
        state = run_statevector(bound)
        exact = h2.expectation_exact(state)
        bases, group_terms = assign_terms_to_groups(h2)
        pmfs = []
        for basis in bases:
            rotated = run_statevector(
                basis.basis_rotation(), initial_state=state
            )
            pmfs.append(PMF(probabilities(rotated)))
        energy = energy_from_group_pmfs(h2, pmfs, group_terms)
        assert energy == pytest.approx(exact, abs=1e-9)
