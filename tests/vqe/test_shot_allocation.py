"""Unit tests for shot allocation."""

import pytest

from repro.hamiltonian import Hamiltonian
from repro.vqe import allocate_shots, uniform_allocation, weighted_allocation
from repro.vqe.expectation import assign_terms_to_groups


class TestUniform:
    def test_even_split(self):
        assert uniform_allocation(100, 4) == [25, 25, 25, 25]

    def test_remainder_to_first(self):
        assert uniform_allocation(10, 3) == [4, 3, 3]

    def test_total_preserved(self):
        for shots, groups in [(100, 7), (1025, 13), (5, 5)]:
            assert sum(uniform_allocation(shots, groups)) == shots

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_allocation(2, 3)
        with pytest.raises(ValueError):
            uniform_allocation(10, 0)


class TestWeighted:
    def test_sqrt_proportionality(self):
        # weights 1 and 4 -> sqrt ratio 1:2 above the floor.
        allocation = weighted_allocation(3000, [1.0, 4.0], min_shots=0)
        assert allocation[1] / allocation[0] == pytest.approx(2.0, rel=0.01)

    def test_total_preserved(self):
        allocation = weighted_allocation(1000, [0.1, 5.0, 2.3], min_shots=16)
        assert sum(allocation) == 1000

    def test_minimum_respected(self):
        allocation = weighted_allocation(1000, [1e-9, 100.0], min_shots=20)
        assert min(allocation) >= 20

    def test_zero_weights_fall_back_to_uniform(self):
        assert weighted_allocation(100, [0.0, 0.0], min_shots=10) == [50, 50]

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_allocation(10, [])
        with pytest.raises(ValueError):
            weighted_allocation(10, [-1.0])
        with pytest.raises(ValueError):
            weighted_allocation(10, [1.0, 1.0], min_shots=10)


class TestAllocateShots:
    def make_groups(self):
        ham = Hamiltonian(
            [(10.0, "ZZII"), (0.1, "XXII"), (0.1, "IIXX")]
        )
        _, group_terms = assign_terms_to_groups(ham)
        return group_terms

    def test_weighted_favors_heavy_groups(self):
        group_terms = self.make_groups()
        allocation = allocate_shots(group_terms, 3000, strategy="weighted")
        masses = [
            sum(abs(c) for c, _ in members) for members in group_terms
        ]
        heavy = masses.index(max(masses))
        assert allocation[heavy] == max(allocation)
        assert sum(allocation) == 3000

    def test_uniform_strategy(self):
        group_terms = self.make_groups()
        allocation = allocate_shots(group_terms, 300, strategy="uniform")
        assert allocation == uniform_allocation(300, len(group_terms))

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            allocate_shots(self.make_groups(), 100, strategy="magic")
