"""Unit tests for baseline and ideal estimators."""

import numpy as np
import pytest

from repro.ansatz import EfficientSU2
from repro.hamiltonian import build_hamiltonian, ground_state_energy
from repro.noise import SimulatorBackend, ibmq_mumbai_like
from repro.vqe import BaselineEstimator, IdealEstimator


class TestIdealEstimator:
    def test_matches_exact_expectation(self, h2, h2_ansatz):
        est = IdealEstimator(h2, h2_ansatz)
        params = np.full(h2_ansatz.num_parameters, 0.3)
        from repro.sim import run_statevector

        state = run_statevector(h2_ansatz.bind(params))
        assert est.evaluate(params) == pytest.approx(
            h2.expectation_exact(state)
        )

    def test_charges_nothing(self, h2, h2_ansatz):
        est = IdealEstimator(h2, h2_ansatz)
        est.evaluate(np.zeros(h2_ansatz.num_parameters))
        assert est.backend.circuits_run == 0
        assert est.circuits_per_evaluation == 0

    def test_never_below_ground_energy(self, h2, h2_ansatz):
        est = IdealEstimator(h2, h2_ansatz)
        e0 = ground_state_energy(h2)
        rng = np.random.default_rng(0)
        for _ in range(5):
            params = rng.uniform(-2, 2, h2_ansatz.num_parameters)
            assert est.evaluate(params) >= e0 - 1e-9


class TestBaselineEstimator:
    def test_width_mismatch_rejected(self, h2):
        with pytest.raises(ValueError):
            BaselineEstimator(h2, EfficientSU2(6), SimulatorBackend())

    def test_shots_positive(self, h2, h2_ansatz):
        with pytest.raises(ValueError):
            BaselineEstimator(h2, h2_ansatz, SimulatorBackend(), shots=0)

    def test_charges_one_circuit_per_group(self, h2, h2_ansatz):
        backend = SimulatorBackend(seed=0)
        est = BaselineEstimator(h2, h2_ansatz, backend, shots=64)
        est.evaluate(np.zeros(h2_ansatz.num_parameters))
        assert backend.circuits_run == est.num_groups
        assert est.circuits_per_evaluation == est.num_groups

    def test_ideal_backend_converges_to_exact(self, h2, h2_ansatz):
        """With no device noise and many shots, baseline ~= exact."""
        backend = SimulatorBackend(seed=1)
        est = BaselineEstimator(h2, h2_ansatz, backend, shots=200_000)
        ideal = IdealEstimator(h2, h2_ansatz)
        params = np.full(h2_ansatz.num_parameters, 0.2)
        assert est.evaluate(params) == pytest.approx(
            ideal.evaluate(params), abs=0.02
        )

    def test_noise_biases_energy_upward_at_optimum(self, h2, h2_ansatz):
        """Near the ground state, noise can only raise the energy."""
        from repro.vqe import run_vqe

        ideal = IdealEstimator(h2, h2_ansatz)
        tuned = run_vqe(ideal, max_iterations=300, seed=4)
        noisy = BaselineEstimator(
            h2, h2_ansatz, SimulatorBackend(ibmq_mumbai_like(), seed=2),
            shots=8192,
        )
        e_ideal = ideal.evaluate(tuned.parameters)
        e_noisy = noisy.evaluate(tuned.parameters)
        assert e_noisy > e_ideal
