"""Unit tests for the general-commutation estimator."""

import numpy as np
import pytest

from repro.noise import SimulatorBackend, ibmq_mumbai_like, ideal_device
from repro.vqe import (
    BaselineEstimator,
    GeneralCommutationEstimator,
    IdealEstimator,
)
from repro.workloads import make_workload


@pytest.fixture
def h2_setup():
    workload = make_workload("H2-4")
    params = np.full(workload.ansatz.num_parameters, 0.13)
    return workload, params


class TestCorrectness:
    def test_noise_free_matches_exact(self, h2_setup):
        workload, params = h2_setup
        exact = IdealEstimator(
            workload.hamiltonian, workload.ansatz
        ).evaluate(params)
        gc = GeneralCommutationEstimator(
            workload.hamiltonian,
            workload.ansatz,
            SimulatorBackend(ideal_device(4), seed=5),
            shots=400_000,
        )
        assert gc.evaluate(params) == pytest.approx(exact, abs=0.05)

    def test_greedy_method_also_exact(self, h2_setup):
        workload, params = h2_setup
        exact = IdealEstimator(
            workload.hamiltonian, workload.ansatz
        ).evaluate(params)
        gc = GeneralCommutationEstimator(
            workload.hamiltonian,
            workload.ansatz,
            SimulatorBackend(ideal_device(4), seed=7),
            shots=400_000,
            method="greedy",
        )
        assert gc.evaluate(params) == pytest.approx(exact, abs=0.05)

    def test_lih_noise_free_matches_exact(self):
        workload = make_workload("LiH-6")
        params = np.full(workload.ansatz.num_parameters, 0.07)
        exact = IdealEstimator(
            workload.hamiltonian, workload.ansatz
        ).evaluate(params)
        gc = GeneralCommutationEstimator(
            workload.hamiltonian,
            workload.ansatz,
            SimulatorBackend(ideal_device(6), seed=3),
            shots=400_000,
        )
        assert gc.evaluate(params) == pytest.approx(exact, abs=0.25)


class TestCostStructure:
    def test_fewer_circuits_than_baseline(self, h2_setup):
        workload, _ = h2_setup
        backend = SimulatorBackend(ideal_device(4), seed=1)
        gc = GeneralCommutationEstimator(
            workload.hamiltonian, workload.ansatz, backend
        )
        qwc = BaselineEstimator(
            workload.hamiltonian, workload.ansatz, backend
        )
        assert gc.num_groups < qwc.num_groups
        assert gc.circuits_per_evaluation == gc.num_groups

    def test_rotations_carry_entangling_gates(self, h2_setup):
        workload, _ = h2_setup
        gc = GeneralCommutationEstimator(
            workload.hamiltonian,
            workload.ansatz,
            SimulatorBackend(ideal_device(4), seed=1),
        )
        # H2's Hamiltonian has XXYY-type terms: merging them into one
        # family requires entangling rotations.
        assert gc.rotation_entangling_gates > 0

    def test_backend_ledger_charged_per_group(self, h2_setup):
        workload, params = h2_setup
        backend = SimulatorBackend(ideal_device(4), seed=1)
        gc = GeneralCommutationEstimator(
            workload.hamiltonian, workload.ansatz, backend, shots=128
        )
        before = backend.circuits_run
        gc.evaluate(params)
        assert backend.circuits_run == before + gc.num_groups

    def test_unknown_method_rejected(self, h2_setup):
        workload, _ = h2_setup
        with pytest.raises(ValueError, match="unknown method"):
            GeneralCommutationEstimator(
                workload.hamiltonian,
                workload.ansatz,
                SimulatorBackend(ideal_device(4)),
                method="psychic",
            )


class TestNoisyBehavior:
    def test_noisy_evaluation_is_finite_and_bounded(self, h2_setup):
        workload, params = h2_setup
        gc = GeneralCommutationEstimator(
            workload.hamiltonian,
            workload.ansatz,
            SimulatorBackend(ibmq_mumbai_like(), seed=11),
            shots=1024,
        )
        value = gc.evaluate(params)
        # Any sampled expectation is bounded by the Hamiltonian's 1-norm.
        bound = sum(
            abs(c) for c, _ in workload.hamiltonian.non_identity_terms()
        ) + abs(workload.hamiltonian.identity_coefficient)
        assert np.isfinite(value)
        assert abs(value) <= bound

    def test_gate_noise_hits_gc_harder_per_circuit(self, h2_setup):
        """GC suffixes add 2-qubit gates, so pure gate noise (readout
        off) biases GC at least as much as the baseline."""
        workload, params = h2_setup
        exact = IdealEstimator(
            workload.hamiltonian, workload.ansatz
        ).evaluate(params)
        device = ibmq_mumbai_like(scale=5.0)

        def bias(estimator_cls):
            backend = SimulatorBackend(device, seed=13)
            backend.readout_enabled = False
            est = estimator_cls(
                workload.hamiltonian,
                workload.ansatz,
                backend,
                shots=200_000,
            )
            return abs(est.evaluate(params) - exact)

        assert bias(GeneralCommutationEstimator) >= bias(
            BaselineEstimator
        ) - 0.02
