"""Unit tests for the hardware-efficient SU2 ansatz."""

import numpy as np
import pytest

from repro.ansatz import ENTANGLEMENT_TYPES, EfficientSU2
from repro.sim import probabilities, run_statevector


class TestStructure:
    def test_parameter_count(self):
        # 2 * n * (reps + 1) parameters, Qiskit-compatible.
        assert EfficientSU2(4, reps=2).num_parameters == 24
        assert EfficientSU2(6, reps=1).num_parameters == 24
        assert EfficientSU2(3, reps=4).num_parameters == 30

    def test_entanglement_gate_counts(self):
        n = 5
        full = EfficientSU2(n, reps=1, entanglement="full")
        linear = EfficientSU2(n, reps=1, entanglement="linear")
        circular = EfficientSU2(n, reps=1, entanglement="circular")
        assert full.circuit.num_two_qubit_gates == n * (n - 1) // 2
        assert linear.circuit.num_two_qubit_gates == n - 1
        assert circular.circuit.num_two_qubit_gates == n

    def test_asymmetric_rotates_pattern_between_blocks(self):
        ansatz = EfficientSU2(4, reps=2, entanglement="asymmetric")
        cx = [
            ins.qubits
            for ins in ansatz.circuit.instructions
            if ins.name == "cx"
        ]
        first_block, second_block = cx[:4], cx[4:]
        assert first_block != second_block

    def test_reps_scale_depth(self):
        shallow = EfficientSU2(4, reps=1)
        deep = EfficientSU2(4, reps=8)
        assert deep.circuit.depth() > shallow.circuit.depth()

    def test_invalid_entanglement(self):
        with pytest.raises(ValueError):
            EfficientSU2(4, entanglement="star")

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            EfficientSU2(1)
        with pytest.raises(ValueError):
            EfficientSU2(4, reps=0)

    def test_gate_load_partition(self):
        ansatz = EfficientSU2(4, reps=2)
        g1, g2 = ansatz.gate_load
        assert g1 + g2 == ansatz.circuit.num_gates
        assert g2 == ansatz.circuit.num_two_qubit_gates

    @pytest.mark.parametrize("entanglement", ENTANGLEMENT_TYPES)
    def test_all_types_simulate(self, entanglement):
        ansatz = EfficientSU2(3, reps=2, entanglement=entanglement)
        bound = ansatz.bind(np.zeros(ansatz.num_parameters))
        state = run_statevector(bound)
        assert np.isclose(np.linalg.norm(state), 1.0)


class TestBinding:
    def test_bind_produces_bound_circuit(self):
        ansatz = EfficientSU2(3, reps=1)
        bound = ansatz.bind(np.linspace(0, 1, ansatz.num_parameters))
        assert bound.is_bound()

    def test_bind_wrong_length(self):
        ansatz = EfficientSU2(3, reps=1)
        with pytest.raises(ValueError):
            ansatz.bind([0.0])

    def test_zero_parameters_give_zero_state(self):
        """All-zero angles: RY(0)=RZ(0)=I, CX|00..>=|00..>."""
        ansatz = EfficientSU2(3, reps=2)
        state = run_statevector(ansatz.bind(np.zeros(ansatz.num_parameters)))
        assert np.isclose(probabilities(state)[0], 1.0)

    def test_parameters_change_state(self):
        ansatz = EfficientSU2(3, reps=1)
        a = run_statevector(ansatz.bind(np.zeros(ansatz.num_parameters)))
        values = np.full(ansatz.num_parameters, 0.4)
        b = run_statevector(ansatz.bind(values))
        assert not np.allclose(probabilities(a), probabilities(b))

    def test_two_qubit_asymmetric_special_case(self):
        ansatz = EfficientSU2(2, reps=2, entanglement="asymmetric")
        bound = ansatz.bind(np.zeros(ansatz.num_parameters))
        assert bound.is_bound()
