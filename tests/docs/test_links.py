"""Docs link checker: every relative link in docs/ + README resolves.

This is the in-repo half of the CI ``docs`` job (the job also runs
``mkdocs build --strict``): it walks every Markdown link in ``docs/``
and ``README.md`` and asserts the target file exists, so a renamed or
deleted page fails the tier-1 suite, not just a nightly crawl.
"""

from __future__ import annotations

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent.parent

DOC_FILES = sorted(
    [REPO / "README.md", *(REPO / "docs").glob("*.md")],
    key=lambda path: path.name,
)

#: Inline Markdown links: [text](target) — images included.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")


def _relative_links(path: pathlib.Path) -> list[str]:
    links = []
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        links.append(target)
    return links


def test_docs_tree_exists():
    names = {path.name for path in DOC_FILES}
    assert {
        "README.md", "index.md", "architecture.md", "backends.md",
        "sweeps.md",
    } <= names


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[p.name for p in DOC_FILES]
)
def test_every_relative_link_resolves(doc):
    broken = []
    for target in _relative_links(doc):
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue  # pure in-page anchor
        resolved = (doc.parent / path_part).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken links {broken}"


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[p.name for p in DOC_FILES]
)
def test_referenced_code_paths_exist(doc):
    """Backtick-quoted repo paths mentioned in prose must exist."""
    text = doc.read_text(encoding="utf-8")
    pattern = re.compile(
        r"`((?:src|docs|tests|benchmarks|examples)/[\w./-]+|"
        r"[\w-]+\.(?:md|py|yml|toml|json))`"
    )
    missing = [
        mention
        for mention in pattern.findall(text)
        if not (REPO / mention).exists()
        and not (doc.parent / mention).exists()
        and "*" not in mention
        and not mention.startswith("grid.json")  # CLI placeholder
    ]
    assert not missing, f"{doc.name}: dangling path references {missing}"
