"""The docstring gate: the public API surface documents itself.

The in-repo equivalent of the scoped ruff ``D1`` (pydocstyle
missing-docstring) selection in ``pyproject.toml``, runnable without
installing ruff: every module, public class, and public
function/method in the packages below must carry a docstring.  The
scope is the surface a new contributor (or an out-of-tree extension
author) programs against: the experiment API, the backend registry,
the execution engine, and the sweep spec/runner/catalog layer.
"""

from __future__ import annotations

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent.parent / "src"

#: The enforced surface: whole packages and individual modules.
SCOPED = [
    "repro/api",
    "repro/backends",
    "repro/dist",
    "repro/engine",
    "repro/io",
    "repro/obs",
    "repro/serve",
    "repro/sim/plan.py",
    "repro/sweeps/spec.py",
    "repro/sweeps/catalog.py",
    "repro/sweeps/runner.py",
]


def scoped_files() -> list[pathlib.Path]:
    files = []
    for entry in SCOPED:
        path = SRC / entry
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_docstrings(tree: ast.Module) -> list[str]:
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append("module docstring")

    def walk(node, prefix: str, top_level: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _is_public(child.name):
                    if ast.get_docstring(child) is None:
                        missing.append(f"class {prefix}{child.name}")
                    walk(child, f"{prefix}{child.name}.", False)
            elif isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if not _is_public(child.name):
                    continue
                if ast.get_docstring(child) is None:
                    missing.append(f"def {prefix}{child.name}")
                # Nested defs are implementation detail: not enforced.

    walk(tree, "", True)
    return missing


def test_scope_is_nonempty():
    files = scoped_files()
    assert len(files) >= 15, files


@pytest.mark.parametrize(
    "path",
    scoped_files(),
    ids=lambda p: str(p.relative_to(SRC)),
)
def test_public_surface_is_documented(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    missing = _missing_docstrings(tree)
    assert not missing, (
        f"{path.relative_to(SRC)} is missing docstrings: {missing}"
    )
