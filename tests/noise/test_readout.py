"""Unit tests for readout error models."""

import numpy as np
import pytest

from repro.noise import QubitReadoutError, ReadoutErrorModel
from repro.sim import PMF


class TestQubitReadoutError:
    def test_confusion_matrix_columns_stochastic(self):
        err = QubitReadoutError(0.03, 0.07)
        m = err.confusion_matrix()
        assert np.allclose(m.sum(axis=0), [1.0, 1.0])
        assert m[1, 0] == 0.03  # P(read 1 | true 0)
        assert m[0, 1] == 0.07  # P(read 0 | true 1)

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            QubitReadoutError(-0.1, 0.0)
        with pytest.raises(ValueError):
            QubitReadoutError(0.0, 1.1)

    def test_scaled_caps_at_half(self):
        err = QubitReadoutError(0.4, 0.4).scaled(10)
        assert err.p01 == 0.5 and err.p10 == 0.5

    def test_mean_error(self):
        assert QubitReadoutError(0.02, 0.04).mean_error == pytest.approx(0.03)


class TestReadoutErrorModel:
    def make(self, crosstalk=0.1, scale=1.0):
        return ReadoutErrorModel(
            [
                QubitReadoutError(0.01, 0.02),
                QubitReadoutError(0.05, 0.08),
                QubitReadoutError(0.002, 0.003),
            ],
            crosstalk_strength=crosstalk,
            scale=scale,
        )

    def test_crosstalk_grows_with_width(self):
        model = self.make()
        assert model.crosstalk_factor(1) == 1.0
        assert model.crosstalk_factor(3) == pytest.approx(1.2)

    def test_effective_error_combines_scale_and_crosstalk(self):
        model = self.make(crosstalk=0.5, scale=2.0)
        err = model.effective_error(0, n_measured=2)
        # 0.01 * 2.0 (scale) * 1.5 (crosstalk over 2 qubits) = 0.03
        assert err.p01 == pytest.approx(0.03)

    def test_best_qubits_sorted_by_mean_error(self):
        model = self.make()
        assert model.best_qubits(1) == [2]
        assert model.best_qubits(3) == [2, 0, 1]

    def test_best_qubits_bounds(self):
        model = self.make()
        with pytest.raises(ValueError):
            model.best_qubits(0)
        with pytest.raises(ValueError):
            model.best_qubits(4)

    def test_with_scale_copies(self):
        model = self.make()
        scaled = model.with_scale(3.0)
        assert scaled.scale == 3.0
        assert model.scale == 1.0

    def test_apply_single_qubit_flip_rates(self):
        model = ReadoutErrorModel(
            [QubitReadoutError(0.1, 0.3)], crosstalk_strength=0.0
        )
        ideal = PMF([1.0, 0.0], qubits=(0,))
        noisy = model.apply(ideal, {0: 0})
        assert np.allclose(noisy.probs, [0.9, 0.1])
        ideal1 = PMF([0.0, 1.0], qubits=(0,))
        noisy1 = model.apply(ideal1, {0: 0})
        assert np.allclose(noisy1.probs, [0.3, 0.7])

    def test_apply_uses_physical_mapping(self):
        model = self.make(crosstalk=0.0)
        ideal = PMF([1.0, 0.0], qubits=(0,))
        # Map logical 0 onto the noisiest physical qubit (1).
        noisy = model.apply(ideal, {0: 1})
        assert np.isclose(noisy.probs[1], 0.05)

    def test_apply_missing_mapping_raises(self):
        model = self.make()
        with pytest.raises(ValueError):
            model.apply(PMF([1.0, 0.0], qubits=(0,)), {})

    def test_apply_preserves_normalization(self):
        model = self.make()
        pmf = PMF([0.1, 0.2, 0.3, 0.4], qubits=(0, 1))
        noisy = model.apply(pmf, {0: 0, 1: 1})
        assert np.isclose(noisy.probs.sum(), 1.0)

    def test_zero_scale_is_noiseless(self):
        model = self.make(scale=0.0)
        pmf = PMF([0.1, 0.9], qubits=(0,))
        assert np.allclose(model.apply(pmf, {0: 1}).probs, pmf.probs)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReadoutErrorModel([], 0.1)
        with pytest.raises(ValueError):
            ReadoutErrorModel([QubitReadoutError(0, 0)], -0.1)
