"""Unit tests for the noisy execution backend."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.noise import SimulatorBackend, ideal_device
from repro.sim import run_statevector


def bell() -> Circuit:
    qc = Circuit(2)
    qc.h(0)
    qc.cx(0, 1)
    qc.measure_all()
    return qc


class TestIdealExecution:
    def test_bell_counts(self, ideal_backend):
        counts = ideal_backend.run(bell(), shots=4000)
        assert set(counts) <= {"00", "11"}
        assert counts.shots == 4000

    def test_exact_pmf_matches_theory(self, ideal_backend):
        pmf = ideal_backend.exact_pmf(bell())
        assert np.allclose(pmf.probs, [0.5, 0, 0, 0.5])

    def test_no_measured_qubits_rejected(self, ideal_backend):
        qc = Circuit(1)
        qc.h(0)
        with pytest.raises(ValueError):
            ideal_backend.exact_pmf(qc)

    def test_partial_measurement_marginalizes(self, ideal_backend):
        qc = Circuit(2)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure(1)
        pmf = ideal_backend.exact_pmf(qc)
        assert pmf.qubits == (1,)
        assert np.allclose(pmf.probs, [0.5, 0.5])


class TestAccounting:
    def test_counters_accumulate(self, ideal_backend):
        ideal_backend.run(bell(), shots=10)
        ideal_backend.run(bell(), shots=20)
        assert ideal_backend.circuits_run == 2
        assert ideal_backend.shots_run == 30

    def test_reset(self, ideal_backend):
        ideal_backend.run(bell(), shots=10)
        ideal_backend.reset_counters()
        assert ideal_backend.circuits_run == 0

    def test_prepare_state_not_charged(self, ideal_backend):
        qc = Circuit(2)
        qc.h(0)
        ideal_backend.prepare_state(qc)
        assert ideal_backend.circuits_run == 0

    def test_run_from_state_charged(self, ideal_backend):
        qc = Circuit(2)
        qc.h(0)
        state = ideal_backend.prepare_state(qc)
        ideal_backend.run_from_state(state, None, [0], shots=5)
        assert ideal_backend.circuits_run == 1
        assert ideal_backend.shots_run == 5


class TestNoiseApplication:
    def test_readout_error_biases_counts(self, tiny_device):
        backend = SimulatorBackend(tiny_device, seed=3)
        qc = Circuit(4)
        qc.measure(1)  # worst qubit, state |0>
        pmf = backend.exact_pmf(qc)
        assert pmf.probs[1] == pytest.approx(0.08)

    def test_map_to_best_uses_best_qubit(self, tiny_device):
        backend = SimulatorBackend(tiny_device, seed=3)
        qc = Circuit(4)
        qc.measure(1)
        pmf = backend.exact_pmf(qc, map_to_best=True)
        # Best physical qubit is 2 with p01 = 0.002.
        assert pmf.probs[1] == pytest.approx(0.002)

    def test_readout_kill_switch(self, tiny_device):
        backend = SimulatorBackend(tiny_device, seed=3, readout_enabled=False)
        qc = Circuit(4)
        qc.measure(1)
        assert backend.exact_pmf(qc).probs[0] == pytest.approx(1.0)

    def test_crosstalk_widens_error_with_more_measurements(self, tiny_device):
        backend = SimulatorBackend(tiny_device, seed=3)
        solo = Circuit(4)
        solo.measure(0)
        wide = Circuit(4)
        wide.measure([0, 1, 2, 3])
        p_solo = backend.exact_pmf(solo).probs[1]
        p_wide = backend.exact_pmf(wide).marginal([0]).probs[1]
        assert p_wide > p_solo

    def test_mapping_out_of_device_range(self, tiny_device):
        backend = SimulatorBackend(tiny_device, seed=3)
        with pytest.raises(ValueError):
            backend.physical_mapping([7], map_to_best=False)

    def test_run_from_state_matches_run(self, tiny_device):
        """The cached-state fast path is physically identical to run()."""
        backend = SimulatorBackend(tiny_device, seed=3)
        prep = Circuit(4)
        prep.h(0)
        prep.cx(0, 1)
        suffix = Circuit(4)
        suffix.h(1)
        full = prep.compose(suffix)
        full.measure([0, 1])
        pmf_full = backend.exact_pmf(full)
        state = backend.prepare_state(prep)
        pmf_cached = backend._pmf_from_state(
            state, suffix, [0, 1], False, (3, 1)
        )
        assert np.allclose(pmf_full.probs, pmf_cached.probs)

    def test_gate_noise_contracts_distribution(self):
        from repro.noise import ibmq_mumbai_like

        backend = SimulatorBackend(
            ibmq_mumbai_like(), seed=3, readout_enabled=False
        )
        qc = Circuit(2)
        for _ in range(30):
            qc.cx(0, 1)
        qc.measure_all()
        pmf = backend.exact_pmf(qc)
        # Ideal outcome is |00> with certainty; depolarizing spreads mass.
        assert pmf.probs[0] < 1.0
        assert pmf.probs[3] > 0.0

    def test_default_device_is_ideal(self):
        backend = SimulatorBackend(seed=1)
        assert backend.device.name == ideal_device().name

    def test_seed_reproducibility(self, tiny_device):
        a = SimulatorBackend(tiny_device, seed=42).run(bell(), 100)
        b = SimulatorBackend(tiny_device, seed=42).run(bell(), 100)
        assert a.data == b.data
