"""Unit tests for device readout characterization."""

import pytest

from repro.noise import SimulatorBackend, characterize_readout


class TestCharacterizeReadout:
    def test_estimates_match_model(self, tiny_device):
        backend = SimulatorBackend(tiny_device, seed=0)
        report = characterize_readout(backend, [0, 1, 2, 3], shots=40_000)
        for est in report.qubits:
            model = tiny_device.readout.qubit_errors[est.qubit]
            assert est.p01 == pytest.approx(model.p01, abs=0.01)
            assert est.p10 == pytest.approx(model.p10, abs=0.01)

    def test_detects_crosstalk_inflation(self, tiny_device):
        """Simultaneous measurement is measurably worse than isolated."""
        backend = SimulatorBackend(tiny_device, seed=1)
        report = characterize_readout(backend, [0, 1, 2, 3], shots=40_000)
        # tiny_device has crosstalk_strength=0.1 over 4 qubits: 1.3x.
        assert report.crosstalk_inflation == pytest.approx(1.3, abs=0.15)

    def test_best_qubits_ranking(self, tiny_device):
        backend = SimulatorBackend(tiny_device, seed=2)
        report = characterize_readout(backend, [0, 1, 2, 3], shots=40_000)
        # Model ordering: qubit 2 best, qubit 1 worst.
        assert report.best_qubits(1) == [2]
        assert report.best_qubits(4)[-1] == 1

    def test_best_qubits_validation(self, tiny_device):
        backend = SimulatorBackend(tiny_device, seed=2)
        report = characterize_readout(backend, [0, 1], shots=1000)
        with pytest.raises(ValueError):
            report.best_qubits(0)

    def test_circuit_charges(self, tiny_device):
        backend = SimulatorBackend(tiny_device, seed=3)
        characterize_readout(backend, [0, 1, 2], shots=100)
        # 2 per qubit + 2 simultaneous.
        assert backend.circuits_run == 2 * 3 + 2

    def test_ideal_device_reports_zero_error(self):
        backend = SimulatorBackend(seed=4)
        report = characterize_readout(backend, [0, 1], shots=2000)
        assert report.mean_error() == 0.0
        assert report.crosstalk_inflation == 1.0

    def test_empty_qubits_rejected(self, tiny_device):
        backend = SimulatorBackend(tiny_device, seed=5)
        with pytest.raises(ValueError):
            characterize_readout(backend, [], shots=100)
