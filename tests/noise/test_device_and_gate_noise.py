"""Unit tests for device presets and the depolarizing gate-noise channel."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.noise import (
    DEVICE_PRESETS,
    DepolarizingGateNoise,
    ibm_jakarta_like,
    ibm_lagos_like,
    ibmq_mumbai_like,
    ideal_device,
)
from repro.sim import PMF


class TestDepolarizingGateNoise:
    def test_weight_grows_with_gates(self):
        noise = DepolarizingGateNoise(error_1q=0.001, error_2q=0.01)
        small = Circuit(2)
        small.h(0)
        big = Circuit(2)
        for _ in range(10):
            big.cx(0, 1)
        assert noise.depolarizing_weight(big) > noise.depolarizing_weight(small)

    def test_zero_error_identity(self):
        noise = DepolarizingGateNoise(error_1q=0.0, error_2q=0.0)
        qc = Circuit(2)
        qc.h(0)
        qc.cx(0, 1)
        pmf = PMF([0.5, 0, 0, 0.5])
        assert noise.apply(pmf, qc) == pmf

    def test_apply_mixes_toward_uniform(self):
        noise = DepolarizingGateNoise(error_1q=0.0, error_2q=0.5)
        qc = Circuit(1)  # width irrelevant; use 2q count via cx on wider
        qc2 = Circuit(2)
        qc2.cx(0, 1)
        pmf = PMF([1.0, 0.0, 0.0, 0.0])
        noisy = noise.apply(pmf, qc2)
        assert np.allclose(noisy.probs, [0.625, 0.125, 0.125, 0.125])

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            DepolarizingGateNoise(error_1q=-0.1)
        with pytest.raises(ValueError):
            DepolarizingGateNoise(error_2q=1.5)

    def test_with_scale(self):
        noise = DepolarizingGateNoise(error_1q=0.01, error_2q=0.0)
        qc = Circuit(1)
        qc.h(0)
        assert noise.with_scale(2.0).depolarizing_weight(qc) == pytest.approx(
            0.02
        )


class TestDevicePresets:
    @pytest.mark.parametrize("name", sorted(DEVICE_PRESETS))
    def test_presets_construct(self, name):
        device = DEVICE_PRESETS[name]()
        assert device.n_qubits in (7, 27)
        assert device.readout.n_qubits == device.n_qubits

    def test_presets_deterministic(self):
        a = ibmq_mumbai_like()
        b = ibmq_mumbai_like()
        for ea, eb in zip(a.readout.qubit_errors, b.readout.qubit_errors):
            assert ea == eb

    def test_presets_differ_across_devices(self):
        lagos = ibm_lagos_like()
        jakarta = ibm_jakarta_like()
        assert any(
            ea != eb
            for ea, eb in zip(
                lagos.readout.qubit_errors, jakarta.readout.qubit_errors
            )
        )

    def test_error_rates_in_published_range(self):
        device = ibmq_mumbai_like()
        means = [e.mean_error for e in device.readout.qubit_errors]
        assert 0.005 < float(np.mean(means)) < 0.10
        # p10 should exceed p01 (relaxation asymmetry).
        assert all(
            e.p10 >= e.p01 for e in device.readout.qubit_errors
        )

    def test_noise_scale_multiplies(self):
        base = ibmq_mumbai_like()
        scaled = base.with_noise_scale(3.0)
        assert scaled.readout.scale == pytest.approx(3.0)
        assert scaled.gate_noise.scale == pytest.approx(3.0)
        assert "x3" in scaled.name

    def test_ideal_device_noiseless(self):
        device = ideal_device(5)
        assert all(
            e.p01 == 0.0 and e.p10 == 0.0
            for e in device.readout.qubit_errors
        )
        assert device.gate_noise.error_2q == 0.0


class TestDeviceTopology:
    """Coupling-map wiring added with the layout substrate."""

    def test_mumbai_is_heavy_hex(self):
        device = ibmq_mumbai_like()
        coupling = device.coupling_map
        assert coupling.n_qubits == 27
        assert coupling.is_connected()
        assert all(len(coupling.neighbors(q)) <= 3 for q in range(27))

    def test_lagos_and_jakarta_share_the_h_shape(self):
        from repro.noise import ibm_lagos_like, ibm_jakarta_like

        for device in (ibm_lagos_like(), ibm_jakarta_like()):
            coupling = device.coupling_map
            assert coupling.n_qubits == 7
            assert coupling.n_edges == 6

    def test_ideal_device_fully_connected(self):
        device = ideal_device(4)
        assert device.coupling_map.n_edges == 6

    def test_noise_scale_preserves_topology(self):
        scaled = ibmq_mumbai_like().with_noise_scale(2.0)
        assert scaled.topology == "heavy_hex_27"
        assert scaled.coupling_map.n_qubits == 27

    def test_unknown_topology_rejected(self):
        device = ideal_device(4)
        device.topology = "moebius_strip"
        with pytest.raises(ValueError, match="unknown topology"):
            device.coupling_map

    def test_width_mismatched_topology_rejected(self):
        device = ideal_device(5)
        device.topology = "h_shape_7"
        with pytest.raises(ValueError, match="qubits"):
            device.coupling_map
