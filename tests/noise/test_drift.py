"""Unit tests for drift schedules and the drifting device model."""

import numpy as np
import pytest

from repro.noise import (
    SCHEDULE_KINDS,
    ConstantDrift,
    DriftingDeviceModel,
    DriftSchedule,
    LinearDrift,
    RandomWalkDrift,
    SineDrift,
    StepDrift,
    ibm_lagos_like,
    make_schedule,
    schedule_from_dict,
)


class TestSchedules:
    def test_registry_covers_every_kind(self):
        assert sorted(SCHEDULE_KINDS) == [
            "constant", "linear", "random_walk", "sine", "step",
        ]
        for kind, cls in SCHEDULE_KINDS.items():
            assert cls.kind == kind
            assert issubclass(cls, DriftSchedule)

    def test_epoch_quantization(self):
        schedule = StepDrift(period=24, magnitude=1.0, at=2)
        assert schedule.epoch(0) == 0
        assert schedule.epoch(23) == 0
        assert schedule.epoch(24) == 1
        assert schedule.epoch(100) == 4
        with pytest.raises(ValueError):
            schedule.epoch(-1)

    def test_step_shape(self):
        schedule = StepDrift(period=8, magnitude=0.5, at=2)
        assert schedule.gate_factor(0) == 1.0
        assert schedule.gate_factor(1) == 1.0
        assert schedule.gate_factor(2) == 1.5
        assert schedule.gate_factor(99) == 1.5

    def test_linear_ramp_saturates(self):
        schedule = LinearDrift(period=8, magnitude=2.0, ramp=4)
        assert schedule.gate_factor(0) == 1.0
        assert schedule.gate_factor(2) == 2.0
        assert schedule.gate_factor(4) == 3.0
        assert schedule.gate_factor(40) == 3.0

    def test_sine_oscillates_and_clamps(self):
        schedule = SineDrift(period=8, magnitude=1.0, wavelength=4)
        assert schedule.gate_factor(0) == 1.0
        assert schedule.gate_factor(1) == pytest.approx(2.0)
        assert schedule.gate_factor(3) == pytest.approx(0.0, abs=1e-12)
        factors = schedule.readout_factors(1, 3)
        assert factors.shape == (3,)
        assert np.all(factors >= 0.0)

    def test_random_walk_is_deterministic_per_epoch(self):
        schedule = RandomWalkDrift(period=8, step_std=0.3, seed=9)
        a = schedule.readout_factors(5, 4)
        b = schedule.readout_factors(5, 4)
        np.testing.assert_array_equal(a, b)
        assert np.all(a >= 0.0)
        # Epoch 0 is always exactly calibrated.
        np.testing.assert_array_equal(
            schedule.readout_factors(0, 4), np.ones(4)
        )
        assert schedule.gate_factor(0) == 1.0
        # Different seeds give different walks.
        other = RandomWalkDrift(period=8, step_std=0.3, seed=10)
        assert not np.array_equal(a, other.readout_factors(5, 4))

    def test_random_walk_gate_walker_independent_of_qubits(self):
        schedule = RandomWalkDrift(period=8, step_std=0.3, seed=9)
        # The gate factor uses a dedicated walker, not qubit 0's.
        assert schedule.gate_factor(5) != schedule.readout_factors(5, 1)[0]

    def test_validation_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            ConstantDrift(period=0)
        with pytest.raises(ValueError):
            StepDrift(magnitude=-1.0)
        with pytest.raises(ValueError):
            StepDrift(at=-1)
        with pytest.raises(ValueError):
            LinearDrift(ramp=0)
        with pytest.raises(ValueError):
            SineDrift(wavelength=0)
        with pytest.raises(ValueError):
            RandomWalkDrift(step_std=-0.1)
        with pytest.raises(ValueError):
            RandomWalkDrift(step_std=float("nan"))

    def test_dict_round_trip(self):
        for schedule in (
            ConstantDrift(period=4),
            StepDrift(period=8, magnitude=1.5, at=3),
            LinearDrift(period=8, magnitude=0.5, ramp=2),
            SineDrift(period=8, magnitude=0.4, wavelength=6),
            RandomWalkDrift(period=8, step_std=0.2, seed=17),
        ):
            data = schedule.to_dict()
            assert data["kind"] == schedule.kind
            assert schedule_from_dict(data) == schedule

    def test_from_dict_rejects_unknown_kind_and_fields(self):
        with pytest.raises(ValueError, match="unknown drift schedule"):
            schedule_from_dict({"kind": "quadratic"})
        with pytest.raises(ValueError, match="unknown fields"):
            schedule_from_dict({"kind": "step", "magnitdue": 1.0})

    def test_make_schedule_maps_cli_knobs(self):
        assert make_schedule("constant", period=4) == ConstantDrift(period=4)
        assert make_schedule("step", magnitude=2.0, period=6) == StepDrift(
            period=6, magnitude=2.0
        )
        assert make_schedule(
            "random_walk", magnitude=0.3, seed=5
        ) == RandomWalkDrift(period=32, step_std=0.3, seed=5)
        with pytest.raises(ValueError):
            make_schedule("nope")


class TestDriftingDeviceModel:
    def test_clock_and_epoch(self):
        device = DriftingDeviceModel(
            ibm_lagos_like(), StepDrift(period=10, magnitude=1.0, at=1)
        )
        assert device.clock == 0 and device.epoch == 0
        device.advance_clock(9)
        assert device.epoch == 0
        device.advance_clock(1)
        assert device.epoch == 1
        device.advance_clock(25)
        assert device.epoch == 3
        device.reset_clock()
        assert device.clock == 0 and device.epoch == 0
        with pytest.raises(ValueError):
            device.advance_clock(-1)

    def test_rates_scale_with_the_schedule(self):
        base = ibm_lagos_like(scale=2.0)
        device = DriftingDeviceModel(
            base, StepDrift(period=10, magnitude=1.0, at=1)
        )
        device.advance_clock(10)
        for before, after in zip(
            base.readout.qubit_errors, device.readout.qubit_errors
        ):
            assert after.p01 == pytest.approx(min(0.5, before.p01 * 2.0))
            assert after.p10 == pytest.approx(min(0.5, before.p10 * 2.0))
        assert device.gate_noise.error_1q == pytest.approx(
            base.gate_noise.error_1q * 2.0
        )

    def test_flip_rates_cap_at_one_half(self):
        device = DriftingDeviceModel(
            ibm_lagos_like(scale=2.0),
            StepDrift(period=1, magnitude=1000.0, at=0),
        )
        for err in device.readout.qubit_errors:
            assert err.p01 <= 0.5 and err.p10 <= 0.5
        assert device.gate_noise.error_1q <= 1.0
        assert device.gate_noise.error_2q <= 1.0

    def test_name_and_repr_tag_the_schedule(self):
        device = DriftingDeviceModel(
            ibm_lagos_like(), SineDrift(period=4)
        )
        assert device.name == "ibm_lagos_like+drift:sine"
        assert "sine" in repr(device)
        assert device.n_qubits == 7

    def test_with_noise_scale_preserves_schedule_and_clock(self):
        device = DriftingDeviceModel(
            ibm_lagos_like(), StepDrift(period=4, magnitude=1.0, at=1)
        )
        device.advance_clock(7)
        scaled = device.with_noise_scale(2.0)
        assert isinstance(scaled, DriftingDeviceModel)
        assert scaled.schedule == device.schedule
        assert scaled.clock == 7
        assert scaled.base.name == "ibm_lagos_like(x2)"

    def test_stacking_drift_raises(self):
        device = DriftingDeviceModel(ibm_lagos_like(), ConstantDrift())
        with pytest.raises(TypeError):
            DriftingDeviceModel(device, ConstantDrift())

    def test_state_fingerprint_tracks_epoch_not_rates(self):
        # Epochs 0 and 1 have identical rates (step at 2) but must
        # still be distinct calibration states in cache keys.
        device = DriftingDeviceModel(
            ibm_lagos_like(), StepDrift(period=4, magnitude=1.0, at=2)
        )
        fp0 = device.drift_state_fingerprint()
        device.advance_clock(4)
        fp1 = device.drift_state_fingerprint()
        assert fp0 != fp1
        device.reset_clock()
        assert device.drift_state_fingerprint() == fp0
