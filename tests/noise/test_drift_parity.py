"""The zero-drift invariant: constant drift is byte-identical to static.

A :class:`~repro.noise.DriftingDeviceModel` under
:class:`~repro.noise.ConstantDrift` (or any schedule still at factor
1.0) must change *nothing*: same noise objects, same sampled counts,
same tuning energies and ledgers as the plain static device.  Mirrors
``tests/obs/test_parity.py`` — the drift layer only observes time, it
never perturbs a calibrated device.
"""

import numpy as np

from repro.circuits import Circuit
from repro.noise import (
    ConstantDrift,
    DriftingDeviceModel,
    LinearDrift,
    SimulatorBackend,
    StepDrift,
    ibmq_mumbai_like,
)
from repro.sweeps.runner import execute_tuning
from repro.workloads import make_workload


def tuning_outcome(device):
    """One small deterministic tuning run's complete numeric output."""
    workload = make_workload("H2-4")
    backend = SimulatorBackend(device, seed=5)
    run = execute_tuning(
        "varsaw", workload, max_iterations=3, shots=64, seed=5,
        backend=backend,
    )
    return {
        "energy": run.energy,
        "history": list(run.result.energy_history),
        "circuits": run.result.circuits_executed,
        "shots": run.result.shots_executed,
        "ledger": (backend.circuits_run, backend.shots_run),
    }


def bell(n_qubits=4):
    circuit = Circuit(n_qubits)
    circuit.h(0)
    for q in range(1, n_qubits):
        circuit.cx(0, q)
    circuit.measure_all()
    return circuit


class TestZeroDriftParity:
    def test_constant_drift_reuses_base_noise_objects(self):
        base = ibmq_mumbai_like(scale=2.0)
        drifting = DriftingDeviceModel(base, ConstantDrift(period=4))
        drifting.advance_clock(1000)
        assert drifting.readout is base.readout
        assert drifting.gate_noise is base.gate_noise

    def test_pre_step_epochs_reuse_base_noise_objects(self):
        # Any schedule whose factors are still exactly 1.0 must also
        # leave the base objects untouched (vectorized-finisher path).
        base = ibmq_mumbai_like(scale=2.0)
        drifting = DriftingDeviceModel(
            base, StepDrift(period=64, magnitude=2.0, at=3)
        )
        drifting.advance_clock(2 * 64)
        assert drifting.readout is base.readout
        assert drifting.gate_noise is base.gate_noise
        drifting.advance_clock(64)
        assert drifting.readout is not base.readout

    def test_sampled_counts_bit_identical(self):
        static = SimulatorBackend(ibmq_mumbai_like(scale=2.0), seed=11)
        drifted = SimulatorBackend(
            DriftingDeviceModel(
                ibmq_mumbai_like(scale=2.0), ConstantDrift(period=2)
            ),
            seed=11,
        )
        circuit = bell()
        for _ in range(6):
            a = static.run(circuit, shots=256)
            b = drifted.run(circuit, shots=256)
            assert a.data == b.data

    def test_exact_pmfs_bit_identical(self):
        static = SimulatorBackend(ibmq_mumbai_like(scale=2.0), seed=3)
        drifted = SimulatorBackend(
            DriftingDeviceModel(
                ibmq_mumbai_like(scale=2.0), ConstantDrift(period=2)
            ),
            seed=3,
        )
        circuit = bell()
        for _ in range(4):
            a = static.exact_pmf(circuit)
            b = drifted.exact_pmf(circuit)
            np.testing.assert_array_equal(a.probs, b.probs)
            # Keep the clocks moving so parity holds across epochs.
            drifted.run(circuit, shots=16)
            static.run(circuit, shots=16)

    def test_tuning_outcome_identical(self):
        baseline = tuning_outcome(ibmq_mumbai_like(scale=2.0))
        drifted = tuning_outcome(
            DriftingDeviceModel(
                ibmq_mumbai_like(scale=2.0), ConstantDrift(period=8)
            )
        )
        assert drifted == baseline

    def test_drift_replay_is_deterministic(self):
        # Same schedule + same execution history -> identical outcome,
        # even when the noise actually moves (the non-trivial replay).
        def run():
            return tuning_outcome(
                DriftingDeviceModel(
                    ibmq_mumbai_like(scale=2.0),
                    LinearDrift(period=16, magnitude=1.5, ramp=4),
                )
            )

        first = run()
        second = run()
        assert first == second
        # And the drifting run genuinely differs from the static one.
        assert first != tuning_outcome(ibmq_mumbai_like(scale=2.0))
