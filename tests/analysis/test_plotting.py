"""Unit tests for ASCII plotting."""

import pytest

from repro.analysis import ascii_plot, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_series_monotone_glyphs(self):
        glyphs = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert list(glyphs) == sorted(glyphs)

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestAsciiPlot:
    def test_basic_structure(self):
        text = ascii_plot({"a": [1, 2, 3], "b": [3, 2, 1]}, width=20, height=6)
        lines = text.splitlines()
        assert len(lines) == 6 + 2  # grid + axis + legend
        assert "a" in lines[-1] and "b" in lines[-1]

    def test_extremes_labeled(self):
        text = ascii_plot({"s": [0.0, 10.0]}, width=10, height=4)
        assert "10" in text
        assert "0" in text

    def test_markers_distinct(self):
        text = ascii_plot({"a": [1, 2], "b": [2, 1]}, width=10, height=4)
        assert "*" in text and "+" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"a": [1.0]}, width=2, height=2)
        with pytest.raises(ValueError):
            ascii_plot({"a": []})

    def test_single_point_series(self):
        text = ascii_plot({"a": [5.0], "b": [1.0, 2.0]}, width=10, height=4)
        assert "*" in text

    def test_flat_series_does_not_crash(self):
        text = ascii_plot({"a": [2.0, 2.0, 2.0]}, width=10, height=4)
        assert "*" in text
