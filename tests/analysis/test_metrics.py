"""Unit tests for evaluation metrics."""

import pytest

from repro.analysis import (
    arithmetic_mean,
    cost_reduction_ratio,
    energy_error,
    geometric_mean,
    percent_inaccuracy_mitigated,
)


class TestPercentInaccuracyMitigated:
    def test_full_recovery_is_100(self):
        assert percent_inaccuracy_mitigated(-10.0, -7.0, -10.0) == 100.0

    def test_no_improvement_is_0(self):
        assert percent_inaccuracy_mitigated(-10.0, -7.0, -7.0) == 0.0

    def test_half_recovery(self):
        assert percent_inaccuracy_mitigated(-10.0, -8.0, -9.0) == pytest.approx(50.0)

    def test_regression_goes_negative(self):
        """Table 4 reports one negative entry; the metric allows it."""
        assert percent_inaccuracy_mitigated(-10.0, -9.0, -8.0) < 0.0

    def test_zero_reference_error(self):
        assert percent_inaccuracy_mitigated(-10.0, -10.0, -9.0) == 0.0

    def test_symmetric_in_sign_of_error(self):
        # Overshooting below ideal counts as error too.
        assert percent_inaccuracy_mitigated(-10.0, -8.0, -12.0) == 0.0


class TestOtherMetrics:
    def test_energy_error(self):
        assert energy_error(-9.0, -10.0) == 1.0

    def test_cost_reduction(self):
        assert cost_reduction_ratio(100, 4) == 25.0

    def test_cost_reduction_zero_rejected(self):
        with pytest.raises(ValueError):
            cost_reduction_ratio(10, 0)

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_geometric_mean_validation(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1, 2, 3]) == 2.0
        with pytest.raises(ValueError):
            arithmetic_mean([])


class TestScale:
    def test_scaled_quick_default(self, monkeypatch):
        from repro.analysis import is_full_scale, scaled

        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert not is_full_scale()
        assert scaled(10, 1000) == 10

    def test_scaled_full(self, monkeypatch):
        from repro.analysis import is_full_scale, scaled

        monkeypatch.setenv("REPRO_SCALE", "full")
        assert is_full_scale()
        assert scaled(10, 1000) == 1000
