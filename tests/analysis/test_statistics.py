"""Unit tests for trial statistics."""

import numpy as np
import pytest

from repro.analysis import TrialSummary, bootstrap_ci, summarize_trials


class TestBootstrapCI:
    def test_interval_contains_mean_for_tight_data(self):
        low, high = bootstrap_ci([1.0, 1.01, 0.99, 1.0, 1.0])
        assert low <= 1.0 <= high
        assert high - low < 0.05

    def test_single_value_degenerates_to_point(self):
        assert bootstrap_ci([2.5]) == (2.5, 2.5)

    def test_deterministic_given_seed(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert bootstrap_ci(data, seed=7) == bootstrap_ci(data, seed=7)

    def test_wider_confidence_gives_wider_interval(self):
        data = list(np.random.default_rng(3).normal(0, 1, 30))
        low90, high90 = bootstrap_ci(data, confidence=0.90)
        low99, high99 = bootstrap_ci(data, confidence=0.99)
        assert high99 - low99 >= high90 - low90

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no trial"):
            bootstrap_ci([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_ci([1.0, 2.0], confidence=1.5)

    def test_coverage_on_normal_data(self):
        """~95% of CIs from normal samples should contain the true mean."""
        rng = np.random.default_rng(11)
        hits = 0
        trials = 120
        for i in range(trials):
            sample = rng.normal(5.0, 1.0, size=20)
            low, high = bootstrap_ci(sample, seed=i)
            hits += low <= 5.0 <= high
        assert hits / trials > 0.85


class TestSummarizeTrials:
    def test_fields(self):
        summary = summarize_trials([1.0, 2.0, 3.0])
        assert summary.n_trials == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_single_trial_zero_std(self):
        summary = summarize_trials([4.2])
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == 4.2

    def test_overlap_detection(self):
        a = summarize_trials([1.0, 1.1, 0.9, 1.05])
        b = summarize_trials([1.05, 1.15, 0.95, 1.1])
        c = summarize_trials([9.0, 9.1, 8.9, 9.05])
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)
        assert not c.overlaps(a)

    def test_str_rendering(self):
        text = str(summarize_trials([1.0, 1.5]))
        assert "n=2" in text
        assert "±" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_trials([])
