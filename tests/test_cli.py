"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "H2-4"])
        assert args.scheme == "varsaw"
        assert args.iterations == 100

    def test_invalid_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "H2-4", "--scheme", "magic"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "CH4-6" in out
        assert "varsaw" in out
        assert "ibmq_mumbai_like" in out
        # The registry's newly exposed kinds are listed too.
        assert "selective" in out
        assert "calibration_gated" in out

    def test_kinds_lists_every_registered_kind(self, capsys):
        from repro.api import estimator_kinds

        assert main(["kinds"]) == 0
        out = capsys.readouterr().out
        for kind in estimator_kinds():
            assert kind in out
        # Typed knobs and defaults are shown.
        assert "mass_fraction" in out
        assert "error_threshold" in out
        assert "register_estimator" in out

    def test_run_new_scheme_with_knobs(self, capsys):
        code = main(
            ["run", "H2-4", "--scheme", "selective",
             "--mass-fraction", "0.85", "--global-mode", "always",
             "--iterations", "2", "--shots", "16"]
        )
        assert code == 0
        assert "selective: energy =" in capsys.readouterr().out

    def test_run_gc_scheme(self, capsys):
        code = main(
            ["run", "H2-4", "--scheme", "gc", "--iterations", "2",
             "--shots", "16"]
        )
        assert code == 0
        assert "gc: energy =" in capsys.readouterr().out

    def test_run_knob_for_wrong_scheme_fails_cleanly(self, capsys):
        code = main(
            ["run", "H2-4", "--scheme", "baseline",
             "--mass-fraction", "0.5", "--iterations", "2",
             "--shots", "16"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "mass_fraction" in err
        assert "baseline" in err

    def test_subsets(self, capsys):
        assert main(["subsets"]) == 0
        out = capsys.readouterr().out
        assert "H2-4" in out
        assert "Cr2-34" not in out  # excluded without --all
        assert "x" in out  # reduction column

    def test_run_small(self, capsys):
        code = main(
            ["run", "H2-4", "--scheme", "baseline", "--iterations", "3",
             "--shots", "32", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "energy =" in out
        assert "3 iterations" in out

    def test_run_varsaw_reports_global_fraction(self, capsys):
        code = main(
            ["run", "H2-4", "--scheme", "varsaw", "--iterations", "3",
             "--shots", "32"]
        )
        assert code == 0
        assert "global fraction" in capsys.readouterr().out

    def test_run_with_budget(self, capsys):
        code = main(
            ["run", "H2-4", "--scheme", "baseline", "--budget", "200",
             "--shots", "16"]
        )
        assert code == 0
        assert "circuits" in capsys.readouterr().out

    def test_run_unknown_workload(self, capsys):
        assert main(["run", "Xe-99"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_characterize(self, capsys):
        code = main(
            ["characterize", "--device", "ibm_lagos_like",
             "--qubits", "3", "--shots", "500"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "crosstalk inflation" in out
        assert "best qubits" in out

    def test_grouping(self, capsys):
        assert main(["grouping", "H2-4"]) == 0
        out = capsys.readouterr().out
        assert "QWC groups" in out
        assert "GC  groups" in out

    def test_grouping_unknown_workload(self, capsys):
        assert main(["grouping", "Xe-99"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_qaoa(self, capsys):
        code = main(
            ["qaoa", "--nodes", "4", "--iterations", "5",
             "--shots", "64"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "QAOA p=2" in out
        assert "varsaw" in out

    def test_qaoa_bad_problem_size(self, capsys):
        # 3-regular graphs need n*3 even.
        assert main(["qaoa", "--problem", "regular3", "--nodes", "5"]) == 2

    def test_route(self, capsys):
        assert main(["route", "--qubits", "4"]) == 0
        out = capsys.readouterr().out
        assert "linear" in out
        assert "SWAPs" in out

    def test_route_too_many_qubits(self, capsys):
        code = main(
            ["route", "--device", "ibm_lagos_like", "--qubits", "9"]
        )
        assert code == 2


class TestSweepCommand:
    SPEC = """{
        "name": "cli-grid",
        "base": {"workload": {"key": "H2-4"}, "shots": 16,
                 "max_iterations": 2},
        "axes": {"scheme": ["baseline"], "seed": [0, 1]},
        "report": {"rows": "point.seed", "cols": "point.scheme"}
    }"""

    def write_spec(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(self.SPEC)
        return path

    def test_sweep_then_resume_executes_nothing(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        out_path = tmp_path / "store.jsonl"
        assert main(["sweep", str(spec), "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "executed 2 points" in out
        assert "baseline" in out  # the report pivot printed

        code = main(
            ["sweep", str(spec), "--out", str(out_path), "--resume"]
        )
        assert code == 0
        assert "executed 0 points" in capsys.readouterr().out

    def test_existing_store_requires_resume_flag(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        out_path = tmp_path / "store.jsonl"
        out_path.write_text("")
        assert main(["sweep", str(spec), "--out", str(out_path)]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_missing_spec_file(self, tmp_path, capsys):
        code = main(["sweep", str(tmp_path / "nope.json")])
        assert code == 2
        assert "cannot load sweep spec" in capsys.readouterr().err

    def test_limit_drips_points(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        out_path = tmp_path / "store.jsonl"
        code = main(
            ["sweep", str(spec), "--out", str(out_path), "--limit", "1"]
        )
        assert code == 0
        assert "1 still pending" in capsys.readouterr().out


class TestReproduce:
    def test_list_entries(self, capsys):
        assert main(["reproduce", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out
        assert "table5" in out
        assert "ext_qaoa" in out

    def test_unknown_entry_rejected(self, tmp_path, capsys):
        code = main([
            "reproduce", "--only", "fig99",
            "--out", str(tmp_path / "s.jsonl"),
        ])
        assert code == 2
        assert "unknown catalog entries" in capsys.readouterr().err

    def test_reproduce_then_resume_executes_nothing(self, tmp_path, capsys):
        out_path = tmp_path / "repro.jsonl"
        assert main([
            "reproduce", "--only", "fig8,fig6_fig7",
            "--out", str(out_path), "--processes", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "executed 6 points" in out
        assert "Fig. 8: circuits per VQA iteration" in out

        assert main([
            "reproduce", "--only", "fig8,fig6_fig7",
            "--out", str(out_path), "--resume", "--no-tables",
        ]) == 0
        out = capsys.readouterr().out
        assert "executed 0 points, skipped 6" in out

    def test_limit_interrupts_and_resume_completes(self, tmp_path, capsys):
        out_path = tmp_path / "repro.jsonl"
        assert main([
            "reproduce", "--only", "fig6_fig7",
            "--out", str(out_path), "--limit", "2", "--no-tables",
        ]) == 0
        out = capsys.readouterr().out
        assert "incomplete grids: fig6_fig7" in out

        assert main([
            "reproduce", "--only", "fig6_fig7",
            "--out", str(out_path), "--resume", "--no-tables",
        ]) == 0
        out = capsys.readouterr().out
        assert "executed 3 points, skipped 2" in out

    def test_existing_store_requires_resume_flag(self, tmp_path, capsys):
        out_path = tmp_path / "repro.jsonl"
        out_path.write_text("")
        code = main([
            "reproduce", "--only", "fig8", "--out", str(out_path),
        ])
        assert code == 2
        assert "--resume" in capsys.readouterr().err


class TestServeCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.journal == "serve-journal"
        assert args.port == 8753
        assert args.budget_circuits is None

    def test_submit_requires_workload_or_job(self, capsys):
        assert main(["submit", "--tenant", "alice"]) == 2
        err = capsys.readouterr().err
        assert "--workload" in err

    def test_submit_rejects_invalid_job_before_round_trip(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "job.json"
        bad.write_text('{"workload": {"key": "H2-4"}, "shots": -1}')
        code = main([
            "submit", "--tenant", "alice", "--job", str(bad),
        ])
        assert code == 2
        assert "bad job" in capsys.readouterr().err

    def test_submit_device_flags_build_valid_job(self):
        from repro.cli import _submit_job_payload
        from repro.serve import JobSpec

        args = build_parser().parse_args([
            "submit", "--tenant", "alice", "--workload", "H2-4",
            "--device", "ideal", "--noise-scale", "2.0",
        ])
        payload = _submit_job_payload(args)
        # Preset factories take scale=, not noise_scale=; the payload
        # must materialize cleanly or execution would fail mid-batch.
        assert payload["device"] == {"preset": "ideal", "scale": 2.0}
        JobSpec.from_dict(payload)

    def test_jobs_requires_exactly_one_source(self, capsys):
        assert main(["jobs"]) == 2
        assert main([
            "jobs", "--url", "http://x", "--journal", "y",
        ]) == 2

    def test_jobs_offline_reads_journal_pair(self, tmp_path, capsys):
        from repro.serve import JobSpec, Service

        root = tmp_path / "journal"
        with Service(root, coalesce_window=0.0) as service:
            spec = JobSpec(workload={"key": "H2-4"}, shots=32)
            service.submit("alice", spec)
            service.submit("bob", spec)
            service.drain()

        assert main(["jobs", "--journal", str(root)]) == 0
        out = capsys.readouterr().out
        assert "alice" in out and "bob" in out
        assert "2 journaled requests, 0 pending" in out
        assert "(1 distinct results stored)" in out

    def test_jobs_missing_journal_directory(self, tmp_path, capsys):
        code = main(["jobs", "--journal", str(tmp_path / "nope")])
        assert code == 2
        assert "no journal" in capsys.readouterr().err
