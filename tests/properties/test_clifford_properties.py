"""Property-based tests for the Clifford substrate.

The tableau is the sign-critical piece of general-commutation
measurement, so its algebraic laws get hypothesis coverage: conjugation
must be a group homomorphism, preserve commutation structure, compose,
and invert.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.clifford import CliffordTableau, diagonalize_commuting
from repro.pauli import PauliString, phase_product

GATES_1Q = ("h", "s", "sdg", "x", "y", "z", "sx")
GATES_2Q = ("cx", "cz", "swap")


@st.composite
def clifford_circuits(draw, max_qubits=4, max_gates=15):
    n = draw(st.integers(min_value=1, max_value=max_qubits))
    qc = Circuit(n)
    n_gates = draw(st.integers(min_value=0, max_value=max_gates))
    for _ in range(n_gates):
        if n >= 2 and draw(st.booleans()):
            name = draw(st.sampled_from(GATES_2Q))
            a = draw(st.integers(min_value=0, max_value=n - 1))
            b = draw(
                st.integers(min_value=0, max_value=n - 2).map(
                    lambda v, a=a: v if v < a else v + 1
                )
            )
            getattr(qc, name)(a, b)
        else:
            name = draw(st.sampled_from(GATES_1Q))
            getattr(qc, name)(draw(st.integers(min_value=0, max_value=n - 1)))
    return qc


def pauli_for(draw, n):
    label = draw(st.text(alphabet="IXYZ", min_size=n, max_size=n))
    return PauliString(label)


@st.composite
def circuit_and_paulis(draw, k=2):
    qc = draw(clifford_circuits())
    paulis = [pauli_for(draw, qc.n_qubits) for _ in range(k)]
    return qc, paulis


class TestConjugationLaws:
    @given(circuit_and_paulis(k=1))
    @settings(max_examples=60)
    def test_weight_of_sign_is_plus_minus_one(self, case):
        qc, (pauli,) = case
        sign, image = CliffordTableau.from_circuit(qc).conjugate(pauli)
        assert sign in (1, -1)
        assert image.n_qubits == qc.n_qubits

    @given(circuit_and_paulis(k=2))
    @settings(max_examples=60)
    def test_conjugation_is_homomorphism(self, case):
        """U (PQ) U† == (U P U†)(U Q U†), phases included."""
        qc, (p, q) = case
        tab = CliffordTableau.from_circuit(qc)
        phase_pq, pq = phase_product(p, q)
        sp, ip = tab.conjugate(p)
        sq, iq = tab.conjugate(q)
        phase_img, img = phase_product(ip, iq)
        s_pq, i_pq = tab.conjugate(pq)
        assert i_pq.label == img.label
        # total phase of LHS: phase_pq * s_pq; of RHS: sp * sq * phase_img
        assert phase_pq * s_pq == sp * sq * phase_img

    @given(circuit_and_paulis(k=2))
    @settings(max_examples=60)
    def test_conjugation_preserves_commutation(self, case):
        qc, (p, q) = case
        tab = CliffordTableau.from_circuit(qc)
        _, ip = tab.conjugate(p)
        _, iq = tab.conjugate(q)
        assert p.commutes_with(q) == ip.commutes_with(iq)

    @given(circuit_and_paulis(k=1))
    @settings(max_examples=60)
    def test_conjugation_preserves_weight_of_identity(self, case):
        qc, (pauli,) = case
        tab = CliffordTableau.from_circuit(qc)
        identity = PauliString.identity(qc.n_qubits)
        sign, image = tab.conjugate(identity)
        assert sign == 1
        assert image == identity
        # and non-identities never map to identity (Cliffords are injective)
        if pauli != identity:
            _, img = tab.conjugate(pauli)
            assert img != identity


class TestGroupStructure:
    @given(clifford_circuits())
    @settings(max_examples=40)
    def test_inverse_roundtrip(self, qc):
        tab = CliffordTableau.from_circuit(qc)
        assert tab.then(tab.inverse()).is_identity()
        assert tab.inverse().then(tab).is_identity()

    @given(clifford_circuits())
    @settings(max_examples=40)
    def test_double_inverse_is_self(self, qc):
        tab = CliffordTableau.from_circuit(qc)
        assert tab.inverse().inverse() == tab


class TestDiagonalizationProperties:
    @given(clifford_circuits(max_qubits=4), st.data())
    @settings(max_examples=40, deadline=None)
    def test_scrambled_z_families_diagonalize(self, qc, data):
        """Conjugated Z-families always commute and always diagonalize."""
        n = qc.n_qubits
        tab = CliffordTableau.from_circuit(qc)
        k = data.draw(st.integers(min_value=1, max_value=3))
        family = []
        for _ in range(k):
            mask = data.draw(
                st.lists(
                    st.booleans(), min_size=n, max_size=n
                ).filter(any)
            )
            label = "".join("Z" if b else "I" for b in mask)
            _, image = tab.conjugate(PauliString(label))
            family.append(image)
        group = diagonalize_commuting(family, n)
        for sign, image in group.diagonals:
            assert sign in (1, -1)
            assert set(image.label) <= {"I", "Z"}

    @given(clifford_circuits(max_qubits=4), st.data())
    @settings(max_examples=30, deadline=None)
    def test_diagonal_images_preserve_products(self, qc, data):
        """Products of members map to products of diagonal images."""
        n = qc.n_qubits
        tab = CliffordTableau.from_circuit(qc)
        masks = [
            data.draw(
                st.lists(st.booleans(), min_size=n, max_size=n).filter(any)
            )
            for _ in range(2)
        ]
        family = []
        for mask in masks:
            label = "".join("Z" if b else "I" for b in mask)
            _, image = tab.conjugate(PauliString(label))
            family.append(image)
        group = diagonalize_commuting(family, n)
        (s0, d0), (s1, d1) = group.diagonals
        phase_in, prod_in = phase_product(family[0], family[1])
        phase_out, prod_out = phase_product(d0, d1)
        meas = CliffordTableau.from_circuit(group.circuit)
        s_prod, img_prod = meas.conjugate(prod_in)
        assert img_prod.label == prod_out.label
        assert phase_in * s_prod == s0 * s1 * phase_out
