"""Property-based tests for Bayesian reconstruction invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.mitigation import bayesian_reconstruct, subset_index_map
from repro.sim import PMF

N = 3


def global_pmfs():
    return arrays(
        np.float64,
        shape=2**N,
        elements=st.floats(0.001, 1.0, allow_nan=False),
    ).map(PMF)


@st.composite
def local_pmfs(draw):
    qubits = tuple(
        draw(
            st.lists(
                st.integers(0, N - 1), min_size=1, max_size=2, unique=True
            )
        )
    )
    probs = draw(
        arrays(
            np.float64,
            shape=2 ** len(qubits),
            elements=st.floats(0.001, 1.0, allow_nan=False),
        )
    )
    return PMF(probs, qubits)


class TestReconstructionInvariants:
    @given(global_pmfs(), st.lists(local_pmfs(), max_size=3))
    @settings(max_examples=80)
    def test_output_is_valid_pmf(self, g, locals_):
        out = bayesian_reconstruct(g, locals_)
        assert np.isclose(out.probs.sum(), 1.0)
        assert np.all(out.probs >= 0)
        assert out.qubits == g.qubits

    @given(global_pmfs(), local_pmfs())
    @settings(max_examples=80)
    def test_last_local_marginal_matched(self, g, local):
        """After updating with one local, the output marginal equals it."""
        out = bayesian_reconstruct(g, [local])
        assert np.allclose(
            out.marginal(local.qubits).probs, local.probs, atol=1e-9
        )

    @given(global_pmfs())
    def test_no_locals_identity(self, g):
        assert bayesian_reconstruct(g, []) == g

    @given(global_pmfs(), local_pmfs())
    @settings(max_examples=80)
    def test_update_with_own_marginal_is_identity(self, g, local):
        """Evidence equal to the current marginal changes nothing."""
        own = g.marginal(local.qubits)
        out = bayesian_reconstruct(g, [own])
        assert np.allclose(out.probs, g.probs, atol=1e-9)

    @given(global_pmfs(), local_pmfs())
    @settings(max_examples=80)
    def test_support_never_grows(self, g, local):
        """Zero-probability global outcomes stay zero (no invention)."""
        sparse = g.probs.copy()
        sparse[sparse < 0.3] = 0.0
        if sparse.sum() == 0:
            return
        g_sparse = PMF(sparse)
        out = bayesian_reconstruct(g_sparse, [local])
        assert np.all(out.probs[g_sparse.probs == 0] == 0)


class TestSubsetIndexProperties:
    @given(
        st.lists(st.integers(0, N - 1), min_size=1, max_size=N, unique=True)
    )
    def test_index_map_consistent_with_bit_extraction(self, qubits):
        qubits = tuple(qubits)
        index = subset_index_map(N, qubits)
        m = len(qubits)
        for x in range(2**N):
            bits = format(x, f"0{N}b")
            local = "".join(bits[q] for q in qubits)
            assert index[x] == int(local, 2), (x, qubits)

    @given(
        st.lists(st.integers(0, N - 1), min_size=1, max_size=N, unique=True)
    )
    def test_index_map_surjective(self, qubits):
        index = subset_index_map(N, tuple(qubits))
        assert set(index) == set(range(2 ** len(qubits)))
