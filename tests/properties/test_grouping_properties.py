"""Property-based tests for grouping and spatial-reduction invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import reduce_assignments, varsaw_subset_plan
from repro.mitigation import term_subsets
from repro.pauli import PauliString, cover_reduce, group_qwc


def pauli_sets(n_qubits=4, max_terms=12):
    label = st.text(alphabet="IXYZ", min_size=n_qubits, max_size=n_qubits)
    return st.lists(label, min_size=1, max_size=max_terms).map(
        lambda labels: [PauliString(l) for l in labels]
    )


class TestGroupQwcInvariants:
    @given(pauli_sets())
    @settings(max_examples=60)
    def test_partition_and_validity(self, paulis):
        groups = group_qwc(paulis, 4)
        non_identity = [p for p in set(paulis) if not p.is_identity()]
        members = [m for g in groups for m in g.members]
        # Duplicates in the input each land in some group exactly once
        # per unique occurrence processed; check coverage of uniques.
        assert set(members) >= set(non_identity)
        for g in groups:
            basis = g.basis_string()
            for m in g.members:
                assert m.can_be_measured_by(basis)

    @given(pauli_sets())
    @settings(max_examples=60)
    def test_groups_pairwise_qwc(self, paulis):
        for g in group_qwc(paulis, 4):
            for a in g.members:
                for b in g.members:
                    assert a.qubit_wise_commutes(b)


class TestCoverReduceInvariants:
    @given(pauli_sets())
    @settings(max_examples=60)
    def test_every_unique_term_covered(self, paulis):
        groups = cover_reduce(paulis, 4)
        unique = {p for p in paulis if not p.is_identity()}
        members = {m for g in groups for m in g.members}
        assert members == unique
        for g in groups:
            basis = g.basis_string()
            for m in g.members:
                assert m.can_be_measured_by(basis)

    @given(pauli_sets())
    @settings(max_examples=60)
    def test_never_more_groups_than_unique_terms(self, paulis):
        unique = {p for p in paulis if not p.is_identity()}
        assert len(cover_reduce(paulis, 4)) <= max(1, len(unique))

    @given(pauli_sets())
    @settings(max_examples=60)
    def test_representatives_mutually_uncovered(self, paulis):
        """No kept representative can measure another (greedy maximality)."""
        groups = cover_reduce(paulis, 4)
        reps = [g.members[0] for g in groups]
        for i, a in enumerate(reps):
            for j, b in enumerate(reps):
                if i != j:
                    assert not a.can_be_measured_by(b)


class TestSpatialReductionInvariants:
    @given(pauli_sets())
    @settings(max_examples=60)
    def test_plan_covers_every_raw_subset(self, paulis):
        """Soundness: every JigSaw subset is measured by some kept subset."""
        non_identity = [p for p in paulis if not p.is_identity()]
        if not non_identity:
            return
        plan = varsaw_subset_plan(non_identity, window=2)
        kept = plan.assignments
        for term in non_identity:
            for subset in term_subsets(term, 2):
                required = subset.sparse()
                assert any(
                    all(k.get(q) == c for q, c in required.items())
                    for k in kept
                ), (term, subset)

    @given(pauli_sets())
    @settings(max_examples=60)
    def test_reduced_never_larger_than_unique_raw(self, paulis):
        non_identity = [p for p in paulis if not p.is_identity()]
        if not non_identity:
            return
        raw = {
            frozenset(s.sparse().items())
            for t in non_identity
            for s in term_subsets(t, 2)
        }
        plan = varsaw_subset_plan(non_identity, window=2)
        assert plan.num_subsets <= max(1, len(raw))

    @given(
        st.lists(
            st.dictionaries(
                st.integers(0, 3),
                st.sampled_from("XYZ"),
                min_size=0,
                max_size=2,
            ),
            max_size=15,
        )
    )
    @settings(max_examples=60)
    def test_reduce_assignments_supports_capped(self, assignments):
        for kept in reduce_assignments(assignments, max_support=2):
            assert 1 <= len(kept) <= 2
