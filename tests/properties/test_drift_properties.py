"""Property-based tests for drift schedules: fingerprints and replay."""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise import (
    SCHEDULE_KINDS,
    ConstantDrift,
    DriftingDeviceModel,
    LinearDrift,
    RandomWalkDrift,
    SineDrift,
    StepDrift,
    ibm_lagos_like,
    schedule_from_dict,
)

periods = st.integers(1, 64)
magnitudes = st.floats(0.0, 8.0, allow_nan=False, allow_infinity=False)


@st.composite
def schedules(draw):
    kind = draw(st.sampled_from(sorted(SCHEDULE_KINDS)))
    period = draw(periods)
    if kind == "constant":
        return ConstantDrift(period=period)
    if kind == "step":
        return StepDrift(
            period=period,
            magnitude=draw(magnitudes),
            at=draw(st.integers(0, 16)),
        )
    if kind == "linear":
        return LinearDrift(
            period=period,
            magnitude=draw(magnitudes),
            ramp=draw(st.integers(1, 16)),
        )
    if kind == "sine":
        return SineDrift(
            period=period,
            magnitude=draw(magnitudes),
            wavelength=draw(st.integers(1, 16)),
        )
    return RandomWalkDrift(
        period=period,
        step_std=draw(st.floats(0.0, 1.0)),
        seed=draw(st.integers(0, 2**32 - 1)),
    )


class TestScheduleProperties:
    @given(schedules())
    @settings(max_examples=120)
    def test_dict_round_trip(self, schedule):
        rebuilt = schedule_from_dict(schedule.to_dict())
        assert rebuilt == schedule
        assert rebuilt.fingerprint() == schedule.fingerprint()

    @given(schedules())
    @settings(max_examples=60)
    def test_fingerprint_insensitive_to_dict_key_order(self, schedule):
        data = schedule.to_dict()
        reordered = dict(reversed(list(data.items())))
        assert (
            schedule_from_dict(reordered).fingerprint()
            == schedule.fingerprint()
        )

    @given(schedules(), st.data())
    @settings(max_examples=60)
    def test_fingerprint_sensitive_to_every_field(self, schedule, data):
        fields = [f.name for f in dataclasses.fields(schedule)]
        name = data.draw(st.sampled_from(fields))
        value = getattr(schedule, name)
        if isinstance(value, int) and not isinstance(value, bool):
            changed = value + 1
        else:
            changed = value + 0.125
        try:
            other = dataclasses.replace(schedule, **{name: changed})
        except ValueError:
            return  # The bumped value is invalid; nothing to compare.
        assert other.fingerprint() != schedule.fingerprint()

    @given(schedules(), st.integers(0, 512), st.integers(1, 8))
    @settings(max_examples=100)
    def test_factors_replay_identically(self, schedule, clock, n_qubits):
        epoch = schedule.epoch(clock)
        assert schedule.gate_factor(epoch) == schedule.gate_factor(epoch)
        np.testing.assert_array_equal(
            schedule.readout_factors(epoch, n_qubits),
            schedule.readout_factors(epoch, n_qubits),
        )
        assert schedule.gate_factor(epoch) >= 0.0
        assert np.all(schedule.readout_factors(epoch, n_qubits) >= 0.0)

    @given(schedules(), st.integers(0, 512))
    @settings(max_examples=60)
    def test_epoch_matches_integer_division(self, schedule, clock):
        assert schedule.epoch(clock) == clock // schedule.period


class TestDeviceReplayProperties:
    @given(
        schedules(),
        st.lists(st.integers(0, 7), min_size=0, max_size=12),
    )
    @settings(max_examples=60)
    def test_advance_is_additive(self, schedule, steps):
        chunked = DriftingDeviceModel(ibm_lagos_like(), schedule)
        for step in steps:
            chunked.advance_clock(step)
        whole = DriftingDeviceModel(ibm_lagos_like(), schedule)
        whole.advance_clock(sum(steps))
        assert chunked.clock == whole.clock
        assert chunked.epoch == whole.epoch
        assert (
            chunked.drift_state_fingerprint()
            == whole.drift_state_fingerprint()
        )
        for a, b in zip(
            chunked.readout.qubit_errors, whole.readout.qubit_errors
        ):
            assert a.p01 == b.p01 and a.p10 == b.p10
        assert (
            chunked.gate_noise.error_1q == whole.gate_noise.error_1q
        )

    @given(schedules(), st.integers(0, 256), st.integers(0, 256))
    @settings(max_examples=60)
    def test_fingerprint_separates_epochs(self, schedule, c1, c2):
        device = DriftingDeviceModel(ibm_lagos_like(), schedule)
        device.advance_clock(c1)
        fp1 = device.drift_state_fingerprint()
        device.reset_clock()
        device.advance_clock(c2)
        fp2 = device.drift_state_fingerprint()
        same_epoch = schedule.epoch(c1) == schedule.epoch(c2)
        assert (fp1 == fp2) == same_epoch
