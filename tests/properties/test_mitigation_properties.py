"""Property-based tests for the mitigation baselines.

Invariants: mitigators must always return physical distributions
(non-negative, normalized), the identity channel must be a fixed point,
and bias-aware polarity flipping must be an involution.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mitigation import M3Mitigator, MatrixMitigator, flip_pmf_bits
from repro.sim import PMF, Counts


@st.composite
def confusion_matrices(draw, n_qubits):
    matrices = {}
    for q in range(n_qubits):
        p01 = draw(st.floats(min_value=0.0, max_value=0.2))
        p10 = draw(st.floats(min_value=0.0, max_value=0.2))
        matrices[q] = np.array(
            [[1 - p01, p10], [p01, 1 - p10]], dtype=float
        )
    return matrices


@st.composite
def sparse_counts(draw, n_qubits, max_outcomes=6):
    n_outcomes = draw(
        st.integers(
            min_value=1, max_value=min(max_outcomes, 2**n_qubits)
        )
    )
    keys = draw(
        st.sets(
            st.integers(min_value=0, max_value=2**n_qubits - 1),
            min_size=n_outcomes,
            max_size=n_outcomes,
        )
    )
    data = {
        format(k, f"0{n_qubits}b"): draw(
            st.integers(min_value=1, max_value=500)
        )
        for k in keys
    }
    return Counts(data, tuple(range(n_qubits)))


@st.composite
def pmfs(draw, n_qubits):
    weights = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0),
            min_size=2**n_qubits,
            max_size=2**n_qubits,
        )
    )
    probs = np.array(weights)
    return PMF(probs / probs.sum())


class TestM3Properties:
    @given(st.data())
    @settings(max_examples=50)
    def test_output_is_physical(self, data):
        n = data.draw(st.integers(min_value=1, max_value=4))
        mitigator = M3Mitigator(data.draw(confusion_matrices(n)))
        counts = data.draw(sparse_counts(n))
        pmf = mitigator.mitigate_counts(counts)
        assert np.all(pmf.probs >= 0)
        assert pmf.probs.sum() == 1.0 or abs(pmf.probs.sum() - 1.0) < 1e-9

    @given(st.data())
    @settings(max_examples=50)
    def test_identity_channel_is_fixed_point(self, data):
        n = data.draw(st.integers(min_value=1, max_value=4))
        mitigator = M3Mitigator({q: np.eye(2) for q in range(n)})
        counts = data.draw(sparse_counts(n))
        pmf = mitigator.mitigate_counts(counts)
        assert pmf.tvd(counts.to_pmf()) < 1e-9

    @given(st.data())
    @settings(max_examples=30)
    def test_m3_agrees_with_mbm_on_full_support(self, data):
        """When every outcome is observed, M3's subspace is the whole
        space and it must match full matrix inversion."""
        n = data.draw(st.integers(min_value=1, max_value=3))
        matrices = data.draw(confusion_matrices(n))
        full_data = {
            format(k, f"0{n}b"): data.draw(
                st.integers(min_value=1, max_value=300)
            )
            for k in range(2**n)
        }
        counts = Counts(full_data, tuple(range(n)))
        m3 = M3Mitigator(matrices).mitigate_counts(counts)
        mbm = MatrixMitigator(matrices).mitigate_pmf(counts.to_pmf())
        assert m3.tvd(mbm) < 1e-6


class TestBiasAwareProperties:
    @given(st.data())
    @settings(max_examples=50)
    def test_flip_is_involution(self, data):
        n = data.draw(st.integers(min_value=1, max_value=5))
        pmf = data.draw(pmfs(n))
        assert flip_pmf_bits(flip_pmf_bits(pmf)) == pmf

    @given(st.data())
    @settings(max_examples=50)
    def test_flip_preserves_normalization_and_entropy(self, data):
        n = data.draw(st.integers(min_value=1, max_value=5))
        pmf = data.draw(pmfs(n))
        flipped = flip_pmf_bits(pmf)
        assert abs(flipped.probs.sum() - pmf.probs.sum()) < 1e-12
        assert np.allclose(
            np.sort(flipped.probs), np.sort(pmf.probs), atol=1e-15
        )
