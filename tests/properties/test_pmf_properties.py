"""Property-based tests for PMF invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sim import PMF


def pmf_strategy(n_qubits):
    return arrays(
        np.float64,
        shape=2**n_qubits,
        elements=st.floats(0.0, 1.0, allow_nan=False),
    ).filter(lambda v: v.sum() > 1e-9).map(PMF)


@st.composite
def pmf_and_subset(draw, n_qubits=3):
    pmf = draw(pmf_strategy(n_qubits))
    subset = draw(
        st.lists(
            st.integers(0, n_qubits - 1),
            min_size=1,
            max_size=n_qubits,
            unique=True,
        )
    )
    return pmf, tuple(subset)


class TestNormalization:
    @given(pmf_strategy(3))
    def test_always_normalized(self, pmf):
        assert np.isclose(pmf.probs.sum(), 1.0)
        assert np.all(pmf.probs >= 0)

    @given(pmf_and_subset())
    def test_marginal_normalized(self, pair):
        pmf, subset = pair
        marg = pmf.marginal(subset)
        assert np.isclose(marg.probs.sum(), 1.0)
        assert marg.qubits == subset

    @given(pmf_and_subset())
    def test_marginal_consistency(self, pair):
        """Marginalizing in two steps equals one step."""
        pmf, subset = pair
        direct = pmf.marginal([subset[0]])
        via = pmf.marginal(subset).marginal([subset[0]])
        assert np.allclose(direct.probs, via.probs, atol=1e-12)


class TestDistanceAxioms:
    @given(pmf_strategy(2), pmf_strategy(2))
    def test_tvd_symmetric_bounded(self, a, b):
        assert 0.0 <= a.tvd(b) <= 1.0 + 1e-12
        assert np.isclose(a.tvd(b), b.tvd(a))

    @given(pmf_strategy(2), pmf_strategy(2), pmf_strategy(2))
    def test_tvd_triangle_inequality(self, a, b, c):
        assert a.tvd(c) <= a.tvd(b) + b.tvd(c) + 1e-12

    @given(pmf_strategy(2), pmf_strategy(2))
    def test_hellinger_bounds(self, a, b):
        assert -1e-12 <= a.hellinger(b) <= 1.0 + 1e-12

    @given(pmf_strategy(2))
    def test_self_distances_zero(self, a):
        assert np.isclose(a.tvd(a), 0.0)
        assert np.isclose(a.hellinger(a), 0.0)
        assert np.isclose(a.fidelity(a), 1.0)


class TestMixing:
    @given(pmf_strategy(2), pmf_strategy(2), st.floats(0.0, 1.0))
    def test_mix_stays_normalized(self, a, b, w):
        assert np.isclose(a.mix(b, w).probs.sum(), 1.0)

    @given(pmf_strategy(2), pmf_strategy(2), st.floats(0.0, 1.0))
    @settings(max_examples=50)
    def test_mix_contracts_tvd(self, a, b, w):
        """Mixing toward b moves a's distribution toward b."""
        mixed = a.mix(b, w)
        assert mixed.tvd(b) <= a.tvd(b) + 1e-12


class TestSampling:
    @given(pmf_strategy(2), st.integers(1, 64))
    @settings(max_examples=30)
    def test_sample_counts_valid_pmf(self, pmf, shots):
        rng = np.random.default_rng(0)
        emp = pmf.sample_counts(shots, rng)
        assert np.isclose(emp.probs.sum(), 1.0)
        assert emp.qubits == pmf.qubits
        # Empirical probabilities are multiples of 1/shots.
        scaled = emp.probs * shots
        assert np.allclose(scaled, np.round(scaled), atol=1e-9)
