"""Property-based tests for layout and routing invariants.

Routing must preserve the circuit's semantics exactly (up to the final
layout permutation) on *any* connected topology, for *any* circuit —
this is the invariant that lets every other experiment trust the routed
gate counts.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.layout import CouplingMap, Layout, route_circuit
from repro.sim.statevector import run_statevector


@st.composite
def topologies(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    kind = draw(st.sampled_from(["line", "ring", "full"]))
    if kind == "ring" and n < 3:
        kind = "line"
    return getattr(CouplingMap, kind)(n)


@st.composite
def circuits_for(draw, n_qubits, max_gates=12):
    qc = Circuit(n_qubits)
    for _ in range(draw(st.integers(min_value=0, max_value=max_gates))):
        if n_qubits >= 2 and draw(st.booleans()):
            a = draw(st.integers(min_value=0, max_value=n_qubits - 1))
            b = draw(
                st.integers(min_value=0, max_value=n_qubits - 2).map(
                    lambda v, a=a: v if v < a else v + 1
                )
            )
            if draw(st.booleans()):
                qc.cx(a, b)
            else:
                qc.cz(a, b)
        else:
            q = draw(st.integers(min_value=0, max_value=n_qubits - 1))
            angle = draw(
                st.floats(
                    min_value=-3.14,
                    max_value=3.14,
                    allow_nan=False,
                    allow_infinity=False,
                )
            )
            gate = draw(st.sampled_from(["rx", "ry", "rz", "h"]))
            if gate == "h":
                qc.h(q)
            else:
                getattr(qc, gate)(angle, q)
    return qc


def logical_state(routed, n_logical):
    state = run_statevector(routed.circuit)
    n_phys = routed.circuit.n_qubits
    out = np.zeros(2**n_logical, dtype=complex)
    for index in range(2**n_logical):
        bits = format(index, f"0{n_logical}b")
        phys = ["0"] * n_phys
        for l in range(n_logical):
            phys[routed.final_layout.physical(l)] = bits[l]
        out[index] = state[int("".join(phys), 2)]
    return out


class TestRoutingProperties:
    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_routed_circuit_is_equivalent(self, data):
        coupling = data.draw(topologies())
        circuit = data.draw(circuits_for(coupling.n_qubits))
        routed = route_circuit(circuit, coupling)
        expected = run_statevector(circuit)
        actual = logical_state(routed, circuit.n_qubits)
        assert np.allclose(actual, expected, atol=1e-9)

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_every_two_qubit_gate_is_coupled(self, data):
        coupling = data.draw(topologies())
        circuit = data.draw(circuits_for(coupling.n_qubits))
        routed = route_circuit(circuit, coupling)
        for inst in routed.circuit.instructions:
            if len(inst.qubits) == 2:
                assert coupling.are_adjacent(*inst.qubits)

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_swap_count_matches_overhead(self, data):
        coupling = data.draw(topologies())
        circuit = data.draw(circuits_for(coupling.n_qubits))
        routed = route_circuit(circuit, coupling)
        swaps = sum(
            1
            for inst in routed.circuit.instructions
            if inst.name == "swap"
        )
        assert swaps == routed.swaps_inserted
        assert routed.overhead == 3 * swaps

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_final_layout_is_a_permutation(self, data):
        coupling = data.draw(topologies())
        circuit = data.draw(circuits_for(coupling.n_qubits))
        routed = route_circuit(circuit, coupling)
        physicals = routed.final_layout.physical_qubits()
        assert len(set(physicals)) == circuit.n_qubits
        assert all(0 <= p < coupling.n_qubits for p in physicals)

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_full_connectivity_is_a_fixed_point(self, data):
        n = data.draw(st.integers(min_value=2, max_value=5))
        circuit = data.draw(circuits_for(n))
        routed = route_circuit(circuit, CouplingMap.full(n))
        assert routed.swaps_inserted == 0
        assert routed.final_layout == Layout.trivial(n)
