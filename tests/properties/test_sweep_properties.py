"""Property-based tests for sweep fingerprints and store merging.

Two invariants carry the whole resume story:

* a :class:`Point`'s fingerprint is a pure function of its *content* —
  stable under dict-key ordering, field spelling (dataclass vs dict
  round trip), and sweep-axis ordering, and sensitive to any value
  change;
* :class:`ResultStore` loading/merging is idempotent and
  order-insensitive under the failure modes an append-only JSONL file
  actually exhibits: shuffled lines, duplicated records, and a torn
  tail from a killed writer.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sweeps import Point, ResultStore, SweepSpec
from repro.sweeps.store import RESULT_SCHEMA_VERSION, load_records

# ------------------------------------------------------------ strategies

_SCALARS = st.one_of(
    st.integers(-1000, 1000),
    st.floats(-100, 100, allow_nan=False),
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Lu", "Ll", "Nd")
        ),
        max_size=8,
    ),
    st.booleans(),
    st.none(),
)


@st.composite
def points(draw):
    workload = draw(st.sampled_from([
        {"key": "H2-4"},
        {"key": "H2O-6", "reps": 2},
        {"model": "tfim", "n_qubits": 4, "field": 0.7},
        {"qaoa": "ring", "n_qubits": 4},
        {"named": "paper_tfim"},
    ]))
    options = draw(st.dictionaries(
        st.sampled_from(["a", "b", "window", "threshold"]),
        _SCALARS, max_size=3,
    ))
    return Point(
        workload=workload,
        scheme=draw(st.sampled_from(["baseline", "varsaw", "jigsaw"])),
        seed=draw(st.integers(0, 50)),
        shots=draw(st.integers(1, 4096)),
        max_iterations=draw(st.integers(1, 1000)),
        options=options,
    )


# ----------------------------------------------------------- fingerprints


@given(points())
@settings(max_examples=50, deadline=None)
def test_fingerprint_survives_json_round_trip(point):
    clone = Point.from_dict(json.loads(json.dumps(point.to_dict())))
    assert clone.fingerprint() == point.fingerprint()


@given(points(), st.randoms())
@settings(max_examples=50, deadline=None)
def test_fingerprint_ignores_mapping_key_order(point, rng):
    data = point.to_dict()
    shuffled = {}
    keys = list(data)
    rng.shuffle(keys)
    for key in keys:
        value = data[key]
        if isinstance(value, dict):
            subkeys = list(value)
            rng.shuffle(subkeys)
            value = {k: value[k] for k in subkeys}
        shuffled[key] = value
    assert Point.from_dict(shuffled).fingerprint() == point.fingerprint()


@given(points(), st.integers(1, 1000))
@settings(max_examples=50, deadline=None)
def test_fingerprint_sensitive_to_value_changes(point, delta):
    changed = Point.from_dict(
        {**point.to_dict(), "seed": point.seed + delta}
    )
    assert changed.fingerprint() != point.fingerprint()


@given(st.permutations(["baseline", "varsaw", "jigsaw"]),
       st.permutations([0, 1, 2]))
@settings(max_examples=25, deadline=None)
def test_axis_order_changes_grid_order_not_fingerprints(schemes, seeds):
    reference = SweepSpec(
        name="grid",
        base={"workload": {"key": "H2-4"}},
        axes={"scheme": ["baseline", "varsaw", "jigsaw"],
              "seed": [0, 1, 2]},
    )
    permuted = SweepSpec(
        name="grid",
        base={"workload": {"key": "H2-4"}},
        axes={"scheme": list(schemes), "seed": list(seeds)},
    )
    assert (
        {p.fingerprint() for p in permuted.points()}
        == {p.fingerprint() for p in reference.points()}
    )


# ------------------------------------------------------------ store merge


@st.composite
def record_lines(draw):
    """JSONL lines for n distinct fake records, in fingerprint order."""
    n = draw(st.integers(1, 8))
    lines = []
    for i in range(n):
        record = {
            "schema": RESULT_SCHEMA_VERSION,
            "fingerprint": f"fp-{i:04d}",
            "point": {"workload": {"key": "H2-4"}, "scheme": "baseline"},
            "result": {"energy": draw(
                st.floats(-100, 100, allow_nan=False)
            )},
            "wall_time_s": 0.0,
            "finished_at": 0.0,
        }
        lines.append(json.dumps(record, sort_keys=True))
    return lines


@given(lines=record_lines(), rng=st.randoms())
@settings(max_examples=40, deadline=None)
def test_load_is_order_insensitive_and_duplicate_tolerant(
    tmp_path_factory, lines, rng
):
    tmp = tmp_path_factory.mktemp("store")
    clean = tmp / "clean.jsonl"
    clean.write_text("\n".join(lines) + "\n")
    reference = load_records(clean)

    mangled_lines = lines + [rng.choice(lines)]  # a duplicate
    rng.shuffle(mangled_lines)
    mangled = tmp / "mangled.jsonl"
    mangled.write_text("\n".join(mangled_lines) + "\n")
    store = ResultStore(mangled)
    report = store.load_report
    assert {
        fp: record["result"] for fp, record in report.records.items()
    } == {fp: record["result"] for fp, record in reference.items()}
    assert report.duplicate_records >= 1


@given(lines=record_lines(), torn_bytes=st.integers(1, 40))
@settings(max_examples=40, deadline=None)
def test_torn_tail_loses_at_most_the_last_record(
    tmp_path_factory, lines, torn_bytes
):
    tmp = tmp_path_factory.mktemp("store")
    path = tmp / "torn.jsonl"
    text = "\n".join(lines) + "\n"
    path.write_bytes(text.encode()[:-torn_bytes])
    records = load_records(path)
    expected = {
        json.loads(line)["fingerprint"] for line in lines
    }
    # Tearing up to 40 bytes can only corrupt the final record (every
    # line is far longer): everything earlier survives intact.
    assert set(records) <= expected
    assert len(records) >= len(lines) - 1


@given(lines=record_lines(), rng=st.randoms())
@settings(max_examples=40, deadline=None)
def test_merge_is_idempotent_and_order_insensitive(
    tmp_path_factory, lines, rng
):
    tmp = tmp_path_factory.mktemp("store")
    source_path = tmp / "source.jsonl"
    source_path.write_text("\n".join(lines) + "\n")
    source = ResultStore(source_path)

    shuffled_lines = list(lines)
    rng.shuffle(shuffled_lines)
    other_path = tmp / "other.jsonl"
    other_path.write_text("\n".join(shuffled_lines) + "\n")

    target = ResultStore(tmp / "target.jsonl")
    first = target.merge_from(source)
    assert first == len(lines)
    # Merging again — from either ordering — adds nothing.
    assert target.merge_from(source) == 0
    assert target.merge_from(ResultStore(other_path)) == 0
    assert target.fingerprints() == source.fingerprints()
    # And a reload from disk sees exactly the same records.
    assert {
        fp: record["result"]
        for fp, record in load_records(target.path).items()
    } == {
        fp: record["result"]
        for fp, record in load_records(source_path).items()
    }
