"""Property-based tests for compiled plans and the transpiler.

The correctness contract pinned here is the one
:mod:`repro.sim.plan` documents: for any bound circuit over the full
gate set, the compiled plan's outcome probabilities are **bit-identical**
to the historical gate-by-gate ``tensordot`` interpreter, and
:func:`repro.circuits.transpile` preserves the circuit unitary — in
particular across the commuting-cancellation pattern its old
stack-top-only scan missed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    GATE_ARITY,
    ROTATION_GATES,
    Circuit,
    gate_matrix,
    transpile,
)
from repro.sim import probabilities
from repro.sim.plan import compile_plan
from repro.sim.statevector import apply_gate, zero_state

_ANGLES = st.floats(-6.3, 6.3, allow_nan=False, allow_infinity=False)


def interpret(circuit, initial_state=None):
    """Reference gate-by-gate interpreter (pre-plan semantics)."""
    state = (
        zero_state(circuit.n_qubits)
        if initial_state is None
        else initial_state.astype(complex, copy=True)
    )
    for ins in circuit.instructions:
        if ins.name == "i":
            continue
        state = apply_gate(
            state,
            gate_matrix(ins.name, ins.param),
            ins.qubits,
            circuit.n_qubits,
        )
    return state


@st.composite
def full_gateset_circuits(draw, max_qubits=8, max_gates=24):
    """A random circuit over *every* gate in :data:`GATE_ARITY`."""
    n_qubits = draw(st.integers(1, max_qubits))
    names = sorted(
        name
        for name, arity in GATE_ARITY.items()
        if arity <= n_qubits
    )
    qc = Circuit(n_qubits)
    for _ in range(draw(st.integers(0, max_gates))):
        name = draw(st.sampled_from(names))
        qubits = draw(
            st.permutations(range(n_qubits)).map(
                lambda p, k=GATE_ARITY[name]: tuple(p[:k])
            )
        )
        param = draw(_ANGLES) if name in ROTATION_GATES else None
        qc.append(name, qubits, param)
    return qc


class TestPlanBitIdentity:
    @given(full_gateset_circuits())
    @settings(max_examples=120, deadline=None)
    def test_plan_probabilities_match_interpreter_bitwise(self, qc):
        plan = compile_plan(qc)
        planned = probabilities(plan.run(plan.slot_values(qc)))
        direct = probabilities(interpret(qc))
        assert np.array_equal(planned, direct)

    @given(full_gateset_circuits(max_qubits=4), st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_run_batch_rows_match_scalar_runs_bitwise(self, qc, copies):
        plan = compile_plan(qc)
        values = plan.slot_values(qc)
        bindings = [
            [v + 0.01 * i for v in values] for i in range(copies)
        ]
        batch = plan.run_batch(bindings)
        for row, binding in zip(batch, bindings):
            assert np.array_equal(row, plan.run(binding))

    @given(full_gateset_circuits(max_qubits=3))
    @settings(max_examples=60, deadline=None)
    def test_gate_load_counts_the_original_circuit(self, qc):
        plan = compile_plan(qc)
        g2 = qc.num_two_qubit_gates
        assert plan.gate_load == (qc.num_gates - g2, g2)


class TestTranspileUnitaryEquivalence:
    @given(full_gateset_circuits(max_qubits=4, max_gates=20))
    @settings(max_examples=80, deadline=None)
    def test_transpiled_circuit_has_the_same_unitary(self, qc):
        # Equivalence is up to one global phase for the whole unitary:
        # merge_rotations wraps angles mod 2π, and an SU(2) rotation by
        # θ ± 2π is -R(θ).  The phase is fixed from the first nonzero
        # amplitude and must then align every column.
        optimized = transpile(qc)
        assert len(optimized) <= len(qc)
        dim = 2**qc.n_qubits
        phase = None
        for column in range(dim):
            basis = np.zeros(dim, dtype=complex)
            basis[column] = 1.0
            expected = interpret(qc, basis)
            got = interpret(optimized, basis)
            if phase is None:
                anchor = int(np.argmax(np.abs(expected)))
                phase = got[anchor] / expected[anchor]
                assert np.isclose(abs(phase), 1.0, atol=1e-9)
            assert np.allclose(got, phase * expected, atol=1e-9)

    @given(
        st.sampled_from(sorted({"h", "x", "y", "z"})),
        st.integers(0, 2),
        st.integers(0, 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_pairs_cancel_across_commuting_gates(self, name, q, other):
        # The regression shape: a self-inverse pair separated by gates
        # on disjoint qubits must cancel (the old pass only looked at
        # the stack top).
        qc = Circuit(3)
        qc.append(name, (q,))
        qc.x((q + 1 + other) % 3)
        qc.append(name, (q,))
        optimized = transpile(qc)
        assert len(optimized) == 1
        assert optimized.instructions[0].name == "x"
