"""Property-based tests for Pauli algebra invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pauli import PauliString, phase_product

pauli_labels = st.text(alphabet="IXYZ", min_size=1, max_size=6)


def pauli_pairs(max_size=6):
    return st.integers(min_value=1, max_value=max_size).flatmap(
        lambda n: st.tuples(
            st.text(alphabet="IXYZ", min_size=n, max_size=n),
            st.text(alphabet="IXYZ", min_size=n, max_size=n),
        )
    )


class TestCommutationProperties:
    @given(pauli_pairs())
    def test_commutation_symmetric(self, pair):
        a, b = PauliString(pair[0]), PauliString(pair[1])
        assert a.commutes_with(b) == b.commutes_with(a)

    @given(pauli_pairs())
    def test_qwc_symmetric(self, pair):
        a, b = PauliString(pair[0]), PauliString(pair[1])
        assert a.qubit_wise_commutes(b) == b.qubit_wise_commutes(a)

    @given(pauli_pairs())
    def test_qwc_implies_full_commutation(self, pair):
        a, b = PauliString(pair[0]), PauliString(pair[1])
        if a.qubit_wise_commutes(b):
            assert a.commutes_with(b)

    @given(pauli_labels)
    def test_self_commutation(self, label):
        p = PauliString(label)
        assert p.commutes_with(p)
        assert p.qubit_wise_commutes(p)
        assert p.can_be_measured_by(p)

    @given(pauli_pairs())
    def test_measured_by_implies_qwc(self, pair):
        a, b = PauliString(pair[0]), PauliString(pair[1])
        if a.can_be_measured_by(b):
            assert a.qubit_wise_commutes(b)

    @given(pauli_pairs(max_size=4))
    @settings(max_examples=60)
    def test_commutation_matches_matrices(self, pair):
        a, b = PauliString(pair[0]), PauliString(pair[1])
        ma, mb = a.to_matrix(), b.to_matrix()
        assert a.commutes_with(b) == np.allclose(ma @ mb, mb @ ma)


class TestProductProperties:
    @given(pauli_pairs(max_size=4))
    @settings(max_examples=60)
    def test_product_matches_matrices(self, pair):
        a, b = PauliString(pair[0]), PauliString(pair[1])
        phase, c = phase_product(a, b)
        assert np.allclose(
            a.to_matrix() @ b.to_matrix(), phase * c.to_matrix()
        )

    @given(pauli_labels)
    def test_identity_is_neutral(self, label):
        p = PauliString(label)
        identity = PauliString.identity(p.n_qubits)
        assert phase_product(identity, p) == (1, p)
        assert phase_product(p, identity) == (1, p)

    @given(pauli_labels)
    def test_involution(self, label):
        p = PauliString(label)
        phase, c = phase_product(p, p)
        assert phase == 1 and c.is_identity()


class TestStructureProperties:
    @given(pauli_labels)
    def test_sparse_roundtrip(self, label):
        p = PauliString(label)
        assert PauliString.from_sparse(p.n_qubits, p.sparse()) == p

    @given(pauli_labels)
    def test_weight_equals_support_size(self, label):
        p = PauliString(label)
        assert p.weight == len(p.support) <= p.n_qubits

    @given(pauli_labels, st.data())
    def test_restriction_is_measured_by_original(self, label, data):
        p = PauliString(label)
        positions = data.draw(
            st.sets(
                st.integers(0, p.n_qubits - 1), max_size=p.n_qubits
            )
        )
        restricted = p.restricted_to(positions)
        assert restricted.can_be_measured_by(
            PauliString(
                "".join(c if c != "I" else "Z" for c in p.label)
            )
        )
        assert set(restricted.support) <= set(p.support)
