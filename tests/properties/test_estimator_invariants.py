"""Adversarial workload fuzzer: invariants every estimator must keep.

Hypothesis drives random Hamiltonians, ansatz shapes, device presets,
and drift schedules through *every* registered estimator kind and pins
the contracts the rest of the repository builds on:

* the estimated energy is finite and inside the Hamiltonian's L1
  spectral envelope (Pauli expectations live in ``[-1, 1]``, so no
  mitigation step may push the energy outside
  ``identity ± sum |coeffs|``);
* the session ledger balances — cache hits never exceed requests,
  nothing runs with fewer than one shot per circuit, and a drifting
  device's logical clock advances by exactly the charged circuits;
* same-seed runs are bit-identical, drift schedules included;
* exact PMFs stay normalized at every drift epoch.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ansatz import EfficientSU2
from repro.api import Session, estimator_kinds
from repro.hamiltonian import Hamiltonian
from repro.noise import (
    ConstantDrift,
    DriftingDeviceModel,
    LinearDrift,
    RandomWalkDrift,
    SineDrift,
    StepDrift,
    ibm_lagos_like,
    ibmq_mumbai_like,
)
from repro.workloads import Workload

ALL_KINDS = estimator_kinds()

coeffs = st.floats(
    -2.0, 2.0, allow_nan=False, allow_infinity=False
).filter(lambda c: abs(c) > 1e-6)


@st.composite
def hamiltonians(draw):
    n_qubits = draw(st.integers(2, 3))
    n_terms = draw(st.integers(1, 4))
    labels = st.text(alphabet="IXYZ", min_size=n_qubits,
                     max_size=n_qubits)
    terms = [
        (draw(coeffs), draw(labels)) for _ in range(n_terms)
    ]
    return Hamiltonian(terms, name="fuzz")


@st.composite
def drift_schedules(draw):
    period = draw(st.integers(1, 8))
    kind = draw(st.sampled_from(
        ["none", "constant", "step", "linear", "sine", "random_walk"]
    ))
    if kind == "none":
        return None
    if kind == "constant":
        return ConstantDrift(period=period)
    if kind == "step":
        return StepDrift(period=period,
                         magnitude=draw(st.floats(0.0, 3.0)),
                         at=draw(st.integers(0, 4)))
    if kind == "linear":
        return LinearDrift(period=period,
                           magnitude=draw(st.floats(0.0, 3.0)),
                           ramp=draw(st.integers(1, 4)))
    if kind == "sine":
        return SineDrift(period=period,
                         magnitude=draw(st.floats(0.0, 2.0)),
                         wavelength=draw(st.integers(1, 6)))
    return RandomWalkDrift(period=period,
                           step_std=draw(st.floats(0.0, 0.5)),
                           seed=draw(st.integers(0, 999)))


@st.composite
def scenarios(draw):
    hamiltonian = draw(hamiltonians())
    ansatz = EfficientSU2(
        hamiltonian.n_qubits,
        reps=draw(st.integers(1, 2)),
        entanglement=draw(st.sampled_from(["full", "linear"])),
    )
    preset = draw(st.sampled_from([ibm_lagos_like, ibmq_mumbai_like]))
    scale = draw(st.sampled_from([0.5, 1.0, 2.0]))
    schedule = draw(drift_schedules())
    seed = draw(st.integers(0, 2**16))
    params = draw(
        st.lists(
            st.floats(-math.pi, math.pi, allow_nan=False),
            min_size=ansatz.num_parameters,
            max_size=ansatz.num_parameters,
        )
    )
    return hamiltonian, ansatz, preset, scale, schedule, seed, params


def build(hamiltonian, ansatz, preset, scale, schedule):
    device = preset(scale=scale)
    if schedule is not None:
        device = DriftingDeviceModel(device, schedule)
    workload = Workload(
        key="fuzz", hamiltonian=hamiltonian, ansatz=ansatz,
        device=device, ideal_energy=0.0,
    )
    return device, workload


def envelope(hamiltonian):
    """``(identity coefficient, L1 radius)`` of the spectral envelope."""
    identity = hamiltonian.identity_coefficient
    radius = sum(
        abs(c) for c, _ in hamiltonian.non_identity_terms()
    )
    return identity, radius


class TestEstimatorInvariants:
    @given(scenarios())
    @settings(max_examples=12, deadline=None)
    def test_all_kinds_keep_the_contract(self, scenario):
        hamiltonian, ansatz, preset, scale, schedule, seed, params = (
            scenario
        )
        identity, radius = envelope(hamiltonian)
        for kind in ALL_KINDS:
            device, workload = build(
                hamiltonian, ansatz, preset, scale, schedule
            )
            session = Session(device, seed=seed)
            before = session.ledger()
            estimator = session.estimator(kind, workload, shots=16)
            energy = estimator.evaluate(np.asarray(params))
            delta = session.ledger() - before

            assert math.isfinite(energy), (kind, energy)
            assert abs(energy - identity) <= radius + 1e-6, (
                kind, energy, identity, radius,
            )
            # The ledger balances: every charged circuit carried at
            # least one shot, and the cache never over-reports.
            assert delta.circuits >= 0 and delta.shots >= 0, kind
            assert delta.shots >= delta.circuits, kind
            assert delta.cache_hits <= delta.cache_requests, kind
            # A pure-identity Hamiltonian needs no measurements; any
            # other one must charge the ledger (except `ideal`, which
            # diagonalizes instead of sampling).
            if kind != "ideal" and hamiltonian.non_identity_terms():
                assert delta.circuits > 0, kind
            # Logical time is charged circuits, exactly.
            if schedule is not None:
                assert device.clock == delta.circuits, kind

    @given(scenarios(), st.sampled_from(ALL_KINDS))
    @settings(max_examples=16, deadline=None)
    def test_same_seed_runs_are_bit_identical(self, scenario, kind):
        hamiltonian, ansatz, preset, scale, schedule, seed, params = (
            scenario
        )

        def run():
            device, workload = build(
                hamiltonian, ansatz, preset, scale, schedule
            )
            session = Session(device, seed=seed)
            estimator = session.estimator(kind, workload, shots=16)
            energies = [
                estimator.evaluate(np.asarray(params))
                for _ in range(2)
            ]
            ledger = session.ledger()
            return energies, (ledger.circuits, ledger.shots)

        assert run() == run()

    @given(scenarios(), st.integers(0, 64))
    @settings(max_examples=20, deadline=None)
    def test_exact_pmfs_stay_normalized_under_drift(
        self, scenario, clock
    ):
        hamiltonian, ansatz, preset, scale, schedule, seed, params = (
            scenario
        )
        device, workload = build(
            hamiltonian, ansatz, preset, scale, schedule
        )
        if schedule is not None:
            device.advance_clock(clock)
        session = Session(device, seed=seed)
        circuit = ansatz.bind(params)
        circuit.measure_all()
        pmf = session.backend.exact_pmf(circuit)
        assert np.all(pmf.probs >= -1e-12)
        assert np.isclose(pmf.probs.sum(), 1.0, atol=1e-9)
