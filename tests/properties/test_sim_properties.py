"""Property-based tests for the simulator and noise channels."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.noise import QubitReadoutError, ReadoutErrorModel
from repro.sim import PMF, probabilities, run_statevector


@st.composite
def random_circuits(draw, n_qubits=3, max_gates=10):
    qc = Circuit(n_qubits)
    n_gates = draw(st.integers(0, max_gates))
    for _ in range(n_gates):
        kind = draw(st.sampled_from(["h", "x", "s", "t", "rx", "ry", "rz", "cx", "cz"]))
        q = draw(st.integers(0, n_qubits - 1))
        if kind in ("cx", "cz"):
            q2 = draw(
                st.integers(0, n_qubits - 1).filter(lambda v: v != q)
            )
            qc.append(kind, (q, q2))
        elif kind in ("rx", "ry", "rz"):
            qc.append(kind, q, draw(st.floats(-3.0, 3.0)))
        else:
            qc.append(kind, q)
    return qc


class TestUnitarity:
    @given(random_circuits())
    @settings(max_examples=80)
    def test_norm_preserved(self, qc):
        state = run_statevector(qc)
        assert np.isclose(np.linalg.norm(state), 1.0, atol=1e-9)

    @given(random_circuits())
    @settings(max_examples=80)
    def test_probabilities_valid(self, qc):
        probs = probabilities(run_statevector(qc))
        assert np.isclose(probs.sum(), 1.0)
        assert np.all(probs >= 0)


class TestReadoutChannel:
    @given(
        st.floats(0.0, 0.4),
        st.floats(0.0, 0.4),
        st.floats(0.0, 0.5),
    )
    @settings(max_examples=60)
    def test_channel_is_stochastic(self, p01, p10, crosstalk):
        model = ReadoutErrorModel(
            [QubitReadoutError(p01, p10)] * 2, crosstalk_strength=crosstalk
        )
        rng = np.random.default_rng(0)
        raw = rng.random(4) + 1e-6
        pmf = PMF(raw, qubits=(0, 1))
        noisy = model.apply(pmf, {0: 0, 1: 1})
        assert np.isclose(noisy.probs.sum(), 1.0)
        assert np.all(noisy.probs >= 0)

    @given(st.floats(0.0, 0.3), st.floats(0.0, 0.3))
    @settings(max_examples=60)
    def test_channel_contracts_tvd(self, p01, p10):
        """A stochastic channel never increases TVD between two PMFs."""
        model = ReadoutErrorModel(
            [QubitReadoutError(p01, p10)], crosstalk_strength=0.0
        )
        a = PMF([0.9, 0.1], qubits=(0,))
        b = PMF([0.2, 0.8], qubits=(0,))
        na = model.apply(a, {0: 0})
        nb = model.apply(b, {0: 0})
        assert na.tvd(nb) <= a.tvd(b) + 1e-12
