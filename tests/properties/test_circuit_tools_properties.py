"""Property-based tests for the transpiler and QASM round-tripping."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, from_qasm, to_qasm, transpile
from repro.sim import probabilities, run_statevector


@st.composite
def bound_circuits(draw, n_qubits=3, max_gates=15):
    qc = Circuit(n_qubits)
    for _ in range(draw(st.integers(0, max_gates))):
        kind = draw(
            st.sampled_from(
                ["h", "x", "y", "z", "s", "sdg", "t", "tdg",
                 "rx", "ry", "rz", "p", "cx", "cz", "swap"]
            )
        )
        q = draw(st.integers(0, n_qubits - 1))
        if kind in ("cx", "cz", "swap"):
            q2 = draw(
                st.integers(0, n_qubits - 1).filter(lambda v: v != q)
            )
            qc.append(kind, (q, q2))
        elif kind in ("rx", "ry", "rz", "p"):
            qc.append(kind, q, draw(st.floats(-6.0, 6.0)))
        else:
            qc.append(kind, q)
    return qc


class TestTranspileProperties:
    @given(bound_circuits())
    @settings(max_examples=80)
    def test_distribution_preserved(self, qc):
        optimized = transpile(qc)
        assert np.allclose(
            probabilities(run_statevector(qc)),
            probabilities(run_statevector(optimized)),
            atol=1e-9,
        )

    @given(bound_circuits())
    @settings(max_examples=80)
    def test_never_grows(self, qc):
        assert len(transpile(qc)) <= len(qc)

    @given(bound_circuits())
    @settings(max_examples=50)
    def test_idempotent(self, qc):
        once = transpile(qc)
        twice = transpile(once)
        assert len(twice) == len(once)


class TestQasmProperties:
    @given(bound_circuits())
    @settings(max_examples=60)
    def test_roundtrip_preserves_distribution(self, qc):
        qc.measure_all()
        parsed = from_qasm(to_qasm(qc))
        assert parsed.measured_qubits == qc.measured_qubits
        assert np.allclose(
            probabilities(run_statevector(qc)),
            probabilities(run_statevector(parsed)),
            atol=1e-9,
        )

    @given(bound_circuits())
    @settings(max_examples=60)
    def test_roundtrip_gate_count(self, qc):
        parsed = from_qasm(to_qasm(qc))
        assert len(parsed) == len(qc)
