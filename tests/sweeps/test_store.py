"""Store durability: atomic appends, torn tails, versioning, merge."""

import json

import pytest

from repro.sweeps import (
    RESULT_SCHEMA_VERSION,
    Point,
    ResultStore,
    load_records,
)


def point(seed=0, **overrides):
    fields = {
        "workload": {"key": "H2-4"},
        "scheme": "baseline",
        "seed": seed,
        "shots": 32,
        "max_iterations": 3,
    }
    fields.update(overrides)
    return Point(**fields)


def fill(store, seeds):
    for seed in seeds:
        store.append(point(seed), {"energy": float(seed)}, wall_time_s=0.1)


class TestAppendLoad:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        record = store.append(point(), {"energy": -1.5}, wall_time_s=0.25)
        assert record["schema"] == RESULT_SCHEMA_VERSION
        assert record["result"]["energy"] == -1.5
        assert record["wall_time_s"] == 0.25

        reloaded = ResultStore(tmp_path / "s.jsonl")
        assert point().fingerprint() in reloaded
        assert reloaded.get(point().fingerprint())["result"]["energy"] == -1.5

    def test_energy_floats_roundtrip_exactly(self, tmp_path):
        # Bit-identical resume depends on JSON float round-tripping.
        energy = -109.86452370012345
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(point(), {"energy": energy}, wall_time_s=0.0)
        loaded = load_records(tmp_path / "s.jsonl")
        assert loaded[point().fingerprint()]["result"]["energy"] == energy

    def test_first_record_wins(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(point(), {"energy": 1.0}, wall_time_s=0.0)
        store.append(point(), {"energy": 2.0}, wall_time_s=0.0)
        assert len(store) == 1
        assert store.get(point().fingerprint())["result"]["energy"] == 1.0
        # The duplicate never reached the file either.
        assert len((tmp_path / "s.jsonl").read_text().splitlines()) == 1

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_records(tmp_path / "missing.jsonl") == {}


class TestCrashTolerance:
    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        fill(ResultStore(path), seeds=range(3))
        # Simulate a kill -9 mid-append: chop the last line in half.
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 40])

        store = ResultStore(path)
        report = store.load_report
        assert len(store) == 2
        assert report.corrupt_lines == 1
        assert point(0).fingerprint() in store
        assert point(2).fingerprint() not in store

    def test_unknown_schema_version_is_skipped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        fill(store, seeds=[0])
        alien = {
            "schema": RESULT_SCHEMA_VERSION + 1,
            "fingerprint": "ffff",
            "point": {},
            "result": {"energy": 9.9},
        }
        with path.open("a") as handle:
            handle.write(json.dumps(alien) + "\n")

        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert reloaded.load_report.incompatible_records == 1
        assert "ffff" not in reloaded

    def test_garbage_lines_never_fatal(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('not json\n{"also": "not a record"}\n\n')
        store = ResultStore(path)
        assert len(store) == 0
        assert store.load_report.corrupt_lines == 2

    def test_duplicate_lines_on_disk_first_wins(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        record = store.append(point(), {"energy": 1.0}, wall_time_s=0.0)
        tampered = dict(record, result={"energy": 2.0})
        with path.open("a") as handle:
            handle.write(json.dumps(tampered) + "\n")
        reloaded = ResultStore(path)
        assert reloaded.get(point().fingerprint())["result"]["energy"] == 1.0
        assert reloaded.load_report.duplicate_records == 1


class TestMerge:
    def test_merge_from_path_skips_known_fingerprints(self, tmp_path):
        a = ResultStore(tmp_path / "a.jsonl")
        b = ResultStore(tmp_path / "b.jsonl")
        fill(a, seeds=[0, 1])
        fill(b, seeds=[1, 2, 3])

        merged = a.merge_from(tmp_path / "b.jsonl")
        assert merged == 2
        assert len(a) == 4
        # a's own seed=1 record survived the merge untouched.
        assert a.get(point(1).fingerprint())["result"]["energy"] == 1.0
        # And the merge is durable, not just in-memory.
        assert len(load_records(tmp_path / "a.jsonl")) == 4

    def test_merge_is_idempotent(self, tmp_path):
        a = ResultStore(tmp_path / "a.jsonl")
        b = ResultStore(tmp_path / "b.jsonl")
        fill(a, seeds=[0])
        fill(b, seeds=[0, 1])
        assert a.merge_from(b) == 1
        assert a.merge_from(b) == 0
