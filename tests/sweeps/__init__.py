"""Tests for the repro.sweeps subsystem."""
