"""Runner behaviour: resume-by-skip, worker parity, point mechanics."""

import pytest

from repro.sweeps import (
    Point,
    ResultStore,
    SweepSpec,
    aggregate,
    execute_point,
    pivot,
    run_sweep,
)
from repro.sweeps.runner import materialize_device, materialize_workload

SPEC = SweepSpec(
    name="runner-grid",
    base={
        "workload": {"key": "H2-4"},
        "shots": 32,
        "max_iterations": 3,
        "device": {"preset": "ibmq_mumbai_like", "scale": 2.0},
    },
    axes={"scheme": ["baseline", "varsaw"], "seed": [0, 1]},
)


def stored_results(report):
    """Fingerprint -> result payload (timing fields excluded)."""
    return {fp: rec["result"] for fp, rec in report.records.items()}


class TestRunSweep:
    def test_full_run_executes_every_point_once(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        report = run_sweep(SPEC, store)
        assert report.total == 4
        assert report.skipped == 0
        assert sorted(report.executed) == sorted(
            p.fingerprint() for p in SPEC.points()
        )
        record = next(iter(report.records.values()))
        assert record["wall_time_s"] > 0
        assert record["result"]["circuits"] > 0
        assert record["result"]["shots"] > 0

    def test_interrupted_sweep_resumes_with_only_pending_points(
        self, tmp_path
    ):
        # Uninterrupted serial reference run.
        reference = run_sweep(SPEC, ResultStore(tmp_path / "ref.jsonl"))

        # "Killed" run: only 2 of 4 points complete...
        store = ResultStore(tmp_path / "killed.jsonl")
        first = run_sweep(SPEC, store, limit=2)
        assert len(first.executed) == 2
        assert first.pending_after == 2

        # ...then the process dies and a fresh one resumes from disk.
        resumed_store = ResultStore(tmp_path / "killed.jsonl")
        second = run_sweep(SPEC, resumed_store)
        assert len(second.executed) == 2
        assert set(second.executed).isdisjoint(first.executed)

        # The resumed store is bit-identical to the uninterrupted run,
        assert stored_results(second) == stored_results(reference)
        # and so is every aggregate derived from it.
        resumed_rows = aggregate(
            second.records.values(), by=["point.scheme"]
        )
        reference_rows = aggregate(
            reference.records.values(), by=["point.scheme"]
        )
        assert resumed_rows == reference_rows

    def test_resume_after_torn_tail_reexecutes_only_lost_points(
        self, tmp_path
    ):
        path = tmp_path / "torn.jsonl"
        run_sweep(SPEC, ResultStore(path))
        data = path.read_bytes()
        path.write_bytes(data[:-30])  # kill -9 mid-final-append

        store = ResultStore(path)
        report = run_sweep(SPEC, store)
        assert len(report.executed) == 1  # only the torn record re-ran
        assert len(report.records) == 4

    def test_workers_produce_identical_stored_results(self, tmp_path):
        serial = run_sweep(SPEC, ResultStore(tmp_path / "w1.jsonl"),
                           workers=1)
        threaded = run_sweep(SPEC, ResultStore(tmp_path / "w4.jsonl"),
                             workers=4)
        assert stored_results(serial) == stored_results(threaded)

    def test_progress_callback_sees_every_execution(self, tmp_path):
        seen = []
        run_sweep(
            SPEC,
            ResultStore(tmp_path / "s.jsonl"),
            progress=lambda done, total, point, record: seen.append(
                (done, total, point.fingerprint())
            ),
        )
        assert len(seen) == 4
        assert {done for done, _, _ in seen} == {1, 2, 3, 4}
        assert all(total == 4 for _, total, _ in seen)

    def test_rerun_executes_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        run_sweep(SPEC, store)
        report = run_sweep(SPEC, store)
        assert report.executed == []
        assert report.skipped == 4
        assert "skipped 4" in report.summary()

    def test_duplicate_points_execute_once(self, tmp_path):
        points = list(SPEC.points())[:1] * 3
        report = run_sweep(points, ResultStore(tmp_path / "s.jsonl"))
        assert report.total == 1
        assert len(report.executed) == 1

    def test_invalid_workers_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            run_sweep(SPEC, ResultStore(tmp_path / "s.jsonl"), workers=0)


class TestExecutePoint:
    def test_result_payload_is_json_safe_and_complete(self):
        point = Point(
            workload={"key": "H2-4"},
            scheme="varsaw",
            shots=32,
            max_iterations=3,
            seed=1,
        )
        result, wall = execute_point(point)
        assert wall >= 0
        assert set(result) == {
            "energy", "ideal_energy", "error", "iterations",
            "iterations_completed", "circuits", "shots",
            "global_fraction", "stop_reason",
        }
        assert isinstance(result["energy"], float)
        assert result["error"] == pytest.approx(
            abs(result["energy"] - result["ideal_energy"])
        )
        assert 0.0 <= result["global_fraction"] <= 1.0

    def test_baseline_has_no_global_fraction(self):
        point = Point(
            workload={"key": "H2-4"}, scheme="baseline", shots=32,
            max_iterations=2,
        )
        result, _ = execute_point(point)
        assert result["global_fraction"] is None

    def test_warm_start_changes_the_run(self):
        cold = Point(
            workload={"key": "H2-4"}, scheme="baseline", shots=32,
            max_iterations=2, seed=0,
        )
        warm = Point(
            workload={"key": "H2-4"}, scheme="baseline", shots=32,
            max_iterations=2, seed=0, warm_start_iterations=20,
        )
        cold_result, _ = execute_point(cold)
        warm_result, _ = execute_point(warm)
        assert cold.fingerprint() != warm.fingerprint()
        assert cold_result["energy"] != warm_result["energy"]

    def test_spin_workload_points_materialize(self):
        point = Point(
            workload={"model": "tfim", "n_qubits": 3},
            scheme="baseline",
            shots=32,
            max_iterations=2,
        )
        result, _ = execute_point(point)
        assert isinstance(result["energy"], float)


class TestMaterialization:
    def test_molecule_and_spin_descriptions(self):
        molecule = materialize_workload({"key": "H2-4"})
        assert molecule.key == "H2-4"
        spin = materialize_workload(
            {"model": "tfim", "n_qubits": 3, "reps": 1}
        )
        assert spin.n_qubits == 3

    def test_device_presets(self):
        assert materialize_device(None) is None
        device = materialize_device(
            {"preset": "ibmq_mumbai_like", "scale": 2.0}
        )
        assert device.n_qubits >= 4
        with pytest.raises(ValueError):
            materialize_device({"preset": "not_a_device"})


class TestAggregate:
    @pytest.fixture(scope="class")
    def records(self, tmp_path_factory):
        store = ResultStore(
            tmp_path_factory.mktemp("agg") / "s.jsonl"
        )
        return list(run_sweep(SPEC, store).records.values())

    def test_mean_over_seeds_with_ci(self, records):
        rows = aggregate(records, by=["point.scheme"])
        assert [row["point.scheme"] for row in rows] == [
            "baseline", "varsaw",
        ]
        for row in rows:
            assert row["n"] == 2
            assert row["ci_low"] <= row["mean"] <= row["ci_high"]

    def test_pivot_matches_record_values(self, records):
        rows, cols, cells = pivot(
            records, "point.scheme", "point.seed"
        )
        assert rows == ["baseline", "varsaw"]
        assert cols == [0, 1]
        for record in records:
            key = (record["point"]["scheme"], record["point"]["seed"])
            assert cells[key] == record["result"]["energy"]
