"""Golden-parity regression: every catalog grid vs its legacy output.

``tests/golden/<entry>.txt`` snapshots the tables each legacy benchmark
printed (recorded once, at quick scale, from the pre-port ad-hoc loops
via ``REPRO_GOLDEN_DIR=tests/golden python -m pytest benchmarks/``).
This suite re-runs every catalog entry through the declarative sweep
pipeline — spec -> checkpointed store -> aggregation -> rendered tables
— and asserts the bytes match, proving the port changed *nothing* about
the numbers the paper reproduction reports.

All entries share one session store (the ``repro reproduce``
deployment shape) and execute on the process pool, which doubles as a
continuous end-to-end exercise of the multi-process backend.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import is_full_scale
from repro.sweeps import CATALOG, ResultStore, run_entry

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "golden"

pytestmark = pytest.mark.skipif(
    is_full_scale(),
    reason="golden snapshots are recorded at quick scale",
)


@pytest.fixture(scope="session")
def parity_store(tmp_path_factory):
    """One shared store for every entry — grids must coexist in it."""
    return ResultStore(
        tmp_path_factory.mktemp("catalog-parity") / "store.jsonl"
    )


def test_every_golden_has_an_entry_and_vice_versa():
    golden = {path.stem for path in GOLDEN_DIR.glob("*.txt")}
    assert golden == set(CATALOG), (
        "catalog entries and golden snapshots diverged; re-record with "
        "REPRO_GOLDEN_DIR=tests/golden python -m pytest benchmarks/"
    )


@pytest.mark.parametrize("name", list(CATALOG))
def test_entry_rows_match_legacy_output(name, parity_store):
    entry = CATALOG[name]
    outcome = run_entry(
        entry, parity_store, workers=4, executor="process"
    )
    assert outcome.complete, outcome.summary()
    text = "".join(table.render() + "\n" for table in outcome.tables())
    golden = (GOLDEN_DIR / f"{name}.txt").read_text()
    if entry.normalize is not None:
        text = entry.normalize(text)
        golden = entry.normalize(golden)
    assert text == golden, (
        f"{name}: catalog-rendered tables differ from the legacy "
        f"benchmark output"
    )


@pytest.mark.parametrize("name", list(CATALOG))
def test_entry_resumes_to_zero_executions(name, parity_store):
    """After the parity run, every grid is fully checkpointed."""
    outcome = run_entry(CATALOG[name], parity_store)
    assert outcome.executed == []
    assert outcome.complete
