"""Catalog structure: every registered grid buildable and well-formed."""

from __future__ import annotations

import pytest

from repro.sweeps import CATALOG, Point, SweepSpec, get_entry
from repro.sweeps.tasks import TASKS

EXPECTED_ENTRIES = {
    "fig6_fig7", "fig8", "fig9", "fig12", "fig13", "fig14", "fig15",
    "fig16", "fig17", "fig18", "fig19",
    "table1", "table3", "table4", "table5",
    "sec67",
    "ext_calibration_gating", "ext_engine_throughput",
    "ext_gc_grouping", "ext_layout_routing",
    "ext_mitigation_shootout", "ext_qaoa",
    "ext_selective_mitigation", "ext_spin_models",
    "ext_trotter_mitigation", "ext_tuner_comparison",
    "ext_zne_comparison",
    "ext_api_session",
    "ext_backend_matrix",
    "ext_serve_throughput",
    "ext_dist_scaling",
    "ext_drift_frontier",
    "ext_drift_schedules",
}


def test_all_grids_registered():
    # The paper's 27 grids plus the PR 4 inline-estimator-spec entry,
    # the PR 5 execution-backend matrix, the PR 6 serve benchmark, the
    # PR 9 sharded-sweep scaling benchmark, and the PR 10 calibration
    # drift frontier + schedule sweep.
    assert set(CATALOG) == EXPECTED_ENTRIES
    assert len(CATALOG) == 33


def test_unknown_entry_raises():
    with pytest.raises(KeyError):
        get_entry("fig99")


@pytest.mark.parametrize("name", sorted(EXPECTED_ENTRIES))
def test_entry_builds_a_valid_spec(name):
    entry = CATALOG[name]
    spec = entry.build()
    assert isinstance(spec, SweepSpec)
    assert spec.name == name
    points = spec.points()
    assert len(points) >= 1
    # Every point is executable: its task is registered and its
    # fingerprint is stable across a JSON round trip.
    for point in points:
        assert point.task in TASKS
        clone = Point.from_dict(point.to_dict())
        assert clone.fingerprint() == point.fingerprint()


def test_specs_build_deterministically():
    for entry in CATALOG.values():
        first = [p.fingerprint() for p in entry.build().points()]
        second = [p.fingerprint() for p in entry.build().points()]
        assert first == second


def test_entries_do_not_collide_in_one_store():
    """All grids coexist in one shared store: within an entry every
    cell is distinct (a duplicate fingerprint would silently drop a
    grid cell); across entries a shared fingerprint is dedup, which is
    fine."""
    total = 0
    for entry in CATALOG.values():
        fingerprints = [
            p.fingerprint() for p in entry.build().points()
        ]
        assert len(fingerprints) == len(set(fingerprints)), entry.name
        total += len(fingerprints)
    assert total > 100  # the full catalog is a real grid population
