"""Spec construction, grid expansion, and fingerprint stability."""

import pytest

from repro.sweeps import Point, SweepSpec


def h2_point(**overrides):
    fields = {
        "workload": {"key": "H2-4"},
        "scheme": "baseline",
        "seed": 3,
        "shots": 64,
        "max_iterations": 5,
        "device": {"preset": "ibmq_mumbai_like", "scale": 2.0},
    }
    fields.update(overrides)
    return Point(**fields)


class TestPoint:
    def test_fingerprint_ignores_dict_ordering(self):
        a = Point(
            workload={"key": "H2-4", "reps": 2},
            scheme="varsaw",
            device={"preset": "ibmq_mumbai_like", "scale": 1.5},
        )
        b = Point(
            scheme="varsaw",
            device={"scale": 1.5, "preset": "ibmq_mumbai_like"},
            workload={"reps": 2, "key": "H2-4"},
        )
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_distinguishes_every_field(self):
        base = h2_point()
        variants = [
            h2_point(workload={"key": "LiH-6"}),
            h2_point(scheme="varsaw"),
            h2_point(seed=4),
            h2_point(shots=128),
            h2_point(max_iterations=6),
            h2_point(circuit_budget=100),
            h2_point(spsa_gain=None),
            h2_point(warm_start_iterations=50),
            h2_point(device={"preset": "ibmq_mumbai_like", "scale": 3.0}),
            h2_point(device=None),
            h2_point(estimator={"shots": 96}),
        ]
        fingerprints = {p.fingerprint() for p in variants}
        assert base.fingerprint() not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_fingerprint_pinned(self):
        # Golden value: catches accidental canonicalization or schema
        # drift that would silently orphan every existing store.
        # (Re-pinned for POINT_SCHEMA_VERSION 2 — the task/options/
        # warm_start fields deliberately invalidated v1 stores.)
        assert h2_point().fingerprint() == (
            "8937acc66d8ee3bccad1cd1bd510d647"
        )

    def test_dict_roundtrip_preserves_fingerprint(self):
        point = h2_point(
            scheme="varsaw", estimator={"window": 3}, circuit_budget=500
        )
        clone = Point.from_dict(point.to_dict())
        assert clone == point
        assert clone.fingerprint() == point.fingerprint()

    def test_workload_must_name_exactly_one_kind(self):
        with pytest.raises(ValueError):
            h2_point(workload={})
        with pytest.raises(ValueError):
            h2_point(workload={"key": "H2-4", "model": "tfim"})

    def test_basic_validation(self):
        with pytest.raises(ValueError):
            h2_point(shots=0)
        with pytest.raises(ValueError):
            h2_point(max_iterations=0)
        with pytest.raises(ValueError):
            h2_point(circuit_budget=0)
        with pytest.raises(ValueError):
            h2_point(scheme="")
        with pytest.raises(ValueError):
            h2_point(device={"scale": 2.0})

    def test_warm_start_requires_molecule_workload(self):
        with pytest.raises(ValueError, match="molecule workload"):
            h2_point(
                workload={"model": "tfim", "n_qubits": 3},
                warm_start_iterations=50,
            )

    def test_unserializable_field_rejected(self):
        with pytest.raises(TypeError):
            h2_point(options={"callback": object()}).fingerprint()
        # Estimator payloads fail even earlier: the registry's typed
        # validation rejects a non-JSON value at point construction.
        with pytest.raises(ValueError):
            h2_point(estimator={"shots": object()})


class TestSweepSpec:
    def make_spec(self, **overrides):
        fields = {
            "name": "grid",
            "base": {"workload": {"key": "H2-4"}, "shots": 32,
                     "max_iterations": 4},
            "axes": {"scheme": ["baseline", "varsaw"], "seed": [0, 1, 2]},
        }
        fields.update(overrides)
        return SweepSpec(**fields)

    def test_points_are_the_cross_product(self):
        spec = self.make_spec()
        points = spec.points()
        assert len(spec) == 6
        # First axis is outermost.
        assert [p.scheme for p in points[:3]] == ["baseline"] * 3
        assert [p.seed for p in points[:3]] == [0, 1, 2]
        assert all(p.shots == 32 for p in points)

    def test_axis_order_does_not_change_fingerprints(self):
        forward = self.make_spec()
        reversed_axes = self.make_spec(
            axes={"seed": [0, 1, 2], "scheme": ["baseline", "varsaw"]}
        )
        assert {p.fingerprint() for p in forward.points()} == {
            p.fingerprint() for p in reversed_axes.points()
        }

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError):
            self.make_spec(base={"workload": {"key": "H2-4"}, "turbo": True})
        with pytest.raises(ValueError):
            self.make_spec(axes={"frobnicate": [1, 2]})

    def test_base_axis_overlap_rejected(self):
        with pytest.raises(ValueError):
            self.make_spec(
                base={"workload": {"key": "H2-4"}, "seed": 0},
                axes={"seed": [0, 1]},
            )

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            self.make_spec(axes={"seed": []})

    def test_malformed_cell_fails_at_build_time(self):
        with pytest.raises(ValueError):
            self.make_spec(axes={"shots": [32, 0]})

    def test_json_roundtrip(self):
        spec = self.make_spec(
            report={"rows": "point.seed", "cols": "point.scheme"}
        )
        clone = SweepSpec.from_json(spec.to_json())
        assert clone == spec
        assert [p.fingerprint() for p in clone.points()] == [
            p.fingerprint() for p in spec.points()
        ]

    def test_json_file_roundtrip(self, tmp_path):
        spec = self.make_spec()
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert SweepSpec.from_json_file(path) == spec


class TestV2Validation:
    def test_workload_tasks_require_a_workload(self):
        with pytest.raises(ValueError, match="must name exactly one"):
            Point(task="energy", scheme="ideal")
        with pytest.raises(ValueError, match="must name exactly one"):
            Point(task="zne", scheme="baseline",
                  options={"scales": [1.0, 2.0]})
        # Structure-style tasks are fine without one.
        assert Point(task="cost_model",
                     options={"qubits": [4]}).task == "cost_model"

    def test_warm_start_requires_positive_iterations(self):
        with pytest.raises(ValueError, match="iterations"):
            Point(
                workload={"model": "tfim", "n_qubits": 4},
                scheme="varsaw",
                warm_start={"kind": "ideal_vqe", "seed": 73},
            )
        with pytest.raises(ValueError, match="iterations"):
            Point(
                workload={"key": "H2-4"},
                scheme="varsaw",
                warm_start={"kind": "optimal", "iterations": 0},
            )


class TestEstimatorPayloadValidation:
    """PR 4: estimator payloads are typed against the repro.api registry."""

    BASE = dict(workload={"key": "H2-4"}, scheme="varsaw")

    def test_valid_payload_accepted(self):
        point = Point(estimator={"window": 3, "mbm": True}, **self.BASE)
        assert point.estimator == {"window": 3, "mbm": True}

    def test_misspelled_key_fails_at_point_build(self):
        with pytest.raises(ValueError, match="'windw'"):
            Point(estimator={"windw": 3}, **self.BASE)

    def test_out_of_range_value_fails_at_point_build(self):
        with pytest.raises(ValueError, match="window"):
            Point(estimator={"window": 0}, **self.BASE)

    def test_misspelled_key_fails_at_sweepspec_build(self):
        with pytest.raises(ValueError, match="'windw'"):
            SweepSpec(
                name="bad",
                base={"workload": {"key": "H2-4"}, "scheme": "varsaw"},
                axes={"estimator": [{"window": 2}, {"windw": 3}]},
            )

    def test_inline_kind_replaces_scheme(self):
        point = Point(
            workload={"key": "H2-4"},
            estimator={"kind": "selective", "mass_fraction": 0.8},
        )
        assert point.scheme == ""
        assert point.estimator["kind"] == "selective"

    def test_inline_kind_must_be_registered(self):
        with pytest.raises(ValueError, match="unknown estimator kind"):
            Point(
                workload={"key": "H2-4"},
                estimator={"kind": "magic"},
            )

    def test_inline_kind_params_validated(self):
        with pytest.raises(ValueError, match="mass_fraction"):
            Point(
                workload={"key": "H2-4"},
                estimator={"kind": "selective", "mass_fraction": 2.0},
            )

    def test_tuning_without_scheme_or_kind_rejected(self):
        with pytest.raises(ValueError, match="scheme"):
            Point(workload={"key": "H2-4"})

    def test_unregistered_scheme_without_payload_deferred(self):
        # Task executors may interpret schemes themselves; only points
        # that carry estimator parameters (or inline kinds) must
        # resolve against the registry.
        point = Point(workload={"key": "H2-4"}, scheme="bespoke")
        assert point.scheme == "bespoke"

    def test_fingerprints_unchanged_for_classic_points(self):
        # The schema gained no fields: stores written before the API
        # redesign keep matching (golden parity depends on this).
        point = Point(
            workload={"key": "H2-4"}, scheme="varsaw",
            estimator={"window": 2},
        )
        assert point.fingerprint() == Point.from_dict(
            point.to_dict()
        ).fingerprint()
