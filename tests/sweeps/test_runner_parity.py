"""Pool-backend parity: serial / thread / process stores are identical.

The acceptance bar for the process-pool backend: for a grid sample that
spans the new workload kinds (molecule + QAOA tuning, a Trotter quench
task, a structure count), the fingerprint -> result mapping stored by
``workers=1``, a 4-thread pool, and a 4-process pool must be
bit-identical — per-point deterministic seeding means the pool is pure
mechanics.
"""

from __future__ import annotations

import json

import pytest

from repro.sweeps import Point, ResultStore, run_sweep

#: A cheap cross-kind sample: molecule VQE, QAOA VQE (cold-start SPSA),
#: a Trotter quench cell, and a structure count.
SAMPLE = [
    Point(workload={"key": "H2-4"}, scheme="varsaw", shots=32,
          max_iterations=3, seed=1,
          device={"preset": "ibmq_mumbai_like", "scale": 2.0}),
    Point(workload={"qaoa": "ring", "n_qubits": 4, "reps": 1},
          scheme="baseline", shots=32, max_iterations=3, seed=23,
          spsa_gain=None,
          device={"preset": "ibmq_mumbai_like", "scale": 2.0}),
    Point(task="quench",
          options={"t": 0.25, "n_qubits": 3, "field": 1.2,
                   "shots": 256, "noise_scale": 2.0}),
    Point(task="structure", workload={"key": "H2-4"},
          options={"window": 2}),
]


def stored_results(store: ResultStore) -> dict:
    return {
        record["fingerprint"]: record["result"]
        for record in store.records()
    }


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    store = ResultStore(
        tmp_path_factory.mktemp("serial") / "store.jsonl"
    )
    report = run_sweep(SAMPLE, store, workers=1)
    assert len(report.executed) == len(SAMPLE)
    return stored_results(store)


def test_thread_pool_matches_serial(reference, tmp_path):
    store = ResultStore(tmp_path / "threads.jsonl")
    run_sweep(SAMPLE, store, workers=4, executor="thread")
    assert stored_results(store) == reference


def test_process_pool_matches_serial(reference, tmp_path):
    store = ResultStore(tmp_path / "processes.jsonl")
    report = run_sweep(SAMPLE, store, workers=4, executor="process")
    assert len(report.executed) == len(SAMPLE)
    assert stored_results(store) == reference


def test_process_pool_results_are_bit_identical_json(reference, tmp_path):
    """Beyond dict equality: the canonical JSON encodings match, so a
    resumed store file aggregates to identical bytes."""
    store = ResultStore(tmp_path / "bits.jsonl")
    run_sweep(SAMPLE, store, workers=2, executor="process")
    for fingerprint, result in stored_results(store).items():
        assert json.dumps(result, sort_keys=True) == json.dumps(
            reference[fingerprint], sort_keys=True
        )


def test_process_pool_resumes_by_skipping(reference, tmp_path):
    """A killed process-pool run resumes: completed points skipped."""
    store = ResultStore(tmp_path / "resume.jsonl")
    first = run_sweep(SAMPLE, store, workers=4, executor="process",
                      limit=2)
    assert len(first.executed) == 2
    # Fresh store object (fresh process), same file: resume.
    resumed = ResultStore(store.path)
    second = run_sweep(SAMPLE, resumed, workers=4, executor="process")
    assert len(second.executed) == 2
    assert set(second.executed).isdisjoint(first.executed)
    assert stored_results(resumed) == reference
    # And a third pass executes nothing across both backends.
    assert run_sweep(SAMPLE, resumed, executor="thread").executed == []
    assert run_sweep(
        SAMPLE, resumed, workers=2, executor="process"
    ).executed == []


def test_unknown_executor_rejected(tmp_path):
    with pytest.raises(ValueError):
        run_sweep(SAMPLE, ResultStore(tmp_path / "x.jsonl"),
                  executor="fork-bomb")
