"""Unit tests for TFIM Hamiltonians."""

import pytest

from repro.hamiltonian import paper_tfim, tfim_hamiltonian


class TestTfim:
    def test_term_count_open_chain(self):
        # n-1 ZZ bonds + n X fields.
        ham = tfim_hamiltonian(5)
        assert ham.num_terms == 4 + 5

    def test_term_count_periodic(self):
        ham = tfim_hamiltonian(5, periodic=True)
        assert ham.num_terms == 5 + 5

    def test_needs_two_qubits(self):
        with pytest.raises(ValueError):
            tfim_hamiltonian(1)

    def test_coefficients_negative(self):
        ham = tfim_hamiltonian(3, coupling=2.0, field=0.5)
        coeffs = {p.label: c for c, p in ham.terms}
        assert coeffs["ZZI"] == -2.0
        assert coeffs["IIX"] == -0.5


class TestPaperTfim:
    def test_five_qubits_three_terms(self):
        """Fig. 16's workload: 5 qubits, exactly 3 Pauli terms."""
        ham = paper_tfim()
        assert ham.n_qubits == 5
        assert ham.num_terms == 3

    def test_spans_two_bases(self):
        """Needs both Z-type and X-type measurements (so Globals matter)."""
        chars = {
            c
            for _, p in paper_tfim().terms
            for c in p.label
            if c != "I"
        }
        assert chars == {"Z", "X"}

    def test_measurement_groups_one_per_term(self):
        # No term covers another (disjoint supports), so trivial
        # commutation keeps all three circuits.
        assert len(paper_tfim().measurement_groups()) == 3
