"""Unit tests for the Hamiltonian container."""

import numpy as np
import pytest

from repro.hamiltonian import Hamiltonian, ground_state_energy
from repro.pauli import PauliString


class TestConstruction:
    def test_merges_duplicate_terms(self):
        ham = Hamiltonian([(1.0, "ZZ"), (0.5, "ZZ")])
        assert ham.num_terms == 1
        assert ham.terms[0][0] == 1.5

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Hamiltonian([(1.0, "ZZ"), (1.0, "Z")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Hamiltonian([])

    def test_identity_coefficient(self):
        ham = Hamiltonian([(2.5, "II"), (1.0, "ZZ")])
        assert ham.identity_coefficient == 2.5

    def test_non_identity_terms(self):
        ham = Hamiltonian([(2.5, "II"), (1.0, "ZZ")])
        assert ham.non_identity_terms() == [(1.0, PauliString("ZZ"))]

    def test_shifted_moves_spectrum(self):
        ham = Hamiltonian([(1.0, "Z")])
        shifted = ham.shifted(10.0)
        assert ground_state_energy(shifted) == pytest.approx(
            ground_state_energy(ham) + 10.0
        )


class TestMatrix:
    def test_z_matrix(self):
        ham = Hamiltonian([(2.0, "Z")])
        assert np.allclose(
            ham.to_sparse_matrix().toarray(), np.diag([2.0, -2.0])
        )

    def test_sum_of_terms(self):
        ham = Hamiltonian([(1.0, "X"), (1.0, "Z")])
        expected = np.array([[1, 1], [1, -1]], dtype=complex)
        assert np.allclose(ham.to_sparse_matrix().toarray(), expected)

    def test_refuses_huge_matrices(self):
        ham = Hamiltonian([(1.0, "Z" * 20)])
        with pytest.raises(ValueError):
            ham.to_sparse_matrix()

    def test_expectation_exact(self):
        ham = Hamiltonian([(1.0, "Z")])
        plus = np.array([1, 1]) / np.sqrt(2)
        assert ham.expectation_exact(plus) == pytest.approx(0.0)
        zero = np.array([1, 0], dtype=complex)
        assert ham.expectation_exact(zero) == pytest.approx(1.0)


class TestGrouping:
    def test_groups_cover_all_terms(self, fig6_hamiltonian):
        groups = fig6_hamiltonian.measurement_groups()
        members = [m for g in groups for m in g.members]
        assert len(members) == fig6_hamiltonian.num_terms  # no identity here

    def test_groups_cached(self, fig6_hamiltonian):
        assert (
            fig6_hamiltonian.measurement_groups()
            is fig6_hamiltonian.measurement_groups()
        )

    def test_fig6_count(self, fig6_hamiltonian):
        assert len(fig6_hamiltonian.measurement_groups()) == 7
