"""Unit tests for Heisenberg and XY spin-chain Hamiltonians."""

import pytest

from repro.hamiltonian import (
    ground_state_energy,
    heisenberg_hamiltonian,
    tfim_hamiltonian,
    xy_hamiltonian,
)


class TestHeisenberg:
    def test_term_count_open_chain(self):
        # 3 couplings per bond, n-1 bonds, plus n field terms.
        ham = heisenberg_hamiltonian(4, field=0.5)
        assert ham.num_terms == 3 * 3 + 4

    def test_periodic_adds_bond(self):
        open_chain = heisenberg_hamiltonian(4)
        ring = heisenberg_hamiltonian(4, periodic=True)
        assert ring.num_terms == open_chain.num_terms + 3

    def test_zero_couplings_dropped(self):
        ham = heisenberg_hamiltonian(3, jx=1.0, jy=0.0, jz=0.0)
        labels = {p.label for _, p in ham.terms}
        assert labels == {"XXI", "IXX"}

    def test_spans_three_bases(self):
        """XX, YY, ZZ terms need three measurement bases per bond —
        the property Section 7.3 says favors VarSaw."""
        ham = heisenberg_hamiltonian(4)
        chars = {
            c for _, p in ham.terms for c in p.label if c != "I"
        }
        assert chars == {"X", "Y", "Z"}

    def test_known_two_site_ground_energy(self):
        """Two-site isotropic Heisenberg: singlet at E = -3J (J sum of
        XX+YY+ZZ eigenvalue -3 on the singlet)."""
        ham = heisenberg_hamiltonian(2, jx=1.0, jy=1.0, jz=1.0)
        assert ground_state_energy(ham) == pytest.approx(-3.0)

    def test_needs_two_qubits(self):
        with pytest.raises(ValueError):
            heisenberg_hamiltonian(1)


class TestXY:
    def test_isotropic_has_no_yy_asymmetry(self):
        ham = xy_hamiltonian(3, coupling=1.0, anisotropy=0.0)
        coeffs = {p.label: c for c, p in ham.terms}
        assert coeffs["XXI"] == pytest.approx(coeffs["YYI"])

    def test_full_anisotropy_drops_yy(self):
        ham = xy_hamiltonian(3, anisotropy=1.0)
        labels = {p.label for _, p in ham.terms}
        assert all("Y" not in label for label in labels)

    def test_anisotropy_bounds(self):
        with pytest.raises(ValueError):
            xy_hamiltonian(3, anisotropy=1.5)

    def test_field_terms(self):
        ham = xy_hamiltonian(3, field=0.7)
        coeffs = {p.label: c for c, p in ham.terms}
        assert coeffs["ZII"] == pytest.approx(-0.7)

    def test_xy_at_gamma1_matches_ising_spectrum(self):
        """gamma = 1 XY chain = TFIM up to an X<->Z basis relabel, so the
        ground energies coincide."""
        xy = xy_hamiltonian(4, coupling=2.0, anisotropy=1.0, field=0.3)
        # -J/2 (1+1) XX - h Z == TFIM with coupling J on XX...
        # relabeled TFIM: -2.0 XX bonds and -0.3 Z fields.
        tfim = tfim_hamiltonian(4, coupling=2.0, field=0.3)
        assert ground_state_energy(xy) == pytest.approx(
            ground_state_energy(tfim), abs=1e-9
        )

    def test_varsaw_spatial_reduction_applies(self):
        """Spin chains benefit from subset commuting like molecules do."""
        from repro.core import count_jigsaw_subsets, count_varsaw_subsets

        ham = heisenberg_hamiltonian(8, field=0.3)
        assert count_varsaw_subsets(ham) < count_jigsaw_subsets(ham)
