"""Unit tests for exact diagonalization."""

import numpy as np
import pytest

from repro.hamiltonian import (
    Hamiltonian,
    ground_state,
    ground_state_energy,
    tfim_hamiltonian,
)


class TestGroundState:
    def test_single_z(self):
        energy, state = ground_state(Hamiltonian([(1.0, "Z")]))
        assert energy == pytest.approx(-1.0)
        assert abs(state[1]) == pytest.approx(1.0)

    def test_x_ground_state_is_minus(self):
        energy, state = ground_state(Hamiltonian([(1.0, "X")]))
        assert energy == pytest.approx(-1.0)
        # |-> has equal magnitude, opposite sign amplitudes.
        assert abs(abs(state[0]) - abs(state[1])) < 1e-9

    def test_eigsh_path_for_larger_systems(self):
        """> 6 qubits goes through sparse Lanczos; compare to dense."""
        ham = tfim_hamiltonian(7, coupling=1.0, field=0.5)
        sparse_energy = ground_state_energy(ham)
        dense = np.linalg.eigvalsh(ham.to_sparse_matrix().toarray())
        assert sparse_energy == pytest.approx(float(dense[0]), abs=1e-8)

    def test_tfim_exact_limits(self):
        # Zero field: classical Ising chain, ground energy -(n-1)*J.
        ham = tfim_hamiltonian(4, coupling=1.0, field=0.0)
        assert ground_state_energy(ham) == pytest.approx(-3.0)
        # Zero coupling: n independent spins in X field, energy -n*h.
        ham = tfim_hamiltonian(4, coupling=0.0, field=1.0)
        assert ground_state_energy(ham) == pytest.approx(-4.0)

    def test_energy_is_variational_lower_bound(self, h2):
        """No statevector can beat the exact ground energy."""
        rng = np.random.default_rng(0)
        e0 = ground_state_energy(h2)
        for _ in range(5):
            psi = rng.normal(size=16) + 1j * rng.normal(size=16)
            psi /= np.linalg.norm(psi)
            assert h2.expectation_exact(psi) >= e0 - 1e-9
