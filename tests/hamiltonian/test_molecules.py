"""Unit tests for the Table 2 molecule registry and synthetic generator."""

import pytest

from repro.hamiltonian import (
    MOLECULES,
    build_hamiltonian,
    ground_state_energy,
    molecule_keys,
    reference_energy,
)


class TestRegistry:
    def test_table2_rows_present(self):
        assert len(MOLECULES) == 13

    def test_table2_counts(self):
        """Qubits and Pauli terms exactly as printed in Table 2."""
        expected = {
            "H2-4": (4, 15),
            "LiH-6": (6, 118),
            "LiH-8": (8, 193),
            "H2O-6": (6, 62),
            "H2O-8": (8, 193),
            "H2O-12": (12, 670),
            "CH4-6": (6, 94),
            "CH4-8": (8, 241),
            "H6-10": (10, 919),
            "BeH2-12": (12, 670),
            "N2-12": (12, 660),
            "C2H4-20": (20, 10510),
            "Cr2-34": (34, 32699),
        }
        for key, (qubits, terms) in expected.items():
            spec = MOLECULES[key]
            assert (spec.n_qubits, spec.n_terms) == (qubits, terms)

    def test_temporal_flags_match_table2(self):
        temporal = {k for k, s in MOLECULES.items() if s.temporal}
        assert temporal == {
            "H2-4", "LiH-6", "LiH-8", "H2O-6", "H2O-8", "CH4-6", "CH4-8",
        }

    def test_molecule_keys_filter(self):
        assert len(molecule_keys()) == 13
        assert len(molecule_keys(temporal_only=True)) == 7


class TestBuildHamiltonian:
    @pytest.mark.parametrize(
        "key", ["H2-4", "LiH-6", "H2O-6", "CH4-6", "LiH-8", "CH4-8"]
    )
    def test_term_counts_match_spec(self, key):
        ham = build_hamiltonian(key)
        assert ham.num_terms == MOLECULES[key].n_terms
        assert ham.n_qubits == MOLECULES[key].n_qubits

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            build_hamiltonian("He-2")

    def test_deterministic_and_cached(self):
        assert build_hamiltonian("LiH-6") is build_hamiltonian("LiH-6")

    def test_h2_uses_published_structure(self):
        """H2-4 keeps the canonical STO-3G JW structure: 4 XXYY-type terms."""
        ham = build_hamiltonian("H2-4")
        exchange = [
            p for _, p in ham.terms if set(p.label) <= {"X", "Y"} and p.weight == 4
        ]
        assert len(exchange) == 4

    def test_reference_energy_calibration(self):
        """Ground-state energy equals the paper's Table 1 reference."""
        for key in ["H2-4", "LiH-6", "H2O-6", "CH4-6"]:
            ref = MOLECULES[key].reference_energy
            assert ground_state_energy(build_hamiltonian(key)) == pytest.approx(
                ref, abs=1e-6
            )

    def test_same_molecule_same_reference_across_configs(self):
        """The paper: ideal energy is identical across configurations."""
        assert reference_energy("LiH-6") == reference_energy("LiH-8")
        assert reference_energy("CH4-6") == reference_energy("CH4-8")

    def test_same_size_molecules_differ(self):
        """LiH-8 and H2O-8 share (qubits, terms) but not term sets."""
        lih = {p.label for _, p in build_hamiltonian("LiH-8").terms}
        h2o = {p.label for _, p in build_hamiltonian("H2O-8").terms}
        assert lih != h2o

    def test_synthetic_has_diagonal_core(self):
        """Identity, all single-Z, and all ZZ terms are always present."""
        ham = build_hamiltonian("CH4-6")
        labels = {p.label for _, p in ham.terms}
        assert "I" * 6 in labels
        for i in range(6):
            assert "".join("Z" if j == i else "I" for j in range(6)) in labels

    def test_reference_energy_large_molecule_rejected(self):
        with pytest.raises(ValueError):
            reference_energy("Cr2-34")
