"""Unit tests for sliding-window subset generation."""

import pytest

from repro.mitigation import jigsaw_subsets_per_term, sliding_windows, term_subsets
from repro.mitigation.subsets import count_term_subsets
from repro.pauli import PauliString


class TestSlidingWindows:
    def test_window_2_of_4(self):
        assert sliding_windows(4, 2) == [(0, 1), (1, 2), (2, 3)]

    def test_window_covering_everything(self):
        assert sliding_windows(3, 3) == [(0, 1, 2)]
        assert sliding_windows(3, 5) == [(0, 1, 2)]

    def test_window_1(self):
        assert sliding_windows(3, 1) == [(0,), (1,), (2,)]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            sliding_windows(3, 0)


class TestTermSubsets:
    def test_fig6_zziz(self):
        """'ZZIZ' -> ZZ--, -ZI-, --IZ (Fig. 6 Eq. 3, first row)."""
        subsets = term_subsets(PauliString("ZZIZ"), 2)
        assert [s.label for s in subsets] == ["ZZII", "IZII", "IIIZ"]

    def test_all_i_windows_weeded(self):
        """'ZZII' keeps 2 windows: (2,3) is all-I and is dropped."""
        subsets = term_subsets(PauliString("ZZII"), 2)
        assert len(subsets) == 2

    def test_identity_term_has_no_subsets(self):
        assert term_subsets(PauliString("IIII"), 2) == []

    def test_count_matches_list(self):
        for label in ["ZZIZ", "ZZII", "IIII", "XIXI", "ZXXZ", "IIIX"]:
            term = PauliString(label)
            assert count_term_subsets(term, 2) == len(term_subsets(term, 2))

    def test_count_wide_window(self):
        assert count_term_subsets(PauliString("ZZ"), 5) == 1
        assert count_term_subsets(PauliString("II"), 5) == 0


class TestJigsawPerTerm:
    def test_fig6_jigsaw_total_21(self, fig6_paulis):
        """The 7 C_Comm strings yield exactly 21 subsets (Eq. 3)."""
        from repro.pauli import cover_reduce

        reps = [g.members[0] for g in cover_reduce(fig6_paulis, 4)]
        assert len(jigsaw_subsets_per_term(reps, 2)) == 21

    def test_no_cross_term_sharing(self):
        """Identical subsets from different terms are both counted."""
        subsets = jigsaw_subsets_per_term(["ZZII", "ZZZZ"], 2)
        labels = [s.label for s in subsets]
        assert labels.count("ZZII") == 2
