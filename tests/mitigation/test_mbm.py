"""Unit tests for matrix-based measurement mitigation."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.mitigation import MatrixMitigator
from repro.noise import SimulatorBackend
from repro.sim import PMF


class TestConstruction:
    def test_rejects_non_stochastic(self):
        with pytest.raises(ValueError):
            MatrixMitigator({0: np.array([[0.9, 0.3], [0.2, 0.7]])})

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            MatrixMitigator({0: np.eye(4)})


class TestExactCalibration:
    def test_inverts_readout_channel_exactly(self, tiny_device):
        """mitigate(noisy_pmf) == ideal_pmf when A comes from the model."""
        backend = SimulatorBackend(tiny_device, seed=0)
        qc = Circuit(4)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure([0, 1])
        noisy = backend.exact_pmf(qc)
        backend_clean = SimulatorBackend(
            tiny_device, seed=0, readout_enabled=False
        )
        ideal = backend_clean.exact_pmf(qc)
        mitigator = MatrixMitigator.from_device(backend, [0, 1])
        recovered = mitigator.mitigate_pmf(noisy)
        assert np.allclose(recovered.probs, ideal.probs, atol=1e-10)

    def test_missing_qubit_calibration(self, tiny_device):
        backend = SimulatorBackend(tiny_device, seed=0)
        mitigator = MatrixMitigator.from_device(backend, [0])
        with pytest.raises(ValueError):
            mitigator.mitigate_pmf(PMF([0.25] * 4, qubits=(0, 1)))


class TestSampledCalibration:
    def test_calibrate_estimates_flip_rates(self, tiny_device):
        backend = SimulatorBackend(tiny_device, seed=5)
        mitigator = MatrixMitigator.calibrate(backend, [0, 1], shots=60_000)
        exact = MatrixMitigator.from_device(backend, [0, 1], n_measured=2)
        for q in (0, 1):
            assert np.allclose(
                mitigator.matrices[q], exact.matrices[q], atol=0.01
            )

    def test_calibrate_charges_two_circuits(self, tiny_device):
        backend = SimulatorBackend(tiny_device, seed=5)
        MatrixMitigator.calibrate(backend, [0, 1], shots=100)
        assert backend.circuits_run == 2


class TestPhysicalityProjection:
    def test_negative_probabilities_clipped(self):
        # An inverse applied to statistically impossible counts can go
        # negative; the projection must return a valid PMF.
        mitigator = MatrixMitigator(
            {0: np.array([[0.8, 0.3], [0.2, 0.7]])}
        )
        weird = PMF([0.05, 0.95], qubits=(0,))
        out = mitigator.mitigate_pmf(weird)
        assert np.all(out.probs >= 0)
        assert np.isclose(out.probs.sum(), 1.0)

    def test_mitigate_counts_path(self, tiny_device):
        from repro.sim import Counts

        backend = SimulatorBackend(tiny_device, seed=0)
        mitigator = MatrixMitigator.from_device(backend, [0])
        counts = Counts({"0": 90, "1": 10}, qubits=(0,))
        out = mitigator.mitigate_counts(counts)
        assert out.n_qubits == 1
