"""Unit tests for single-circuit JigSaw mitigation."""

import numpy as np
import pytest

from repro.circuits import Circuit, Parameter
from repro.mitigation import jigsaw_mitigate
from repro.noise import SimulatorBackend
from repro.sim import PMF


def ghz(n: int) -> Circuit:
    qc = Circuit(n)
    qc.h(0)
    for i in range(n - 1):
        qc.cx(i, i + 1)
    return qc


def ghz_truth(n: int) -> PMF:
    probs = np.zeros(2**n)
    probs[0] = probs[-1] = 0.5
    return PMF(probs)


class TestJigsawMitigate:
    def test_recovers_ghz_under_readout_noise(self, tiny_device):
        """The MICRO'21 headline: mitigated GHZ beats the raw global."""
        backend = SimulatorBackend(tiny_device, seed=0)
        result = jigsaw_mitigate(backend, ghz(4), shots=30_000)
        truth = ghz_truth(4)
        assert result.output.tvd(truth) < result.global_pmf.tvd(truth)

    def test_circuit_accounting(self, tiny_device):
        backend = SimulatorBackend(tiny_device, seed=1)
        result = jigsaw_mitigate(backend, ghz(4), shots=128, window=2)
        # 1 global + 3 windows.
        assert result.circuits_executed == 4
        assert backend.circuits_run == 4
        assert len(result.local_pmfs) == 3

    def test_window_size_changes_subset_count(self):
        from repro.noise import ibmq_mumbai_like

        backend = SimulatorBackend(ibmq_mumbai_like(), seed=2)
        result = jigsaw_mitigate(backend, ghz(5), shots=64, window=3)
        assert len(result.local_pmfs) == 3  # 5 - 3 + 1

    def test_noise_free_is_consistent(self):
        backend = SimulatorBackend(seed=3)
        result = jigsaw_mitigate(backend, ghz(3), shots=100_000)
        assert result.output.tvd(ghz_truth(3)) < 0.02

    def test_unbound_rejected(self, tiny_device):
        qc = Circuit(2)
        qc.rx(Parameter("a"), 0)
        backend = SimulatorBackend(tiny_device, seed=4)
        with pytest.raises(ValueError):
            jigsaw_mitigate(backend, qc, shots=16)

    def test_bad_window(self, tiny_device):
        backend = SimulatorBackend(tiny_device, seed=5)
        with pytest.raises(ValueError):
            jigsaw_mitigate(backend, ghz(3), shots=16, window=0)

    def test_does_not_mutate_input_circuit(self, tiny_device):
        backend = SimulatorBackend(tiny_device, seed=6)
        qc = ghz(3)
        jigsaw_mitigate(backend, qc, shots=16)
        assert qc.measured_qubits == set()
