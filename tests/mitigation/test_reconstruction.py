"""Unit tests for Bayesian reconstruction (JigSaw step 3)."""

import numpy as np
import pytest

from repro.mitigation import bayesian_reconstruct, subset_index_map
from repro.sim import PMF


class TestSubsetIndexMap:
    def test_msb_convention(self):
        # For n=2, qubits=(0,): local index is the most significant bit.
        index = subset_index_map(2, (0,))
        assert list(index) == [0, 0, 1, 1]

    def test_lsb_qubit(self):
        index = subset_index_map(2, (1,))
        assert list(index) == [0, 1, 0, 1]

    def test_pair_order_matters(self):
        forward = subset_index_map(2, (0, 1))
        backward = subset_index_map(2, (1, 0))
        assert list(forward) == [0, 1, 2, 3]
        assert list(backward) == [0, 2, 1, 3]

    def test_three_qubit_window(self):
        index = subset_index_map(3, (1, 2))
        # Outcome x=0b101 (q0=1,q1=0,q2=1) restricted to (q1,q2) = 0b01.
        assert index[0b101] == 0b01


class TestBayesianReconstruct:
    def test_no_locals_is_identity(self):
        g = PMF([0.1, 0.2, 0.3, 0.4])
        assert bayesian_reconstruct(g, []) == g

    def test_perfect_local_fixes_marginal(self):
        """After the update, the output's marginal equals the local."""
        g = PMF([0.4, 0.1, 0.1, 0.4])
        local = PMF([0.9, 0.1], qubits=(0,))
        out = bayesian_reconstruct(g, [local])
        assert np.allclose(out.marginal([0]).probs, local.probs)

    def test_preserves_conditionals(self):
        """Reconstruction rescales, keeping within-subset conditionals."""
        g = PMF([0.30, 0.20, 0.10, 0.40])
        local = PMF([0.5, 0.5], qubits=(0,))
        out = bayesian_reconstruct(g, [local])
        # P(q1=0 | q0=0) must be unchanged: 0.3/0.5 = 0.6.
        cond_before = g.probs[0] / (g.probs[0] + g.probs[1])
        cond_after = out.probs[0] / (out.probs[0] + out.probs[1])
        assert cond_after == pytest.approx(cond_before)

    def test_normalized_output(self):
        g = PMF([0.25, 0.25, 0.25, 0.25])
        local = PMF([0.7, 0.3], qubits=(1,))
        out = bayesian_reconstruct(g, [local])
        assert np.isclose(out.probs.sum(), 1.0)

    def test_zero_marginal_outcomes_stay_zero(self):
        g = PMF([0.5, 0.5, 0.0, 0.0])  # q0 always 0
        local = PMF([0.8, 0.2], qubits=(1,))
        out = bayesian_reconstruct(g, [local])
        assert out.probs[2] == 0.0 and out.probs[3] == 0.0

    def test_degenerate_local_skipped(self):
        """A local that annihilates everything is ignored, not fatal."""
        g = PMF([1.0, 0.0, 0.0, 0.0])  # only outcome 00
        local = PMF([0.0, 1.0], qubits=(0,))  # says q0 is always 1
        out = bayesian_reconstruct(g, [local])
        assert np.isclose(out.probs.sum(), 1.0)

    def test_requires_full_register_global(self):
        g = PMF([0.5, 0.5], qubits=(1,))
        with pytest.raises(ValueError):
            bayesian_reconstruct(g, [])

    def test_local_label_out_of_range(self):
        g = PMF([0.5, 0.5])
        with pytest.raises(ValueError):
            bayesian_reconstruct(g, [PMF([0.5, 0.5], qubits=(5,))])

    def test_mitigation_recovers_noisy_ghz(self):
        """The paper's core mechanism on a GHZ-like distribution.

        Take a true distribution with strong correlation, corrupt it with
        readout-like bit flips, then feed high-fidelity subset marginals:
        the reconstruction should land closer to the truth than the noisy
        global was.
        """
        true = PMF([0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.5])  # GHZ-3
        # Corrupt: leak 4% of mass to each neighbor of the peaks.
        noisy = PMF(
            [0.40, 0.04, 0.04, 0.02, 0.02, 0.04, 0.04, 0.40]
        )
        locals_ = [
            true.marginal([0, 1]),
            true.marginal([1, 2]),
        ]
        out = bayesian_reconstruct(noisy, locals_)
        assert out.tvd(true) < noisy.tvd(true)

    def test_two_overlapping_locals_sequential_update(self):
        g = PMF([0.2, 0.3, 0.3, 0.2])
        l1 = PMF([0.6, 0.4], qubits=(0,))
        l2 = PMF([0.5, 0.5], qubits=(1,))
        out = bayesian_reconstruct(g, [l1, l2])
        # Last-applied local's marginal is matched exactly.
        assert np.allclose(out.marginal([1]).probs, l2.probs)
