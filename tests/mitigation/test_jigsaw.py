"""Unit tests for the JigSaw estimator."""

import numpy as np
import pytest

from repro.mitigation import JigSawEstimator
from repro.noise import SimulatorBackend, ibmq_mumbai_like
from repro.vqe import BaselineEstimator, IdealEstimator


class TestCostAccounting:
    def test_circuits_per_evaluation(self, h2, h2_ansatz):
        backend = SimulatorBackend(seed=0)
        est = JigSawEstimator(h2, h2_ansatz, backend, shots=32, window=2)
        # Per group: 1 global + (4 - 2 + 1) = 3 subsets.
        assert est.circuits_per_evaluation == est.num_groups * 4

    def test_backend_charged_accordingly(self, h2, h2_ansatz):
        backend = SimulatorBackend(seed=0)
        est = JigSawEstimator(h2, h2_ansatz, backend, shots=16)
        est.evaluate(np.zeros(h2_ansatz.num_parameters))
        assert backend.circuits_run == est.circuits_per_evaluation

    def test_jigsaw_costs_more_than_baseline(self, h2, h2_ansatz):
        """The Section 3 motivation: JigSaw multiplies per-iteration cost."""
        backend = SimulatorBackend(seed=0)
        jig = JigSawEstimator(h2, h2_ansatz, backend, shots=16)
        base = BaselineEstimator(h2, h2_ansatz, backend, shots=16)
        assert (
            jig.circuits_per_evaluation
            >= 3 * base.circuits_per_evaluation
        )

    def test_window_validation(self, h2, h2_ansatz):
        with pytest.raises(ValueError):
            JigSawEstimator(
                h2, h2_ansatz, SimulatorBackend(), shots=16, window=0
            )

    def test_mitigated_group_pmf_runs_one_group(self, h2, h2_ansatz):
        """The single-group entry point charges 1 global + the subsets."""
        backend = SimulatorBackend(seed=0)
        est = JigSawEstimator(h2, h2_ansatz, backend, shots=16, window=2)
        state = est.prepare_state(np.zeros(h2_ansatz.num_parameters))
        pmf = est.mitigated_group_pmf(state, est.bases[0])
        assert pmf.n_qubits == h2.n_qubits
        assert pmf.probs.sum() == pytest.approx(1.0)
        assert backend.circuits_run == 1 + len(est.windows)


class TestMitigationQuality:
    def test_noise_free_jigsaw_matches_ideal(self, h2, h2_ansatz):
        """Without noise the reconstruction is consistent (no bias)."""
        backend = SimulatorBackend(seed=1)
        est = JigSawEstimator(h2, h2_ansatz, backend, shots=100_000)
        ideal = IdealEstimator(h2, h2_ansatz)
        params = np.full(h2_ansatz.num_parameters, 0.25)
        assert est.evaluate(params) == pytest.approx(
            ideal.evaluate(params), abs=0.05
        )

    def test_jigsaw_beats_baseline_under_readout_noise(self, h2, h2_ansatz):
        """Table 1's claim at circuit level: JigSaw recovers most of the
        measurement-error-induced energy inaccuracy."""
        params = np.full(h2_ansatz.num_parameters, 0.3)
        ideal = IdealEstimator(h2, h2_ansatz).evaluate(params)
        device = ibmq_mumbai_like(scale=2.0)
        errors = {"baseline": [], "jigsaw": []}
        for seed in range(3):
            backend = SimulatorBackend(device, seed=seed)
            base = BaselineEstimator(h2, h2_ansatz, backend, shots=4096)
            jig = JigSawEstimator(h2, h2_ansatz, backend, shots=4096)
            errors["baseline"].append(abs(base.evaluate(params) - ideal))
            errors["jigsaw"].append(abs(jig.evaluate(params) - ideal))
        assert np.mean(errors["jigsaw"]) < np.mean(errors["baseline"])
