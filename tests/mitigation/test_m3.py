"""Unit tests for M3-style subspace mitigation."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.mitigation import M3Mitigator, MatrixMitigator
from repro.noise import SimulatorBackend, ibmq_mumbai_like, ideal_device
from repro.sim import PMF, Counts


def ghz_circuit(n):
    qc = Circuit(n)
    qc.h(0)
    for q in range(n - 1):
        qc.cx(q, q + 1)
    qc.measure_all()
    return qc


def ghz_pmf(n):
    probs = np.zeros(2**n)
    probs[0] = probs[-1] = 0.5
    return PMF(probs)


class TestConstruction:
    def test_bad_matrix_shape_rejected(self):
        with pytest.raises(ValueError, match="2x2"):
            M3Mitigator({0: np.eye(3)})

    def test_non_stochastic_matrix_rejected(self):
        with pytest.raises(ValueError, match="sum to 1"):
            M3Mitigator({0: np.array([[0.9, 0.2], [0.2, 0.9]])})

    def test_from_device_reads_confusion_matrices(self):
        backend = SimulatorBackend(ibmq_mumbai_like(), seed=1)
        mitigator = M3Mitigator.from_device(backend, [0, 1], 2)
        assert set(mitigator.matrices) == {0, 1}


class TestMitigation:
    def test_recovers_ghz_under_heavy_noise(self):
        backend = SimulatorBackend(ibmq_mumbai_like(scale=3.0), seed=5)
        counts = backend.run(ghz_circuit(3), 8192)
        mitigator = M3Mitigator.from_device(backend, [0, 1, 2], 3)
        raw_tvd = counts.to_pmf().tvd(ghz_pmf(3))
        mitigated_tvd = mitigator.mitigate_counts(counts).tvd(ghz_pmf(3))
        assert mitigated_tvd < 0.25 * raw_tvd

    def test_matches_full_mbm_on_small_system(self):
        backend = SimulatorBackend(ibmq_mumbai_like(scale=2.0), seed=7)
        counts = backend.run(ghz_circuit(3), 8192)
        m3 = M3Mitigator.from_device(backend, [0, 1, 2], 3)
        mbm = MatrixMitigator.from_device(backend, [0, 1, 2], 3)
        pmf_m3 = m3.mitigate_counts(counts)
        pmf_mbm = mbm.mitigate_pmf(counts.to_pmf())
        assert pmf_m3.tvd(pmf_mbm) < 0.05

    def test_noiseless_counts_unchanged(self):
        backend = SimulatorBackend(ideal_device(2), seed=3)
        qc = Circuit(2)
        qc.x(0)
        qc.measure_all()
        counts = backend.run(qc, 1024)
        mitigator = M3Mitigator.from_device(backend, [0, 1], 2)
        pmf = mitigator.mitigate_counts(counts)
        assert pmf.prob_of("10") == pytest.approx(1.0)

    def test_subspace_never_leaks_probability(self):
        backend = SimulatorBackend(ibmq_mumbai_like(scale=2.0), seed=9)
        counts = backend.run(ghz_circuit(4), 2048)
        mitigator = M3Mitigator.from_device(backend, [0, 1, 2, 3], 4)
        pmf = mitigator.mitigate_counts(counts)
        observed = set(counts.data)
        for index, prob in enumerate(pmf.probs):
            key = format(index, "04b")
            if key not in observed:
                assert prob == 0.0
        assert pmf.probs.sum() == pytest.approx(1.0)

    def test_empty_counts_rejected(self):
        mitigator = M3Mitigator({0: np.eye(2)})
        with pytest.raises(ValueError, match="empty"):
            mitigator.mitigate_counts(Counts({}, (0,)))

    def test_missing_calibration_rejected(self):
        mitigator = M3Mitigator({0: np.eye(2)})
        counts = Counts({"01": 10}, (0, 1))
        with pytest.raises(ValueError, match="no calibration"):
            mitigator.mitigate_counts(counts)

    def test_qubit_width_mismatch_rejected(self):
        mitigator = M3Mitigator({0: np.eye(2), 1: np.eye(2)})
        counts = Counts({"01": 10}, (0, 1))
        with pytest.raises(ValueError, match="width"):
            mitigator.mitigate_counts(counts, qubits=(0,))

    def test_mitigate_pmf_roundtrip(self):
        backend = SimulatorBackend(ibmq_mumbai_like(scale=2.0), seed=11)
        raw = backend.run(ghz_circuit(3), 8192).to_pmf()
        mitigator = M3Mitigator.from_device(backend, [0, 1, 2], 3)
        pmf = mitigator.mitigate_pmf(raw)
        assert pmf.tvd(ghz_pmf(3)) < raw.tvd(ghz_pmf(3))


class TestScaling:
    def test_wide_sparse_counts_stay_cheap(self):
        """12-qubit counts with a handful of outcomes: no 2^12 matrix."""
        rng = np.random.default_rng(13)
        keys = {
            "".join(rng.choice(["0", "1"], size=12)): int(rng.integers(1, 50))
            for _ in range(20)
        }
        qubits = tuple(range(12))
        counts = Counts(keys, qubits)
        mitigator = M3Mitigator(
            {
                q: np.array([[0.98, 0.05], [0.02, 0.95]])
                for q in range(12)
            }
        )
        pmf = mitigator.mitigate_counts(counts, qubits)
        assert pmf.probs.sum() == pytest.approx(1.0)


class TestDegenerateSystems:
    def test_singular_confusion_matrix_falls_back_to_lstsq(self):
        """p01 = p10 = 0.5 makes the per-qubit matrix singular; the
        mitigator must still return a physical distribution."""
        mitigator = M3Mitigator(
            {0: np.array([[0.5, 0.5], [0.5, 0.5]]), 1: np.eye(2)}
        )
        counts = Counts({"00": 500, "10": 500}, (0, 1))
        pmf = mitigator.mitigate_counts(counts)
        assert np.all(pmf.probs >= 0)
        assert pmf.probs.sum() == pytest.approx(1.0)

    def test_extreme_error_rates_stay_physical(self):
        mitigator = M3Mitigator(
            {
                0: np.array([[0.6, 0.45], [0.4, 0.55]]),
                1: np.array([[0.55, 0.5], [0.45, 0.5]]),
            }
        )
        counts = Counts({"00": 300, "01": 200, "11": 500}, (0, 1))
        pmf = mitigator.mitigate_counts(counts)
        assert np.all(pmf.probs >= 0)
        assert pmf.probs.sum() == pytest.approx(1.0)

    def test_single_outcome_counts(self):
        mitigator = M3Mitigator(
            {0: np.array([[0.95, 0.1], [0.05, 0.9]])}
        )
        counts = Counts({"1": 1000}, (0,))
        pmf = mitigator.mitigate_counts(counts)
        # With only '1' observed, all mass stays on '1'.
        assert pmf.prob_of("1") == pytest.approx(1.0)
