"""Unit tests for zero-noise extrapolation."""

import numpy as np
import pytest

from repro.analysis import optimal_parameters
from repro.mitigation import linear_extrapolate, richardson_extrapolate, zne_energy
from repro.noise import SimulatorBackend
from repro.workloads import make_estimator, make_workload


class TestRichardson:
    def test_exact_on_linear_data(self):
        # E(c) = 5 - 2c -> E(0) = 5.
        assert richardson_extrapolate(
            [1.0, 2.0], [3.0, 1.0]
        ) == pytest.approx(5.0)

    def test_exact_on_quadratic_data(self):
        scales = [1.0, 2.0, 3.0]
        values = [4 + 2 * c + c**2 for c in scales]
        assert richardson_extrapolate(scales, values) == pytest.approx(4.0)

    def test_two_points_is_linear(self):
        assert richardson_extrapolate(
            [1.0, 3.0], [10.0, 14.0]
        ) == pytest.approx(linear_extrapolate([1.0, 3.0], [10.0, 14.0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            richardson_extrapolate([1.0], [1.0])
        with pytest.raises(ValueError):
            richardson_extrapolate([1.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            richardson_extrapolate([1.0, 2.0], [1.0])


class TestLinear:
    def test_fits_noisy_line(self):
        rng = np.random.default_rng(0)
        scales = np.array([1.0, 1.5, 2.0, 2.5])
        values = 7.0 + 3.0 * scales + rng.normal(0, 1e-3, 4)
        assert linear_extrapolate(scales, values) == pytest.approx(
            7.0, abs=0.01
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_extrapolate([1.0], [2.0])


class TestZneEnergy:
    def test_zne_improves_baseline_energy(self):
        """At near-optimal parameters, the extrapolated energy is closer
        to the noise-free value than the scale-1 evaluation."""
        workload = make_workload("H2-4")
        params = optimal_parameters(workload, iterations=300)
        ideal = make_estimator(
            "ideal", workload, SimulatorBackend(seed=0)
        ).evaluate(params)
        estimate, energies = zne_energy(
            workload,
            params,
            kind="baseline",
            scales=(1.0, 2.0, 3.0),
            shots=60_000,
            seed=3,
        )
        assert abs(estimate - ideal) < abs(energies[0] - ideal)

    def test_energies_degrade_with_scale(self):
        workload = make_workload("H2-4")
        params = optimal_parameters(workload, iterations=300)
        _, energies = zne_energy(
            workload, params, scales=(0.5, 2.0, 4.0), shots=60_000, seed=1
        )
        # Energy error grows with the noise scale (monotone ladder).
        ideal = make_estimator(
            "ideal", workload, SimulatorBackend(seed=0)
        ).evaluate(params)
        errors = [abs(e - ideal) for e in energies]
        assert errors[0] < errors[-1]

    def test_stacks_with_varsaw(self):
        workload = make_workload("H2-4")
        params = optimal_parameters(workload, iterations=300)
        estimate, energies = zne_energy(
            workload,
            params,
            kind="varsaw_no_sparsity",
            scales=(1.0, 2.0),
            shots=8192,
            seed=2,
        )
        assert len(energies) == 2
        assert np.isfinite(estimate)

    def test_method_validation(self):
        workload = make_workload("H2-4")
        with pytest.raises(ValueError):
            zne_energy(workload, np.zeros(24), method="cubic")
