"""Unit tests for invert-and-measure bias-aware mitigation."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.mitigation import (
    flip_pmf_bits,
    invert_and_measure,
    polarity_circuits,
)
from repro.noise import (
    DepolarizingGateNoise,
    DeviceModel,
    QubitReadoutError,
    ReadoutErrorModel,
    SimulatorBackend,
    ideal_device,
)
from repro.sim import PMF


def biased_device(n, p01=0.005, p10=0.08):
    """A device with the strong 1->0 relaxation asymmetry."""
    readout = ReadoutErrorModel(
        [QubitReadoutError(p01=p01, p10=p10) for _ in range(n)],
        crosstalk_strength=0.0,
    )
    return DeviceModel(
        "biased", readout, DepolarizingGateNoise(0.0, 0.0)
    )


class TestPolarityCircuits:
    def test_inverted_copy_appends_x_on_measured(self):
        qc = Circuit(3)
        qc.h(0)
        qc.measure([0, 2])
        normal, inverted = polarity_circuits(qc)
        assert normal.num_gates == 1
        x_gates = [
            inst for inst in inverted.instructions if inst.name == "x"
        ]
        assert sorted(q for inst in x_gates for q in inst.qubits) == [0, 2]

    def test_original_untouched(self):
        qc = Circuit(2)
        qc.measure_all()
        polarity_circuits(qc)
        assert qc.num_gates == 0

    def test_unmeasured_circuit_rejected(self):
        with pytest.raises(ValueError, match="measures no qubits"):
            polarity_circuits(Circuit(2))


class TestFlipPmfBits:
    def test_flip_moves_mass_to_complement(self):
        pmf = PMF(np.array([0.7, 0.1, 0.2, 0.0]))
        flipped = flip_pmf_bits(pmf)
        assert flipped.prob_of("11") == pytest.approx(0.7)
        assert flipped.prob_of("01") == pytest.approx(0.2)

    def test_double_flip_is_identity(self):
        rng = np.random.default_rng(3)
        probs = rng.dirichlet(np.ones(8))
        pmf = PMF(probs)
        assert flip_pmf_bits(flip_pmf_bits(pmf)) == pmf


class TestInvertAndMeasure:
    def test_reduces_expectation_bias_on_all_ones(self):
        """<Z..Z> bias on |11..1> shrinks toward the mean error rate."""
        n = 3
        device = biased_device(n)
        qc = Circuit(n)
        for q in range(n):
            qc.x(q)
        qc.measure_all()

        plain = SimulatorBackend(device, seed=21).run(qc, 40_000).to_pmf()
        averaged = invert_and_measure(
            SimulatorBackend(device, seed=21), qc, 40_000
        )
        target = PMF.point(n, 2**n - 1)
        # The plain run suffers p10 = 8% per qubit; the averaged run sees
        # the mean of p10 and p01 instead.
        assert averaged.tvd(target) < 0.65 * plain.tvd(target)

    def test_noiseless_distribution_unaffected(self):
        device = ideal_device(2)
        qc = Circuit(2)
        qc.x(0)
        qc.measure_all()
        pmf = invert_and_measure(SimulatorBackend(device, seed=2), qc, 4096)
        assert pmf.prob_of("10") == pytest.approx(1.0)

    def test_charges_two_circuits(self):
        backend = SimulatorBackend(biased_device(2), seed=4)
        qc = Circuit(2)
        qc.measure_all()
        before = backend.circuits_run
        invert_and_measure(backend, qc, 2048)
        assert backend.circuits_run == before + 2

    def test_too_few_shots_rejected(self):
        backend = SimulatorBackend(biased_device(2), seed=4)
        qc = Circuit(2)
        qc.measure_all()
        with pytest.raises(ValueError, match="shots"):
            invert_and_measure(backend, qc, 1)

    def test_partial_measurement_polarity(self):
        """Only measured qubits are inverted and flipped back."""
        device = biased_device(3)
        qc = Circuit(3)
        qc.x(0)
        qc.x(2)
        qc.measure([0, 2])
        pmf = invert_and_measure(SimulatorBackend(device, seed=6), qc, 20_000)
        assert pmf.n_qubits == 2
        assert pmf.prob_of("11") > 0.85
