"""Tenant quotas: admission caps, charge attribution, totals."""

import pytest

from repro.serve import (
    BudgetExceededError,
    TenantBudget,
    TenantCharge,
    TenantQuota,
)


class TestQuotaLookup:
    def test_default_is_unlimited(self):
        budget = TenantBudget()
        assert budget.quota("anyone") == TenantQuota()
        budget.check("anyone")  # never raises

    def test_override_beats_default(self):
        budget = TenantBudget(
            {"alice": TenantQuota(max_circuits=5)},
            TenantQuota(max_circuits=100),
        )
        assert budget.quota("alice").max_circuits == 5
        assert budget.quota("bob").max_circuits == 100


class TestCheck:
    def test_at_cap_is_rejected(self):
        budget = TenantBudget(default=TenantQuota(max_circuits=10))
        budget.charge("alice", 10, 0)
        with pytest.raises(BudgetExceededError, match="circuit budget"):
            budget.check("alice")

    def test_under_cap_is_admitted(self):
        budget = TenantBudget(default=TenantQuota(max_circuits=10))
        budget.charge("alice", 9, 0)
        budget.check("alice")

    def test_shot_cap(self):
        budget = TenantBudget(default=TenantQuota(max_shots=100))
        budget.charge("alice", 0, 100)
        with pytest.raises(BudgetExceededError, match="shot budget"):
            budget.check("alice")

    def test_error_names_tenant_and_numbers(self):
        budget = TenantBudget(default=TenantQuota(max_circuits=1))
        budget.charge("dave", 10, 0)
        with pytest.raises(
            BudgetExceededError, match=r"'dave'.*\(10 >= 1\)"
        ):
            budget.check("dave")


class TestCharges:
    def test_charges_accumulate(self):
        budget = TenantBudget()
        budget.charge("alice", 3, 100)
        total = budget.charge("alice", 4, 200)
        assert total == TenantCharge(circuits=7, shots=300, jobs=2)
        assert budget.charged("alice") == total

    def test_uncharged_tenant_is_zero(self):
        assert TenantBudget().charged("ghost") == TenantCharge()

    def test_totals_sum_every_tenant(self):
        budget = TenantBudget()
        budget.charge("alice", 3, 100)
        budget.charge("bob", 4, 200)
        assert budget.totals() == TenantCharge(
            circuits=7, shots=300, jobs=2
        )

    def test_tenants_lists_charged_and_quotad(self):
        budget = TenantBudget({"quiet": TenantQuota(max_shots=1)})
        budget.charge("alice", 1, 1)
        assert budget.tenants() == ["alice", "quiet"]

    def test_to_dict_carries_charges_and_caps(self):
        budget = TenantBudget(default=TenantQuota(max_circuits=50))
        budget.charge("alice", 3, 100)
        payload = budget.to_dict()
        assert payload["alice"] == {
            "circuits": 3,
            "shots": 100,
            "jobs": 1,
            "max_circuits": 50,
            "max_shots": None,
        }
