"""JobSpec: validation, content fingerprints, session keys."""

import pytest

from repro.serve import JOB_KINDS, JobSpec


def job(**overrides):
    fields = {"workload": {"key": "H2-4"}, "shots": 64}
    fields.update(overrides)
    return JobSpec(**fields)


class TestValidation:
    def test_defaults_are_valid(self):
        spec = job()
        assert spec.kind == "estimate"
        assert spec.scheme == "varsaw"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="job kind"):
            job(kind="banana")

    def test_workload_must_name_one_kind(self):
        with pytest.raises(ValueError, match="exactly one"):
            JobSpec(workload={})
        with pytest.raises(ValueError, match="exactly one"):
            JobSpec(workload={"key": "H2-4", "qaoa": "ring"})

    def test_shots_positive(self):
        with pytest.raises(ValueError, match="shots"):
            job(shots=0)

    def test_estimator_payload_validated_eagerly(self):
        with pytest.raises(ValueError):
            job(estimator={"no_such_knob": 3})

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            job(scheme="not_a_scheme")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            job(backend="not_a_backend")

    def test_device_needs_preset(self):
        with pytest.raises(ValueError, match="preset"):
            job(device={"scale": 2.0})

    def test_unknown_device_preset_rejected(self):
        with pytest.raises(ValueError, match="preset"):
            job(device={"preset": "not_a_device"})

    def test_unexpected_device_kwargs_rejected(self):
        # Must fail (as ValueError, so HTTP maps it to a 400) at
        # submission, not inside a batch after being journaled.
        with pytest.raises(ValueError, match="bad device"):
            job(device={"preset": "ideal", "noise_scale": 2.0})

    def test_inline_estimator_kind_wins(self):
        spec = job(scheme="baseline", estimator={"kind": "varsaw"})
        kind, extra = spec.estimator_args()
        assert kind == "varsaw"
        assert extra == {}

    def test_job_kinds_constant(self):
        assert JOB_KINDS == ("estimate", "tuning")


class TestFingerprint:
    def test_identical_jobs_share_fingerprints(self):
        assert job().fingerprint() == job().fingerprint()

    def test_any_field_change_changes_fingerprint(self):
        base = job().fingerprint()
        assert job(shots=128).fingerprint() != base
        assert job(seed=1).fingerprint() != base
        assert job(scheme="baseline").fingerprint() != base
        assert job(params=[0.1] * 24).fingerprint() != base

    def test_params_normalized_before_hashing(self):
        ints = job(params=[0, 1])
        floats = job(params=[0.0, 1.0])
        assert ints.fingerprint() == floats.fingerprint()

    def test_roundtrip_preserves_fingerprint(self):
        spec = job(
            params=[0.25] * 4,
            device={"preset": "ibmq_mumbai_like", "scale": 2.0},
            estimator={"window": 2},
        )
        assert JobSpec.from_dict(spec.to_dict()).fingerprint() == (
            spec.fingerprint()
        )


class TestSessionKey:
    def test_same_workload_default_device_shares_session(self):
        # Different params, same device/seed/backend: one session.
        a = job(params=[0.1] * 4)
        b = job(params=[0.9] * 4)
        assert a.fingerprint() != b.fingerprint()
        assert a.session_key() == b.session_key()

    def test_seed_splits_sessions(self):
        assert job(seed=0).session_key() != job(seed=1).session_key()

    def test_backend_splits_sessions(self):
        assert job().session_key() != job(
            backend="clifford"
        ).session_key()

    def test_explicit_device_overrides_workload_default(self):
        explicit = job(device={"preset": "ibmq_mumbai_like"})
        assert explicit.session_key() != job().session_key()
        # With an explicit device the workload no longer matters.
        other = job(
            workload={"key": "LiH-6"},
            device={"preset": "ibmq_mumbai_like"},
        )
        assert explicit.session_key() == other.session_key()


class TestLabel:
    def test_label_names_workload_kind_scheme_seed(self):
        assert job(seed=3).label() == "H2-4 estimate varsaw seed=3"

    def test_tuning_label(self):
        assert "tuning" in job(kind="tuning").label()
