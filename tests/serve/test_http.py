"""The stdlib HTTP front end: routes, error mapping, wire client."""

import threading

import pytest

from repro.serve import (
    JobSpec,
    Service,
    TenantQuota,
    request_json,
    serve_http,
)


def job_payload(**overrides):
    payload = {"workload": {"key": "H2-4"}, "shots": 32}
    payload.update(overrides)
    return payload


@pytest.fixture
def server(tmp_path):
    """A live serve stack on an ephemeral port; yields its base URL."""
    service = Service(tmp_path / "journal", coalesce_window=0.0)
    service.start()
    httpd = serve_http(service, "127.0.0.1", 0)  # ephemeral port
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    try:
        yield base, service
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join()
        service.close()


class TestRoutes:
    def test_submit_wait_returns_result(self, server):
        base, _ = server
        reply = request_json(
            base,
            "/submit",
            {"tenant": "alice", "job": job_payload(), "wait": True},
        )
        assert reply["state"] == "complete"
        assert reply["result"]["result"]["kind"] == "estimate"
        assert reply["label"] == "H2-4 estimate varsaw seed=0"

    def test_submit_without_wait_acks_immediately(self, server):
        base, service = server
        reply = request_json(
            base, "/submit", {"tenant": "alice", "job": job_payload()}
        )
        assert reply["request_id"].startswith("r000001-")
        # The ack is durable even if the result is still pending.
        record = service.result(reply["request_id"], timeout=60)
        assert record["result"]["kind"] == "estimate"

    def test_status_counts_requests(self, server):
        base, _ = server
        request_json(
            base,
            "/submit",
            {"tenant": "alice", "job": job_payload(), "wait": True},
        )
        status = request_json(base, "/status")
        assert status["requests"] == 1
        assert status["complete"] == 1
        assert status["tenants"]["alice"]["jobs"] == 1

    def test_jobs_listing_and_detail(self, server):
        base, _ = server
        reply = request_json(
            base,
            "/submit",
            {"tenant": "alice", "job": job_payload(), "wait": True},
        )
        listing = request_json(base, "/jobs")
        assert [j["request_id"] for j in listing["jobs"]] == [
            reply["request_id"]
        ]
        assert "result" not in listing["jobs"][0]

        detail = request_json(base, f"/jobs/{reply['request_id']}")
        assert detail["state"] == "complete"
        assert detail["result"]["result"]["kind"] == "estimate"

    def test_tenants_route(self, server):
        base, _ = server
        request_json(
            base,
            "/submit",
            {"tenant": "alice", "job": job_payload(), "wait": True},
        )
        tenants = request_json(base, "/tenants")
        assert tenants["alice"]["circuits"] > 0


class TestErrors:
    def test_malformed_job_is_400(self, server):
        base, _ = server
        with pytest.raises(RuntimeError, match="HTTP 400"):
            request_json(
                base,
                "/submit",
                {"tenant": "alice", "job": {"workload": {}}},
            )

    def test_missing_tenant_is_400(self, server):
        base, _ = server
        with pytest.raises(RuntimeError, match="HTTP 400"):
            request_json(base, "/submit", {"job": job_payload()})

    def test_unknown_request_id_is_404(self, server):
        base, _ = server
        with pytest.raises(RuntimeError, match="HTTP 404"):
            request_json(base, "/jobs/r999999-deadbeef")

    def test_unknown_path_is_404(self, server):
        base, _ = server
        with pytest.raises(RuntimeError, match="HTTP 404"):
            request_json(base, "/nope")

    def test_failed_job_with_wait_is_500(self, server):
        base, _ = server
        with pytest.raises(RuntimeError, match="HTTP 500"):
            request_json(
                base,
                "/submit",
                {
                    "tenant": "alice",
                    "job": job_payload(params=[0.1] * 3),
                    "wait": True,
                },
            )


class TestBudgetOverHTTP:
    def test_over_budget_is_429(self, tmp_path):
        service = Service(
            tmp_path / "journal",
            default_quota=TenantQuota(max_circuits=1),
            coalesce_window=0.0,
        )
        service.start()
        httpd = serve_http(service, "127.0.0.1", 0)
        thread = threading.Thread(
            target=httpd.serve_forever, daemon=True
        )
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            request_json(
                base,
                "/submit",
                {"tenant": "alice", "job": job_payload(), "wait": True},
            )
            with pytest.raises(RuntimeError, match="HTTP 429"):
                request_json(
                    base,
                    "/submit",
                    {"tenant": "alice", "job": job_payload(seed=1)},
                )
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join()
            service.close()


class TestDedupOverTheWire:
    def test_two_tenants_same_job_share_one_execution(self, server):
        base, service = server
        replies = [
            request_json(
                base,
                "/submit",
                {"tenant": tenant, "job": job_payload(), "wait": True},
            )
            for tenant in ("alice", "bob")
        ]
        energies = {
            r["result"]["result"]["energy"] for r in replies
        }
        assert len(energies) == 1
        status = request_json(base, "/status")
        assert status["executed"] == 1
        assert status["cross_tenant_dedup"] == 1
        # Serialized JobSpec round-trips through HTTP to the same
        # fingerprint the in-process API computes.
        assert replies[0]["job_fingerprint"] == JobSpec.from_dict(
            job_payload()
        ).fingerprint()


class TestMetricsEndpoint:
    @staticmethod
    def _scrape(base):
        import urllib.request

        with urllib.request.urlopen(base + "/metrics", timeout=30) as rsp:
            return rsp.headers.get("Content-Type"), rsp.read().decode()

    def test_prometheus_exposition(self, server):
        base, _ = server
        for tenant in ("alice", "bob"):
            request_json(
                base,
                "/submit",
                {"tenant": tenant, "job": job_payload(), "wait": True},
            )
        content_type, text = self._scrape(base)
        assert content_type == "text/plain; version=0.0.4"
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_queue_depth 0" in text
        assert "repro_serve_coalesce_ratio 0" in text
        # Only alice executed (bob's identical job served from the
        # results DB), so only alice carries a charge.
        assert 'repro_serve_tenant_jobs{tenant="alice"} 1' in text
        assert "repro_serve_cache_hit_rate" in text
        assert 'repro_serve_engine_total{counter="circuits"}' in text
        # The process-wide engine registry rides along.
        assert "# TYPE repro_engine_batches_total counter" in text
        assert "repro_serve_queue_wait_seconds_bucket" in text

    def test_scrape_of_idle_server_succeeds(self, server):
        base, _ = server
        content_type, text = self._scrape(base)
        assert content_type == "text/plain; version=0.0.4"
        assert "repro_serve_queue_depth 0" in text
        assert "repro_serve_coalesce_ratio 0" in text

    def test_in_batch_coalescing_moves_the_ratio(self, tmp_path):
        from repro.serve import Service

        with Service(tmp_path / "journal") as service:
            for tenant in ("alice", "bob"):
                service.submit(tenant, JobSpec.from_dict(job_payload()))
            service.drain()
            text = service.metrics.render()
        # One executed + one coalesced in the same batch -> ratio 0.5,
        # and the coalesced tenant pays nothing.
        assert "repro_serve_coalesce_ratio 0.5" in text
        assert 'repro_serve_tenant_jobs{tenant="alice"} 1' in text
        assert 'tenant="bob"' not in text  # coalesced: never charged
