"""Service end-to-end: coalescing, attribution, durability, budgets."""

import pytest

from repro.serve import (
    BudgetExceededError,
    JobQueue,
    Service,
    TenantQuota,
)
from repro.serve import JobSpec


def job(**overrides):
    fields = {"workload": {"key": "H2-4"}, "shots": 32}
    fields.update(overrides)
    return JobSpec(**fields)


@pytest.fixture
def root(tmp_path):
    return tmp_path / "journal"


class TestCoalescing:
    def test_identical_jobs_execute_once(self, root):
        with Service(root) as service:
            alice = service.submit("alice", job())
            bob = service.submit("bob", job())
            assert service.drain() == 1

            assert alice.future.result() is bob.future.result()
            stats = service.coalescer.stats
            assert stats.executed == 1
            assert stats.coalesced == 1
            assert stats.cross_tenant_dedup == 1

    def test_distinct_jobs_all_execute(self, root):
        with Service(root) as service:
            service.submit("alice", job(seed=0))
            service.submit("alice", job(seed=1))
            assert service.drain() == 2
            assert service.coalescer.stats.cross_tenant_dedup == 0

    def test_completed_job_served_from_db(self, root):
        with Service(root) as service:
            service.submit("alice", job())
            service.drain()
            late = service.submit("carol", job())
            # Resolved at submission — nothing left to drain.
            assert late.future.done()
            assert service.drain() == 0
            assert service.coalescer.stats.served_from_db == 1
            assert service.coalescer.stats.cross_tenant_dedup == 1

    def test_leader_pays_followers_do_not(self, root):
        with Service(root) as service:
            service.submit("alice", job())
            service.submit("bob", job())
            service.drain()
            assert service.budget.charged("alice").jobs == 1
            assert service.budget.charged("bob").jobs == 0

    def test_tenant_charges_sum_to_engine_ledger(self, root):
        with Service(root) as service:
            service.submit("alice", job(seed=0))
            service.submit("bob", job(seed=0, shots=64))
            service.submit("bob", job(seed=1))
            service.drain()

            totals = service.budget.totals()
            engine = service.coalescer.engine_totals()
            assert totals.circuits == engine["circuits"] > 0
            assert totals.shots == engine["shots"] > 0

    def test_shared_session_dedups_circuits_across_jobs(self, root):
        # Two *different* jobs (different shots -> different
        # fingerprints) over the same circuits on one session: the
        # engine's PMF cache serves the second job's simulations.
        with Service(root) as service:
            service.submit("alice", job(shots=32))
            service.submit("bob", job(shots=64))
            service.drain()
            engine = service.coalescer.engine_totals()
            assert service.coalescer.stats.executed == 2
            assert engine["pmf_cache_hits"] > 0


class TestResults:
    def test_result_record_shape(self, root):
        with Service(root) as service:
            request = service.submit("alice", job())
            service.drain()
            record = service.result(request.request_id)
            assert record["result"]["kind"] == "estimate"
            assert isinstance(record["result"]["energy"], float)
            assert record["tenant"] == "alice"
            assert record["ledger"]["circuits"] > 0

    def test_tuning_job_executes(self, root):
        with Service(root) as service:
            request = service.submit(
                "alice", job(kind="tuning", max_iterations=2)
            )
            service.drain()
            result = request.future.result()["result"]
            assert result["kind"] == "tuning"
            assert result["iterations"] >= 1

    def test_unknown_request_id_raises(self, root):
        with Service(root) as service:
            with pytest.raises(KeyError, match="unknown request id"):
                service.request("r999999-deadbeef")

    def test_deterministic_across_journal_dirs(self, tmp_path):
        energies = []
        for name in ("a", "b"):
            with Service(tmp_path / name) as service:
                request = service.submit("alice", job())
                service.drain()
                energies.append(
                    request.future.result()["result"]["energy"]
                )
        assert energies[0] == energies[1]


class TestDurability:
    def test_restart_recovers_completed_requests(self, root):
        with Service(root) as service:
            request = service.submit("alice", job())
            service.drain()
            stored = request.future.result()

        with Service(root) as reopened:
            assert reopened.recovered() == (1, 0)
            again = reopened.request(request.request_id)
            assert again.future.result() == stored
            # Zero re-execution: nothing pending, no sessions built.
            assert reopened.drain() == 0
            assert reopened.coalescer.stats.executed == 0

    def test_killed_mid_queue_resumes_only_the_difference(self, root):
        service = Service(root)
        for seed in range(3):
            service.submit("alice", job(seed=seed))
        assert service.drain(limit=1) == 1
        # Simulate kill -9: no close(), no further draining — the
        # journals on disk are all that survives.
        del service

        reopened = Service(root)
        try:
            total, pending = reopened.recovered()
            assert (total, pending) == (3, 2)
            assert reopened.drain() == 2  # only the missing two
            assert all(
                r.future.result()["result"]["kind"] == "estimate"
                for r in reopened.requests()
            )
        finally:
            reopened.close()

    def test_budget_charges_replay_from_journal(self, root):
        with Service(root) as service:
            service.submit("alice", job())
            service.drain()
            charged = service.budget.charged("alice")
            assert charged.circuits > 0

        with Service(root) as reopened:
            assert reopened.budget.charged("alice") == charged

    def test_malformed_journaled_job_recovers_as_failed(self, root):
        # A journal written by an older client can hold a job that no
        # longer validates; recovery must mark it failed — not crash
        # the constructor (which would brick the journal directory) —
        # and later submissions must still execute.
        import json

        with Service(root) as service:
            service.submit("alice", job())
            service.drain()
        entry = {
            "schema": 1,
            "request_id": "r000002-deadbeef",
            "tenant": "mallory",
            "job": {
                "workload": {"key": "H2-4"},
                "device": {"preset": "ideal", "noise_scale": 2.0},
            },
            "job_fingerprint": "deadbeef" * 4,
            "submitted_at": 0.0,
        }
        with (root / "queue.jsonl").open("a") as handle:
            handle.write(json.dumps(entry) + "\n")

        with Service(root) as reopened:
            bad = reopened.request("r000002-deadbeef")
            assert bad.state() == "failed"
            assert bad.label() == "<invalid job>"
            with pytest.raises(ValueError, match="bad device"):
                bad.future.result()
            assert reopened.drain() == 0  # nothing pending, no crash
            late = reopened.submit("alice", job(seed=9))
            reopened.drain()
            assert late.state() == "complete"

    def test_recovery_is_replay_not_dedup(self, root):
        with Service(root) as service:
            service.submit("alice", job())
            service.submit("bob", job())
            service.drain()

        with Service(root) as reopened:
            stats = reopened.coalescer.stats
            assert stats.served_from_db == 0
            assert stats.cross_tenant_dedup == 0


class TestBudgets:
    def test_over_budget_submission_rejected(self, root):
        quota = TenantQuota(max_circuits=1)
        with Service(root, default_quota=quota) as service:
            service.submit("alice", job())
            service.drain()
            with pytest.raises(BudgetExceededError, match="'alice'"):
                service.submit("alice", job(seed=1))

    def test_rejected_submission_not_journaled(self, root):
        quota = TenantQuota(max_circuits=1)
        with Service(root, default_quota=quota) as service:
            service.submit("alice", job())
            service.drain()
            with pytest.raises(BudgetExceededError):
                service.submit("alice", job(seed=1))
        assert len(JobQueue(root / "queue.jsonl")) == 1

    def test_other_tenants_unaffected(self, root):
        quotas = {"alice": TenantQuota(max_circuits=1)}
        with Service(root, quotas=quotas) as service:
            service.submit("alice", job())
            service.drain()
            with pytest.raises(BudgetExceededError):
                service.submit("alice", job(seed=1))
            service.submit("bob", job(seed=1))  # fine


class TestFailures:
    def test_bad_job_fails_loudly_and_is_not_journaled(self, root):
        with Service(root) as service:
            # Wrong parameter count: H2-4's ansatz needs 24 values.
            request = service.submit("alice", job(params=[0.1] * 3))
            assert service.drain() == 0
            assert request.state() == "failed"
            with pytest.raises(ValueError):
                request.future.result()
            # The failure was not checkpointed: resubmission re-runs.
            assert len(service.results) == 0
            assert service.budget.charged("alice").jobs == 0

    def test_failed_group_fails_every_submitter(self, root):
        with Service(root) as service:
            bad = job(params=[0.1] * 3)
            alice = service.submit("alice", bad)
            bob = service.submit("bob", bad)
            service.drain()
            assert alice.state() == bob.state() == "failed"

    def test_session_construction_failure_fails_futures(
        self, root, monkeypatch
    ):
        # A job whose session cannot be built (e.g. a journaled device
        # that no longer materializes) must fail its own futures, not
        # escape execute_batch and kill the batching worker.
        with Service(root) as service:
            request = service.submit("alice", job())
            monkeypatch.setattr(
                service.coalescer,
                "session_for",
                lambda spec: (_ for _ in ()).throw(
                    RuntimeError("no such device")
                ),
            )
            assert service.drain() == 0
            assert request.state() == "failed"
            with pytest.raises(RuntimeError, match="no such device"):
                request.future.result()
            monkeypatch.undo()
            # The coalescer (and a fresh submission) still works.
            good = service.submit("alice", job(seed=1))
            service.drain()
            assert good.state() == "complete"

    def test_worker_survives_batch_level_failure(self, root, monkeypatch):
        # Even an error escaping the coalescer itself must not kill the
        # worker thread or strand the batch's futures unresolved.
        with Service(root, coalesce_window=0.0) as service:
            service.start()
            real = service.coalescer.execute_batch
            monkeypatch.setattr(
                service.coalescer,
                "execute_batch",
                lambda batch: (_ for _ in ()).throw(RuntimeError("boom")),
            )
            poisoned = service.submit("alice", job(seed=2))
            with pytest.raises(RuntimeError, match="boom"):
                poisoned.future.result(timeout=60)
            monkeypatch.setattr(service.coalescer, "execute_batch", real)
            survivor = service.submit("alice", job(seed=3))
            record = survivor.future.result(timeout=60)
            assert record["result"]["kind"] == "estimate"
            assert service._worker is not None
            assert service._worker.is_alive()


class TestStatusAndWorker:
    def test_status_counters(self, root):
        with Service(root) as service:
            service.submit("alice", job())
            service.submit("bob", job())
            service.drain()
            status = service.status().to_dict()
            assert status["requests"] == 2
            assert status["complete"] == 2
            assert status["pending"] == status["failed"] == 0
            assert status["executed"] == 1
            assert status["cross_tenant_dedup"] == 1
            assert status["engine"]["circuits"] > 0
            assert status["tenants"]["alice"]["jobs"] == 1

    def test_background_worker_resolves_futures(self, root):
        with Service(root, coalesce_window=0.0) as service:
            service.start()
            request = service.submit("alice", job())
            record = request.future.result(timeout=60)
            assert record["result"]["kind"] == "estimate"

    def test_close_finishes_queued_work(self, root):
        service = Service(root, coalesce_window=0.0)
        service.start()
        request = service.submit("alice", job())
        service.close()
        assert request.future.done()
