"""The durable queue/results journal pair behind the service."""

from repro.serve import JobQueue, JobSpec, ResultsDB


def job(**overrides):
    fields = {"workload": {"key": "H2-4"}, "shots": 64}
    fields.update(overrides)
    return JobSpec(**fields)


class TestJobQueue:
    def test_submit_journals_before_ack(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        entry = queue.submit("alice", job())
        assert entry["request_id"].startswith("r000001-")
        assert entry["tenant"] == "alice"
        assert entry["job_fingerprint"] == job().fingerprint()

        reloaded = JobQueue(tmp_path / "queue.jsonl")
        assert entry["request_id"] in reloaded
        assert reloaded.get(entry["request_id"])["job"] == job().to_dict()

    def test_request_ids_are_sequential_and_unique(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        first = queue.submit("alice", job())
        second = queue.submit("alice", job())  # same job, new request
        assert first["request_id"] != second["request_id"]
        assert first["job_fingerprint"] == second["job_fingerprint"]

    def test_sequence_resumes_after_reload(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        queue.submit("alice", job())
        reloaded = JobQueue(tmp_path / "queue.jsonl")
        entry = reloaded.submit("bob", job(seed=1))
        assert entry["request_id"].startswith("r000002-")


class TestResultsDB:
    def test_complete_roundtrip(self, tmp_path):
        db = ResultsDB(tmp_path / "results.jsonl")
        spec = job()
        record = db.complete(
            spec.fingerprint(), spec, "alice",
            {"kind": "estimate", "energy": -1.0},
            {"circuits": 25, "shots": 1600},
            0.5,
        )
        assert record["tenant"] == "alice"
        assert record["ledger"]["circuits"] == 25

        reloaded = ResultsDB(tmp_path / "results.jsonl")
        stored = reloaded.get(spec.fingerprint())
        assert stored["result"]["energy"] == -1.0
        assert stored["job"] == spec.to_dict()

    def test_first_result_wins(self, tmp_path):
        db = ResultsDB(tmp_path / "results.jsonl")
        spec = job()
        first = db.complete(
            spec.fingerprint(), spec, "alice",
            {"energy": -1.0}, {"circuits": 1, "shots": 64}, 0.1,
        )
        second = db.complete(
            spec.fingerprint(), spec, "bob",
            {"energy": 99.0}, {"circuits": 9, "shots": 640}, 0.1,
        )
        assert second == first
        assert db.get(spec.fingerprint())["tenant"] == "alice"
