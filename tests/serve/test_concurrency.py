"""Concurrent tenants: asyncio fan-in, dedup, exact cost attribution.

The satellites' acceptance invariants live here: N concurrent tenants
submitting overlapping circuit sets drive the coalescer's cross-tenant
dedup counter above zero, per-tenant budget charges sum exactly to the
engines' ledger, and a killed server restarted over the same journal
re-executes nothing.
"""

import asyncio

from repro.serve import JobSpec, Service


def job(**overrides):
    fields = {"workload": {"key": "H2-4"}, "shots": 32}
    fields.update(overrides)
    return JobSpec(**fields)


def run_tenants(service, tenant_jobs):
    """Submit every tenant's jobs concurrently; return their records."""

    async def tenant(name, jobs):
        return [
            await service.submit_wait(name, spec) for spec in jobs
        ]

    async def fleet():
        return await asyncio.gather(*(
            tenant(name, jobs) for name, jobs in tenant_jobs.items()
        ))

    service.start()
    return asyncio.run(fleet())


class TestConcurrentTenants:
    def test_overlapping_tenants_dedup_and_attribute_exactly(
        self, tmp_path
    ):
        # Four tenants, overlapping job sets: every tenant submits
        # seeds {t, t+1} so each seed (but the ends) is shared.
        tenant_jobs = {
            f"tenant{t}": [job(seed=t), job(seed=t + 1)]
            for t in range(4)
        }
        with Service(tmp_path / "journal", coalesce_window=0.0) as service:
            results = run_tenants(service, tenant_jobs)

            # Every submission resolved to a real record.
            assert all(
                r["result"]["kind"] == "estimate"
                for per_tenant in results
                for r in per_tenant
            )
            # 8 submissions over 5 distinct jobs (seeds 0..4).
            stats = service.coalescer.stats
            executed = stats.executed
            assert executed == 5
            assert stats.coalesced + stats.served_from_db == 3
            assert stats.cross_tenant_dedup > 0

            # Cost attribution is exact: per-tenant charges sum to
            # the engines' total circuit/shot ledger.
            totals = service.budget.totals()
            engine = service.coalescer.engine_totals()
            assert totals.circuits == engine["circuits"] > 0
            assert totals.shots == engine["shots"] > 0
            assert totals.jobs == executed

    def test_identical_submissions_agree_bit_for_bit(self, tmp_path):
        tenant_jobs = {
            f"tenant{t}": [job()] for t in range(6)
        }
        with Service(tmp_path / "journal", coalesce_window=0.0) as service:
            results = run_tenants(service, tenant_jobs)
            energies = {
                r[0]["result"]["energy"] for r in results
            }
            assert len(energies) == 1
            assert service.coalescer.stats.executed == 1
            assert service.coalescer.stats.cross_tenant_dedup == 5

    def test_kill_and_restart_re_executes_nothing(self, tmp_path):
        root = tmp_path / "journal"
        tenant_jobs = {
            f"tenant{t}": [job(seed=t % 3)] for t in range(4)
        }
        service = Service(root, coalesce_window=0.0)
        run_tenants(service, tenant_jobs)
        executed_before = service.coalescer.stats.executed
        service.close()

        # "kill -9": a fresh process sees only the journal files.
        reopened = Service(root)
        try:
            total, pending = reopened.recovered()
            assert total == 4
            assert pending == 0
            assert reopened.drain() == 0
            assert reopened.coalescer.stats.executed == 0
            assert executed_before == 3
            # Budgets replayed: the same attribution, same totals.
            assert (
                reopened.budget.totals() == service.budget.totals()
            )
        finally:
            reopened.close()
