"""Shared fixtures for the VarSaw reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ansatz import EfficientSU2
from repro.hamiltonian import Hamiltonian, build_hamiltonian
from repro.noise import (
    DepolarizingGateNoise,
    DeviceModel,
    QubitReadoutError,
    ReadoutErrorModel,
    SimulatorBackend,
    ibmq_mumbai_like,
)
from repro.pauli import PauliString

#: The worked example from Fig. 6 of the paper: a 4-qubit Hamiltonian with
#: 10 Pauli terms whose commutation structure the paper traces end to end.
FIG6_TERMS = [
    "ZZIZ", "ZIZX", "ZZII", "IIZX", "ZXXZ",
    "XZIZ", "ZXIZ", "IXZZ", "XIZZ", "XXIX",
]


@pytest.fixture
def fig6_paulis() -> list[PauliString]:
    return [PauliString(label) for label in FIG6_TERMS]


@pytest.fixture
def fig6_hamiltonian() -> Hamiltonian:
    return Hamiltonian(
        [(0.1 * (i + 1), label) for i, label in enumerate(FIG6_TERMS)],
        name="fig6",
    )


@pytest.fixture
def h2() -> Hamiltonian:
    return build_hamiltonian("H2-4")


@pytest.fixture
def h2_ansatz() -> EfficientSU2:
    return EfficientSU2(4, reps=1, entanglement="linear")


@pytest.fixture
def ideal_backend() -> SimulatorBackend:
    return SimulatorBackend(seed=11)


@pytest.fixture
def noisy_backend() -> SimulatorBackend:
    return SimulatorBackend(ibmq_mumbai_like(), seed=11)


@pytest.fixture
def tiny_device() -> DeviceModel:
    """A 4-qubit device with hand-picked, very unequal readout errors."""
    readout = ReadoutErrorModel(
        [
            QubitReadoutError(0.01, 0.02),
            QubitReadoutError(0.08, 0.12),
            QubitReadoutError(0.002, 0.004),
            QubitReadoutError(0.05, 0.06),
        ],
        crosstalk_strength=0.1,
    )
    return DeviceModel(
        "tiny", readout, DepolarizingGateNoise(error_1q=0.0, error_2q=0.0)
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
