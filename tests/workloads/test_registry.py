"""Unit tests for the workload/estimator factory."""

import pytest

from repro.core import VarSawEstimator
from repro.mitigation import JigSawEstimator
from repro.noise import SimulatorBackend, ibm_lagos_like
from repro.vqe import BaselineEstimator, IdealEstimator
from repro.workloads import ESTIMATOR_KINDS, make_estimator, make_workload


class TestMakeWorkload:
    def test_defaults_match_section_5_1(self):
        w = make_workload("H2-4")
        assert w.ansatz.reps == 2
        assert w.ansatz.entanglement == "full"
        assert w.device.name == "ibmq_mumbai_like"
        assert w.ideal_energy == pytest.approx(10.46)

    def test_ansatz_width_matches_molecule(self):
        w = make_workload("CH4-6")
        assert w.ansatz.n_qubits == 6 == w.n_qubits

    def test_custom_ansatz_knobs(self):
        w = make_workload("H2-4", reps=4, entanglement="linear")
        assert w.ansatz.reps == 4
        assert w.ansatz.entanglement == "linear"

    def test_device_too_small_rejected(self):
        with pytest.raises(ValueError):
            make_workload("CH4-8", device=ibm_lagos_like())

    def test_unknown_molecule(self):
        with pytest.raises(KeyError):
            make_workload("Xe-99")


class TestMakeEstimator:
    @pytest.fixture
    def setup(self):
        w = make_workload("H2-4", reps=1, entanglement="linear")
        return w, SimulatorBackend(w.device, seed=0)

    def test_all_kinds_construct(self, setup):
        w, backend = setup
        expected_types = {
            "ideal": IdealEstimator,
            "baseline": BaselineEstimator,
            "jigsaw": JigSawEstimator,
            "varsaw": VarSawEstimator,
            "varsaw_no_sparsity": VarSawEstimator,
            "varsaw_max_sparsity": VarSawEstimator,
        }
        assert set(ESTIMATOR_KINDS) == set(expected_types)
        for kind, cls in expected_types.items():
            est = make_estimator(kind, w, backend, shots=16)
            assert isinstance(est, cls)

    def test_sparsity_modes_wired(self, setup):
        w, backend = setup
        no_sparsity = make_estimator("varsaw_no_sparsity", w, backend)
        max_sparsity = make_estimator("varsaw_max_sparsity", w, backend)
        assert no_sparsity.scheduler.mode == "always"
        assert max_sparsity.scheduler.mode == "never"

    def test_unknown_kind(self, setup):
        w, backend = setup
        with pytest.raises(ValueError):
            make_estimator("magic", w, backend)

    def test_kwargs_passthrough(self, setup):
        w, backend = setup
        est = make_estimator("varsaw", w, backend, initial_period=8)
        assert est.scheduler.period == 8
