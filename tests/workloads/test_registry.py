"""Unit tests for the workload/estimator factory."""

import pytest

from repro.core import (
    CalibrationGatedVarSawEstimator,
    DriftAwareVarSawEstimator,
    SelectiveVarSawEstimator,
    VarSawEstimator,
)
from repro.mitigation import JigSawEstimator
from repro.noise import SimulatorBackend, ibm_lagos_like
from repro.vqe import (
    BaselineEstimator,
    GeneralCommutationEstimator,
    IdealEstimator,
)
from repro.workloads import ESTIMATOR_KINDS, make_estimator, make_workload


class TestMakeWorkload:
    def test_defaults_match_section_5_1(self):
        w = make_workload("H2-4")
        assert w.ansatz.reps == 2
        assert w.ansatz.entanglement == "full"
        assert w.device.name == "ibmq_mumbai_like"
        assert w.ideal_energy == pytest.approx(10.46)

    def test_ansatz_width_matches_molecule(self):
        w = make_workload("CH4-6")
        assert w.ansatz.n_qubits == 6 == w.n_qubits

    def test_custom_ansatz_knobs(self):
        w = make_workload("H2-4", reps=4, entanglement="linear")
        assert w.ansatz.reps == 4
        assert w.ansatz.entanglement == "linear"

    def test_device_too_small_rejected(self):
        with pytest.raises(ValueError):
            make_workload("CH4-8", device=ibm_lagos_like())

    def test_unknown_molecule(self):
        with pytest.raises(KeyError):
            make_workload("Xe-99")


class TestMakeEstimator:
    @pytest.fixture
    def setup(self):
        w = make_workload("H2-4", reps=1, entanglement="linear")
        return w, SimulatorBackend(w.device, seed=0)

    def test_all_kinds_construct(self, setup):
        w, backend = setup
        expected_types = {
            "ideal": IdealEstimator,
            "baseline": BaselineEstimator,
            "jigsaw": JigSawEstimator,
            "varsaw": VarSawEstimator,
            "varsaw_no_sparsity": VarSawEstimator,
            "varsaw_max_sparsity": VarSawEstimator,
            "gc": GeneralCommutationEstimator,
            "selective": SelectiveVarSawEstimator,
            "calibration_gated": CalibrationGatedVarSawEstimator,
            "drift_adaptive": DriftAwareVarSawEstimator,
        }
        assert set(ESTIMATOR_KINDS) == set(expected_types)
        assert len(ESTIMATOR_KINDS) >= 9
        for kind, cls in expected_types.items():
            est = make_estimator(kind, w, backend, shots=16)
            assert isinstance(est, cls)

    def test_legacy_kinds_listed_first(self):
        assert ESTIMATOR_KINDS[:6] == (
            "ideal", "baseline", "jigsaw", "varsaw",
            "varsaw_no_sparsity", "varsaw_max_sparsity",
        )

    def test_sparsity_modes_wired(self, setup):
        w, backend = setup
        no_sparsity = make_estimator("varsaw_no_sparsity", w, backend)
        max_sparsity = make_estimator("varsaw_max_sparsity", w, backend)
        assert no_sparsity.scheduler.mode == "always"
        assert max_sparsity.scheduler.mode == "never"

    def test_unknown_kind(self, setup):
        w, backend = setup
        with pytest.raises(ValueError, match="unknown estimator kind"):
            make_estimator("magic", w, backend)

    def test_kwargs_passthrough(self, setup):
        w, backend = setup
        est = make_estimator("varsaw", w, backend, initial_period=8)
        assert est.scheduler.period == 8

    def test_misspelled_kwarg_names_key_and_fields(self, setup):
        # The silent-forwarding fix: a typo'd knob fails loudly, by
        # name, with the kind's accepted fields — at build time.
        w, backend = setup
        with pytest.raises(ValueError, match=r"'windw'") as excinfo:
            make_estimator("varsaw", w, backend, windw=3)
        assert "window" in str(excinfo.value)
        assert "'varsaw'" in str(excinfo.value)

    def test_kwarg_for_wrong_kind_rejected(self, setup):
        w, backend = setup
        with pytest.raises(ValueError, match="mass_fraction"):
            make_estimator("baseline", w, backend, mass_fraction=0.5)

    def test_new_kind_knobs_wired(self, setup):
        w, backend = setup
        selective = make_estimator(
            "selective", w, backend, mass_fraction=0.8,
            global_mode="always",
        )
        assert selective.term_selector.mass_fraction == 0.8
        gated = make_estimator(
            "calibration_gated", w, backend, error_threshold=0.5
        )
        assert gated.gate.error_threshold == 0.5
        gc = make_estimator("gc", w, backend, method="greedy")
        assert gc.num_groups >= 1

    def test_pinned_sparsity_mode_conflict_rejected(self, setup):
        w, backend = setup
        with pytest.raises(ValueError, match="pins global_mode"):
            make_estimator(
                "varsaw_no_sparsity", w, backend, global_mode="never"
            )
