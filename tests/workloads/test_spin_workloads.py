"""Unit tests for the spin-model workload factory."""

import pytest

from repro.noise import SimulatorBackend, ibm_lagos_like
from repro.workloads import SPIN_MODELS, make_estimator, make_spin_workload


class TestMakeSpinWorkload:
    @pytest.mark.parametrize("model", SPIN_MODELS)
    def test_all_models_construct(self, model):
        w = make_spin_workload(model, 5)
        assert w.n_qubits == 5
        assert w.ansatz.n_qubits == 5
        assert w.ideal_energy < 0  # all are negative-definite chains here

    def test_model_kwargs_forwarded(self):
        strong = make_spin_workload("tfim", 4, coupling=5.0, field=0.1)
        weak = make_spin_workload("tfim", 4, coupling=0.5, field=0.1)
        assert strong.ideal_energy < weak.ideal_energy

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            make_spin_workload("kitaev", 4)

    def test_device_capacity_check(self):
        with pytest.raises(ValueError):
            make_spin_workload("xy", 10, device=ibm_lagos_like())

    def test_ideal_energy_matches_exact(self):
        from repro.hamiltonian import ground_state_energy

        w = make_spin_workload("heisenberg", 4, field=0.2)
        assert w.ideal_energy == pytest.approx(
            ground_state_energy(w.hamiltonian)
        )

    def test_estimators_build_on_spin_workloads(self):
        w = make_spin_workload("xy", 4, anisotropy=0.3)
        backend = SimulatorBackend(w.device, seed=0)
        est = make_estimator("varsaw", w, backend, shots=32)
        import numpy as np

        energy = est.evaluate(np.zeros(w.ansatz.num_parameters))
        assert isinstance(energy, float)

    def test_ansatz_knobs(self):
        w = make_spin_workload("tfim", 4, reps=3, entanglement="circular")
        assert w.ansatz.reps == 3
        assert w.ansatz.entanglement == "circular"
