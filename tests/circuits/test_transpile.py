"""Unit tests for the transpiler passes."""

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    Parameter,
    cancel_adjacent,
    merge_rotations,
    transpile,
)
from repro.sim import probabilities, run_statevector


def same_distribution(a: Circuit, b: Circuit) -> bool:
    return np.allclose(
        probabilities(run_statevector(a)), probabilities(run_statevector(b))
    )


class TestCancelAdjacent:
    def test_hh_cancels(self):
        qc = Circuit(1)
        qc.h(0)
        qc.h(0)
        assert len(cancel_adjacent(qc)) == 0

    def test_cxcx_cancels(self):
        qc = Circuit(2)
        qc.cx(0, 1)
        qc.cx(0, 1)
        assert len(cancel_adjacent(qc)) == 0

    def test_reversed_cx_does_not_cancel(self):
        qc = Circuit(2)
        qc.cx(0, 1)
        qc.cx(1, 0)
        assert len(cancel_adjacent(qc)) == 2

    def test_intervening_gate_blocks_cancellation(self):
        qc = Circuit(1)
        qc.h(0)
        qc.x(0)
        qc.h(0)
        assert len(cancel_adjacent(qc)) == 3

    def test_disjoint_qubit_gate_does_not_block(self):
        # Regression: the pass used to inspect only the stack top, so a
        # commuting gate on another qubit hid this cancelable pair.
        qc = Circuit(2)
        qc.h(0)
        qc.x(1)
        qc.h(0)
        reduced = cancel_adjacent(qc)
        assert len(reduced) == 1
        assert reduced.instructions[0].name == "x"
        assert same_distribution(qc, reduced)

    def test_scan_stops_at_first_shared_qubit(self):
        # The intervening CX touches qubit 1, so the outer CX pair must
        # survive (they do not commute past it).
        qc = Circuit(3)
        qc.cx(0, 1)
        qc.cx(1, 2)
        qc.cx(0, 1)
        assert len(cancel_adjacent(qc)) == 3

    def test_many_disjoint_gates_are_scanned_past(self):
        qc = Circuit(4)
        qc.cx(0, 1)
        qc.h(2)
        qc.rz(0.3, 3)
        qc.x(2)
        qc.cx(0, 1)
        reduced = cancel_adjacent(qc)
        assert [ins.name for ins in reduced.instructions] == [
            "h", "rz", "x",
        ]

    def test_gate_restriction_limits_cancellation(self):
        from repro.circuits.transpile import BITEXACT_SELF_INVERSE

        qc = Circuit(1)
        qc.h(0)
        qc.h(0)
        qc.x(0)
        qc.x(0)
        reduced = cancel_adjacent(qc, gates=BITEXACT_SELF_INVERSE)
        # H is not bit-exact (1/sqrt2 rounds), so only the X pair goes.
        assert [ins.name for ins in reduced.instructions] == ["h", "h"]

    def test_cascading_cancellation(self):
        # X H H X -> X X -> nothing.
        qc = Circuit(1)
        qc.x(0)
        qc.h(0)
        qc.h(0)
        qc.x(0)
        assert len(cancel_adjacent(qc)) == 0

    def test_t_is_not_self_inverse(self):
        qc = Circuit(1)
        qc.t(0)
        qc.t(0)
        assert len(cancel_adjacent(qc)) == 2

    def test_preserves_measurement(self):
        qc = Circuit(2)
        qc.h(0)
        qc.h(0)
        qc.measure(1)
        assert cancel_adjacent(qc).measured_qubits == {1}


class TestMergeRotations:
    def test_same_axis_merges(self):
        qc = Circuit(1)
        qc.rz(0.3, 0)
        qc.rz(0.4, 0)
        merged = merge_rotations(qc)
        assert len(merged) == 1
        assert merged.instructions[0].param == pytest.approx(0.7)

    def test_opposite_angles_vanish(self):
        qc = Circuit(1)
        qc.ry(0.5, 0)
        qc.ry(-0.5, 0)
        assert len(merge_rotations(qc)) == 0

    def test_angle_wraps_mod_2pi(self):
        qc = Circuit(1)
        qc.rz(3.5, 0)
        qc.rz(3.5, 0)
        merged = merge_rotations(qc)
        assert abs(merged.instructions[0].param) <= np.pi + 1e-9

    def test_different_axes_do_not_merge(self):
        qc = Circuit(1)
        qc.rx(0.3, 0)
        qc.rz(0.3, 0)
        assert len(merge_rotations(qc)) == 2

    def test_different_qubits_do_not_merge(self):
        qc = Circuit(2)
        qc.rz(0.3, 0)
        qc.rz(0.3, 1)
        assert len(merge_rotations(qc)) == 2

    def test_symbolic_blocks_merge(self):
        qc = Circuit(1)
        qc.rz(Parameter("a"), 0)
        qc.rz(0.3, 0)
        assert len(merge_rotations(qc)) == 2


class TestTranspileFixedPoint:
    def test_combined_reduction(self):
        # RZ(+a) H H RZ(-a) reduces to nothing.
        qc = Circuit(1)
        qc.rz(0.4, 0)
        qc.h(0)
        qc.h(0)
        qc.rz(-0.4, 0)
        assert len(transpile(qc)) == 0

    def test_unitary_preserved_random_circuits(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            qc = Circuit(3)
            for _ in range(20):
                choice = rng.integers(0, 5)
                q = int(rng.integers(0, 3))
                if choice == 0:
                    qc.h(q)
                elif choice == 1:
                    qc.rz(float(rng.normal()), q)
                elif choice == 2:
                    qc.ry(float(rng.normal()), q)
                elif choice == 3:
                    q2 = int((q + 1) % 3)
                    qc.cx(q, q2)
                else:
                    qc.x(q)
            optimized = transpile(qc)
            assert len(optimized) <= len(qc)
            assert same_distribution(qc, optimized)

    def test_reduces_ansatz_plus_inverse_suffix(self):
        """An ansatz followed by an inverse fragment shrinks."""
        qc = Circuit(2)
        qc.ry(0.2, 0)
        qc.cx(0, 1)
        qc.cx(0, 1)
        qc.ry(-0.2, 0)
        qc.h(1)
        assert len(transpile(qc)) == 1
