"""Unit tests for OpenQASM 2.0 export/import."""

import numpy as np
import pytest

from repro.circuits import Circuit, Parameter, from_qasm, to_qasm
from repro.sim import probabilities, run_statevector


def bell() -> Circuit:
    qc = Circuit(2)
    qc.h(0)
    qc.cx(0, 1)
    qc.measure_all()
    return qc


class TestExport:
    def test_header_and_registers(self):
        text = to_qasm(bell())
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[2];" in text
        assert "creg c[2];" in text

    def test_gate_lines(self):
        text = to_qasm(bell())
        assert "h q[0];" in text
        assert "cx q[0], q[1];" in text

    def test_measure_lines(self):
        text = to_qasm(bell())
        assert "measure q[0] -> c[0];" in text
        assert "measure q[1] -> c[1];" in text

    def test_rotation_params_serialized(self):
        qc = Circuit(1)
        qc.rx(0.5, 0)
        assert "rx(0.5) q[0];" in to_qasm(qc)

    def test_identity_renamed(self):
        qc = Circuit(1)
        qc.i(0)
        assert "id q[0];" in to_qasm(qc)

    def test_unbound_rejected(self):
        qc = Circuit(1)
        qc.rx(Parameter("a"), 0)
        with pytest.raises(ValueError):
            to_qasm(qc)

    def test_no_creg_without_measurement(self):
        qc = Circuit(1)
        qc.h(0)
        assert "creg" not in to_qasm(qc)


class TestImport:
    def test_roundtrip_structure(self):
        original = bell()
        parsed = from_qasm(to_qasm(original))
        assert parsed.n_qubits == original.n_qubits
        assert [i.name for i in parsed.instructions] == [
            i.name for i in original.instructions
        ]
        assert parsed.measured_qubits == original.measured_qubits

    def test_roundtrip_simulates_identically(self):
        qc = Circuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.ry(0.7, 2)
        qc.cz(1, 2)
        qc.rz(-1.2, 0)
        parsed = from_qasm(to_qasm(qc))
        assert np.allclose(
            probabilities(run_statevector(qc)),
            probabilities(run_statevector(parsed)),
        )

    def test_comments_and_blanks_ignored(self):
        text = (
            "OPENQASM 2.0;\n"
            'include "qelib1.inc";\n'
            "// a comment\n"
            "\n"
            "qreg q[1];\n"
            "x q[0]; // trailing comment\n"
        )
        parsed = from_qasm(text)
        assert [i.name for i in parsed.instructions] == ["x"]

    def test_missing_qreg_rejected(self):
        with pytest.raises(ValueError, match="qreg"):
            from_qasm("OPENQASM 2.0;\nx q[0];")

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            from_qasm("qreg q[2];\nccx q[0], q[1];")

    def test_statement_before_qreg_rejected(self):
        with pytest.raises(ValueError):
            from_qasm("x q[0];\nqreg q[1];")

    def test_u1_maps_to_p(self):
        parsed = from_qasm("qreg q[1];\nu1(0.3) q[0];")
        assert parsed.instructions[0].name == "p"
        assert parsed.instructions[0].param == pytest.approx(0.3)
