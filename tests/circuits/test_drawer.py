"""Unit tests for the ASCII circuit drawer."""

from repro.circuits import Circuit, Parameter, draw


class TestDraw:
    def test_one_line_per_qubit(self):
        qc = Circuit(3)
        qc.h(0)
        lines = draw(qc).splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("q0:")
        assert lines[2].startswith("q2:")

    def test_gate_labels_present(self):
        qc = Circuit(2)
        qc.h(0)
        qc.rx(0.5, 1)
        text = draw(qc)
        assert "[H]" in text
        assert "[RX(0.5)]" in text

    def test_unbound_parameter_shows_name(self):
        qc = Circuit(1)
        qc.ry(Parameter("theta[3]"), 0)
        assert "RY(theta[3])" in draw(qc)

    def test_cx_control_target_symbols(self):
        qc = Circuit(2)
        qc.cx(0, 1)
        lines = draw(qc).splitlines()
        assert "●" in lines[0]
        assert "X" in lines[1]

    def test_swap_symbols(self):
        qc = Circuit(2)
        qc.swap(0, 1)
        text = draw(qc)
        assert text.count("x") >= 2

    def test_measured_qubits_marked(self):
        qc = Circuit(2)
        qc.h(0)
        qc.measure(0)
        lines = draw(qc).splitlines()
        assert lines[0].endswith("=M")
        assert not lines[1].endswith("=M")

    def test_dependency_ordering(self):
        """A gate after CX lands in a later column than one before it."""
        qc = Circuit(2)
        qc.h(0)
        qc.cx(0, 1)
        qc.h(1)
        lines = draw(qc).splitlines()
        # The second H (on q1) must be to the right of the X of the CX.
        assert lines[1].index("X") < lines[1].rindex("[H]")

    def test_parallel_gates_share_column(self):
        qc = Circuit(2)
        qc.h(0)
        qc.h(1)
        lines = draw(qc).splitlines()
        assert lines[0].index("[H]") == lines[1].index("[H]")
