"""Unit tests for symbolic parameters."""

import pytest

from repro.circuits import Parameter, ParameterVector


class TestParameter:
    def test_bind_resolves_value(self):
        p = Parameter("theta")
        assert p.bind({"theta": 1.5}) == 1.5

    def test_bind_missing_raises(self):
        with pytest.raises(KeyError):
            Parameter("theta").bind({"phi": 1.0})

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Parameter("")

    def test_negation_applies_at_bind(self):
        p = -Parameter("theta")
        assert p.bind({"theta": 2.0}) == -2.0

    def test_scalar_multiplication(self):
        assert (3 * Parameter("x")).bind({"x": 2.0}) == 6.0
        assert (Parameter("x") * 3).bind({"x": 2.0}) == 6.0

    def test_division(self):
        assert (Parameter("x") / 2).bind({"x": 3.0}) == 1.5

    def test_equality_by_name_and_coeff(self):
        assert Parameter("a") == Parameter("a")
        assert Parameter("a") != Parameter("b")
        assert Parameter("a") != -Parameter("a")

    def test_hashable(self):
        assert len({Parameter("a"), Parameter("a"), Parameter("b")}) == 2

    def test_repr_mentions_name(self):
        assert "theta" in repr(Parameter("theta"))


class TestParameterVector:
    def test_length_and_indexing(self):
        vec = ParameterVector("t", 5)
        assert len(vec) == 5
        assert vec[2].name == "t[2]"

    def test_iteration_order(self):
        vec = ParameterVector("t", 3)
        assert [p.name for p in vec] == ["t[0]", "t[1]", "t[2]"]

    def test_to_bindings_maps_values(self):
        vec = ParameterVector("t", 3)
        bindings = vec.to_bindings([1.0, 2.0, 3.0])
        assert bindings == {"t[0]": 1.0, "t[1]": 2.0, "t[2]": 3.0}

    def test_to_bindings_length_mismatch(self):
        with pytest.raises(ValueError):
            ParameterVector("t", 3).to_bindings([1.0])

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            ParameterVector("t", -1)

    def test_zero_length_allowed(self):
        assert ParameterVector("t", 0).to_bindings([]) == {}
