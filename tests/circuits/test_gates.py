"""Unit tests for gate matrices."""

import math

import numpy as np
import pytest

from repro.circuits import FIXED_GATES, GATE_ARITY, gate_matrix, rotation_matrix
from repro.circuits.gates import CX, H, S, SDG, SX, T, X, Y, Z


def is_unitary(m: np.ndarray) -> bool:
    return np.allclose(m @ m.conj().T, np.eye(m.shape[0]), atol=1e-12)


class TestFixedGates:
    @pytest.mark.parametrize("name", sorted(FIXED_GATES))
    def test_all_fixed_gates_unitary(self, name):
        assert is_unitary(FIXED_GATES[name])

    def test_pauli_algebra(self):
        assert np.allclose(X @ X, np.eye(2))
        assert np.allclose(X @ Y, 1j * Z)
        assert np.allclose(Y @ Z, 1j * X)
        assert np.allclose(Z @ X, 1j * Y)

    def test_hadamard_maps_z_to_x(self):
        assert np.allclose(H @ Z @ H, X)

    def test_s_squared_is_z(self):
        assert np.allclose(S @ S, Z)

    def test_sdg_is_s_inverse(self):
        assert np.allclose(S @ SDG, np.eye(2))

    def test_t_squared_is_s(self):
        assert np.allclose(T @ T, S)

    def test_sx_squared_is_x(self):
        assert np.allclose(SX @ SX, X)

    def test_cx_flips_target_on_control_one(self):
        # |10> -> |11>, control is the most significant bit.
        state = np.zeros(4)
        state[0b10] = 1.0
        assert np.allclose(CX @ state, np.eye(4)[0b11])

    def test_arity_table_consistent(self):
        for name, matrix in FIXED_GATES.items():
            assert matrix.shape == (2 ** GATE_ARITY[name],) * 2

    @pytest.mark.parametrize("name", sorted(FIXED_GATES))
    def test_fixed_matrices_are_read_only(self, name):
        # gate_matrix() hands out the module-level constants by
        # reference; an in-place edit would corrupt every later
        # simulation process-wide, so writes must raise.
        matrix = gate_matrix(name)
        with pytest.raises(ValueError, match="read-only"):
            matrix[0, 0] = 99.0

    def test_rotation_matrices_are_fresh_and_writable(self):
        # Rotations are built per call — callers own them.
        a = rotation_matrix("rx", 0.3)
        b = rotation_matrix("rx", 0.3)
        assert a is not b
        a[0, 0] = 99.0
        assert b[0, 0] != 99.0


class TestRotations:
    @pytest.mark.parametrize("name", ["rx", "ry", "rz", "p"])
    @pytest.mark.parametrize("theta", [0.0, 0.3, math.pi, -1.7])
    def test_rotations_unitary(self, name, theta):
        assert is_unitary(rotation_matrix(name, theta))

    def test_rx_pi_is_x_up_to_phase(self):
        rx = rotation_matrix("rx", math.pi)
        assert np.allclose(rx, -1j * X)

    def test_ry_pi_is_y_up_to_phase(self):
        ry = rotation_matrix("ry", math.pi)
        assert np.allclose(ry, -1j * Y)

    def test_rz_zero_is_identity(self):
        assert np.allclose(rotation_matrix("rz", 0.0), np.eye(2))

    def test_rotation_additivity(self):
        a = rotation_matrix("ry", 0.4)
        b = rotation_matrix("ry", 0.7)
        assert np.allclose(a @ b, rotation_matrix("ry", 1.1))

    def test_unknown_rotation_rejected(self):
        with pytest.raises(ValueError):
            rotation_matrix("rq", 0.1)


class TestGateMatrixDispatch:
    def test_fixed_gate_lookup(self):
        assert np.allclose(gate_matrix("h"), H)

    def test_fixed_gate_rejects_parameter(self):
        with pytest.raises(ValueError):
            gate_matrix("h", 0.5)

    def test_rotation_requires_parameter(self):
        with pytest.raises(ValueError):
            gate_matrix("rx")

    def test_unknown_gate(self):
        with pytest.raises(ValueError):
            gate_matrix("nope")
