"""Unit tests for the circuit IR."""

import pytest

from repro.circuits import Circuit, Parameter


class TestConstruction:
    def test_needs_positive_width(self):
        with pytest.raises(ValueError):
            Circuit(0)

    def test_append_unknown_gate(self):
        qc = Circuit(2)
        with pytest.raises(ValueError):
            qc.append("bogus", 0)

    def test_append_wrong_arity(self):
        qc = Circuit(2)
        with pytest.raises(ValueError):
            qc.append("cx", (0,))

    def test_append_duplicate_qubits(self):
        qc = Circuit(2)
        with pytest.raises(ValueError):
            qc.cx(1, 1)

    def test_append_out_of_range(self):
        qc = Circuit(2)
        with pytest.raises(ValueError):
            qc.h(2)

    def test_rotation_requires_param(self):
        qc = Circuit(1)
        with pytest.raises(ValueError):
            qc.append("rx", 0)

    def test_fixed_gate_rejects_param(self):
        qc = Circuit(1)
        with pytest.raises(ValueError):
            qc.append("h", 0, 0.5)

    def test_convenience_methods_record_instructions(self):
        qc = Circuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.rz(0.5, 2)
        assert [ins.name for ins in qc.instructions] == ["h", "cx", "rz"]
        assert qc.instructions[1].qubits == (0, 1)


class TestMeasurement:
    def test_measure_single(self):
        qc = Circuit(3)
        qc.measure(1)
        assert qc.measured_qubits == {1}

    def test_measure_iterable(self):
        qc = Circuit(3)
        qc.measure([0, 2])
        assert qc.measured_qubits == {0, 2}

    def test_measure_all(self):
        qc = Circuit(3)
        qc.measure_all()
        assert qc.measured_qubits == {0, 1, 2}

    def test_measure_out_of_range(self):
        qc = Circuit(2)
        with pytest.raises(ValueError):
            qc.measure(5)


class TestBinding:
    def test_parameters_property(self):
        qc = Circuit(2)
        qc.rx(Parameter("a"), 0)
        qc.ry(Parameter("b"), 1)
        qc.h(0)
        assert qc.parameters == {"a", "b"}

    def test_bind_resolves_all(self):
        qc = Circuit(1)
        qc.rx(Parameter("a"), 0)
        bound = qc.bind({"a": 0.7})
        assert bound.is_bound()
        assert bound.instructions[0].param == 0.7

    def test_bind_leaves_original_symbolic(self):
        qc = Circuit(1)
        qc.rx(Parameter("a"), 0)
        qc.bind({"a": 0.7})
        assert not qc.is_bound()

    def test_bind_preserves_measurement(self):
        qc = Circuit(2)
        qc.rx(Parameter("a"), 0)
        qc.measure(1)
        assert qc.bind({"a": 1.0}).measured_qubits == {1}

    def test_scaled_parameter_binding(self):
        qc = Circuit(1)
        qc.rz(Parameter("a") / 2, 0)
        assert qc.bind({"a": 3.0}).instructions[0].param == 1.5


class TestComposeAndCopy:
    def test_compose_appends_gates(self):
        a = Circuit(2)
        a.h(0)
        b = Circuit(2)
        b.cx(0, 1)
        c = a.compose(b)
        assert [ins.name for ins in c.instructions] == ["h", "cx"]

    def test_compose_merges_measurements(self):
        a = Circuit(2)
        a.measure(0)
        b = Circuit(2)
        b.measure(1)
        assert a.compose(b).measured_qubits == {0, 1}

    def test_compose_width_mismatch(self):
        with pytest.raises(ValueError):
            Circuit(2).compose(Circuit(3))

    def test_copy_is_independent(self):
        a = Circuit(2)
        a.h(0)
        b = a.copy()
        b.x(1)
        assert len(a) == 1
        assert len(b) == 2


class TestInspection:
    def test_depth_parallel_gates(self):
        qc = Circuit(2)
        qc.h(0)
        qc.h(1)
        assert qc.depth() == 1

    def test_depth_serial_chain(self):
        qc = Circuit(2)
        qc.h(0)
        qc.cx(0, 1)
        qc.h(1)
        assert qc.depth() == 3

    def test_two_qubit_gate_count(self):
        qc = Circuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.cz(1, 2)
        assert qc.num_two_qubit_gates == 2
        assert qc.num_gates == 3

    def test_repr_contains_counts(self):
        qc = Circuit(2, name="bell")
        qc.h(0)
        qc.cx(0, 1)
        qc.measure_all()
        text = repr(qc)
        assert "bell" in text and "2 gates" in text
