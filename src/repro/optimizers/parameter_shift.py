"""Gradient descent with parameter-shift gradients.

For circuits whose parameters enter only through single-qubit rotations
``exp(-i theta P / 2)`` — exactly the hardware-efficient SU2 ansatz — the
objective's partial derivative is *exact*:

    dE/dtheta = [E(theta + pi/2) - E(theta - pi/2)] / 2

(the parameter-shift rule).  This optimizer is the high-cost/high-quality
counterpoint to SPSA: ``2 * n_params`` objective evaluations per
iteration, but an unbiased full gradient.  The paper's cost argument gets
*stronger* under parameter-shift tuners — every extra evaluation is a
full batch of circuits — so this module also powers the cost ablations.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from .base import ObjectiveFn, OptimizerResult

__all__ = ["ParameterShift", "parameter_shift_gradient"]


def parameter_shift_gradient(
    fun: ObjectiveFn, x: np.ndarray, shift: float = math.pi / 2
) -> tuple[np.ndarray, int]:
    """Exact gradient via the parameter-shift rule.

    Returns ``(gradient, evaluations_used)``.
    """
    x = np.asarray(x, dtype=float)
    gradient = np.zeros_like(x)
    for i in range(x.size):
        step = np.zeros_like(x)
        step[i] = shift
        gradient[i] = (fun(x + step) - fun(x - step)) / (
            2.0 * math.sin(shift)
        )
    return gradient, 2 * x.size


class ParameterShift:
    """Plain gradient descent on parameter-shift gradients.

    Parameters
    ----------
    learning_rate:
        Step size; decays as ``lr / (1 + decay * k)``.
    decay:
        Learning-rate decay per iteration.
    momentum:
        Classical momentum coefficient in [0, 1).
    """

    def __init__(
        self,
        learning_rate: float = 0.1,
        decay: float = 0.01,
        momentum: float = 0.0,
    ):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if decay < 0:
            raise ValueError("decay must be nonnegative")
        self.learning_rate = float(learning_rate)
        self.decay = float(decay)
        self.momentum = float(momentum)

    def minimize(
        self,
        fun: ObjectiveFn,
        x0: np.ndarray,
        max_iterations: int,
        should_stop: Callable[[], bool] | None = None,
        callback: Callable[[int, np.ndarray, float], None] | None = None,
    ) -> OptimizerResult:
        x = np.asarray(x0, dtype=float).copy()
        velocity = np.zeros_like(x)
        best_x = x.copy()
        best_f = np.inf
        history: list[float] = []
        evaluations = 0
        stop_reason = "max_iterations"
        for k in range(max_iterations):
            if should_stop is not None and should_stop():
                stop_reason = "budget_exhausted"
                break
            gradient, used = parameter_shift_gradient(fun, x)
            evaluations += used
            lr = self.learning_rate / (1.0 + self.decay * k)
            velocity = self.momentum * velocity - lr * gradient
            x = x + velocity
            f = fun(x)
            evaluations += 1
            if f < best_f:
                best_f = f
                best_x = x.copy()
            history.append(best_f)
            if callback is not None:
                callback(k, x, f)
        return OptimizerResult(
            x=best_x,
            fun=best_f,
            iterations=len(history),
            evaluations=evaluations,
            history=history,
            stop_reason=stop_reason,
        )
