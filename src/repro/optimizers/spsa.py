"""Simultaneous Perturbation Stochastic Approximation (Spall 1992).

The paper's primary classical tuner (Section 5.1).  SPSA estimates the
gradient from exactly two objective evaluations per iteration regardless of
dimension — the property that makes it the standard choice for VQE, where
each evaluation costs a full batch of quantum circuits.

Gain sequences follow Spall's practical guidelines:
``a_k = a / (k + 1 + A)^alpha`` and ``c_k = c / (k + 1)^gamma`` with
``alpha=0.602``, ``gamma=0.101``, and ``A`` set to 10% of the iteration
budget.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .base import ObjectiveFn, OptimizerResult

__all__ = ["SPSA"]


class SPSA:
    """Minimize a noisy function with simultaneous-perturbation gradients.

    Parameters
    ----------
    a:
        Initial step gain.  ``None`` (the default) auto-calibrates it the
        way Qiskit's SPSA does: sample a few gradient estimates at the
        start point and choose ``a`` so the first step has magnitude
        ``target_step``.
    c:
        Perturbation size.
    alpha, gamma:
        Gain decay exponents (Spall's asymptotically optimal values).
    target_step:
        Desired first-step magnitude for auto-calibration.
    calibration_samples:
        Gradient samples used by auto-calibration (2 evaluations each).
    seed:
        RNG seed for the Rademacher perturbation directions.
    blocking:
        If set, a candidate step is rejected when it worsens the objective
        by more than ``blocking`` (simple noise-robust gate, mirroring
        Qiskit's SPSA ``blocking`` option).
    """

    def __init__(
        self,
        a: float | None = None,
        c: float = 0.15,
        alpha: float = 0.602,
        gamma: float = 0.101,
        target_step: float = 0.3,
        calibration_samples: int = 8,
        seed: int | None = None,
        blocking: float | None = None,
    ):
        if a is not None and a <= 0:
            raise ValueError("a must be positive")
        if c <= 0:
            raise ValueError("c must be positive")
        if target_step <= 0 or calibration_samples < 1:
            raise ValueError("bad calibration settings")
        self.a = a if a is None else float(a)
        self.c = float(c)
        self.alpha = float(alpha)
        self.gamma = float(gamma)
        self.target_step = float(target_step)
        self.calibration_samples = int(calibration_samples)
        self.rng = np.random.default_rng(seed)
        self.blocking = blocking

    def _calibrate(
        self, fun: ObjectiveFn, x: np.ndarray, stability: float
    ) -> tuple[float, int]:
        """Pick ``a`` so the first update moves by ~``target_step``.

        Returns ``(a, evaluations_used)``.  Falls back to a unit gain when
        the landscape looks flat at scale ``c``.
        """
        prepare = getattr(fun, "prepare", None)
        magnitudes = []
        for _ in range(self.calibration_samples):
            delta = self.rng.choice([-1.0, 1.0], size=x.shape)
            if prepare is not None:
                prepare([x + self.c * delta, x - self.c * delta])
            f_plus = fun(x + self.c * delta)
            f_minus = fun(x - self.c * delta)
            magnitudes.append(abs(f_plus - f_minus) / (2.0 * self.c))
        used = 2 * self.calibration_samples
        average = float(np.mean(magnitudes))
        if average <= 1e-12:
            return 1.0, used
        return (
            self.target_step * (1 + stability) ** self.alpha / average,
            used,
        )

    def minimize(
        self,
        fun: ObjectiveFn,
        x0: np.ndarray,
        max_iterations: int,
        should_stop: Callable[[], bool] | None = None,
        callback: Callable[[int, np.ndarray, float], None] | None = None,
    ) -> OptimizerResult:
        x = np.asarray(x0, dtype=float).copy()
        stability = max(1.0, 0.1 * max_iterations)
        best_x = x.copy()
        best_f = np.inf
        history: list[float] = []
        evaluations = 0
        stop_reason = "max_iterations"
        if self.a is not None:
            gain_a = self.a
        else:
            gain_a, used = self._calibrate(fun, x, stability)
            evaluations += used
        # Objectives may expose a batched state-preparation hook (see
        # run_vqe): warming both perturbation points at once lets the
        # engine vectorize the pair through one compiled plan.  The
        # evaluations themselves are unchanged, so results are
        # bit-identical with or without the hook.
        prepare = getattr(fun, "prepare", None)
        k = 0
        for k in range(max_iterations):
            if should_stop is not None and should_stop():
                stop_reason = "budget_exhausted"
                break
            ak = gain_a / (k + 1 + stability) ** self.alpha
            ck = self.c / (k + 1) ** self.gamma
            delta = self.rng.choice([-1.0, 1.0], size=x.shape)
            if prepare is not None:
                prepare([x + ck * delta, x - ck * delta])
            f_plus = fun(x + ck * delta)
            f_minus = fun(x - ck * delta)
            evaluations += 2
            gradient = (f_plus - f_minus) / (2.0 * ck) * delta
            candidate = x - ak * gradient
            f_current = 0.5 * (f_plus + f_minus)
            if self.blocking is not None and f_current > best_f + self.blocking:
                # Reject the step but keep annealing the gains.
                f_iterate = f_current
            else:
                x = candidate
                f_iterate = f_current
            if f_iterate < best_f:
                best_f = f_iterate
                best_x = x.copy()
            history.append(best_f)
            if callback is not None:
                callback(k, x, f_iterate)
        return OptimizerResult(
            x=best_x,
            fun=best_f,
            iterations=len(history),
            evaluations=evaluations,
            history=history,
            stop_reason=stop_reason,
        )
