"""Classical tuners: SPSA, ImFil, Nelder-Mead, parameter-shift."""

from .base import ObjectiveFn, Optimizer, OptimizerResult
from .imfil import ImFil
from .nelder_mead import NelderMead
from .parameter_shift import ParameterShift, parameter_shift_gradient
from .spsa import SPSA

__all__ = [
    "SPSA",
    "ImFil",
    "NelderMead",
    "ParameterShift",
    "parameter_shift_gradient",
    "Optimizer",
    "OptimizerResult",
    "ObjectiveFn",
]
