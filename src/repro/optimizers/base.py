"""Optimizer protocol shared by SPSA and ImFil.

VQA tuners minimize a *noisy* objective (shot noise + device noise), so
both implementations avoid exact line searches and derivative assumptions.
The driver controls termination through ``max_iterations`` and an optional
``should_stop`` predicate (used for the paper's fixed-circuit-budget
experiments: the budget ledger lives in the execution backend, and the
runner stops the tuner the moment the budget is spent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

__all__ = ["OptimizerResult", "Optimizer", "ObjectiveFn"]

ObjectiveFn = Callable[[np.ndarray], float]


@dataclass
class OptimizerResult:
    """Outcome of an optimization run.

    ``history`` holds the best-so-far objective value recorded at each
    iteration — the series the paper's energy-vs-iteration figures plot.
    """

    x: np.ndarray
    fun: float
    iterations: int
    evaluations: int
    history: list[float] = field(default_factory=list)
    stop_reason: str = "max_iterations"


class Optimizer(Protocol):
    """Anything that can minimize a noisy objective."""

    def minimize(
        self,
        fun: ObjectiveFn,
        x0: np.ndarray,
        max_iterations: int,
        should_stop: Callable[[], bool] | None = None,
        callback: Callable[[int, np.ndarray, float], None] | None = None,
    ) -> OptimizerResult:
        ...
