"""Nelder-Mead simplex optimizer.

The classic derivative-free simplex method [Nelder & Mead 1965] with the
standard reflection / expansion / contraction / shrink moves and adaptive
coefficients for higher dimension [Gao & Han 2012].  Simplex methods are
a common VQE tuner choice when shot noise is moderate; alongside SPSA
and ImFil it rounds out the library's coverage of the classical-tuner
design space (each re-samples the landscape differently, which matters
for VarSaw's temporal optimization — the Globals' staleness interacts
with how far the tuner moves per iteration).

One "iteration" here is one simplex update step, so ``max_iterations``
and the budget ``should_stop`` hook behave like the other optimizers'.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .base import ObjectiveFn, OptimizerResult

__all__ = ["NelderMead"]


class NelderMead:
    """Nelder-Mead with adaptive coefficients and noisy-objective defaults.

    Parameters
    ----------
    initial_step:
        Size of the axis steps building the initial simplex around x0.
    adaptive:
        Scale the move coefficients with dimension (recommended for the
        20+-parameter ansatz circuits in this library).
    seed:
        Unused (the method is deterministic); accepted so optimizer
        construction is uniform across the library.
    """

    def __init__(
        self,
        initial_step: float = 0.25,
        adaptive: bool = True,
        seed: int | None = None,
    ):
        if initial_step <= 0:
            raise ValueError("initial_step must be positive")
        self.initial_step = initial_step
        self.adaptive = adaptive

    def _coefficients(self, dim: int) -> tuple[float, float, float, float]:
        """(reflection, expansion, contraction, shrink)."""
        if self.adaptive and dim >= 2:
            return (
                1.0,
                1.0 + 2.0 / dim,
                0.75 - 1.0 / (2.0 * dim),
                1.0 - 1.0 / dim,
            )
        return 1.0, 2.0, 0.5, 0.5

    def minimize(
        self,
        fun: ObjectiveFn,
        x0: np.ndarray,
        max_iterations: int,
        should_stop: Callable[[], bool] | None = None,
        callback: Callable[[int, np.ndarray, float], None] | None = None,
    ) -> OptimizerResult:
        x0 = np.asarray(x0, dtype=float)
        dim = x0.shape[0]
        alpha, gamma, rho, sigma = self._coefficients(dim)

        # Initial simplex: x0 plus one axis-step vertex per dimension.
        simplex = [x0.copy()]
        for axis in range(dim):
            vertex = x0.copy()
            vertex[axis] += self.initial_step
            simplex.append(vertex)
        values = [fun(v) for v in simplex]
        evaluations = dim + 1

        history: list[float] = []
        stop_reason = "max_iterations"
        iteration = 0
        for iteration in range(max_iterations):
            if should_stop is not None and should_stop():
                stop_reason = "budget_exhausted"
                break
            order = np.argsort(values)
            simplex = [simplex[i] for i in order]
            values = [values[i] for i in order]

            centroid = np.mean(simplex[:-1], axis=0)
            worst = simplex[-1]
            reflected = centroid + alpha * (centroid - worst)
            f_reflected = fun(reflected)
            evaluations += 1

            if f_reflected < values[0]:
                expanded = centroid + gamma * (reflected - centroid)
                f_expanded = fun(expanded)
                evaluations += 1
                if f_expanded < f_reflected:
                    simplex[-1], values[-1] = expanded, f_expanded
                else:
                    simplex[-1], values[-1] = reflected, f_reflected
            elif f_reflected < values[-2]:
                simplex[-1], values[-1] = reflected, f_reflected
            else:
                if f_reflected < values[-1]:
                    contracted = centroid + rho * (reflected - centroid)
                else:
                    contracted = centroid + rho * (worst - centroid)
                f_contracted = fun(contracted)
                evaluations += 1
                if f_contracted < min(f_reflected, values[-1]):
                    simplex[-1], values[-1] = contracted, f_contracted
                else:
                    # Shrink every vertex toward the best.
                    best_vertex = simplex[0]
                    for i in range(1, len(simplex)):
                        simplex[i] = best_vertex + sigma * (
                            simplex[i] - best_vertex
                        )
                        values[i] = fun(simplex[i])
                    evaluations += dim

            best_index = int(np.argmin(values))
            history.append(float(values[best_index]))
            if callback is not None:
                callback(
                    iteration, simplex[best_index], float(values[best_index])
                )

        best_index = int(np.argmin(values))
        return OptimizerResult(
            x=simplex[best_index].copy(),
            fun=float(values[best_index]),
            iterations=iteration + 1 if max_iterations else 0,
            evaluations=evaluations,
            history=history,
            stop_reason=stop_reason,
        )
