"""Implicit Filtering (Kelley's ImFil), the paper's second tuner.

ImFil is a deterministic sampling method for noisy objectives: it builds a
finite-difference gradient on a coordinate stencil of shrinking scale ``h``,
takes a projected quasi-Newton-free descent step with a backtracking line
search, and halves ``h`` on *stencil failure* (no stencil point improves on
the center).  The shrinking stencil filters out objective noise at scales
below ``h`` — hence the name.

This implementation follows the algorithm as described in Kelley,
"Implicit Filtering" (SIAM, 2011), simplified to the first-order method the
VQE literature (Lavrijsen et al. 2020) benchmarks.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .base import ObjectiveFn, OptimizerResult

__all__ = ["ImFil"]


class ImFil:
    """Implicit-filtering minimizer for bound-free noisy problems.

    Parameters
    ----------
    h0:
        Initial stencil scale.
    h_min:
        Terminate when the scale shrinks below this.
    max_line_search:
        Backtracking steps per iteration.
    """

    def __init__(
        self,
        h0: float = 0.5,
        h_min: float = 1e-3,
        max_line_search: int = 5,
    ):
        if h0 <= 0 or h_min <= 0 or h_min > h0:
            raise ValueError("need 0 < h_min <= h0")
        self.h0 = float(h0)
        self.h_min = float(h_min)
        self.max_line_search = int(max_line_search)

    def minimize(
        self,
        fun: ObjectiveFn,
        x0: np.ndarray,
        max_iterations: int,
        should_stop: Callable[[], bool] | None = None,
        callback: Callable[[int, np.ndarray, float], None] | None = None,
    ) -> OptimizerResult:
        x = np.asarray(x0, dtype=float).copy()
        n = x.size
        h = self.h0
        f_center = fun(x)
        evaluations = 1
        best_x = x.copy()
        best_f = f_center
        history: list[float] = []
        stop_reason = "max_iterations"
        for k in range(max_iterations):
            if should_stop is not None and should_stop():
                stop_reason = "budget_exhausted"
                break
            if h < self.h_min:
                stop_reason = "stencil_converged"
                break
            # Evaluate the central-difference stencil.
            gradient = np.zeros(n)
            stencil_best_f = f_center
            stencil_best_x = x
            for i in range(n):
                step = np.zeros(n)
                step[i] = h
                f_plus = fun(x + step)
                f_minus = fun(x - step)
                evaluations += 2
                gradient[i] = (f_plus - f_minus) / (2.0 * h)
                if f_plus < stencil_best_f:
                    stencil_best_f, stencil_best_x = f_plus, x + step
                if f_minus < stencil_best_f:
                    stencil_best_f, stencil_best_x = f_minus, x - step
            if stencil_best_f >= f_center:
                # Stencil failure: the landscape is flat at this scale.
                h *= 0.5
                history.append(best_f)
                if callback is not None:
                    callback(k, x, f_center)
                continue
            # Backtracking line search along the negative gradient.
            norm = np.linalg.norm(gradient)
            direction = -gradient / norm if norm > 0 else np.zeros(n)
            step_size = h
            improved = False
            for _ in range(self.max_line_search):
                candidate = x + step_size * direction
                f_candidate = fun(candidate)
                evaluations += 1
                if f_candidate < f_center:
                    x, f_center = candidate, f_candidate
                    improved = True
                    break
                step_size *= 0.5
            if not improved:
                # Fall back to the best stencil point.
                x, f_center = stencil_best_x, stencil_best_f
            if f_center < best_f:
                best_f, best_x = f_center, x.copy()
            history.append(best_f)
            if callback is not None:
                callback(k, x, f_center)
        return OptimizerResult(
            x=best_x,
            fun=best_f,
            iterations=len(history),
            evaluations=evaluations,
            history=history,
            stop_reason=stop_reason,
        )
