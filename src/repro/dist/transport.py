"""Pluggable transports and the retrying worker pool.

Two channel implementations share the wire protocol in
:mod:`repro.dist.wire`:

* :class:`PipeChannel` — a forked local worker process behind a
  ``multiprocessing`` pipe (frames delivered whole via
  ``send_bytes``/``recv_bytes``).
* :class:`SocketChannel` — a TCP connection to a remote worker
  speaking 4-byte length-prefixed frames
  (:func:`~repro.dist.wire.write_frame`/``read_frame``); pair it with
  :func:`serve_socket_worker` (the ``repro dist-worker`` command).

:class:`WorkerPool` multiplexes requests over a fixed set of channels
with bounded retry: a channel that dies mid-request (worker killed,
connection dropped) is restarted and the request resubmitted to the
next free channel, up to ``max_retries`` times.  Requests are pure
(see :mod:`repro.dist.wire`), so a resubmitted request can never lose
or duplicate observable work — the caller consumes exactly one reply,
and recomputing an ideal probability row is side-effect-free.

Transport failures raise :class:`TransportError`; deterministic
worker-side failures (bad circuit, unknown op) raise
:class:`RemoteExecutionError` and are never retried.
"""

from __future__ import annotations

import itertools
import multiprocessing
import socket
import threading
from collections.abc import Mapping, Sequence
from typing import Any

from ..obs import REGISTRY, span
from .wire import (
    WIRE_SCHEMA_VERSION,
    decode_message,
    encode_message,
    execute_request,
    read_frame,
    write_frame,
)

__all__ = [
    "PipeChannel",
    "RemoteExecutionError",
    "SocketChannel",
    "TransportError",
    "WorkerPool",
    "serve_socket_worker",
]


class TransportError(RuntimeError):
    """A channel died (worker killed, pipe/socket closed) mid-request."""


class RemoteExecutionError(RuntimeError):
    """The worker replied with a deterministic application failure."""


_M_REQUESTS = REGISTRY.counter(
    "repro_dist_requests_total",
    "Wire requests completed by the worker pool",
)
_M_RETRIES = REGISTRY.counter(
    "repro_dist_retries_total",
    "Requests resubmitted after a transport failure",
)
_M_DEATHS = REGISTRY.counter(
    "repro_dist_worker_deaths_total",
    "Worker channels restarted after dying mid-request",
)


# ------------------------------------------------------- pipe channel


def _pipe_worker_main(conn) -> None:
    """Worker loop for a pipe channel: frame in, reply frame out."""
    name = multiprocessing.current_process().name
    state: dict[str, Any] = {"worker_id": name}
    while not state.get("shutdown"):
        try:
            payload = conn.recv_bytes()
        except (EOFError, OSError):
            break
        reply = execute_request(decode_message(payload), state)
        try:
            conn.send_bytes(encode_message(reply))
        except (BrokenPipeError, OSError):
            break
    conn.close()


class PipeChannel:
    """A local worker process behind a ``multiprocessing`` pipe."""

    transport = "pipes"

    def __init__(self) -> None:
        self._conn = None
        self._process: multiprocessing.Process | None = None
        self._start()

    def _start(self) -> None:
        parent, child = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=_pipe_worker_main, args=(child,), daemon=True
        )
        process.start()
        child.close()
        self._conn, self._process = parent, process

    @property
    def worker_pid(self) -> int | None:
        """PID of the live worker process (tests kill it by pid)."""
        return self._process.pid if self._process else None

    def request(self, payload: bytes) -> bytes:
        """One round trip; :class:`TransportError` if the worker died."""
        try:
            self._conn.send_bytes(payload)
            return self._conn.recv_bytes()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise TransportError(f"pipe worker died: {exc!r}") from exc

    def restart(self) -> None:
        """Kill any remains of the worker and fork a fresh one."""
        self.close()
        self._start()

    def close(self) -> None:
        """Terminate the worker process and close the pipe."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        if self._process is not None:
            self._process.terminate()
            self._process.join(timeout=5)
            self._process = None


# ----------------------------------------------------- socket channel


class SocketChannel:
    """A TCP connection to a worker started lazily on first request."""

    transport = "socket"

    def __init__(self, address: str) -> None:
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"socket address must be 'host:port'; got {address!r}"
            )
        self.address = (host, int(port))
        self._sock: socket.socket | None = None
        self._stream = None

    def _connect(self) -> None:
        sock = socket.create_connection(self.address, timeout=60)
        self._sock = sock
        self._stream = sock.makefile("rwb")

    def request(self, payload: bytes) -> bytes:
        """One framed round trip; :class:`TransportError` on failure."""
        try:
            if self._stream is None:
                self._connect()
            write_frame(self._stream, payload)
            return read_frame(self._stream)
        except (EOFError, OSError) as exc:
            raise TransportError(
                f"socket worker at {self.address} unreachable: {exc!r}"
            ) from exc

    def restart(self) -> None:
        """Drop the connection; the next request reconnects."""
        self.close()

    def close(self) -> None:
        """Close the stream and socket if connected."""
        if self._stream is not None:
            try:
                self._stream.close()
            except OSError:
                pass
            self._stream = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None


# ------------------------------------------------------- worker pool


class WorkerPool:
    """Fixed channels + free-list dispatch + bounded retry.

    Thread-safe: concurrent callers block until a channel is free, so
    each channel serves one request at a time and a reply always
    belongs to the request just sent on that channel.
    """

    def __init__(self, channels: Sequence[Any], max_retries: int = 2):
        if not channels:
            raise ValueError("WorkerPool needs at least one channel")
        self._channels = list(channels)
        self._free = list(channels)
        self._cond = threading.Condition()
        self._ids = itertools.count()
        self.max_retries = int(max_retries)

    def _acquire(self):
        with self._cond:
            while not self._free:
                self._cond.wait()
            return self._free.pop()

    def _release(self, channel) -> None:
        with self._cond:
            self._free.append(channel)
            self._cond.notify()

    def submit(self, message: Mapping[str, Any]) -> dict[str, Any]:
        """Send one request, retrying across worker deaths.

        Returns the decoded reply dict (``ok`` already verified).
        Raises :class:`TransportError` after ``max_retries``
        resubmissions all die, or :class:`RemoteExecutionError` for a
        deterministic worker-side failure (not retried).
        """
        payload = dict(message)
        payload.setdefault("schema", WIRE_SCHEMA_VERSION)
        with self._cond:
            payload.setdefault("id", next(self._ids))
        encoded = encode_message(payload)
        attempts = 0
        with span("dist.request", op=str(payload.get("op"))):
            while True:
                channel = self._acquire()
                try:
                    raw = channel.request(encoded)
                except TransportError:
                    _M_DEATHS.inc()
                    try:
                        channel.restart()
                    finally:
                        self._release(channel)
                    attempts += 1
                    if attempts > self.max_retries:
                        raise
                    _M_RETRIES.inc()
                    continue
                else:
                    self._release(channel)
                reply = decode_message(raw)
                if reply.get("id") != payload["id"]:
                    raise TransportError(
                        f"reply id {reply.get('id')!r} does not match "
                        f"request id {payload['id']!r}"
                    )
                if not reply.get("ok"):
                    raise RemoteExecutionError(
                        str(reply.get("error", "unknown worker error"))
                    )
                _M_REQUESTS.inc()
                return reply

    def close(self) -> None:
        """Close every channel (terminating pipe workers)."""
        for channel in self._channels:
            channel.close()


# ------------------------------------------------------ socket worker


def serve_socket_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    ready: threading.Event | None = None,
) -> tuple[socket.socket, int]:
    """Accept-loop serving framed wire requests (one thread per client).

    Binds, sets ``ready`` (if given) once listening, and returns the
    listening socket and bound port from a daemon acceptor thread;
    closing the returned socket stops the server.  ``repro
    dist-worker`` wraps this in a blocking CLI command.
    """
    server = socket.create_server((host, port))
    bound_port = server.getsockname()[1]

    def _client(conn: socket.socket) -> None:
        state: dict[str, Any] = {"worker_id": f"socket:{bound_port}"}
        stream = conn.makefile("rwb")
        try:
            while not state.get("shutdown"):
                try:
                    payload = read_frame(stream)
                except (EOFError, OSError):
                    break
                reply = execute_request(decode_message(payload), state)
                write_frame(stream, encode_message(reply))
        finally:
            try:
                stream.close()
                conn.close()
            except OSError:
                pass

    def _accept() -> None:
        if ready is not None:
            ready.set()
        while True:
            try:
                conn, _ = server.accept()
            except OSError:
                return
            threading.Thread(
                target=_client, args=(conn,), daemon=True
            ).start()

    threading.Thread(target=_accept, daemon=True).start()
    return server, bound_port
