"""Canonical wire protocol for distributed circuit execution.

One encoding shared by every transport: messages are canonical JSON
(sorted keys, compact separators, exact shortest-round-trip floats)
encoded as UTF-8, framed with a 4-byte big-endian length prefix when
the channel is a byte stream (sockets) and handed whole to channels
that frame natively (``multiprocessing`` pipes).  Because Python's
``json`` emits the shortest representation that round-trips a float64
exactly, probability vectors and statevector amplitudes cross the wire
bit-identically — the foundation of the subsystem's hard invariant
that remote execution produces records byte-identical to local runs.

The request vocabulary is tiny and side-effect-free:

``ping``
    Liveness probe; echoes the worker id.
``probs``
    A batch of circuits -> one ideal (pre-noise) probability row per
    circuit, computed by the worker's backend kind.
``prepare``
    A batch of circuits -> one statevector per circuit.
``crash``
    Fault injection: the worker exits immediately without replying
    (tests and smoke jobs use it to exercise the retry path).
``shutdown``
    Orderly worker exit after acknowledging.

Requests carry everything the worker needs (backend kind, circuits),
so any reply can be recomputed by any worker — the property that makes
resubmission after a worker death safe: re-running a request never
changes what it returns and never duplicates observable work.
:func:`execute_request` is the single worker-side dispatcher both the
pipe and socket workers run.
"""

from __future__ import annotations

import json
import os
import struct
from collections.abc import Mapping
from typing import Any, BinaryIO

import numpy as np

from ..circuits import Circuit

__all__ = [
    "MAX_FRAME_BYTES",
    "WIRE_SCHEMA_VERSION",
    "WireError",
    "circuit_from_wire",
    "circuit_to_wire",
    "decode_message",
    "encode_message",
    "execute_request",
    "read_frame",
    "state_from_wire",
    "state_to_wire",
    "write_frame",
]

#: Version stamped into every message; workers reject mismatches
#: instead of guessing at a foreign encoding.
WIRE_SCHEMA_VERSION = 1

#: Upper bound on a single frame.  A 24-qubit statevector batch is
#: ~0.5 GB of JSON; anything larger is a protocol error, not a payload.
MAX_FRAME_BYTES = 1 << 30

_HEADER = struct.Struct(">I")

#: Worker backend kinds whose ``circuit_probabilities`` is a pure
#: function of the circuit alone (no device, no RNG) — the only kinds
#: safe to evaluate remotely without shipping noise state.
WORKER_BACKEND_KINDS = ("dense", "clifford")


class WireError(ValueError):
    """A malformed frame or message (protocol, not transport, failure)."""


# ----------------------------------------------------------- encoding


def encode_message(message: Mapping[str, Any]) -> bytes:
    """Canonical-JSON bytes for ``message`` (sorted keys, exact floats)."""
    text = json.dumps(
        message, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return text.encode("utf-8")


def decode_message(data: bytes) -> dict[str, Any]:
    """Parse one encoded message; raise :class:`WireError` if invalid."""
    try:
        message = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable wire message: {exc}") from exc
    if not isinstance(message, dict):
        raise WireError(
            f"wire message must be a JSON object; got "
            f"{type(message).__name__}"
        )
    return message


# ----------------------------------------------------------- circuits


def circuit_to_wire(circuit: Circuit) -> dict[str, Any]:
    """Serialize ``circuit`` to the canonical JSON gate-list form.

    Raises ``ValueError`` on unbound symbolic parameters — the same
    rule the engine applies before simulation, so a circuit that can
    run locally can always cross the wire.
    """
    gates: list[list[Any]] = []
    for ins in circuit.instructions:
        if not ins.is_bound():
            raise ValueError(
                f"cannot serialize unbound parameter {ins.param!r} in "
                f"gate {ins.name!r}; bind the circuit first"
            )
        entry: list[Any] = [ins.name, list(ins.qubits)]
        if ins.param is not None:
            entry.append(float(ins.param))
        gates.append(entry)
    return {
        "n": circuit.n_qubits,
        "name": circuit.name,
        "gates": gates,
        "measured": sorted(circuit.measured_qubits),
    }


def circuit_from_wire(data: Mapping[str, Any]) -> Circuit:
    """Rebuild a :class:`~repro.circuits.Circuit` from wire form."""
    try:
        circuit = Circuit(int(data["n"]), name=str(data.get("name", "")))
        for entry in data["gates"]:
            name, qubits = entry[0], entry[1]
            param = float(entry[2]) if len(entry) > 2 else None
            circuit.append(name, qubits, param)
        circuit.measure(data.get("measured", ()))
    except (KeyError, TypeError, IndexError) as exc:
        raise WireError(f"malformed wire circuit: {exc!r}") from exc
    return circuit


# ------------------------------------------------------- statevectors


def state_to_wire(state: np.ndarray) -> dict[str, Any]:
    """Serialize a complex statevector as exact real/imag float lists."""
    amplitudes = np.asarray(state, dtype=complex).ravel()
    return {
        "re": [float(x) for x in amplitudes.real],
        "im": [float(x) for x in amplitudes.imag],
    }


def state_from_wire(data: Mapping[str, Any]) -> np.ndarray:
    """Rebuild the complex statevector from :func:`state_to_wire` form."""
    real = np.asarray(data["re"], dtype=float)
    imag = np.asarray(data["im"], dtype=float)
    if real.shape != imag.shape:
        raise WireError("statevector re/im length mismatch")
    return real + 1j * imag


# -------------------------------------------------------------- frames


def write_frame(stream: BinaryIO, payload: bytes) -> None:
    """Write one length-prefixed frame and flush the stream."""
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES"
        )
    stream.write(_HEADER.pack(len(payload)))
    stream.write(payload)
    stream.flush()


def read_frame(stream: BinaryIO) -> bytes:
    """Read one length-prefixed frame; ``EOFError`` on a closed stream."""
    header = _read_exact(stream, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"incoming frame of {length} bytes exceeds MAX_FRAME_BYTES"
        )
    return _read_exact(stream, length)


def _read_exact(stream: BinaryIO, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise ``EOFError``."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise EOFError("wire stream closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------- worker-side dispatch


def _worker_backend(state: dict[str, Any], desc: Mapping[str, Any]):
    """The worker's backend for ``desc`` (built once, cached in state).

    Workers evaluate only the ideal, device-independent half of the
    pipeline, so the backend is constructed with no device model; the
    coordinator keeps noise and sampling local.
    """
    kind = desc.get("kind", "dense")
    if kind not in WORKER_BACKEND_KINDS:
        raise WireError(
            f"worker backend kind must be one of "
            f"{WORKER_BACKEND_KINDS}; got {kind!r}"
        )
    cache = state.setdefault("backends", {})
    key = encode_message(dict(desc))
    if key not in cache:
        from ..backends import make_backend

        cache[key] = make_backend(dict(desc), device=None, seed=0)
    return cache[key]


def execute_request(
    message: Mapping[str, Any], state: dict[str, Any]
) -> dict[str, Any]:
    """Serve one request; the single dispatcher every worker loop runs.

    ``state`` is the worker's private scratch dict (backend cache,
    worker id).  Application failures come back as ``{"ok": False}``
    replies — they are deterministic and must not be retried; only
    transport-level death triggers the pool's retry path.
    """
    op = message.get("op")
    reply: dict[str, Any] = {
        "id": message.get("id"),
        "op": op,
        "schema": WIRE_SCHEMA_VERSION,
    }
    try:
        if message.get("schema") != WIRE_SCHEMA_VERSION:
            raise WireError(
                f"wire schema {message.get('schema')!r} != "
                f"{WIRE_SCHEMA_VERSION}"
            )
        if op == "ping":
            reply.update(ok=True, worker=state.get("worker_id"))
        elif op == "crash":
            os._exit(1)
        elif op == "shutdown":
            reply.update(ok=True)
            state["shutdown"] = True
        elif op in ("probs", "prepare"):
            backend = _worker_backend(state, message.get("backend", {}))
            circuits = [
                circuit_from_wire(c) for c in message.get("circuits", [])
            ]
            if op == "probs":
                results: list[Any] = [
                    [float(p) for p in backend.circuit_probabilities(c)]
                    for c in circuits
                ]
            else:
                results = [
                    state_to_wire(backend.prepare_state(c))
                    for c in circuits
                ]
            reply.update(ok=True, results=results)
        else:
            raise WireError(f"unknown wire op {op!r}")
    except Exception as exc:  # noqa: BLE001 - reply carries the error
        reply.update(ok=False, error=f"{type(exc).__name__}: {exc}")
    return reply
