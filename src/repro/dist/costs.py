"""Static point-cost estimates, cost-aware ordering, and sweep progress.

A sweep grid mixes points whose wall-clock costs span orders of
magnitude — a 2-iteration H2-4 tuning cell is milliseconds, a QAOA or
Trotter-quench cell is ~100x that.  Two consequences this module
addresses:

* **Scheduling.**  Draining expensive cells first keeps stragglers off
  the tail of a sharded run; :func:`order_by_cost` sorts pending
  points descending by :func:`estimate_point_cost`, stably, so equal
  cost preserves grid order.
* **Progress/ETA.**  A point-count ETA is wildly wrong on mixed grids
  (99 cheap points done of 100 does not mean 99% done when the last
  one is the quench).  :class:`SweepProgress` tracks the *cost*
  fraction complete alongside the point count and derives the ETA
  from cost throughput.

The estimate is deliberately cheap and static — task kind x qubit
count x iteration count, with the Hamiltonian-size shape from
:func:`repro.core.cost.pauli_terms` and a ``2^Q`` statevector factor.
It only needs to rank points, not predict seconds.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.cost import pauli_terms

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sweeps.spec import Point

__all__ = [
    "SweepProgress",
    "estimate_point_cost",
    "order_by_cost",
    "point_qubits",
]

#: Tasks that run the full VQA tuning loop (``max_iterations`` sweeps
#: of circuit evaluations); everything else is a one-shot evaluation.
_ITERATIVE_TASKS = frozenset({"tuning", "zne", "tuner_tuning"})

#: Per-task relative weight for one-shot tasks, on top of the
#: qubit-derived per-evaluation cost.  Trotter-evolution tasks simulate
#: many deep circuits per point, so they dominate mixed grids.
_TASK_WEIGHTS = {
    "quench": 100.0,
    "quench_sweep": 400.0,
    "trotter_error": 10.0,
    "energy": 3.0,
    "term_selective": 3.0,
    "phase_selective": 3.0,
    "engine_replay": 25.0,
    "serve_throughput": 50.0,
    "dist_scaling": 500.0,
    "mitigation_shootout": 20.0,
    "mitigation_stacking": 20.0,
    "backend_matrix": 10.0,
    "gc_end_to_end": 5.0,
}

#: Weight multiplier for QAOA workloads (deep entangling ansatz).
_QAOA_WEIGHT = 25.0

_TRAILING_INT = re.compile(r"(\d+)\s*$")


def point_qubits(point: "Point") -> int:
    """Best static guess at a point's qubit count (default 4).

    Reads ``workload['n_qubits']``, the trailing integer of a molecule
    key (``"H2O-6" -> 6``), or ``options['n_qubits']``, in that order.
    """
    workload = point.workload or {}
    n = workload.get("n_qubits")
    if isinstance(n, int) and n > 0:
        return n
    key = workload.get("key")
    if isinstance(key, str):
        match = _TRAILING_INT.search(key)
        if match:
            return max(1, int(match.group(1)))
    n = (point.options or {}).get("n_qubits")
    if isinstance(n, int) and n > 0:
        return n
    return 4


def estimate_point_cost(point: "Point") -> float:
    """Relative static cost of one sweep point.

    ``weight(task, workload) * iterations * P(Q) * 2^Q`` where ``P``
    is the paper's Pauli-term shape and ``2^Q`` the dense statevector
    factor (capped at 2^24 so structure-only wide workloads don't
    swamp the ordering).  Pinned by the unit tests — change those when
    changing this.
    """
    qubits = point_qubits(point)
    per_eval = pauli_terms(qubits) * float(2 ** min(qubits, 24))
    if point.task in _ITERATIVE_TASKS:
        iterations = max(1, int(point.max_iterations))
        weight = 1.0
    else:
        iterations = 1
        weight = _TASK_WEIGHTS.get(point.task, 1.0)
    workload = point.workload or {}
    if "qaoa" in workload:
        weight *= _QAOA_WEIGHT
    return float(weight * iterations * per_eval)


def order_by_cost(
    pending: "list[tuple[Point, str]]",
) -> "list[tuple[Point, str]]":
    """``(point, fingerprint)`` pairs, most expensive first, stably."""
    return sorted(
        pending, key=lambda item: -estimate_point_cost(item[0])
    )


@dataclass(frozen=True)
class SweepProgress:
    """Cost-weighted completion state passed to progress callbacks."""

    #: Points finished / total pending at sweep start.
    points_done: int
    points_total: int
    #: Static cost finished / total (same units as
    #: :func:`estimate_point_cost`).
    cost_done: float
    cost_total: float
    #: Seconds since the sweep started executing.
    elapsed_s: float

    @property
    def cost_fraction(self) -> float:
        """Estimated fraction of total *work* (not points) complete."""
        if self.cost_total <= 0:
            return 1.0 if self.points_done >= self.points_total else 0.0
        return min(1.0, self.cost_done / self.cost_total)

    @property
    def eta_s(self) -> float | None:
        """Remaining seconds at the observed cost throughput.

        ``None`` until at least some cost has completed (no throughput
        signal yet).
        """
        if self.cost_done <= 0 or self.elapsed_s <= 0:
            return None
        remaining = max(0.0, self.cost_total - self.cost_done)
        return self.elapsed_s * remaining / self.cost_done
