"""Sharded sweep execution: the coordinator side.

``run_sweep(..., shards=N)`` lands here.  The coordinator partitions
nothing up front — it writes one payload per shard listing *all*
pending points in cost order (most expensive first, see
:mod:`repro.dist.costs`), spawns N shard worker subprocesses
(``python -m repro.dist.shardworker``), and lets the shared journaled
claim queue (:mod:`repro.dist.claims`) decide who executes what.
Each shard appends finished records to its **own** JSONL store; the
coordinator polls the shard stores while workers run, merging records
into the main store via the fingerprint-keyed first-wins journal merge
and driving the caller's progress callback.

Failure model (the properties CI's ``dist-smoke`` kills a shard to
prove):

* A shard dying — even ``SIGKILL`` mid-point, holding a claim — loses
  nothing: its finished records are already durable in its shard
  store, and its claimed-but-unfinished points are stolen by surviving
  shards after a grace period, or executed inline by the coordinator's
  final pass if every shard is gone.
* Nothing is ever duplicated *in the store*: the merge is keyed by
  point fingerprint, first record wins, and records for the same point
  are bit-identical by the repository's determinism discipline (so
  which one wins is unobservable).
* Records are byte-identical to a serial run up to the two volatile
  timing fields (see :mod:`repro.dist.diff`).

Shard workers are plain ``subprocess`` children (not
``multiprocessing``), so sharding works even when the calling process
is itself a daemonic pool worker — e.g. a catalog entry running under
``run_sweep(..., executor="process")``.
"""

from __future__ import annotations

import json
import logging
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable

from .. import obs
from ..obs import REGISTRY
from ..sweeps.spec import Point
from ..sweeps.store import ResultStore
from .claims import ClaimQueue
from .costs import estimate_point_cost, order_by_cost

__all__ = ["ShardStats", "run_sharded", "shard_aux_path"]

logger = logging.getLogger("repro.dist")

#: Seconds a claimed-but-unfinished point must stall before another
#: shard steals it (overridable via ``REPRO_DIST_STEAL_S``).
DEFAULT_STEAL_S = 5.0

#: Coordinator poll interval while shard workers run.
_POLL_S = 0.15

_M_SHARDS = REGISTRY.counter(
    "repro_dist_shards_total",
    "Shard worker processes spawned by sharded sweeps",
)
_M_EXECUTIONS = REGISTRY.counter(
    "repro_dist_point_executions_total",
    "Point executions performed by shard workers",
)
_M_STOLEN = REGISTRY.counter(
    "repro_dist_points_stolen_total",
    "Points executed through the work-stealing path",
)
_M_MERGED = REGISTRY.counter(
    "repro_dist_records_merged_total",
    "Shard records merged into the coordinator store",
)


def shard_aux_path(base: str | Path, tag: str) -> Path:
    """Sibling journal path for ``tag`` next to the main store.

    ``results.jsonl`` -> ``results.shard0.jsonl`` /
    ``results.claims.jsonl`` — the artifact layout CI uploads.
    """
    base = Path(base)
    suffix = base.suffix or ".jsonl"
    return base.with_name(f"{base.stem}.{tag}{suffix}")


class ShardStats(dict):
    """Per-run sharding statistics (a plain dict with a docstring).

    Keys: ``shards``, ``executions`` (total point executions across
    shard workers and the coordinator's inline pass), ``stolen``,
    ``merged``, ``inline``, and per-shard ``shard_executions``.
    """


def _steal_timeout() -> float:
    """The work-steal grace period (env-overridable for tests/CI)."""
    raw = os.environ.get("REPRO_DIST_STEAL_S")
    try:
        return float(raw) if raw else DEFAULT_STEAL_S
    except ValueError:
        return DEFAULT_STEAL_S


def _spawn_shard(payload_path: Path) -> subprocess.Popen:
    """Start one shard worker subprocess with the package importable."""
    env = dict(os.environ)
    src_dir = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + existing if existing else src_dir
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.dist.shardworker", str(payload_path)],
        env=env,
    )


def _merge_ready(
    items: list[tuple[Point, str]],
    store: ResultStore,
    shard_paths: list[Path],
    on_merged: Callable[[Point, str, dict], None],
) -> None:
    """Pull newly-finished shard records into the main store."""
    shard_stores = [
        ResultStore(path) for path in shard_paths if path.exists()
    ]
    if not shard_stores:
        return
    for point, fingerprint in items:
        if fingerprint in store:
            continue
        for shard_store in shard_stores:
            record = shard_store.get(fingerprint)
            if record is not None:
                if store.append_record(fingerprint, record):
                    _M_MERGED.inc()
                    on_merged(point, fingerprint, record)
                break


def run_sharded(
    pending: list[tuple[Point, str]],
    store: ResultStore,
    shards: int,
    progress: Callable[[int, int, Point, dict], None] | None = None,
) -> tuple[list[tuple[str, dict]], ShardStats]:
    """Execute ``pending`` across ``shards`` worker subprocesses.

    Returns ``(executed, stats)`` where ``executed`` is the runner's
    usual ``(fingerprint, record)`` list covering every pending point
    (all are complete on return, whatever happened to individual
    shards) and ``stats`` is a :class:`ShardStats`.
    """
    if shards < 2:
        raise ValueError("run_sharded needs shards >= 2")
    items = order_by_cost(pending)
    total = len(items)
    base = Path(store.path)
    claims_path = shard_aux_path(base, "claims")
    claims_path.unlink(missing_ok=True)
    # Touch the claim queue so the file exists for artifact upload
    # even when a tiny grid never contends.
    ClaimQueue(claims_path)
    shard_paths = [
        shard_aux_path(base, f"shard{index}") for index in range(shards)
    ]
    summary_paths = [
        shard_aux_path(base, f"shard{index}.summary").with_suffix(".json")
        for index in range(shards)
    ]

    point_payload = [
        {
            "point": point.to_dict(),
            "fingerprint": fingerprint,
            "cost": estimate_point_cost(point),
        }
        for point, fingerprint in items
    ]
    started = time.perf_counter()
    procs: list[subprocess.Popen] = []
    payload_paths: list[Path] = []
    for index in range(shards):
        summary_paths[index].unlink(missing_ok=True)
        payload = {
            "shard": index,
            "shards": shards,
            "store": str(shard_paths[index]),
            "claims": str(claims_path),
            "sibling_stores": [str(p) for p in shard_paths],
            "coordinator_store": str(base),
            "summary": str(summary_paths[index]),
            "steal_timeout_s": _steal_timeout(),
            "points": point_payload,
        }
        payload_path = shard_aux_path(
            base, f"shard{index}.payload"
        ).with_suffix(".json")
        payload_path.write_text(json.dumps(payload))
        payload_paths.append(payload_path)
        procs.append(_spawn_shard(payload_path))
        _M_SHARDS.inc()

    executed: list[tuple[str, dict]] = []

    def on_merged(point: Point, fingerprint: str, record: dict) -> None:
        executed.append((fingerprint, record))
        if progress is not None:
            progress(len(executed), total, point, record)

    while any(proc.poll() is None for proc in procs):
        _merge_ready(items, store, shard_paths, on_merged)
        time.sleep(_POLL_S)
    for index, proc in enumerate(procs):
        if proc.returncode not in (0, None):
            logger.warning(
                "shard %d exited with code %s", index, proc.returncode
            )
    _merge_ready(items, store, shard_paths, on_merged)

    # Every-shard-died safety net: whatever is still missing executes
    # inline, so the coordinator always returns a complete grid.
    leftovers = [
        (point, fingerprint)
        for point, fingerprint in items
        if fingerprint not in store
    ]
    inline = 0
    if leftovers:
        from ..sweeps.runner import _prepare_point, execute_point

        logger.warning(
            "executing %d points inline (no shard completed them)",
            len(leftovers),
        )
        cache: dict = {}
        for point, _ in leftovers:
            _prepare_point(point, cache)
        for point, fingerprint in leftovers:
            with obs.span(
                "sweep.point",
                fingerprint=fingerprint,
                task=point.task,
                label=point.label(),
            ):
                result, wall = execute_point(point, cache)
            record = store.append(
                point, result, wall_time_s=wall, fingerprint=fingerprint
            )
            inline += 1
            on_merged(point, fingerprint, record)
    _M_EXECUTIONS.inc(inline)

    stats = ShardStats(
        shards=shards,
        executions=inline,
        stolen=0,
        merged=len(executed) - inline,
        inline=inline,
        shard_executions=[0] * shards,
    )
    for index, summary_path in enumerate(summary_paths):
        summary = _read_summary(summary_path)
        if summary is None:
            continue
        shard_executed = int(summary.get("executed", 0))
        shard_stolen = int(summary.get("stolen", 0))
        stats["executions"] += shard_executed
        stats["stolen"] += shard_stolen
        stats["shard_executions"][index] = shard_executed
        _M_EXECUTIONS.inc(shard_executed)
        _M_STOLEN.inc(shard_stolen)
        obs.record(
            "dist.shard",
            float(summary.get("wall_s", 0.0)),
            shard=index,
            executed=shard_executed,
            stolen=shard_stolen,
        )
    for payload_path in payload_paths:
        payload_path.unlink(missing_ok=True)
    logger.info(
        "sharded sweep done: %d records in %.3fs (%s)",
        len(executed), time.perf_counter() - started, dict(stats),
    )
    return executed, stats


def _read_summary(path: Path) -> dict[str, Any] | None:
    """A shard's end-of-run summary (``None`` if it died before writing)."""
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
