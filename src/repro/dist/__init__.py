"""``repro.dist`` — distributed execution for backends and sweeps.

Two coordinated layers over the repository's existing seams (see
``docs/distributed.md`` for the architecture and failure model):

* **The ``remote`` backend** (:mod:`repro.dist.remote`): a registered
  :class:`~repro.backends.BackendSpec` whose ideal-simulation hooks
  ship canonical-JSON circuit batches to a worker pool behind a
  pluggable transport (:mod:`repro.dist.transport` —
  ``multiprocessing`` pipes or length-prefixed sockets sharing the
  :mod:`repro.dist.wire` protocol), with bounded retry across worker
  deaths.  Any estimator kind runs unchanged; results are
  bit-identical to the worker's backend kind run locally.
* **Sharded sweeps** (:mod:`repro.dist.shard`): ``run_sweep(...,
  shards=N)`` / ``repro reproduce --shards N`` fans pending points out
  to shard worker subprocesses that coordinate through a journaled
  claim queue (:mod:`repro.dist.claims`) with work-stealing, each
  appending to its own JSONL store; the coordinator merges via the
  fingerprint-keyed first-wins journal merge.  Sharded runs produce
  records byte-identical to serial runs
  (:mod:`repro.dist.diff` is the checker).

Supporting cast: :mod:`repro.dist.costs` (static point-cost ordering
and the cost-weighted :class:`~repro.dist.costs.SweepProgress` that
fixes ETA on mixed grids).
"""

from __future__ import annotations

from .claims import CLAIM_SCHEMA_VERSION, ClaimQueue
from .costs import (
    SweepProgress,
    estimate_point_cost,
    order_by_cost,
    point_qubits,
)
from .diff import (
    VOLATILE_FIELDS,
    canonical_record,
    canonical_records,
    diff_stores,
    store_digest,
)
from .remote import TRANSPORTS, RemoteBackend, RemoteBackendSpec
from .shard import ShardStats, run_sharded, shard_aux_path
from .transport import (
    PipeChannel,
    RemoteExecutionError,
    SocketChannel,
    TransportError,
    WorkerPool,
    serve_socket_worker,
)
from .wire import (
    MAX_FRAME_BYTES,
    WIRE_SCHEMA_VERSION,
    WireError,
    circuit_from_wire,
    circuit_to_wire,
    decode_message,
    encode_message,
    execute_request,
    read_frame,
    state_from_wire,
    state_to_wire,
    write_frame,
)

__all__ = [
    "CLAIM_SCHEMA_VERSION",
    "MAX_FRAME_BYTES",
    "TRANSPORTS",
    "VOLATILE_FIELDS",
    "WIRE_SCHEMA_VERSION",
    "ClaimQueue",
    "PipeChannel",
    "RemoteBackend",
    "RemoteBackendSpec",
    "RemoteExecutionError",
    "ShardStats",
    "SocketChannel",
    "SweepProgress",
    "TransportError",
    "WireError",
    "WorkerPool",
    "canonical_record",
    "canonical_records",
    "circuit_from_wire",
    "circuit_to_wire",
    "decode_message",
    "diff_stores",
    "encode_message",
    "estimate_point_cost",
    "execute_request",
    "order_by_cost",
    "point_qubits",
    "read_frame",
    "run_sharded",
    "serve_socket_worker",
    "shard_aux_path",
    "state_from_wire",
    "state_to_wire",
    "store_digest",
    "write_frame",
]
