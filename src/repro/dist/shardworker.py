"""Shard worker entry point: ``python -m repro.dist.shardworker <payload>``.

One shard of a sharded sweep (see :mod:`repro.dist.shard`).  The
payload file lists every pending point in cost order plus the paths of
the shared claim queue, this shard's own result store, and every
sibling store.  The loop:

1. Reload the claim queue and scan sibling stores for completed work.
2. Take the first point that is neither completed nor claimed; append
   a claim, reload, and verify this shard won (journal first-wins
   resolves cross-process races deterministically) — otherwise leave
   it to its owner.
3. When only claimed-but-unfinished points remain, wait a grace
   period, then *steal*: execute a stalled point regardless of its
   claim.  Double execution is harmless — records are bit-identical
   by the determinism discipline and the coordinator merge is
   first-wins — and without stealing, one dead shard would strand its
   claims forever.
4. Execute via the runner's :func:`~repro.sweeps.runner.execute_point`
   and append to this shard's own store (atomic, fsync'd): finished
   work is durable the instant it finishes, whatever happens next.

Fault injection: ``REPRO_DIST_KILL_SHARD=<shard>:<n>`` makes shard
``<shard>`` SIGKILL itself while *holding a fresh claim* after ``<n>``
executed points — the exact failure work-stealing exists to absorb;
CI's ``dist-smoke`` job drives it.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
from pathlib import Path

from ..sweeps.runner import execute_point
from ..sweeps.spec import Point
from ..sweeps.store import ResultStore
from .claims import ClaimQueue

__all__ = ["main", "run_shard"]


def _kill_spec(shard: int) -> int | None:
    """Executions after which this shard self-SIGKILLs (``None``: never)."""
    raw = os.environ.get("REPRO_DIST_KILL_SHARD", "")
    if ":" not in raw:
        return None
    target, _, after = raw.partition(":")
    try:
        if int(target) == shard:
            return int(after)
    except ValueError:
        return None
    return None


def _completed(paths: list[Path]) -> set[str]:
    """Fingerprints finished anywhere (sibling stores + coordinator)."""
    done: set[str] = set()
    for path in paths:
        if path.exists():
            done |= ResultStore(path).keys()
    return done


def run_shard(payload: dict) -> dict:
    """Run one shard to completion; return its summary dict."""
    shard = int(payload["shard"])
    store = ResultStore(payload["store"])
    claims = ClaimQueue(payload["claims"])
    steal_timeout = float(payload.get("steal_timeout_s", 5.0))
    scan_paths = [Path(p) for p in payload["sibling_stores"]]
    scan_paths.append(Path(payload["coordinator_store"]))
    items = [
        (Point.from_dict(entry["point"]), entry["fingerprint"])
        for entry in payload["points"]
    ]
    kill_after = _kill_spec(shard)

    cache: dict = {}
    executed = stolen = 0
    attempted: set[str] = set()
    stall_seen: dict[str, float] = {}
    started = time.perf_counter()

    while True:
        completed = _completed(scan_paths)
        claims.load()
        target: tuple[Point, str] | None = None
        steal = False
        for point, fingerprint in items:
            if fingerprint in attempted or fingerprint in completed:
                continue
            if fingerprint not in claims:
                target = (point, fingerprint)
                break
        if target is None:
            # Only claimed-but-unfinished points remain: give their
            # owners a grace period, then steal the first staller.
            now = time.perf_counter()
            for point, fingerprint in items:
                if fingerprint in attempted or fingerprint in completed:
                    continue
                first = stall_seen.setdefault(fingerprint, now)
                if now - first >= steal_timeout:
                    target = (point, fingerprint)
                    steal = True
                    break
            if target is None:
                if all(
                    fingerprint in attempted or fingerprint in completed
                    for _, fingerprint in items
                ):
                    break
                time.sleep(0.2)
                continue
        point, fingerprint = target
        attempted.add(fingerprint)
        if not steal:
            claims.claim(fingerprint, shard)
            claims.load()
            if claims.owner(fingerprint) != shard:
                # Lost a cross-process race; the winner executes it.
                # Drop it from `attempted` so the steal path can still
                # recover it if the winner dies.
                attempted.discard(fingerprint)
                continue
        if kill_after is not None and executed >= kill_after:
            # Die holding a live claim: the failure mode stealing and
            # the coordinator's inline pass must absorb.
            os.kill(os.getpid(), signal.SIGKILL)
        result, wall = execute_point(point, cache)
        store.append(
            point, result, wall_time_s=wall, fingerprint=fingerprint
        )
        executed += 1
        if steal:
            stolen += 1

    summary = {
        "shard": shard,
        "executed": executed,
        "stolen": stolen,
        "wall_s": time.perf_counter() - started,
    }
    Path(payload["summary"]).write_text(json.dumps(summary))
    return summary


def main(argv: list[str] | None = None) -> int:
    """CLI entry: read the payload file and run the shard."""
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print(
            "usage: python -m repro.dist.shardworker <payload.json>",
            file=sys.stderr,
        )
        return 2
    payload = json.loads(Path(argv[0]).read_text())
    run_shard(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
