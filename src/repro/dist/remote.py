"""The ``remote`` execution backend: circuits evaluated by a worker pool.

:class:`RemoteBackend` is a :class:`~repro.noise.SimulatorBackend`
whose ideal-simulation hooks — ``circuit_probabilities`` and
``prepare_state`` — ship serialized circuit batches to a pool of
worker processes (local forks over ``multiprocessing`` pipes, or
remote hosts over the length-prefixed socket transport) and read exact
float results back.  Everything else — the noise pipeline, sampling,
the cost ledger — runs locally and unchanged, so any estimator kind
runs on ``remote`` exactly as it would on the worker's backend kind:
results are bit-identical to a local run of that kind.

Cache-key discipline: the backend advertises its *worker's* kind as
``backend_kind``, so :func:`repro.engine.spec.device_fingerprint`
folds the worker-side simulation strategy **into** engine cache keys
while folding transport identity (pipes vs sockets, pool width, retry
budget) **out** — a PMF computed via two pipe workers is the same
cache entry as one computed over sockets or locally.

Worker death is absorbed by the pool's bounded retry (see
:class:`~repro.dist.transport.WorkerPool`): requests are pure, so a
killed worker's batch is resubmitted without loss or duplication.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..api.spec import check_choice, check_int
from ..backends import register_backend
from ..backends.spec import BackendSpec
from ..circuits import Circuit
from ..noise import DeviceModel, SimulatorBackend
from .transport import PipeChannel, SocketChannel, WorkerPool
from .wire import (
    WORKER_BACKEND_KINDS,
    circuit_to_wire,
    state_from_wire,
)

__all__ = ["RemoteBackend", "RemoteBackendSpec", "TRANSPORTS"]

#: Supported transport names for :class:`RemoteBackendSpec`.
TRANSPORTS = ("pipes", "socket")


class RemoteBackend(SimulatorBackend):
    """A simulator backend whose ideal evaluation runs on remote workers.

    ``spec`` is the :class:`RemoteBackendSpec` that built it.  The
    worker pool is created lazily on first use and torn down by
    :meth:`close` (pipe workers are daemonic, so they also die with
    the parent process).
    """

    def __init__(
        self,
        device: DeviceModel | None = None,
        seed: int | None = None,
        spec: "RemoteBackendSpec | None" = None,
    ):
        super().__init__(device, seed=seed)
        self.spec = spec if spec is not None else RemoteBackendSpec()
        # Instance attribute shadows the class default: engine cache
        # keys see the worker's simulation kind, not "remote".
        self.backend_kind = self.spec.worker_backend
        self._pool: WorkerPool | None = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------- transport

    def _worker_pool(self) -> WorkerPool:
        with self._pool_lock:
            if self._pool is None:
                if self.spec.transport == "pipes":
                    channels: list = [
                        PipeChannel() for _ in range(self.spec.workers)
                    ]
                else:
                    channels = [
                        SocketChannel(address)
                        for address in self.spec.addresses
                    ]
                self._pool = WorkerPool(
                    channels, max_retries=self.spec.max_retries
                )
            return self._pool

    def _submit_batch(self, op: str, circuits: list[Circuit]) -> list:
        reply = self._worker_pool().submit(
            {
                "op": op,
                "backend": {"kind": self.spec.worker_backend},
                "circuits": [circuit_to_wire(c) for c in circuits],
            }
        )
        return reply["results"]

    def close(self) -> None:
        """Shut down the worker pool (if one was ever started)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.close()
                self._pool = None

    # ----------------------------------------------------- engine hooks

    def circuit_probabilities(
        self, circuit: Circuit, plan=None
    ) -> np.ndarray:
        """Ideal pre-noise probabilities, computed by a remote worker."""
        (row,) = self._submit_batch("probs", [circuit])
        return np.asarray(row, dtype=float)

    def circuit_probabilities_batch(
        self, circuits: list[Circuit]
    ) -> list[np.ndarray]:
        """Evaluate many circuits in one wire round trip.

        The protocol-level batch API: one request, one reply, one
        probability row per circuit, in order.
        """
        rows = self._submit_batch("probs", list(circuits))
        return [np.asarray(row, dtype=float) for row in rows]

    def prepare_state(self, circuit: Circuit, plan=None) -> np.ndarray:
        """Statevector of ``circuit``, computed by a remote worker."""
        (state,) = self._submit_batch("prepare", [circuit])
        return state_from_wire(state)

    def __repr__(self) -> str:
        return (
            f"<RemoteBackend worker={self.spec.worker_backend!r} "
            f"transport={self.spec.transport!r} "
            f"workers={self.spec.workers}>"
        )


@register_backend("remote")
@dataclass(frozen=True)
class RemoteBackendSpec(BackendSpec):
    """Distributed evaluation over a pool of worker processes.

    Parameters
    ----------
    worker_backend:
        Which simulation strategy the workers run — ``"dense"``
        (default) or ``"clifford"``.  This is the kind folded into
        engine cache keys; results are bit-identical to running that
        kind locally.
    transport:
        ``"pipes"`` (default) forks ``workers`` local processes behind
        ``multiprocessing`` pipes; ``"socket"`` connects to the
        ``addresses`` of already-running ``repro dist-worker``
        processes.
    workers:
        Pool width for the ``pipes`` transport.
    addresses:
        ``host:port`` strings for the ``socket`` transport.
    max_retries:
        How many times a request may be resubmitted after worker
        deaths before the failure surfaces.

    Example
    -------
    >>> from repro.backends import make_backend
    >>> backend = make_backend({"kind": "remote", "workers": 2})
    >>> backend.backend_kind
    'dense'
    """

    worker_backend: str = "dense"
    transport: str = "pipes"
    workers: int = 2
    addresses: tuple[str, ...] = ()
    max_retries: int = 2

    def validate(self) -> None:
        """Eager checks: kinds, transport/address pairing, bounds."""
        check_choice(
            "worker_backend", self.worker_backend, WORKER_BACKEND_KINDS
        )
        check_choice("transport", self.transport, TRANSPORTS)
        check_int("workers", self.workers, minimum=1)
        check_int("max_retries", self.max_retries, minimum=0)
        if not isinstance(self.addresses, (tuple, list)) or any(
            not isinstance(a, str) for a in self.addresses
        ):
            raise ValueError(
                f"addresses must be a list of 'host:port' strings; "
                f"got {self.addresses!r}"
            )
        if self.transport == "socket" and not self.addresses:
            raise ValueError(
                "transport='socket' requires at least one address"
            )
        if self.transport == "pipes" and self.addresses:
            raise ValueError(
                "addresses are only meaningful with transport='socket'"
            )

    def create(
        self,
        device: DeviceModel | None = None,
        seed: int | None = None,
    ) -> RemoteBackend:
        """Build the live :class:`RemoteBackend`."""
        return RemoteBackend(device, seed=seed, spec=self)
