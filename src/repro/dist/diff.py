"""Canonical result-store comparison (the byte-identity checker).

The subsystem's hard invariant — sharded runs produce records
byte-identical to serial runs — is stated over the *canonical* record:
every field except the two volatile timing fields every
:class:`~repro.sweeps.ResultStore` record carries (``wall_time_s``,
``finished_at``), serialized as canonical JSON.  Those two fields
record when/how long a point happened to execute, never what it
computed; masking them is the same discipline the golden tables apply
to timing cells.  Everything else — the point payload, the full result
tree, the fingerprint, the schema stamp — must match to the byte
(Python's JSON float encoding is exact, so numeric drift cannot hide).

:func:`diff_stores` backs the ``repro store-diff`` CLI command and the
CI ``dist-smoke`` byte-identity gate.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from ..sweeps.store import ResultStore

__all__ = [
    "VOLATILE_FIELDS",
    "canonical_record",
    "canonical_records",
    "diff_stores",
    "store_digest",
]

#: Result-record fields excluded from identity: wall-clock facts about
#: one particular execution, not properties of the computed result.
VOLATILE_FIELDS = ("wall_time_s", "finished_at")


def canonical_record(record: dict) -> str:
    """Canonical JSON of ``record`` with volatile fields removed."""
    payload = {
        key: value
        for key, value in record.items()
        if key not in VOLATILE_FIELDS
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def canonical_records(store: ResultStore | str | Path) -> dict[str, str]:
    """``{fingerprint: canonical record}`` for every record in a store.

    Accepts a live store or a path; loading goes through the store's
    torn-tail-tolerant parser, so a journal with a corrupt final line
    canonicalizes to its valid prefix.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    return {
        key: canonical_record(record)
        for key, record in sorted(
            ((r["fingerprint"], r) for r in store.records()),
        )
    }


def store_digest(store: ResultStore | str | Path) -> str:
    """Order-independent blake2b digest of a store's canonical records."""
    digest = hashlib.blake2b(digest_size=16)
    for key, canonical in sorted(canonical_records(store).items()):
        digest.update(key.encode())
        digest.update(b"\x00")
        digest.update(canonical.encode())
        digest.update(b"\n")
    return digest.hexdigest()


def diff_stores(
    left: ResultStore | str | Path, right: ResultStore | str | Path
) -> list[str]:
    """Human-readable canonical differences between two stores.

    Empty list means the stores are identical up to the volatile
    timing fields — the distributed-execution definition of
    byte-identical.
    """
    a, b = canonical_records(left), canonical_records(right)
    problems: list[str] = []
    for key in sorted(set(a) - set(b)):
        problems.append(f"only in left: {key}")
    for key in sorted(set(b) - set(a)):
        problems.append(f"only in right: {key}")
    for key in sorted(set(a) & set(b)):
        if a[key] != b[key]:
            problems.append(f"records differ: {key}")
    return problems
