"""The shared journaled claim queue behind sharded work-stealing.

A :class:`ClaimQueue` is a :class:`repro.io.Journal` of tiny claim
records — ``{fingerprint, shard, claimed_at}`` — that shards append to
before executing a point.  The coordination rules are deliberately
weaker than a lock, because the result stores make strong coordination
unnecessary:

* **Claims are advisory.**  Completion is judged *only* from result
  stores; a claim (fresh, stale, replayed, or orphaned by a killed
  shard) can never cause a point to be skipped.
* **Races are resolved by journal order.**  Two shards may append
  claims for the same fingerprint concurrently (each process's
  in-memory index can't see the other's record until reload); after
  a reload, the journal's first-wins duplicate handling makes every
  observer agree on one owner.  The loser simply moves on.
* **Replay is harmless.**  Re-appending an existing claim is a no-op
  in-process and an ignored duplicate line on disk.
* **Double execution is harmless.**  If a shard steals a claimed but
  unfinished point (its owner died, or is a straggler), both may
  execute it; results are bit-identical by construction and the
  store merge is fingerprint-keyed first-wins.
"""

from __future__ import annotations

import time
from pathlib import Path

from ..io import Journal

__all__ = ["CLAIM_SCHEMA_VERSION", "ClaimQueue"]

#: Schema stamp for claim records.
CLAIM_SCHEMA_VERSION = 1


class ClaimQueue(Journal):
    """Append-only claim journal shared by every shard of one sweep."""

    def __init__(self, path: str | Path):
        super().__init__(
            path,
            CLAIM_SCHEMA_VERSION,
            key_field="fingerprint",
            required_fields=("shard",),
        )

    def claim(self, fingerprint: str, shard: int) -> bool:
        """Append a claim for ``fingerprint`` by ``shard``.

        Returns ``False`` if this queue instance already knows a claim
        for the point.  A ``True`` return is *provisional*: reload and
        check :meth:`owner` to learn who actually won a cross-process
        race.
        """
        return self.append_record(
            fingerprint,
            {
                "schema": CLAIM_SCHEMA_VERSION,
                "fingerprint": fingerprint,
                "shard": int(shard),
                "claimed_at": time.time(),
            },
        )

    def owner(self, fingerprint: str) -> int | None:
        """The winning shard for ``fingerprint`` (``None`` if unclaimed)."""
        record = self.get(fingerprint)
        if record is None:
            return None
        return int(record["shard"])
