"""Variational ansatz circuits."""

from .efficient_su2 import ENTANGLEMENT_TYPES, EfficientSU2

__all__ = ["EfficientSU2", "ENTANGLEMENT_TYPES"]
