"""Hardware-efficient SU2 ansatz (Kandala et al. 2017 style).

The paper uses "the hardware efficient SU2 ansatz ... constructed for the
'full' entanglement ... 2 blocks of repetition" (Section 5.1), and sweeps
entanglement type over full / linear / circular / asymmetric (Table 3) and
depth p over 1/2/4/8 (Table 4).  This module reproduces those knobs.

Structure (matching Qiskit's ``EfficientSU2``): an initial RY+RZ rotation
layer, then ``reps`` blocks of [entangling CX layer + RY+RZ rotation
layer].  Parameter count: ``2 * n_qubits * (reps + 1)``.
"""

from __future__ import annotations

from ..circuits import Circuit, ParameterVector

__all__ = ["EfficientSU2", "ENTANGLEMENT_TYPES"]

ENTANGLEMENT_TYPES = ("full", "linear", "circular", "asymmetric")


def _entangling_pairs(
    n_qubits: int, entanglement: str, block: int
) -> list[tuple[int, int]]:
    """CX (control, target) pairs for one entangling layer.

    ``asymmetric`` is a shifted-circular-alternating pattern (Qiskit's
    'sca'): the ring of CXs is rotated by the block index and the
    control/target roles alternate between blocks, breaking the layer
    symmetry — the paper's fourth ansatz type.
    """
    if entanglement == "full":
        return [
            (i, j)
            for i in range(n_qubits)
            for j in range(i + 1, n_qubits)
        ]
    if entanglement == "linear":
        return [(i, i + 1) for i in range(n_qubits - 1)]
    if entanglement == "circular":
        pairs = [(n_qubits - 1, 0)] if n_qubits > 2 else []
        return pairs + [(i, i + 1) for i in range(n_qubits - 1)]
    if entanglement == "asymmetric":
        ring = [(i, (i + 1) % n_qubits) for i in range(n_qubits)]
        if n_qubits == 2:
            ring = [(0, 1)]
        shift = block % len(ring)
        rotated = ring[shift:] + ring[:shift]
        if block % 2 == 1:
            rotated = [(t, c) for c, t in rotated]
        return rotated
    raise ValueError(
        f"unknown entanglement {entanglement!r}; "
        f"choose from {ENTANGLEMENT_TYPES}"
    )


class EfficientSU2:
    """Parameterized hardware-efficient ansatz.

    Parameters
    ----------
    n_qubits:
        Circuit width.
    reps:
        Number of entangle+rotate blocks (the paper's depth ``p``).
    entanglement:
        One of ``full | linear | circular | asymmetric``.

    Example
    -------
    >>> ansatz = EfficientSU2(4, reps=2)
    >>> ansatz.num_parameters
    24
    >>> bound = ansatz.bind([0.0] * ansatz.num_parameters)
    >>> bound.is_bound()
    True
    """

    def __init__(
        self, n_qubits: int, reps: int = 2, entanglement: str = "full"
    ):
        if n_qubits < 2:
            raise ValueError("ansatz needs at least two qubits")
        if reps < 1:
            raise ValueError("reps must be >= 1")
        if entanglement not in ENTANGLEMENT_TYPES:
            raise ValueError(
                f"unknown entanglement {entanglement!r}; "
                f"choose from {ENTANGLEMENT_TYPES}"
            )
        self.n_qubits = n_qubits
        self.reps = reps
        self.entanglement = entanglement
        self.params = ParameterVector("theta", 2 * n_qubits * (reps + 1))
        self.circuit = self._build()

    def _build(self) -> Circuit:
        qc = Circuit(
            self.n_qubits,
            name=f"su2_{self.entanglement}_p{self.reps}",
        )
        index = 0
        for q in range(self.n_qubits):
            qc.ry(self.params[index], q)
            index += 1
        for q in range(self.n_qubits):
            qc.rz(self.params[index], q)
            index += 1
        for block in range(self.reps):
            for control, target in _entangling_pairs(
                self.n_qubits, self.entanglement, block
            ):
                qc.cx(control, target)
            for q in range(self.n_qubits):
                qc.ry(self.params[index], q)
                index += 1
            for q in range(self.n_qubits):
                qc.rz(self.params[index], q)
                index += 1
        return qc

    @property
    def num_parameters(self) -> int:
        return len(self.params)

    @property
    def gate_load(self) -> tuple[int, int]:
        """(one-qubit, two-qubit) gate counts — feeds the gate-noise model."""
        g2 = self.circuit.num_two_qubit_gates
        return (self.circuit.num_gates - g2, g2)

    def bind(self, values) -> Circuit:
        """Bind a flat parameter array to a concrete circuit."""
        return self.circuit.bind(self.params.to_bindings(values))

    def __repr__(self) -> str:
        return (
            f"EfficientSU2(n_qubits={self.n_qubits}, reps={self.reps}, "
            f"entanglement={self.entanglement!r})"
        )
