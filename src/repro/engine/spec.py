"""Execution job specs and content-addressed fingerprints.

A *spec* is everything needed to reproduce one device execution: either a
full bound circuit (:class:`CircuitSpec`) or a prepared ansatz state plus
a measurement-basis suffix (:class:`StateSpec` — the backend's
``run_from_state`` fast path).  Specs are immutable once submitted.

Each spec exposes a :meth:`fingerprint`: a digest over the exact content
that determines its noisy outcome distribution — circuit structure,
statevector bytes, measured qubits, readout mapping mode, and the gate
load charged to depolarizing noise.  Shots are deliberately *excluded*:
two specs that differ only in shot count share one exact PMF, so they
dedup to a single simulation while still sampling (and being charged)
separately.  The engine mixes a device/noise-flag fingerprint into its
cache keys so a cache is never polluted across backend configurations.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..circuits import Circuit

__all__ = [
    "CircuitSpec",
    "StateSpec",
    "circuit_fingerprint",
    "device_fingerprint",
    "state_digest",
]


def _hasher() -> "hashlib._Hash":
    return hashlib.blake2b(digest_size=16)


def _feed_circuit(h, circuit: Circuit) -> None:
    h.update(f"c:{circuit.n_qubits}".encode())
    for ins in circuit.instructions:
        param = ins.param
        if param is not None and not isinstance(param, (int, float)):
            raise ValueError(
                f"cannot fingerprint unbound parameter {param!r}; "
                "bind the circuit before submitting it"
            )
        h.update(
            f"|{ins.name}:{','.join(map(str, ins.qubits))}:"
            f"{'' if param is None else float(param).hex()}".encode()
        )
    h.update(
        f"|m:{','.join(map(str, sorted(circuit.measured_qubits)))}".encode()
    )


def circuit_fingerprint(circuit: Circuit) -> str:
    """Structural digest of a bound circuit (gates + measured qubits)."""
    h = _hasher()
    _feed_circuit(h, circuit)
    return h.hexdigest()


def device_fingerprint(backend) -> str:
    """Digest of everything on a backend that shapes exact PMFs.

    Covers the backend kind (a ``clifford`` and a ``density`` backend
    over one device must never share memoized PMFs), per-qubit readout
    rates, crosstalk, gate-noise rates/scales, and the backend's noise
    kill-switches — but *not* its RNG state, which only affects
    sampling.
    """
    device = backend.device
    h = _hasher()
    h.update(
        f"d:{device.name}:{device.n_qubits}"
        f":k{getattr(backend, 'backend_kind', 'dense')}"
        f":ro{int(backend.readout_enabled)}"
        f":gn{int(backend.gate_noise_enabled)}".encode()
    )
    # Backend subclasses with extra PMF-shaping knobs (e.g. the density
    # backend's amplitude damping) contribute them here.
    extra = getattr(backend, "pmf_fingerprint_extra", None)
    if extra is not None:
        h.update(f"|e:{extra()}".encode())
    # Drifting devices: fold the schedule + epoch in so two clock
    # states never share cached PMFs, even if their rates momentarily
    # coincide (the concrete rates below are hashed too, but equal
    # rates at different epochs are still distinct calibration states).
    drift = getattr(device, "drift_state_fingerprint", None)
    if drift is not None:
        h.update(f"|t:{drift()}".encode())
    readout = device.readout
    h.update(
        f"|x:{readout.crosstalk_strength.hex()}"
        f":{readout.scale.hex()}".encode()
    )
    for err in readout.qubit_errors:
        h.update(f"|q:{err.p01.hex()}:{err.p10.hex()}".encode())
    gn = device.gate_noise
    h.update(
        f"|g:{gn.error_1q.hex()}:{gn.error_2q.hex()}:{gn.scale.hex()}".encode()
    )
    return h.hexdigest()


def state_digest(state: np.ndarray) -> str:
    """Content digest of a statevector's bytes.

    Whole-iteration batches submit many specs sharing one prepared
    state; callers that hold the array can compute this once and pass
    it to every :class:`StateSpec` instead of re-hashing per spec.
    """
    h = _hasher()
    h.update(np.ascontiguousarray(state).tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class CircuitSpec:
    """One full-circuit execution request (mirrors ``backend.run``)."""

    circuit: Circuit
    shots: int
    map_to_best: bool = False

    def __post_init__(self) -> None:
        if self.shots < 1:
            raise ValueError("shots must be positive")
        if not self.circuit.measured_qubits:
            raise ValueError("circuit measures no qubits")

    def fingerprint(self) -> str:
        """Content digest over circuit structure + readout mapping."""
        h = _hasher()
        _feed_circuit(h, self.circuit)
        h.update(f"|b:{int(self.map_to_best)}".encode())
        return h.hexdigest()


@dataclass(frozen=True)
class StateSpec:
    """One prepared-state execution request (``backend.run_from_state``).

    ``gate_load`` is the (one-qubit, two-qubit) gate count of the state
    preparation, charged to depolarizing noise on top of the suffix.
    ``digest`` is an optional precomputed :func:`state_digest` of
    ``state`` (an optimization for batches whose specs share a state);
    when given, it MUST match the array's content.
    """

    state: np.ndarray = field(repr=False)
    suffix: Circuit | None
    measured_qubits: tuple[int, ...]
    shots: int
    map_to_best: bool = False
    gate_load: tuple[int, int] = (0, 0)
    digest: str | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "measured_qubits",
            tuple(int(q) for q in self.measured_qubits),
        )
        object.__setattr__(
            self,
            "gate_load",
            (int(self.gate_load[0]), int(self.gate_load[1])),
        )
        if self.shots < 1:
            raise ValueError("shots must be positive")
        if not self.measured_qubits:
            raise ValueError("no measured qubits")

    def fingerprint(self) -> str:
        """Content digest over state bytes + suffix + measurement."""
        h = _hasher()
        h.update(b"s:")
        digest = self.digest
        if digest is None:
            digest = state_digest(self.state)
        h.update(digest.encode())
        if self.suffix is not None:
            _feed_circuit(h, self.suffix)
        h.update(
            f"|m:{','.join(map(str, sorted(self.measured_qubits)))}"
            f"|b:{int(self.map_to_best)}"
            f"|l:{self.gate_load[0]},{self.gate_load[1]}".encode()
        )
        return h.hexdigest()
