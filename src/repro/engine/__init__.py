"""repro.engine — batched, caching, parallel circuit execution.

Every estimator in the library routes its device executions through an
:class:`ExecutionEngine` instead of calling the backend one circuit at a
time.  The engine deduplicates structurally identical circuit specs
within a batch, memoizes exact noisy PMFs across iterations/trials in a
bounded LRU, and runs unique simulations through a configurable worker
pool — while charging the backend's ``circuits_run``/``shots_run``
ledger per *submitted* spec, so the paper's cost metric is untouched.

Typical use::

    from repro.engine import EngineConfig, ExecutionEngine

    engine = ExecutionEngine(backend, EngineConfig(workers=4))
    batch = engine.new_batch()
    handle = batch.submit_state(state, rotation, range(n), shots=512)
    batch.run()
    counts = handle.result()
    print(engine.stats.pmf_cache.hit_rate)

Estimators accept ``engine=`` as an :class:`ExecutionEngine`, an
:class:`EngineConfig`, or ``None``; see :func:`ensure_engine`.  ``None``
resolves to *one shared default engine per backend*, so several
estimators built over the same :class:`SimulatorBackend` pool their
PMF/state caches instead of each holding a private copy.  Both caches
are bounded by entry count *and* an approximate byte budget that scales
with the device width (see :class:`EngineConfig.cache_bytes`), closing
the old failure mode where 256 cached 20-qubit PMFs pinned GiBs.
"""

from __future__ import annotations

from .cache import CacheStats, LRUCache
from .config import RNG_MODES, EngineConfig
from .engine import Batch, EngineStats, ExecutionEngine, JobHandle
from .executor import PoolExecutor, SerialExecutor, make_executor
from .spec import (
    CircuitSpec,
    StateSpec,
    circuit_fingerprint,
    device_fingerprint,
)

__all__ = [
    "ExecutionEngine",
    "EngineConfig",
    "EngineStats",
    "Batch",
    "JobHandle",
    "CircuitSpec",
    "StateSpec",
    "LRUCache",
    "CacheStats",
    "RNG_MODES",
    "SerialExecutor",
    "PoolExecutor",
    "make_executor",
    "circuit_fingerprint",
    "device_fingerprint",
    "ensure_engine",
    "shared_engine",
]


def shared_engine(backend) -> ExecutionEngine:
    """The backend's lazily-created shared default engine.

    One engine (and therefore one PMF/state cache pair) per backend is
    the default sharing discipline: estimators that don't ask for a
    specific engine all pool their memoization.  Semantically invisible
    under the default ``shared`` RNG mode — caches never touch sampling
    randomness — but note that in ``per_job`` mode job sequence numbers
    are per-engine, so explicitly-constructed engines stay private.
    """
    engine = getattr(backend, "_repro_shared_engine", None)
    if engine is None:
        engine = ExecutionEngine(backend)
        backend._repro_shared_engine = engine
    return engine


def ensure_engine(engine, backend) -> ExecutionEngine:
    """Coerce an ``engine=`` argument into an :class:`ExecutionEngine`.

    Accepts a ready engine (validated against ``backend``), an
    :class:`EngineConfig` (fresh private engine), or ``None`` for the
    backend's :func:`shared_engine`.
    """
    if engine is None:
        return shared_engine(backend)
    if isinstance(engine, EngineConfig):
        return ExecutionEngine(backend, engine)
    if isinstance(engine, ExecutionEngine):
        if engine.backend is not backend:
            raise ValueError(
                "engine is bound to a different backend than the estimator"
            )
        return engine
    raise TypeError(
        f"engine must be an ExecutionEngine, EngineConfig, or None; "
        f"got {type(engine).__name__}"
    )
