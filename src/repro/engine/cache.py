"""Bounded memoization for exact distributions and prepared states.

Exact noisy PMFs are deterministic functions of (circuit content, device
config, noise flags, readout mapping) — all captured by the engine's
cache keys — so memoizing them is semantically invisible: only the
sampling step consumes randomness.  Across VQE iterations the same
measurement circuits recur whenever the tuner revisits parameters
(SPSA's paired perturbations, trial repeats, benchmark sweeps), which is
exactly what a bounded LRU exploits.

:class:`LRUCache` is deliberately generic; the engine instantiates one
for PMFs and one for prepared statevectors.  Two bounds compose:

* ``maxsize`` — an entry-count cap (the original bound, now secondary);
* ``max_bytes`` — an approximate byte budget over the *payload* sizes of
  the cached values (:func:`approx_nbytes`: a PMF's probability vector,
  a statevector's buffer).  Entries above the budget evict LRU-first, so
  256 cached 20-qubit PMFs can no longer silently pin gigabytes.

Hit/miss/eviction counters plus the live byte footprint are kept per
cache and surfaced through :class:`CacheStats`.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["CacheStats", "LRUCache", "approx_nbytes"]

_MISSING = object()


def approx_nbytes(value) -> int:
    """Approximate heap footprint of a cached value in bytes.

    Understands the engine's two payload types without importing them:
    objects exposing a ``probs`` array (:class:`~repro.sim.PMF`) and
    array-likes exposing ``nbytes`` (prepared statevectors).  Anything
    else falls back to ``sys.getsizeof``.  A small constant covers the
    wrapping object/key overhead; this is budget accounting, not a
    profiler.
    """
    overhead = 64
    probs = getattr(value, "probs", None)
    if probs is not None and hasattr(probs, "nbytes"):
        return int(probs.nbytes) + overhead
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes) + overhead
    return int(sys.getsizeof(value))


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters for one cache.

    Snapshots subtract field-wise (``after - before`` is one phase's
    cache activity); the size/byte gauges subtract too, giving the
    phase's net growth rather than an absolute level.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int
    bytes: int = 0
    max_bytes: int = 0

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            evictions=self.evictions - other.evictions,
            size=self.size - other.size,
            maxsize=self.maxsize,
            bytes=self.bytes - other.bytes,
            max_bytes=self.max_bytes,
        )

    @property
    def requests(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        total = self.requests
        return self.hits / total if total else 0.0


class LRUCache:
    """A doubly-bounded least-recently-used map with usage counters.

    Parameters
    ----------
    maxsize:
        Entry-count cap.  ``maxsize=0`` disables storage entirely: every
        lookup misses and nothing is retained (useful as a null object —
        callers need no special-casing).
    max_bytes:
        Approximate byte budget over the payload sizes of cached values;
        ``0`` means unbounded bytes (entry cap only).  A single value
        larger than the whole budget is simply not retained.
    sizeof:
        Payload-size estimator; defaults to :func:`approx_nbytes`.
    """

    def __init__(
        self,
        maxsize: int,
        max_bytes: int = 0,
        sizeof: Callable[[Any], int] = approx_nbytes,
    ):
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0")
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.maxsize = int(maxsize)
        self.max_bytes = int(max_bytes)
        self._sizeof = sizeof
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self._sizes: dict[Any, int] = {}
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def get(self, key):
        """Return the cached value or ``None``, updating hit/miss stats."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return None
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        """Insert ``value``, evicting least-recently-used overflow.

        Overflow is whatever violates either bound: more than ``maxsize``
        entries, or (when ``max_bytes`` is set) a total payload footprint
        above the byte budget.
        """
        if self.maxsize == 0:
            return
        size = int(self._sizeof(value))
        if self.max_bytes and size > self.max_bytes:
            # Oversized values are not retained — and must not flush
            # every smaller entry on their way through.  Drop any stale
            # value previously stored under this key.
            if key in self._data:
                del self._data[key]
                self.bytes -= self._sizes.pop(key)
            return
        if key in self._data:
            self._data.move_to_end(key)
            self.bytes -= self._sizes[key]
        self._data[key] = value
        self._sizes[key] = size
        self.bytes += size
        while len(self._data) > self.maxsize or (
            self.max_bytes and self.bytes > self.max_bytes
        ):
            evicted_key, _ = self._data.popitem(last=False)
            self.bytes -= self._sizes.pop(evicted_key)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._data.clear()
        self._sizes.clear()
        self.bytes = 0

    @property
    def stats(self) -> CacheStats:
        """A point-in-time :class:`CacheStats` snapshot."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._data),
            maxsize=self.maxsize,
            bytes=self.bytes,
            max_bytes=self.max_bytes,
        )

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"<LRUCache {s.size}/{s.maxsize} entries, "
            f"{s.bytes}/{s.max_bytes or '∞'} bytes, "
            f"{s.hits} hits / {s.misses} misses, {s.evictions} evicted>"
        )
