"""Bounded memoization for exact distributions and prepared states.

Exact noisy PMFs are deterministic functions of (circuit content, device
config, noise flags, readout mapping) — all captured by the engine's
cache keys — so memoizing them is semantically invisible: only the
sampling step consumes randomness.  Across VQE iterations the same
measurement circuits recur whenever the tuner revisits parameters
(SPSA's paired perturbations, trial repeats, benchmark sweeps), which is
exactly what a bounded LRU exploits.

:class:`LRUCache` is deliberately generic; the engine instantiates one
for PMFs and one for prepared statevectors.  Hit/miss/eviction counters
are kept per cache and surfaced through :class:`CacheStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

__all__ = ["CacheStats", "LRUCache"]

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters for one cache."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        total = self.requests
        return self.hits / total if total else 0.0


class LRUCache:
    """A size-bounded least-recently-used map with usage counters.

    ``maxsize=0`` disables storage entirely: every lookup misses and
    nothing is retained (useful as a null object — callers need no
    special-casing).
    """

    def __init__(self, maxsize: int):
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0")
        self.maxsize = int(maxsize)
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def get(self, key):
        """Return the cached value or ``None``, updating hit/miss stats."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return None
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        """Insert ``value``, evicting the least-recently-used overflow."""
        if self.maxsize == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._data.clear()

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._data),
            maxsize=self.maxsize,
        )

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"<LRUCache {s.size}/{s.maxsize} entries, "
            f"{s.hits} hits / {s.misses} misses, {s.evictions} evicted>"
        )
