"""Engine configuration.

One frozen record controls everything operational about an
:class:`~repro.engine.ExecutionEngine`: how many simulation workers run
concurrently, how large the PMF/state memoization caches may grow, and
which RNG discipline sampling follows.

The two RNG modes trade compatibility against scheduling freedom:

* ``"shared"`` (default) — every job samples from the backend's single
  RNG stream *in submission order*.  Because PMF simulation itself
  consumes no randomness, this reproduces the pre-engine serial
  semantics bit for bit (same counts, same energies, same ledger) no
  matter how many workers simulated the PMFs.
* ``"per_job"`` — each job samples from its own child RNG spawned
  deterministically from the backend seed and the job's global sequence
  number.  Each job's result then depends only on its position in the
  submission sequence, never on worker scheduling — the discipline a
  distributed deployment needs; the stream differs from the legacy
  serial one.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EngineConfig", "RNG_MODES"]

#: Supported sampling disciplines (see module docstring).
RNG_MODES = ("shared", "per_job")


@dataclass(frozen=True)
class EngineConfig:
    """Operational knobs for an :class:`~repro.engine.ExecutionEngine`.

    Parameters
    ----------
    workers:
        Concurrent PMF simulations.  ``1`` runs inline on the caller's
        thread (no pool); higher values use a thread pool — the dense
        ``tensordot`` kernels release the GIL inside NumPy, so threads
        scale on multi-core hosts without pickling circuits.
    cache_size:
        Maximum memoized exact-PMF entries; ``0`` disables the cache.
        This entry cap is the *secondary* bound — the byte budget below
        is what keeps wide-workload caches from pinning gigabytes.
    state_cache_size:
        Maximum memoized prepared-statevector entries (ansatz states
        reused across measurement bases and repeated parameters);
        ``0`` disables.
    cache_bytes:
        Approximate byte budget for the PMF cache.  ``None`` (default)
        scales the budget with the backend's device width: room for
        ``32`` full-width PMFs (``8 * 2**n_qubits`` bytes each), floored
        at 16 MiB so narrow workloads are effectively entry-bounded
        only.  ``0`` removes the byte bound; a positive value is an
        explicit budget.
    state_cache_bytes:
        Same, for the statevector cache (``16 * 2**n_qubits`` bytes per
        entry, auto budget of 16 entries, same 16 MiB floor).
    plan_cache_size:
        Maximum compiled :class:`~repro.sim.plan.CircuitPlan` entries,
        keyed by circuit *structure* fingerprint (one plan serves every
        parameter binding of a structure).  ``0`` disables the plan
        path entirely — the engine then simulates through the
        uncompiled backend hooks, which is what the throughput
        benchmark's "direct" row measures.
    rng_mode:
        ``"shared"`` or ``"per_job"`` — see the module docstring.
    """

    workers: int = 1
    cache_size: int = 256
    state_cache_size: int = 64
    plan_cache_size: int = 64
    cache_bytes: int | None = None
    state_cache_bytes: int | None = None
    rng_mode: str = "shared"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.state_cache_size < 0:
            raise ValueError("state_cache_size must be >= 0")
        if self.plan_cache_size < 0:
            raise ValueError("plan_cache_size must be >= 0")
        for name in ("cache_bytes", "state_cache_bytes"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0 or None (auto)")
        if self.rng_mode not in RNG_MODES:
            raise ValueError(
                f"rng_mode must be one of {RNG_MODES}, got {self.rng_mode!r}"
            )
