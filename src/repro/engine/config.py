"""Engine configuration.

One frozen record controls everything operational about an
:class:`~repro.engine.ExecutionEngine`: how many simulation workers run
concurrently, how large the PMF/state memoization caches may grow, and
which RNG discipline sampling follows.

The two RNG modes trade compatibility against scheduling freedom:

* ``"shared"`` (default) — every job samples from the backend's single
  RNG stream *in submission order*.  Because PMF simulation itself
  consumes no randomness, this reproduces the pre-engine serial
  semantics bit for bit (same counts, same energies, same ledger) no
  matter how many workers simulated the PMFs.
* ``"per_job"`` — each job samples from its own child RNG spawned
  deterministically from the backend seed and the job's global sequence
  number.  Each job's result then depends only on its position in the
  submission sequence, never on worker scheduling — the discipline a
  distributed deployment needs; the stream differs from the legacy
  serial one.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EngineConfig", "RNG_MODES"]

#: Supported sampling disciplines (see module docstring).
RNG_MODES = ("shared", "per_job")


@dataclass(frozen=True)
class EngineConfig:
    """Operational knobs for an :class:`~repro.engine.ExecutionEngine`.

    Parameters
    ----------
    workers:
        Concurrent PMF simulations.  ``1`` runs inline on the caller's
        thread (no pool); higher values use a thread pool — the dense
        ``tensordot`` kernels release the GIL inside NumPy, so threads
        scale on multi-core hosts without pickling circuits.
    cache_size:
        Maximum memoized exact-PMF entries; ``0`` disables the cache.
    state_cache_size:
        Maximum memoized prepared-statevector entries (ansatz states
        reused across measurement bases and repeated parameters);
        ``0`` disables.
    rng_mode:
        ``"shared"`` or ``"per_job"`` — see the module docstring.
    """

    workers: int = 1
    cache_size: int = 256
    state_cache_size: int = 64
    rng_mode: str = "shared"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.state_cache_size < 0:
            raise ValueError("state_cache_size must be >= 0")
        if self.rng_mode not in RNG_MODES:
            raise ValueError(
                f"rng_mode must be one of {RNG_MODES}, got {self.rng_mode!r}"
            )
