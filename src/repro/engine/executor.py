"""Simulation executors: inline or thread-pooled.

The engine splits every batch into *unique* simulation tasks (pure
functions producing exact PMFs) and a serial sampling/accounting pass.
Only the first half goes through an executor, so parallelism can never
reorder RNG consumption or ledger charges.

Threads, not processes: the statevector kernels spend their time inside
NumPy ``tensordot``/``matmul`` calls that release the GIL, so a thread
pool scales on multi-core hosts without having to pickle circuits or
device models.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor

__all__ = ["SerialExecutor", "PoolExecutor", "make_executor"]


class SerialExecutor:
    """Runs tasks inline on the caller's thread, wrapped in futures.

    Keeps the engine's execution code identical across worker counts:
    callers always receive :class:`concurrent.futures.Future` objects.
    """

    workers = 1

    def submit(self, fn, *args, **kwargs) -> Future:
        """Run ``fn(*args, **kwargs)`` now; return its resolved future."""
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # propagate on .result(), like a pool
            future.set_exception(exc)
        return future

    def shutdown(self) -> None:
        """Nothing to release (tasks ran inline)."""
        pass


class PoolExecutor:
    """A lazily-started :class:`ThreadPoolExecutor` wrapper."""

    def __init__(self, workers: int):
        if workers < 2:
            raise ValueError("PoolExecutor needs >= 2 workers")
        self.workers = int(workers)
        self._pool: ThreadPoolExecutor | None = None

    def submit(self, fn, *args, **kwargs) -> Future:
        """Queue ``fn(*args, **kwargs)`` on the pool (started on first use)."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-engine",
            )
        return self._pool.submit(fn, *args, **kwargs)

    def shutdown(self) -> None:
        """Drain and release the pool (restarts lazily if reused)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(workers: int):
    """Pick the executor implementation for a worker count."""
    return SerialExecutor() if workers <= 1 else PoolExecutor(workers)
