"""The batched, caching, parallel circuit-execution engine.

Estimators no longer call the backend circuit-by-circuit.  They open a
:class:`Batch`, submit every execution of the current objective
evaluation as a spec, and receive :class:`JobHandle` futures; one
``run()`` then drives the whole batch through three phases:

1. **Dedup** — specs are grouped by content fingerprint (mixed with the
   backend's device/noise fingerprint); structurally identical circuits
   simulate once and fan their exact PMF out to every submitter.
2. **Simulate** — unique PMFs are computed through the configured
   executor (inline or thread pool), consulting the bounded LRU
   memoization cache first.  Simulation is deterministic, so neither
   caching nor scheduling can change any numeric result.
3. **Sample & charge** — in *submission order*, every job samples its
   own shots from its PMF and charges the backend ledger exactly as a
   direct ``run``/``run_from_state`` call would: one circuit plus
   ``shots`` per submitted spec, duplicates included.  The paper's cost
   metric is therefore bit-identical to the serial path.

Under the default ``rng_mode="shared"`` the sampling pass consumes the
backend's single RNG stream in submission order, reproducing the legacy
serial semantics exactly for any worker count.  ``rng_mode="per_job"``
gives each job a child RNG spawned from the backend seed and the job's
global sequence number instead, decoupling results from submission
interleaving entirely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..circuits import Circuit
from ..noise.backend import SimulatorBackend as _DenseBackend
from ..obs import REGISTRY as _METRICS
from ..obs import span as _obs_span
from ..sim import PMF, Counts, probabilities
from ..sim.plan import CircuitPlan, compile_plan, structure_fingerprint
from .cache import CacheStats, LRUCache
from .config import EngineConfig
from .executor import make_executor
from .spec import (
    CircuitSpec,
    StateSpec,
    circuit_fingerprint,
    device_fingerprint,
    state_digest,
)

__all__ = ["ExecutionEngine", "Batch", "JobHandle", "EngineStats"]

# The engine's process-wide metrics: lifetime counters published into
# the default registry (the `GET /metrics` + BENCH_*.json surface).
# Incremented once per *batch*, never per job, so the hot path pays a
# handful of lock operations per objective evaluation.
_M_BATCHES = _METRICS.counter(
    "repro_engine_batches_total", "Engine batches executed"
)
_M_JOBS = _METRICS.counter(
    "repro_engine_jobs_total",
    "Jobs (circuit executions) charged through the engine",
)
_M_SHOTS = _METRICS.counter(
    "repro_engine_shots_total", "Shots sampled and charged"
)
_M_SIMULATIONS = _METRICS.counter(
    "repro_engine_simulations_total", "Unique PMF simulations run"
)
_M_CACHE_HITS = _METRICS.counter(
    "repro_engine_cache_hits_total", "PMF cache hits"
)
_M_COALESCED = _METRICS.counter(
    "repro_engine_dedup_coalesced_total",
    "Jobs coalesced onto an identical in-batch submission",
)
_M_PLAN_HITS = _METRICS.counter(
    "repro_engine_plan_cache_hits_total",
    "Compiled-plan cache hits (structure reused)",
)
_M_PLAN_MISSES = _METRICS.counter(
    "repro_engine_plan_cache_misses_total",
    "Compiled-plan cache misses (plan compiled)",
)
_M_BATCH_SECONDS = _METRICS.histogram(
    "repro_engine_batch_seconds", "Wall-clock seconds per engine batch"
)

#: Auto byte-budget shape: room for this many full-width payloads ...
_AUTO_PMF_ENTRIES = 32
_AUTO_STATE_ENTRIES = 16
#: ... but never a budget smaller than this (narrow workloads stay
#: effectively entry-bounded).
_AUTO_FLOOR_BYTES = 16 * 2**20


def _resolve_byte_budget(
    configured: int | None, entry_bytes: int, entries: int
) -> int:
    """Turn a config byte knob into a concrete LRU budget.

    ``None`` means auto: scale with the device width (``entry_bytes`` is
    the full-width payload size, ``8|16 * 2**n_qubits``), floored at
    :data:`_AUTO_FLOOR_BYTES`.  ``0`` disables the byte bound; positive
    values pass through.
    """
    if configured is not None:
        return int(configured)
    return max(_AUTO_FLOOR_BYTES, entry_bytes * entries)


@dataclass(frozen=True)
class EngineStats:
    """Lifetime counters for one engine instance.

    Snapshots subtract: ``engine.stats - before`` is the cost of one
    phase (a batch, a request, a tenant's job), with the nested cache
    stats subtracted field-wise.  This is the delta hook the serve
    subsystem charges per-tenant work through.
    """

    jobs_submitted: int
    batches_run: int
    simulations: int
    dedup_coalesced: int
    pmf_cache: CacheStats
    state_cache: CacheStats
    plan_cache: CacheStats

    def __sub__(self, other: "EngineStats") -> "EngineStats":
        return EngineStats(
            jobs_submitted=self.jobs_submitted - other.jobs_submitted,
            batches_run=self.batches_run - other.batches_run,
            simulations=self.simulations - other.simulations,
            dedup_coalesced=self.dedup_coalesced - other.dedup_coalesced,
            pmf_cache=self.pmf_cache - other.pmf_cache,
            state_cache=self.state_cache - other.state_cache,
            plan_cache=self.plan_cache - other.plan_cache,
        )


class JobHandle:
    """Future-style handle for one submitted spec.

    ``result()``/``pmf()`` become available once the owning batch has
    run; accessing them earlier raises.  After the run, :attr:`source`
    records where this job's PMF came from — ``"simulated"`` (a fresh
    simulation), ``"cache"`` (the engine's memoization cache), or
    ``"dedup"`` (coalesced onto an identical spec earlier in the same
    batch) — the per-job cache-hit attribution the trace spans
    aggregate.
    """

    __slots__ = ("spec", "index", "source", "_fingerprint", "_counts",
                 "_pmf")

    def __init__(self, spec, index: int):
        self.spec = spec
        self.index = index
        self.source: str | None = None
        self._fingerprint = spec.fingerprint()
        self._counts: Counts | None = None
        self._pmf: PMF | None = None

    def done(self) -> bool:
        """Whether the owning batch has executed this job."""
        return self._counts is not None

    def result(self) -> Counts:
        """Sampled counts for this spec (after the batch has run)."""
        if self._counts is None:
            raise RuntimeError("job has not been executed; run its batch")
        return self._counts

    def pmf(self) -> PMF:
        """The exact noisy PMF this job's counts were sampled from."""
        if self._pmf is None:
            raise RuntimeError("job has not been executed; run its batch")
        return self._pmf

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"<JobHandle #{self.index} {state}>"


class Batch:
    """An ordered set of specs executed together by one engine pass."""

    def __init__(self, engine: "ExecutionEngine"):
        self._engine = engine
        self._jobs: list[JobHandle] = []
        self._ran = False
        # Whole-iteration batches submit many specs over one prepared
        # state; hash each distinct array once.  Keyed by id(): safe
        # here because the specs keep their arrays alive for the
        # batch's lifetime.
        self._state_digests: dict[int, str] = {}

    def submit(self, spec) -> JobHandle:
        """Queue a :class:`CircuitSpec`/:class:`StateSpec`; get a handle."""
        if self._ran:
            raise RuntimeError("batch already ran; open a new one")
        handle = JobHandle(spec, self._engine._next_job_index())
        self._jobs.append(handle)
        return handle

    def submit_circuit(
        self, circuit: Circuit, shots: int, map_to_best: bool = False
    ) -> JobHandle:
        """Queue a full bound circuit (mirrors ``backend.run``)."""
        return self.submit(CircuitSpec(circuit, shots, map_to_best))

    def submit_state(
        self,
        state: np.ndarray,
        suffix: Circuit | None,
        measured_qubits,
        shots: int,
        map_to_best: bool = False,
        gate_load: tuple[int, int] = (0, 0),
    ) -> JobHandle:
        """Queue a prepared state + basis suffix (``run_from_state``)."""
        digest = self._state_digests.get(id(state))
        if digest is None:
            digest = state_digest(state)
            self._state_digests[id(state)] = digest
        return self.submit(
            StateSpec(
                state=state,
                suffix=suffix,
                measured_qubits=tuple(measured_qubits),
                shots=shots,
                map_to_best=map_to_best,
                gate_load=gate_load,
                digest=digest,
            )
        )

    def __len__(self) -> int:
        return len(self._jobs)

    def run(self) -> list[Counts]:
        """Execute all queued jobs; fill every handle; return its counts."""
        if self._ran:
            raise RuntimeError("batch already ran; open a new one")
        self._ran = True
        self._engine._execute(self._jobs)
        return [job.result() for job in self._jobs]


class ExecutionEngine:
    """Batched execution front-end for one :class:`SimulatorBackend`.

    Parameters
    ----------
    backend:
        The execution substrate.  The engine charges this backend's
        ``circuits_run``/``shots_run`` ledger per submitted spec and (in
        ``shared`` RNG mode) samples from its RNG stream.
    config:
        An :class:`~repro.engine.EngineConfig`; defaults preserve the
        pre-engine serial semantics bit for bit.
    """

    def __init__(self, backend, config: EngineConfig | None = None):
        self.backend = backend
        self.config = config if config is not None else EngineConfig()
        self._executor = make_executor(self.config.workers)
        n_qubits = getattr(
            getattr(backend, "device", None), "n_qubits", 0
        )
        self._pmf_cache = LRUCache(
            self.config.cache_size,
            max_bytes=_resolve_byte_budget(
                self.config.cache_bytes, 8 * 2**n_qubits, _AUTO_PMF_ENTRIES
            ),
        )
        self._state_cache = LRUCache(
            self.config.state_cache_size,
            max_bytes=_resolve_byte_budget(
                self.config.state_cache_bytes,
                16 * 2**n_qubits,
                _AUTO_STATE_ENTRIES,
            ),
        )
        # Compiled-plan cache, keyed by structure fingerprint.  The
        # plan path is only taken where it is provably bit-identical:
        # each capability is gated on the backend *inheriting* the
        # corresponding dense pipeline (an override — stabilizer
        # tableaus, density channels, test doubles — computes different
        # bits, so those hooks keep being called circuit-by-circuit).
        self._plan_cache = LRUCache(self.config.plan_cache_size)
        plans_on = self.config.plan_cache_size > 0
        bcls = type(backend)
        self._plan_prepare = plans_on and (
            getattr(bcls, "prepare_state", None)
            is _DenseBackend.prepare_state
        )
        self._plan_batching = plans_on and (
            getattr(bcls, "supports_plan_batching", None) is not None
            and backend.supports_plan_batching()
        )
        self._suffix_plans = plans_on and (
            getattr(bcls, "supports_suffix_plans", None) is not None
            and backend.supports_suffix_plans()
        )
        self._job_counter = 0
        self._batches_run = 0
        self._simulations = 0
        self._dedup_coalesced = 0
        seed = getattr(backend, "seed", None)
        if seed is None:
            # Unseeded backend: draw a per-engine root so per_job streams
            # are still independent, just not reproducible across runs.
            seed = int(np.random.SeedSequence().entropy % (2**63))
        self._rng_root = int(seed)

    # ------------------------------------------------------------ submission

    def new_batch(self) -> Batch:
        """Open an empty :class:`Batch` bound to this engine."""
        return Batch(self)

    def run_spec(self, spec) -> Counts:
        """Convenience: execute a single spec as its own batch."""
        batch = self.new_batch()
        handle = batch.submit(spec)
        batch.run()
        return handle.result()

    def _next_job_index(self) -> int:
        index = self._job_counter
        self._job_counter += 1
        return index

    # ------------------------------------------------------ state preparation

    def _plan_for(self, circuit: Circuit) -> CircuitPlan:
        """The compiled plan for ``circuit``'s structure (plan cache)."""
        key = structure_fingerprint(circuit)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = compile_plan(circuit)
            self._plan_cache.put(key, plan)
            _M_PLAN_MISSES.inc()
        else:
            _M_PLAN_HITS.inc()
        return plan

    def prepare_state(self, circuit: Circuit) -> np.ndarray:
        """Memoized ansatz-state preparation (never charged, noise-free).

        Callers must treat the returned statevector as read-only — the
        backend's ``run_statevector`` copies it before applying suffixes,
        so the cached array is never mutated downstream.
        """
        key = circuit_fingerprint(circuit)
        state = self._state_cache.get(key)
        if state is None:
            if self._plan_prepare:
                state = self.backend.prepare_state(
                    circuit, plan=self._plan_for(circuit)
                )
            else:
                state = self.backend.prepare_state(circuit)
            self._state_cache.put(key, state)
        return state

    def prepare_states(self, circuits) -> list[np.ndarray]:
        """Batched :meth:`prepare_state` over many bound circuits.

        Cache misses that share one structure (SPSA's ``±ck·Δ``
        perturbation pair, sweep points over one ansatz) advance
        through a single compiled-plan batch — one broadcast ``matmul``
        per gate — and land in the state cache.  Every returned state
        is bit-identical to calling :meth:`prepare_state` one circuit
        at a time.
        """
        results: list[np.ndarray | None] = [None] * len(circuits)
        misses: list[tuple[int, str, Circuit]] = []
        for i, circuit in enumerate(circuits):
            key = circuit_fingerprint(circuit)
            state = self._state_cache.get(key)
            if state is None:
                misses.append((i, key, circuit))
            else:
                results[i] = state
        groups: dict[str, tuple[CircuitPlan, list]] = {}
        for i, key, circuit in misses:
            if self._plan_prepare:
                plan = self._plan_for(circuit)
                groups.setdefault(plan.structure_key, (plan, []))[
                    1
                ].append((i, key, circuit))
            else:
                state = self.backend.prepare_state(circuit)
                self._state_cache.put(key, state)
                results[i] = state
        for plan, items in groups.values():
            if len(items) == 1:
                i, key, circuit = items[0]
                state = self.backend.prepare_state(circuit, plan=plan)
                self._state_cache.put(key, state)
                results[i] = state
                continue
            states = plan.run_batch(
                [plan.slot_values(circuit) for _, _, circuit in items]
            )
            for (i, key, _), row in zip(items, states):
                state = row.copy()
                self._state_cache.put(key, state)
                results[i] = state
        return results

    # -------------------------------------------------------------- execution

    def _simulate(self, spec) -> PMF:
        """Scalar simulation through the backend's planless hooks.

        The fallback for backends that override the dense pipeline
        (stabilizer tableaus, density channels, test doubles) — and for
        engines with the plan path disabled.
        """
        if isinstance(spec, CircuitSpec):
            return self.backend.exact_pmf(
                spec.circuit, map_to_best=spec.map_to_best
            )
        return self.backend.pmf_from_state(
            spec.state,
            spec.suffix,
            spec.measured_qubits,
            map_to_best=spec.map_to_best,
            gate_load=spec.gate_load,
        )

    def _ideal_probs_group(
        self, plan: CircuitPlan, group: list[tuple[tuple, CircuitSpec]]
    ) -> list[tuple]:
        """Ideal probability rows of same-structure circuit specs.

        Runs the whole group through one compiled-plan batch; the noise
        pipeline is applied later by the backend's vectorized finisher.
        Gate loads come from each spec's *original* instruction list.
        """
        states = plan.run_batch(
            [plan.slot_values(spec.circuit) for _, spec in group]
        )
        rows = []
        for (key, spec), state in zip(group, states):
            circuit = spec.circuit
            g2 = circuit.num_two_qubit_gates
            g1 = circuit.num_gates - g2
            rows.append((
                key,
                probabilities(state),
                circuit.n_qubits,
                tuple(sorted(circuit.measured_qubits)),
                spec.map_to_best,
                (g1, g2),
            ))
        return rows

    def _ideal_probs_state(
        self, key: tuple, spec: StateSpec, suffix_plan: CircuitPlan | None
    ) -> list[tuple]:
        """Ideal probability row of one prepared-state spec.

        Evolves the state through the cached suffix plan (when there is
        a suffix) and charges the *combined* original gate load, exactly
        like the backend's ``_pmf_from_state``.
        """
        state = spec.state
        g1, g2 = spec.gate_load
        if suffix_plan is not None:
            state = suffix_plan.run(
                suffix_plan.slot_values(spec.suffix), initial_state=state
            )
            s1, s2 = suffix_plan.gate_load
            g1, g2 = g1 + s1, g2 + s2
        n = int(np.log2(state.shape[0]))
        return [(
            key,
            probabilities(state),
            n,
            tuple(sorted(int(q) for q in spec.measured_qubits)),
            spec.map_to_best,
            (g1, g2),
        )]

    def _execute(self, jobs: list[JobHandle]) -> None:
        if not jobs:
            return
        self._batches_run += 1
        started = time.perf_counter()
        with _obs_span("engine.batch", jobs=len(jobs)) as batch_span:
            device_fp = device_fingerprint(self.backend)

            # Phase 1: dedup — group by content fingerprint, consult
            # the memoization cache, collect one simulation per miss.
            resolved: dict[tuple, PMF] = {}
            scheduled: set[tuple] = set()
            misses: list[tuple[tuple, object]] = []
            coalesced = 0
            with _obs_span("engine.dedup"):
                for job in jobs:
                    key = (device_fp, job._fingerprint)
                    if key in resolved or key in scheduled:
                        self._dedup_coalesced += 1
                        coalesced += 1
                        job.source = "dedup"
                        continue
                    cached = self._pmf_cache.get(key)
                    if cached is not None:
                        resolved[key] = cached
                        job.source = "cache"
                    else:
                        scheduled.add(key)
                        misses.append((key, job.spec))
                        job.source = "simulated"
                        self._simulations += 1
            cache_hits = len(resolved)

            # Phase 2: simulate.  On plan-capable backends each miss
            # contributes an *ideal probability row*: full circuits
            # sharing one structure vectorize into a single
            # compiled-plan batch (one broadcast matmul per gate),
            # suffix specs evolve through cached suffix plans.  The
            # noise pipeline then advances every row at once through
            # the backend's vectorized finisher.  All of it is
            # bit-identical to the planless hooks, which keep serving
            # backends that override them.
            futures: dict[tuple, object] = {}
            row_futures: list[object] = []
            with _obs_span("engine.simulate", simulations=len(misses)):
                circuit_groups: dict[str, tuple[CircuitPlan, list]] = {}
                for key, spec in misses:
                    if isinstance(spec, CircuitSpec) and self._plan_batching:
                        plan = self._plan_for(spec.circuit)
                        circuit_groups.setdefault(
                            plan.structure_key, (plan, [])
                        )[1].append((key, spec))
                    elif (
                        isinstance(spec, StateSpec) and self._suffix_plans
                    ):
                        suffix_plan = (
                            self._plan_for(spec.suffix)
                            if spec.suffix is not None
                            else None
                        )
                        row_futures.append(
                            self._executor.submit(
                                self._ideal_probs_state,
                                key,
                                spec,
                                suffix_plan,
                            )
                        )
                    else:
                        futures[key] = self._executor.submit(
                            self._simulate, spec
                        )
                for plan, group in circuit_groups.values():
                    row_futures.append(
                        self._executor.submit(
                            self._ideal_probs_group, plan, group
                        )
                    )
                for key, future in futures.items():
                    pmf = future.result()
                    resolved[key] = pmf
                    self._pmf_cache.put(key, pmf)
                rows: list[tuple] = []
                for future in row_futures:
                    rows.extend(future.result())
                if rows:
                    pmfs = self.backend.exact_pmfs_from_probs_batch(
                        [row[1:] for row in rows]
                    )
                    for (key, *_), pmf in zip(rows, pmfs):
                        resolved[key] = pmf
                        self._pmf_cache.put(key, pmf)

            # Phase 3: sample and charge in submission order.
            shots_charged = 0
            shared = self.config.rng_mode == "shared"
            with _obs_span("engine.sample"):
                for job in jobs:
                    pmf = resolved[(device_fp, job._fingerprint)]
                    if shared:
                        rng = self.backend.rng
                    else:
                        rng = np.random.default_rng(
                            (self._rng_root, job.index)
                        )
                    counts = self.backend.sample(pmf, job.spec.shots, rng)
                    self.backend.charge(job.spec.shots)
                    shots_charged += job.spec.shots
                    job._pmf = pmf
                    job._counts = counts
            batch_span.set(
                cache_hits=cache_hits,
                coalesced=coalesced,
                simulations=len(misses),
                shots=shots_charged,
            )

        _M_BATCHES.inc()
        _M_JOBS.inc(len(jobs))
        _M_SHOTS.inc(shots_charged)
        _M_SIMULATIONS.inc(len(misses))
        _M_CACHE_HITS.inc(cache_hits)
        _M_COALESCED.inc(coalesced)
        _M_BATCH_SECONDS.observe(time.perf_counter() - started)

    # -------------------------------------------------------------- lifecycle

    @property
    def stats(self) -> EngineStats:
        """Lifetime execution counters (see :class:`EngineStats`)."""
        return EngineStats(
            jobs_submitted=self._job_counter,
            batches_run=self._batches_run,
            simulations=self._simulations,
            dedup_coalesced=self._dedup_coalesced,
            pmf_cache=self._pmf_cache.stats,
            state_cache=self._state_cache.stats,
            plan_cache=self._plan_cache.stats,
        )

    def clear_caches(self) -> None:
        """Drop every memoized PMF, prepared state, and compiled plan."""
        self._pmf_cache.clear()
        self._state_cache.clear()
        self._plan_cache.clear()

    def close(self) -> None:
        """Shut down the worker pool (caches stay usable)."""
        self._executor.shutdown()

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"<ExecutionEngine workers={self.config.workers} "
            f"jobs={s.jobs_submitted} sims={s.simulations} "
            f"cache={s.pmf_cache.hits}/{s.pmf_cache.requests} hits>"
        )
