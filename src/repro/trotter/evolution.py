"""Trotter-Suzuki product formulas for Pauli-sum Hamiltonians.

The building block is the exact exponential of one Pauli term,

    exp(-i θ/2 · P)  =  V† · (CX ladder) · RZ(θ) · (CX ladder)† · V

where ``V`` rotates every support site into the Z basis (X -> H,
Y -> S†H).  Chaining those blocks term by term gives the first-order
formula; running the terms forward for half a step and backward for the
other half gives the symmetric second-order (Strang) formula with one
order better error.

Error scaling (verified by the tests): for total time ``t`` split into
``n`` steps, first order converges as O(t²/n) and second order as
O(t³/n²).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg

from ..circuits import Circuit
from ..hamiltonian import Hamiltonian
from ..pauli import PauliString

__all__ = [
    "pauli_exponential",
    "trotter_step",
    "trotter_circuit",
    "evolve_exact",
    "average_magnetization",
]


def _append_basis_change(qc: Circuit, pauli: PauliString, invert: bool) -> None:
    for q, char in pauli.sparse().items():
        if char == "X":
            qc.h(q)
        elif char == "Y":
            if invert:
                qc.h(q)
                qc.s(q)
            else:
                qc.sdg(q)
                qc.h(q)


def pauli_exponential(pauli: PauliString, theta: float) -> Circuit:
    """The circuit of ``exp(-i theta/2 · pauli)`` (exact, no phase).

    Identity strings evolve only a global phase, so they produce an
    empty circuit.
    """
    qc = Circuit(pauli.n_qubits, name=f"exp({pauli.label})")
    support = pauli.support
    if not support:
        return qc
    _append_basis_change(qc, pauli, invert=False)
    target = support[-1]
    for q in support[:-1]:
        qc.cx(q, target)
    qc.rz(theta, target)
    for q in reversed(support[:-1]):
        qc.cx(q, target)
    _append_basis_change(qc, pauli, invert=True)
    return qc


def trotter_step(
    hamiltonian: Hamiltonian, dt: float, order: int = 1
) -> Circuit:
    """One Trotter step ``≈ exp(-i H dt)``.

    ``order`` 1 is the plain product formula; 2 is the symmetric Strang
    splitting (terms forward at dt/2, then backward at dt/2).
    """
    if order not in (1, 2):
        raise ValueError("order must be 1 or 2")
    terms = hamiltonian.non_identity_terms()
    qc = Circuit(hamiltonian.n_qubits, name=f"trotter{order}")
    if order == 1:
        for coeff, pauli in terms:
            qc = qc.compose(pauli_exponential(pauli, 2.0 * coeff * dt))
    else:
        half = dt / 2.0
        for coeff, pauli in terms:
            qc = qc.compose(pauli_exponential(pauli, 2.0 * coeff * half))
        for coeff, pauli in reversed(terms):
            qc = qc.compose(pauli_exponential(pauli, 2.0 * coeff * half))
    return qc


def trotter_circuit(
    hamiltonian: Hamiltonian,
    time: float,
    n_steps: int,
    order: int = 1,
) -> Circuit:
    """The full evolution circuit ``≈ exp(-i H · time)``."""
    if n_steps < 1:
        raise ValueError("n_steps must be positive")
    step = trotter_step(hamiltonian, time / n_steps, order=order)
    qc = Circuit(hamiltonian.n_qubits, name=f"evolve_t{time:g}")
    for _ in range(n_steps):
        qc = qc.compose(step)
    return qc


def evolve_exact(
    hamiltonian: Hamiltonian, time: float, state: np.ndarray
) -> np.ndarray:
    """Exact ``exp(-i H t)|state>`` via sparse Krylov exponentiation.

    The identity offset only contributes a global phase; it is included
    so inner products against other exact evolutions stay consistent.
    """
    matrix = hamiltonian.to_sparse_matrix()
    return scipy.sparse.linalg.expm_multiply(
        -1j * time * matrix.tocsc(), state.astype(complex)
    )


def average_magnetization(probs: np.ndarray, n_qubits: int) -> float:
    """Mean ``<Z_q>`` over the register from Z-basis probabilities.

    The standard quench observable: +1 for all-up, -1 for all-down,
    0 for a fully mixed register.
    """
    if probs.shape != (2**n_qubits,):
        raise ValueError(
            f"probability vector length {probs.shape} != 2^{n_qubits}"
        )
    return float(
        np.mean(
            [
                PauliString.from_sparse(
                    n_qubits, {q: "Z"}
                ).expectation_from_probs(probs)
                for q in range(n_qubits)
            ]
        )
    )
