"""Trotterized Hamiltonian time evolution.

Section 7.3 names "time-evolving Hamiltonian simulations that encompass
a broad range of algorithms such as the Ising model, Heisenberg model,
XY model" as the application family VarSaw's optimizations extend to.
This subpackage builds that family's circuit substrate: first- and
second-order Trotter-Suzuki product formulas compiling any Pauli-sum
Hamiltonian into evolution circuits, plus the exact reference evolution
for error measurement.
"""

from .evolution import (
    average_magnetization,
    evolve_exact,
    pauli_exponential,
    trotter_circuit,
    trotter_step,
)
from .mitigated_sweep import QuenchSweepResult, sparse_quench_sweep

__all__ = [
    "pauli_exponential",
    "trotter_step",
    "trotter_circuit",
    "evolve_exact",
    "QuenchSweepResult",
    "sparse_quench_sweep",
    "average_magnetization",
]
