"""VarSaw-style temporal sparsity for time-evolution sweeps.

A quench experiment evaluates an observable at a *sweep* of evolution
times.  Like adjacent VQA iterations, adjacent time points produce
similar output distributions — so the Global runs that anchor JigSaw's
Bayesian reconstruction are temporally redundant across the sweep.
:func:`sparse_quench_sweep` runs the subset circuits at every time point
but a fresh Global only every ``global_period`` points, reconstructing
the rest against the most recent mitigated distribution — VarSaw's
Fig. 11 design transplanted to Section 7.3's "time-evolving Hamiltonian
simulations".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits import Circuit
from ..hamiltonian import Hamiltonian
from ..mitigation import bayesian_reconstruct
from ..mitigation.subsets import sliding_windows
from ..noise import SimulatorBackend
from ..sim import PMF
from .evolution import trotter_circuit

__all__ = ["QuenchSweepResult", "sparse_quench_sweep"]


@dataclass(frozen=True)
class QuenchSweepResult:
    """Mitigated distributions for every time point plus cost ledger."""

    times: tuple[float, ...]
    outputs: tuple[PMF, ...]
    circuits_executed: int
    globals_executed: int

    def __len__(self) -> int:
        return len(self.times)


def _run_locals(
    backend: SimulatorBackend,
    circuit: Circuit,
    window: int,
    shots: int,
) -> tuple[list[PMF], int]:
    locals_: list[PMF] = []
    executed = 0
    for positions in sliding_windows(circuit.n_qubits, window):
        partial = circuit.copy()
        partial.measured_qubits = set()
        partial.measure(positions)
        counts = backend.run(partial, shots, map_to_best=True)
        locals_.append(counts.to_pmf())
        executed += 1
    return locals_, executed


def sparse_quench_sweep(
    backend: SimulatorBackend,
    hamiltonian: Hamiltonian,
    times,
    steps_per_unit: int = 8,
    order: int = 2,
    shots: int = 4096,
    window: int = 2,
    global_period: int = 4,
) -> QuenchSweepResult:
    """Mitigate a whole quench sweep with temporally sparse Globals.

    At each time point the evolution circuit's subset (Local) runs are
    executed; a full-register Global run happens only on every
    ``global_period``-th point (always on the first).  In between, the
    previous point's mitigated output serves as the reconstruction
    prior — the same staleness bet VarSaw makes across VQA iterations.

    ``global_period=1`` degenerates to per-point JigSaw.
    """
    times = tuple(float(t) for t in times)
    if not times:
        raise ValueError("empty time sweep")
    if global_period < 1:
        raise ValueError("global_period must be >= 1")
    if sorted(times) != list(times):
        raise ValueError("times must be sorted ascending")

    outputs: list[PMF] = []
    executed = 0
    globals_run = 0
    prior: PMF | None = None
    for index, t in enumerate(times):
        n_steps = max(1, round(steps_per_unit * t))
        circuit = trotter_circuit(hamiltonian, t, n_steps, order=order)
        locals_, used = _run_locals(backend, circuit, window, shots)
        executed += used
        if prior is None or index % global_period == 0:
            full = circuit.copy()
            full.measure_all()
            prior_pmf = backend.run(full, shots).to_pmf()
            executed += 1
            globals_run += 1
        else:
            prior_pmf = prior
        output = bayesian_reconstruct(prior_pmf, locals_)
        outputs.append(output)
        prior = output
    return QuenchSweepResult(
        times=times,
        outputs=tuple(outputs),
        circuits_executed=executed,
        globals_executed=globals_run,
    )
