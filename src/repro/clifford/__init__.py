"""Clifford/stabilizer substrate.

The paper's spatial optimization sticks to *qubit-wise* commutativity
because general-commutation (GC) grouping needs an entangling Clifford
circuit to rotate each group into the computational basis (Section 3.1).
This subpackage supplies exactly that machinery so the trade-off can be
measured instead of assumed:

* :class:`CliffordTableau` — phase-tracking stabilizer tableau that
  conjugates Pauli strings through Clifford circuits in O(n) per gate.
* :func:`diagonalize_commuting` — build the Clifford measurement circuit
  that maps a mutually-commuting Pauli family to Z-only strings, plus the
  signed diagonal image of every member.
* :func:`stabilizer_probabilities` — exact outcome distributions of
  Clifford-only circuits straight from the tableau (the ``clifford``
  execution backend's fast path; see :mod:`repro.backends`).
"""

from .tableau import CliffordTableau, CLIFFORD_GATES
from .diagonalize import DiagonalizedGroup, diagonalize_commuting
from .stabilizer import is_clifford_circuit, stabilizer_probabilities

__all__ = [
    "CliffordTableau",
    "CLIFFORD_GATES",
    "DiagonalizedGroup",
    "diagonalize_commuting",
    "is_clifford_circuit",
    "stabilizer_probabilities",
]
