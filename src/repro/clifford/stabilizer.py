"""Stabilizer-state outcome distributions from a Clifford tableau.

A Clifford circuit maps |0...0> to a *stabilizer state*: the state
stabilized by the images of the initial ``Z_q`` generators under the
circuit's conjugation action — exactly the rows a
:class:`~repro.clifford.tableau.CliffordTableau` tracks.  The
computational-basis outcome distribution of such a state is uniform
over an affine subspace of bitstrings, so it can be computed without
ever materializing the ``2^n`` complex statevector:

1. Reduce the ``n`` stabilizer generators over GF(2) until the X-parts
   are in echelon form; the generators whose X-part vanishes span the
   *Z-type* subgroup.
2. Each Z-type generator ``(-1)^s Z^b`` contributes one linear
   constraint ``b . x = s (mod 2)`` on the outcome bits ``x``.
3. The distribution is uniform over the bitstrings satisfying every
   constraint (probability ``2^m / 2^n`` for ``m`` independent Z-type
   generators — exactly representable, so results are bit-identical to
   the dense simulator's).

This is the fast path behind the ``clifford`` execution backend
(:mod:`repro.backends.clifford`): tableau evolution costs O(n) per
gate instead of the statevector's O(2^n).
"""

from __future__ import annotations

import numpy as np

from ..circuits import Circuit
from .tableau import CLIFFORD_GATES, CliffordTableau, PhaseForm, _phase_mul

__all__ = ["is_clifford_circuit", "stabilizer_probabilities"]


def is_clifford_circuit(circuit: Circuit) -> bool:
    """Whether every gate in ``circuit`` has a tableau update.

    The test is purely syntactic (gate names against
    :data:`~repro.clifford.tableau.CLIFFORD_GATES`): an ``rz`` at a
    multiple of pi/2 still reads as non-Clifford, which keeps dispatch
    deterministic and cheap.
    """
    return all(
        ins.name.lower() in CLIFFORD_GATES for ins in circuit.instructions
    )


def _bit_parity(values: np.ndarray) -> np.ndarray:
    """Elementwise popcount-mod-2 of a uint64 array.

    Uses ``np.bitwise_count`` where available (NumPy >= 2.0); the
    fallback folds the 64 bits down with five in-place shifted XORs.
    """
    popcount = getattr(np, "bitwise_count", None)
    if popcount is not None:
        return (popcount(values) & 1).astype(bool)
    folded = values.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        folded ^= folded >> np.uint64(shift)
    return (folded & np.uint64(1)).astype(bool)


def _z_type_constraints(
    tableau: CliffordTableau,
) -> list[tuple[np.ndarray, int]]:
    """The Z-type subgroup of the state's stabilizer group.

    Returns ``(b, s)`` pairs, one per independent pure-Z stabilizer
    ``(-1)^s Z^b``; outcomes must satisfy ``b . x = s (mod 2)``.
    """
    n = tableau.n
    forms: list[PhaseForm] = [
        tableau._row_phase_form(n + q) for q in range(n)
    ]
    # GF(2) elimination on the X-parts; phase bookkeeping rides along
    # through _phase_mul so the surviving Z-rows keep exact signs.
    pivot_rows: list[PhaseForm] = []
    for column in range(n):
        pivot = next(
            (i for i, (_, x, _z) in enumerate(forms) if x[column]), None
        )
        if pivot is None:
            continue
        pivot_form = forms.pop(pivot)
        pivot_rows.append(pivot_form)
        forms = [
            _phase_mul(form, pivot_form) if form[1][column] else form
            for form in forms
        ]
    constraints: list[tuple[np.ndarray, int]] = []
    for k, x, z in forms:
        if x.any():  # pragma: no cover - elimination guarantees not
            raise AssertionError("non-Z row survived elimination")
        # Hermitian, X-free rows carry phase i^k with k in {0, 2}.
        if k % 2:  # pragma: no cover - tableau rows stay Hermitian
            raise AssertionError("non-Hermitian stabilizer row")
        constraints.append((z, (k % 4) // 2))
    return constraints


def stabilizer_probabilities(circuit: Circuit) -> np.ndarray:
    """Exact outcome probabilities of a Clifford-only circuit.

    Every probability is an exactly-represented dyadic rational
    (``1/|support|`` or ``0``); the dense simulator reproduces the same
    distribution up to floating-point dust from its gate products.
    Qubit 0 is the most significant bit of the outcome index — the
    library-wide convention.  Raises ``ValueError`` on non-Clifford
    gates; callers dispatch with :func:`is_clifford_circuit` first.
    """
    tableau = CliffordTableau.from_circuit(circuit)
    n = tableau.n
    support = np.ones(2**n, dtype=bool)
    constraints = _z_type_constraints(tableau)
    if constraints:
        # Evaluate each parity constraint as popcount(index & mask) —
        # O(1) temporaries per constraint instead of an n-column bit
        # matrix, keeping the fast path's peak memory below the dense
        # simulator's complex statevector at any device width.
        index = np.arange(2**n, dtype=np.uint64)
        for b, s in constraints:
            mask = np.uint64(0)
            for q in np.flatnonzero(b):
                mask |= np.uint64(1) << np.uint64(n - 1 - int(q))
            support &= _bit_parity(index & mask) == s
    count = int(support.sum())
    if count == 0:  # pragma: no cover - stabilizer states are non-empty
        raise AssertionError("stabilizer state with empty support")
    probs = np.zeros(2**n)
    probs[support] = 1.0 / count
    return probs
