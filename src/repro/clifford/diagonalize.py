"""Simultaneous diagonalization of mutually-commuting Pauli families.

A set of pairwise (fully) commuting Pauli strings can be measured with a
*single* circuit: a Clifford rotation that maps every member to a Z-only
string, followed by computational-basis measurement.  This is the
machinery behind general-commutation grouping — the "more sophisticated
forms of commutation" the paper leaves out of scope in Section 3.1
because of exactly the circuit-depth cost this module makes measurable.

Algorithm
---------
Work on an independent generating set (GF(2) row reduction of the
symplectic matrix).  For each generator with X-support left, pick a pivot
qubit and clear the row with column operations realized as gates:

* ``S(q)``   clears a Y at the pivot (``z ^= x`` at column q),
* ``CX(q→r)`` clears X at other columns,
* ``CZ(q, r)`` clears residual Z at other columns,
* ``H(q)``   converts the lone X at the pivot into a lone Z.

After a row is reduced to a single ``Z_q``, commutation guarantees no
other row has X at ``q``, so later operations never disturb it.  Products
of Z-only strings are Z-only, so the dependent members come out diagonal
for free.  Signs of the diagonal images are recovered exactly with
:class:`~repro.clifford.tableau.CliffordTableau`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits import Circuit
from ..pauli.pauli import PauliString
from ..pauli.symplectic import PauliTable
from .tableau import CliffordTableau

__all__ = ["DiagonalizedGroup", "diagonalize_commuting"]


@dataclass(frozen=True)
class DiagonalizedGroup:
    """A commuting Pauli family plus its shared measurement circuit.

    ``diagonals[i]`` is ``(sign, Z-only string)``: the image of
    ``members[i]`` under conjugation by ``circuit``.  The expectation of
    member *i* from post-circuit computational-basis probabilities is
    ``sign * diagonal.expectation_from_probs(probs)``.
    """

    n_qubits: int
    members: tuple[PauliString, ...]
    circuit: Circuit
    diagonals: tuple[tuple[int, PauliString], ...]

    def expectation(self, index: int, probs: np.ndarray) -> float:
        """<members[index]> from full-width post-rotation probabilities."""
        sign, diagonal = self.diagonals[index]
        return sign * diagonal.expectation_from_probs(probs)

    @property
    def entangling_gates(self) -> int:
        """Two-qubit gate count of the measurement rotation."""
        return self.circuit.num_two_qubit_gates

    def __len__(self) -> int:
        return len(self.members)


def _independent_generators(table: PauliTable) -> np.ndarray:
    """GF(2) row reduction of [x|z]; returns the independent rows stacked."""
    mat = np.concatenate([table.x, table.z], axis=1).astype(np.uint8)
    keep: list[np.ndarray] = []
    pivots: list[int] = []
    for row in mat:
        row = row.copy()
        for kept, pivot in zip(keep, pivots):
            if row[pivot]:
                row ^= kept
        nonzero = np.flatnonzero(row)
        if nonzero.size:
            keep.append(row)
            pivots.append(int(nonzero[0]))
    if not keep:
        return np.zeros((0, mat.shape[1]), dtype=np.uint8)
    return np.stack(keep)


def _verify_commuting(table: PauliTable) -> None:
    for i, pauli in enumerate(table.to_strings()):
        flags = table.commutes_with(pauli)
        if not bool(np.all(flags)):
            j = int(np.flatnonzero(~flags)[0])
            raise ValueError(
                f"Paulis do not mutually commute: "
                f"{pauli} vs {table.to_strings()[j]}"
            )


def diagonalize_commuting(paulis, n_qubits: int) -> DiagonalizedGroup:
    """Build the shared measurement circuit for a commuting Pauli family.

    Raises ``ValueError`` if any pair fails to (fully) commute.

    Example
    -------
    >>> group = diagonalize_commuting(["XX", "YY", "ZZ"], 2)
    >>> [str(d) for _, d in group.diagonals]
    ['ZI', 'ZZ', 'IZ']
    """
    members = tuple(
        p if isinstance(p, PauliString) else PauliString(p) for p in paulis
    )
    if not members:
        raise ValueError("empty Pauli family")
    for p in members:
        if p.n_qubits != n_qubits:
            raise ValueError(f"{p} width != {n_qubits}")
    table = PauliTable.from_strings(members)
    _verify_commuting(table)

    gen = _independent_generators(table)
    k = gen.shape[0]
    x = gen[:, :n_qubits].astype(bool)
    z = gen[:, n_qubits:].astype(bool)

    circuit = Circuit(n_qubits, name="gc_diagonalize")

    def apply_s(q: int) -> None:
        circuit.s(q)
        z[:, q] ^= x[:, q]

    def apply_h(q: int) -> None:
        circuit.h(q)
        x[:, q], z[:, q] = z[:, q].copy(), x[:, q].copy()

    def apply_cx(c: int, t: int) -> None:
        circuit.cx(c, t)
        x[:, t] ^= x[:, c]
        z[:, c] ^= z[:, t]

    def apply_cz(a: int, b: int) -> None:
        circuit.cz(a, b)
        z[:, a] ^= x[:, b]
        z[:, b] ^= x[:, a]

    for i in range(k):
        row_x = np.flatnonzero(x[i])
        if row_x.size == 0:
            continue  # already Z-only; stays Z-only under later column ops
        pivot = int(row_x[0])
        if z[i, pivot]:
            apply_s(pivot)
        for r in np.flatnonzero(x[i]):
            r = int(r)
            if r == pivot:
                continue
            if z[i, r]:
                apply_s(r)
            apply_cx(pivot, r)
        for r in np.flatnonzero(z[i]):
            r = int(r)
            if r == pivot:
                continue
            apply_cz(pivot, r)
        assert not z[i, pivot], "pivot Z must be clear before H"
        apply_h(pivot)

    tableau = CliffordTableau.from_circuit(circuit)
    diagonals = []
    for p in members:
        sign, image = tableau.conjugate(p)
        if any(c in "XY" for c in image.label):
            raise AssertionError(
                f"diagonalization failed: {p} -> {image}"
            )
        diagonals.append((sign, image))
    return DiagonalizedGroup(
        n_qubits=n_qubits,
        members=members,
        circuit=circuit,
        diagonals=tuple(diagonals),
    )
