"""Phase-tracking Clifford tableau (Aaronson-Gottesman style).

A Clifford unitary is fully described by the images of the single-qubit
generators under conjugation: ``U X_q U†`` and ``U Z_q U†`` are signed
Pauli strings.  :class:`CliffordTableau` stores those ``2n`` images as
binary symplectic rows plus a sign bit and updates them gate by gate, so
conjugating an arbitrary Pauli through a whole circuit costs O(n) per
gate instead of O(4^n) dense algebra.

Conventions
-----------
* Row ``i < n`` is the image of ``X_i``; row ``n + i`` is the image of
  ``Z_i``.
* A row ``(x, z, s)`` denotes the Hermitian Pauli ``(-1)^s · P`` where
  ``P`` has X on qubits with ``x``, Z with ``z``, Y with both (the same
  encoding as :mod:`repro.pauli.symplectic`).
* Internally, products track phases as ``i^k · X^x Z^z`` with ``k`` mod 4
  — the ``Y = iXZ`` bookkeeping that makes sign propagation exact.
"""

from __future__ import annotations

import numpy as np

from ..circuits import Circuit
from ..pauli.pauli import PauliString
from ..pauli.symplectic import encode

__all__ = ["CliffordTableau", "CLIFFORD_GATES"]

#: Gate names :meth:`CliffordTableau.from_circuit` accepts.
CLIFFORD_GATES = frozenset(
    {"i", "x", "y", "z", "h", "s", "sdg", "sx", "cx", "cz", "swap"}
)

_XZ_TO_CHAR = {(0, 0): "I", (1, 0): "X", (0, 1): "Z", (1, 1): "Y"}

PhaseForm = tuple[int, np.ndarray, np.ndarray]


def _phase_encode(pauli: PauliString) -> PhaseForm:
    """Hermitian string -> (k, x, z) with ``pauli = i^k X^x Z^z``.

    Each Y site contributes one factor of i (``Y = iXZ``).
    """
    x, z = encode(pauli)
    return int(np.count_nonzero(x & z)) % 4, x, z


def _phase_decode(form: PhaseForm) -> tuple[int, PauliString]:
    """(k, x, z) -> (sign, Hermitian string); raises if the phase is ±i."""
    k, x, z = form
    residue = (k - int(np.count_nonzero(x & z))) % 4
    if residue == 0:
        sign = 1
    elif residue == 2:
        sign = -1
    else:
        raise ValueError("non-Hermitian phase (±i) — invalid conjugation")
    label = "".join(
        _XZ_TO_CHAR[(int(a), int(b))] for a, b in zip(x, z)
    )
    return sign, PauliString(label)


def _phase_mul(a: PhaseForm, b: PhaseForm) -> PhaseForm:
    """Product of two ``i^k X^x Z^z`` forms.

    Commuting ``Z^az`` past ``X^bx`` picks up ``(-1)`` per overlapping
    site: ``i^(2·|az & bx|)``.
    """
    ka, xa, za = a
    kb, xb, zb = b
    k = (ka + kb + 2 * int(np.count_nonzero(za & xb))) % 4
    return k, xa ^ xb, za ^ zb


class CliffordTableau:
    """The conjugation action of a Clifford circuit on Pauli strings."""

    def __init__(self, n_qubits: int):
        if n_qubits < 1:
            raise ValueError("n_qubits must be positive")
        self.n = n_qubits
        # Row i: image of X_i; row n+i: image of Z_i.
        self.x = np.zeros((2 * n_qubits, n_qubits), dtype=bool)
        self.z = np.zeros((2 * n_qubits, n_qubits), dtype=bool)
        self.sign = np.zeros(2 * n_qubits, dtype=bool)
        for q in range(n_qubits):
            self.x[q, q] = True
            self.z[n_qubits + q, q] = True

    # ------------------------------------------------------------ constructors

    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "CliffordTableau":
        """Interpret a Clifford-only circuit; raises on any other gate."""
        tab = cls(circuit.n_qubits)
        for inst in circuit.instructions:
            tab.apply_gate(inst.name, inst.qubits)
        return tab

    def copy(self) -> "CliffordTableau":
        out = CliffordTableau(self.n)
        out.x = self.x.copy()
        out.z = self.z.copy()
        out.sign = self.sign.copy()
        return out

    # ------------------------------------------------------------------- gates

    def apply_gate(self, name: str, qubits: tuple[int, ...]) -> None:
        """Update the tableau for one more gate appended to the circuit."""
        name = name.lower()
        if name not in CLIFFORD_GATES:
            raise ValueError(f"{name!r} is not a Clifford tableau gate")
        handlers = {
            "i": lambda q: self._check(q),
            "x": self.x_gate,
            "y": self.y_gate,
            "z": self.z_gate,
            "h": self.h,
            "s": self.s,
            "sdg": self.sdg,
            "sx": self.sx,
            "cx": self.cx,
            "cz": self.cz,
            "swap": self.swap,
        }
        handlers[name](*qubits)

    def _check(self, *qubits: int) -> None:
        for q in qubits:
            if not 0 <= q < self.n:
                raise ValueError(f"qubit {q} out of range for n={self.n}")

    def h(self, q: int) -> None:
        self._check(q)
        self.sign ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def s(self, q: int) -> None:
        self._check(q)
        self.sign ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def sdg(self, q: int) -> None:
        self._check(q)
        self.sign ^= self.x[:, q] & ~self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def sx(self, q: int) -> None:
        # SX = H·S·H exactly, so the conjugation action composes.
        self.h(q)
        self.s(q)
        self.h(q)

    def x_gate(self, q: int) -> None:
        self._check(q)
        self.sign ^= self.z[:, q]

    def y_gate(self, q: int) -> None:
        self._check(q)
        self.sign ^= self.x[:, q] ^ self.z[:, q]

    def z_gate(self, q: int) -> None:
        self._check(q)
        self.sign ^= self.x[:, q]

    def cx(self, control: int, target: int) -> None:
        self._check(control, target)
        if control == target:
            raise ValueError("cx control == target")
        xc, zc = self.x[:, control], self.z[:, control]
        xt, zt = self.x[:, target], self.z[:, target]
        self.sign ^= xc & zt & ~(xt ^ zc)
        self.x[:, target] = xt ^ xc
        self.z[:, control] = zc ^ zt

    def cz(self, a: int, b: int) -> None:
        # CZ = H(b)·CX(a,b)·H(b); compose the primitive updates.
        self.h(b)
        self.cx(a, b)
        self.h(b)

    def swap(self, a: int, b: int) -> None:
        self._check(a, b)
        self.x[:, [a, b]] = self.x[:, [b, a]]
        self.z[:, [a, b]] = self.z[:, [b, a]]

    # ----------------------------------------------------------- conjugation

    def conjugate(
        self, pauli: PauliString, sign: int = 1
    ) -> tuple[int, PauliString]:
        """Return ``(sign', P')`` with ``U (sign·pauli) U† = sign'·P'``."""
        if pauli.n_qubits != self.n:
            raise ValueError("Pauli width mismatch")
        if sign not in (1, -1):
            raise ValueError("sign must be ±1")
        k0, x, z = _phase_encode(pauli)
        if sign == -1:
            k0 = (k0 + 2) % 4
        acc: PhaseForm = (
            k0,
            np.zeros(self.n, dtype=bool),
            np.zeros(self.n, dtype=bool),
        )
        # P = i^k · (Π_q X_q^{x_q}) (Π_q Z_q^{z_q}); conjugation is a
        # homomorphism, so multiply the images factor by factor.
        for q in range(self.n):
            if x[q]:
                acc = _phase_mul(acc, self._row_phase_form(q))
        for q in range(self.n):
            if z[q]:
                acc = _phase_mul(acc, self._row_phase_form(self.n + q))
        return _phase_decode(acc)

    def _row_phase_form(self, row: int) -> PhaseForm:
        """Row image as an ``i^k X^x Z^z`` form (sign bit folded into k)."""
        x, z = self.x[row], self.z[row]
        k = int(np.count_nonzero(x & z)) % 4
        if self.sign[row]:
            k = (k + 2) % 4
        return k, x, z

    # ----------------------------------------------------------- composition

    def then(self, other: "CliffordTableau") -> "CliffordTableau":
        """Tableau of running ``self``'s circuit, then ``other``'s."""
        if other.n != self.n:
            raise ValueError("width mismatch")
        out = CliffordTableau(self.n)
        for row in range(2 * self.n):
            row_sign, label = _phase_decode(self._row_phase_form(row))
            s2, p2 = other.conjugate(label)
            _, out.x[row], out.z[row] = _phase_encode(p2)
            out.sign[row] = (row_sign * s2) == -1
        return out

    def inverse(self) -> "CliffordTableau":
        """The tableau of the inverse circuit.

        The binary part of a symplectic matrix ``M = [[A, B], [C, D]]``
        (column blocks x|z, row blocks X|Z) inverts as
        ``M⁻¹ = [[Dᵀ, Bᵀ], [Cᵀ, Aᵀ]]`` over GF(2); signs are then fixed
        by requiring each inverse row to conjugate back to its generator
        with sign +1.
        """
        n = self.n
        a = self.x[:n, :]
        b = self.z[:n, :]
        c = self.x[n:, :]
        d = self.z[n:, :]
        inv = CliffordTableau(n)
        inv.x[:n, :] = d.T
        inv.z[:n, :] = b.T
        inv.x[n:, :] = c.T
        inv.z[n:, :] = a.T
        for row in range(2 * n):
            _, label = _phase_decode(inv._row_phase_form(row))
            s, _ = self.conjugate(label)
            inv.sign[row] = s == -1
        return inv

    # ----------------------------------------------------------- inspection

    def is_identity(self) -> bool:
        return self == CliffordTableau(self.n)

    def __eq__(self, other) -> bool:
        if not isinstance(other, CliffordTableau):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.x, other.x)
            and np.array_equal(self.z, other.z)
            and np.array_equal(self.sign, other.sign)
        )

    def __repr__(self) -> str:
        return f"CliffordTableau(n={self.n})"
