"""Device layout and routing substrate.

JigSaw's subset circuits win partly because "the target logical qubits
to be measured [map] onto the physical qubits with highest measurement
fidelity" (paper Section 1).  On real hardware that mapping is
constrained by the device's coupling graph and costs SWAPs when the
circuit needs non-adjacent interactions.  This subpackage supplies the
machinery the paper's compiler stack (Qiskit) provided implicitly:

* :class:`CouplingMap` — device topologies, including the Falcon-style
  heavy-hex 27-qubit graph (IBMQ Mumbai) and the 7-qubit H shape
  (Lagos / Jakarta).
* :class:`Layout` + :func:`noise_aware_layout` — readout-fidelity-aware
  placement of logical qubits onto connected physical regions.
* :func:`route_circuit` — greedy SWAP insertion that makes any circuit
  executable on a coupling map, with exact unitary-equivalence tests.
"""

from .coupling import CouplingMap
from .placement import (
    Layout,
    best_measurement_placement,
    noise_aware_layout,
    noise_aware_path_layout,
)
from .routing import RoutedCircuit, decompose_swaps, route_circuit

__all__ = [
    "CouplingMap",
    "Layout",
    "noise_aware_layout",
    "noise_aware_path_layout",
    "best_measurement_placement",
    "route_circuit",
    "RoutedCircuit",
    "decompose_swaps",
]
