"""Device coupling maps.

A :class:`CouplingMap` is an undirected connectivity graph over physical
qubits: a two-qubit gate is directly executable only between neighbors.
Topology constructors cover the devices the paper runs on — the 27-qubit
Falcon heavy-hex (IBMQ Mumbai) and the 7-qubit H shape (IBM Lagos /
Jakarta) — plus the synthetic line / ring / grid / full graphs tests
and examples use.
"""

from __future__ import annotations

import networkx as nx

__all__ = ["CouplingMap"]

#: Falcon r4/r5 heavy-hex edge list (IBMQ Mumbai and siblings).
_FALCON_27_EDGES = [
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
    (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
    (13, 14), (14, 16), (15, 18), (16, 19), (17, 18), (18, 21), (19, 20),
    (19, 22), (21, 23), (22, 25), (23, 24), (24, 25), (25, 26),
]

#: 7-qubit H-shape edge list (IBM Lagos, Jakarta, Perth, ...).
_H_SHAPE_7_EDGES = [(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)]


class CouplingMap:
    """Undirected physical-qubit connectivity."""

    def __init__(self, n_qubits: int, edges):
        if n_qubits < 1:
            raise ValueError("n_qubits must be positive")
        graph = nx.Graph()
        graph.add_nodes_from(range(n_qubits))
        for a, b in edges:
            if not (0 <= a < n_qubits and 0 <= b < n_qubits):
                raise ValueError(f"edge ({a}, {b}) out of range")
            if a == b:
                raise ValueError(f"self-loop on qubit {a}")
            graph.add_edge(int(a), int(b))
        self.graph = graph
        self._distance: dict[int, dict[int, int]] | None = None

    # ------------------------------------------------------------ topologies

    @classmethod
    def line(cls, n_qubits: int) -> "CouplingMap":
        return cls(n_qubits, [(i, i + 1) for i in range(n_qubits - 1)])

    @classmethod
    def ring(cls, n_qubits: int) -> "CouplingMap":
        if n_qubits < 3:
            raise ValueError("a ring needs at least 3 qubits")
        edges = [(i, (i + 1) % n_qubits) for i in range(n_qubits)]
        return cls(n_qubits, edges)

    @classmethod
    def grid(cls, rows: int, cols: int) -> "CouplingMap":
        if rows < 1 or cols < 1:
            raise ValueError("grid dimensions must be positive")
        edges = []
        for r in range(rows):
            for c in range(cols):
                q = r * cols + c
                if c + 1 < cols:
                    edges.append((q, q + 1))
                if r + 1 < rows:
                    edges.append((q, q + cols))
        return cls(rows * cols, edges)

    @classmethod
    def full(cls, n_qubits: int) -> "CouplingMap":
        edges = [
            (i, j)
            for i in range(n_qubits)
            for j in range(i + 1, n_qubits)
        ]
        return cls(n_qubits, edges)

    @classmethod
    def heavy_hex_27(cls) -> "CouplingMap":
        """The Falcon heavy-hex graph of IBMQ Mumbai (27 qubits)."""
        return cls(27, _FALCON_27_EDGES)

    @classmethod
    def h_shape_7(cls) -> "CouplingMap":
        """The 7-qubit H-shape graph of IBM Lagos / Jakarta."""
        return cls(7, _H_SHAPE_7_EDGES)

    # ------------------------------------------------------------ inspection

    @property
    def n_qubits(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        return self.graph.number_of_edges()

    def neighbors(self, qubit: int) -> list[int]:
        self._check(qubit)
        return sorted(self.graph.neighbors(qubit))

    def are_adjacent(self, a: int, b: int) -> bool:
        self._check(a)
        self._check(b)
        return self.graph.has_edge(a, b)

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph)

    def distance(self, a: int, b: int) -> int:
        """Hop count between two physical qubits (precomputed, cached)."""
        self._check(a)
        self._check(b)
        if self._distance is None:
            self._distance = dict(nx.all_pairs_shortest_path_length(self.graph))
        try:
            return self._distance[a][b]
        except KeyError:
            raise ValueError(f"qubits {a} and {b} are disconnected") from None

    def shortest_path(self, a: int, b: int) -> list[int]:
        self._check(a)
        self._check(b)
        try:
            return nx.shortest_path(self.graph, a, b)
        except nx.NetworkXNoPath:
            raise ValueError(f"qubits {a} and {b} are disconnected") from None

    def connected_subset(self, qubits) -> bool:
        """Do the given physical qubits induce a connected subgraph?"""
        qubits = list(qubits)
        for q in qubits:
            self._check(q)
        if not qubits:
            return False
        return nx.is_connected(self.graph.subgraph(qubits))

    def _check(self, q: int) -> None:
        if not 0 <= q < self.n_qubits:
            raise ValueError(f"qubit {q} out of range")

    def __repr__(self) -> str:
        return f"CouplingMap(n_qubits={self.n_qubits}, edges={self.n_edges})"
