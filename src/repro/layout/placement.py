"""Noise-aware placement of logical qubits on physical hardware.

Two placement problems appear in the paper's pipeline:

* **Ansatz placement** — the whole circuit needs a connected region of
  the device; among connected regions, prefer low readout error
  (:func:`noise_aware_layout`).
* **Subset placement** — a JigSaw subset measures only 2-3 qubits, so
  the measured window can sit on the device's very best readout lines
  (:func:`best_measurement_placement`); this is benefit (a) of
  measurement subsetting in Section 1 of the paper.
"""

from __future__ import annotations

from ..noise.readout import ReadoutErrorModel
from .coupling import CouplingMap

__all__ = [
    "Layout",
    "noise_aware_layout",
    "noise_aware_path_layout",
    "best_measurement_placement",
]


class Layout:
    """A logical -> physical qubit assignment."""

    def __init__(self, mapping: dict[int, int]):
        physicals = list(mapping.values())
        if len(set(physicals)) != len(physicals):
            raise ValueError("two logical qubits share a physical qubit")
        logicals = sorted(mapping)
        if logicals != list(range(len(logicals))):
            raise ValueError("logical qubits must be 0..n-1")
        self._map = dict(mapping)

    @classmethod
    def trivial(cls, n_qubits: int) -> "Layout":
        return cls({q: q for q in range(n_qubits)})

    @classmethod
    def from_physical_list(cls, physicals) -> "Layout":
        """Logical ``i`` sits at ``physicals[i]``."""
        return cls({i: int(p) for i, p in enumerate(physicals)})

    @property
    def n_logical(self) -> int:
        return len(self._map)

    def physical(self, logical: int) -> int:
        return self._map[logical]

    def logical(self, physical: int) -> int | None:
        for l, p in self._map.items():
            if p == physical:
                return l
        return None

    def physical_qubits(self) -> list[int]:
        return [self._map[l] for l in range(self.n_logical)]

    def as_dict(self) -> dict[int, int]:
        return dict(self._map)

    def swap_physicals(self, p1: int, p2: int) -> "Layout":
        """New layout with whatever sits at p1/p2 exchanged."""
        mapping = {}
        for l, p in self._map.items():
            if p == p1:
                mapping[l] = p2
            elif p == p2:
                mapping[l] = p1
            else:
                mapping[l] = p
        return Layout(mapping)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self._map == other._map

    def __repr__(self) -> str:
        body = ", ".join(
            f"{l}->{self._map[l]}" for l in range(self.n_logical)
        )
        return f"Layout({body})"


def _mean_error(readout: ReadoutErrorModel, q: int) -> float:
    return readout.qubit_errors[q].mean_error


def noise_aware_layout(
    n_logical: int,
    coupling: CouplingMap,
    readout: ReadoutErrorModel,
) -> Layout:
    """Place ``n_logical`` qubits on a connected, low-readout-error region.

    Greedy region growing: seed at each physical qubit in turn, always
    absorbing the frontier neighbor with the lowest mean readout error,
    and keep the region with the best total error.  This mirrors the
    noise-adaptive mapping of [Murali et al. ASPLOS'19, the paper's
    ref 38] at the granularity this library needs.
    """
    if n_logical < 1:
        raise ValueError("n_logical must be positive")
    if n_logical > coupling.n_qubits:
        raise ValueError(
            f"{n_logical} logical qubits > {coupling.n_qubits} physical"
        )
    if readout.n_qubits != coupling.n_qubits:
        raise ValueError("readout model width != coupling width")

    best_region: list[int] | None = None
    best_cost = float("inf")
    for seed in range(coupling.n_qubits):
        region = [seed]
        frontier = set(coupling.neighbors(seed))
        while len(region) < n_logical and frontier:
            pick = min(frontier, key=lambda q: _mean_error(readout, q))
            region.append(pick)
            frontier.discard(pick)
            frontier.update(
                q for q in coupling.neighbors(pick) if q not in region
            )
        if len(region) < n_logical:
            continue  # disconnected component too small
        cost = sum(_mean_error(readout, q) for q in region)
        if cost < best_cost:
            best_cost = cost
            best_region = region
    if best_region is None:
        raise ValueError("no connected region large enough")
    # Within the region, give the best readout lines to the lowest
    # logical indices (callers put measured qubits first).
    ordered = sorted(best_region, key=lambda q: _mean_error(readout, q))
    return Layout.from_physical_list(ordered)


def noise_aware_path_layout(
    n_logical: int,
    coupling: CouplingMap,
    readout: ReadoutErrorModel,
    max_paths: int = 200_000,
) -> Layout:
    """Place ``n_logical`` qubits on a low-error *simple path*.

    Linear-entanglement ansatz (and CX ladders generally) route SWAP-free
    when consecutive logical qubits sit on physically adjacent qubits.
    This enumerates simple paths of the required length by DFS (cheap on
    sparse device graphs — heavy-hex degree is at most 3) and returns the
    one with the lowest total readout error, with logical order along
    the path.
    """
    if n_logical < 1:
        raise ValueError("n_logical must be positive")
    if n_logical > coupling.n_qubits:
        raise ValueError(
            f"{n_logical} logical qubits > {coupling.n_qubits} physical"
        )
    if readout.n_qubits != coupling.n_qubits:
        raise ValueError("readout model width != coupling width")
    if n_logical == 1:
        best = readout.best_qubits(1)
        return Layout.from_physical_list(best)

    best_path: list[int] | None = None
    best_cost = float("inf")
    explored = 0
    for seed in range(coupling.n_qubits):
        stack = [(seed, [seed], _mean_error(readout, seed))]
        while stack:
            node, path, cost = stack.pop()
            explored += 1
            if explored > max_paths:
                break
            if cost >= best_cost:
                continue
            if len(path) == n_logical:
                best_path, best_cost = path, cost
                continue
            for nxt in coupling.neighbors(node):
                if nxt not in path:
                    stack.append(
                        (nxt, path + [nxt], cost + _mean_error(readout, nxt))
                    )
    if best_path is None:
        raise ValueError(
            f"no simple path of {n_logical} qubits in the coupling map"
        )
    return Layout.from_physical_list(best_path)


def best_measurement_placement(
    measured_logicals,
    coupling: CouplingMap,
    readout: ReadoutErrorModel,
) -> dict[int, int]:
    """Physical homes for a subset circuit's measured qubits.

    Returns ``{logical: physical}`` placing each measured qubit on the
    lowest-error readout lines, ignoring connectivity — subset circuits
    re-run the whole ansatz, so only the measurement placement matters
    for readout fidelity (the ansatz body is routed separately).
    """
    measured = list(measured_logicals)
    if len(set(measured)) != len(measured):
        raise ValueError("duplicate measured qubits")
    if len(measured) > coupling.n_qubits:
        raise ValueError("more measured qubits than physical qubits")
    best = readout.best_qubits(len(measured))
    return {logical: physical for logical, physical in zip(measured, best)}
