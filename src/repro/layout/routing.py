"""Greedy SWAP routing onto a coupling map.

Takes a logical circuit plus an initial :class:`Layout` and produces a
physical-space circuit in which every two-qubit gate acts on coupled
qubits, inserting SWAP chains along shortest paths when needed.  The
final layout is returned so measurement outcomes can be read back in
logical order — and so tests can assert exact statevector equivalence
up to that permutation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits import Circuit
from .coupling import CouplingMap
from .placement import Layout

__all__ = ["RoutedCircuit", "route_circuit", "decompose_swaps"]


@dataclass(frozen=True)
class RoutedCircuit:
    """A routed physical circuit plus its layout bookkeeping.

    ``circuit`` acts on physical qubits (width = device size).  The
    logical qubit ``l`` starts at ``initial_layout.physical(l)`` and ends
    at ``final_layout.physical(l)``; measured physical qubits are the
    images of the logical measured set under the final layout.
    """

    circuit: Circuit
    initial_layout: Layout
    final_layout: Layout
    swaps_inserted: int

    @property
    def overhead(self) -> int:
        """Extra two-qubit gates paid for connectivity (3 CX per SWAP)."""
        return 3 * self.swaps_inserted


def route_circuit(
    circuit: Circuit,
    coupling: CouplingMap,
    initial_layout: Layout | None = None,
) -> RoutedCircuit:
    """Make ``circuit`` executable on ``coupling`` by inserting SWAPs.

    Strategy: walk the instruction list; for each two-qubit gate whose
    operands are not adjacent, swap one operand along the shortest path
    until they meet.  Simple, deterministic, and within small factors of
    heuristic routers on the shallow circuits this library simulates.
    """
    if initial_layout is None:
        initial_layout = Layout.trivial(circuit.n_qubits)
    if initial_layout.n_logical != circuit.n_qubits:
        raise ValueError("layout width != circuit width")
    physicals = initial_layout.physical_qubits()
    if any(p >= coupling.n_qubits for p in physicals):
        raise ValueError("layout targets qubits outside the device")

    routed = Circuit(coupling.n_qubits, name=f"{circuit.name}_routed")
    layout = initial_layout
    swaps = 0
    for inst in circuit.instructions:
        if len(inst.qubits) == 1:
            routed.append(
                inst.name, (layout.physical(inst.qubits[0]),), inst.param
            )
            continue
        if len(inst.qubits) != 2:
            raise ValueError(
                f"cannot route {len(inst.qubits)}-qubit gate {inst.name}"
            )
        a, b = inst.qubits
        pa, pb = layout.physical(a), layout.physical(b)
        if not coupling.are_adjacent(pa, pb):
            path = coupling.shortest_path(pa, pb)
            # Walk qubit a down the path until adjacent to b.
            for step in range(len(path) - 2):
                routed.swap(path[step], path[step + 1])
                layout = layout.swap_physicals(path[step], path[step + 1])
                swaps += 1
            pa = path[-2]
        routed.append(inst.name, (pa, pb), inst.param)
    if circuit.measured_qubits:
        routed.measure(
            sorted(layout.physical(q) for q in circuit.measured_qubits)
        )
    return RoutedCircuit(
        circuit=routed,
        initial_layout=initial_layout,
        final_layout=layout,
        swaps_inserted=swaps,
    )


def decompose_swaps(circuit: Circuit) -> Circuit:
    """Replace every SWAP with its 3-CX expansion (native-gate costing)."""
    out = Circuit(circuit.n_qubits, name=circuit.name)
    for inst in circuit.instructions:
        if inst.name == "swap":
            a, b = inst.qubits
            out.cx(a, b)
            out.cx(b, a)
            out.cx(a, b)
        else:
            out.append(inst.name, inst.qubits, inst.param)
    out.measure(sorted(circuit.measured_qubits))
    return out
