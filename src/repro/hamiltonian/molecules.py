"""Molecular VQE workloads (Table 2 of the paper).

The paper builds its Hamiltonians with PySCF + Qiskit Nature.  Offline, we
substitute a *deterministic synthetic electronic-structure generator* that
reproduces what the experiments actually depend on:

* exact qubit and Pauli-term counts per workload (Table 2),
* Jordan-Wigner-like term structure — diagonal Z/ZZ strings, two-body
  X..Z..X / Y..Z..Y excitations, and eight-way four-body excitation
  patterns — which sets the I-density that VarSaw's spatial redundancy
  feeds on,
* coefficient magnitudes that decay with term weight (diagonal dominance),
* a per-molecule identity offset calibrated so the exact ground-state
  energy equals the paper's reference energy (Table 1), making every
  energy plot directly comparable to the paper's axes.

The 4-qubit H2 workload is the one molecule small enough to hardcode from
the literature: we use the standard STO-3G Jordan-Wigner coefficients
(15 terms), then apply the same identity calibration.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..pauli import PauliString
from .exact import ground_state_energy
from .hamiltonian import Hamiltonian

__all__ = ["MoleculeSpec", "MOLECULES", "molecule_keys", "build_hamiltonian", "reference_energy"]


@dataclass(frozen=True)
class MoleculeSpec:
    """One Table 2 row: workload key, size, and evaluation mode."""

    key: str
    molecule: str
    n_qubits: int
    n_terms: int
    temporal: bool  # whether temporal-redundancy evaluation is feasible
    reference_energy: float | None  # Table 1 / Fig. 13 energy scale, if known


#: Table 2, verbatim.  Reference energies come from Table 1 (paper's
#: "Ref. Energy" column) where the paper reports them; molecules the paper
#: only uses for the spatial (counting) evaluation have no reference.
MOLECULES: dict[str, MoleculeSpec] = {
    spec.key: spec
    for spec in [
        MoleculeSpec("H2-4", "H2", 4, 15, True, 10.46),
        MoleculeSpec("LiH-6", "LiH", 6, 118, True, 1.72),
        MoleculeSpec("LiH-8", "LiH", 8, 193, True, 1.72),
        MoleculeSpec("H2O-6", "H2O", 6, 62, True, -109.86),
        MoleculeSpec("H2O-8", "H2O", 8, 193, True, -109.86),
        MoleculeSpec("H2O-12", "H2O", 12, 670, False, None),
        MoleculeSpec("CH4-6", "CH4", 6, 94, True, -28.55),
        MoleculeSpec("CH4-8", "CH4", 8, 241, True, -28.55),
        MoleculeSpec("H6-10", "H6", 10, 919, False, None),
        MoleculeSpec("BeH2-12", "BeH2", 12, 670, False, None),
        MoleculeSpec("N2-12", "N2", 12, 660, False, None),
        MoleculeSpec("C2H4-20", "C2H4", 20, 10510, False, None),
        MoleculeSpec("Cr2-34", "Cr2", 34, 32699, False, None),
    ]
}


def molecule_keys(temporal_only: bool = False) -> list[str]:
    """Workload keys in Table 2 order."""
    return [
        key
        for key, spec in MOLECULES.items()
        if spec.temporal or not temporal_only
    ]


# --------------------------------------------------------------------- H2

#: Standard STO-3G Jordan-Wigner H2 Hamiltonian at equilibrium bond length
#: (O'Malley et al. 2016 convention): 15 Pauli terms on 4 qubits.
_H2_TERMS: list[tuple[float, str]] = [
    (-0.81261, "IIII"),
    (0.171201, "ZIII"),
    (0.171201, "IZII"),
    (-0.2227965, "IIZI"),
    (-0.2227965, "IIIZ"),
    (0.16862325, "ZZII"),
    (0.12054625, "ZIZI"),
    (0.165868, "ZIIZ"),
    (0.165868, "IZZI"),
    (0.12054625, "IZIZ"),
    (0.17434925, "IIZZ"),
    (-0.04532175, "XXYY"),
    (0.04532175, "XYYX"),
    (0.04532175, "YXXY"),
    (-0.04532175, "YYXX"),
]


# ------------------------------------------------------- synthetic generator

# The eight four-body excitation patterns (even number of Y's) that appear
# in Jordan-Wigner double-excitation terms.
_DOUBLE_PATTERNS = (
    "XXXX", "XXYY", "XYXY", "XYYX", "YXXY", "YXYX", "YYXX", "YYYY",
)


def _candidate_strings(n_qubits: int):
    """Yield Pauli strings in canonical electronic-structure order.

    Order: identity; single Z; ZZ pairs; one-body excitations
    (X Z..Z X and Y Z..Z Y on each pair, JW parity string between); then
    four-body excitations on each index quadruple (eight patterns each,
    with Z fill between the first and second pair).  The supply is far
    larger than any Table 2 term count.
    """
    yield PauliString.identity(n_qubits), 0
    for i in range(n_qubits):
        yield PauliString.from_sparse(n_qubits, {i: "Z"}), 1
    for i, j in itertools.combinations(range(n_qubits), 2):
        yield PauliString.from_sparse(n_qubits, {i: "Z", j: "Z"}), 2
    for i, j in itertools.combinations(range(n_qubits), 2):
        for kind in ("X", "Y"):
            assignment = {i: kind, j: kind}
            for q in range(i + 1, j):
                assignment[q] = "Z"
            yield PauliString.from_sparse(n_qubits, assignment), 2
    for quad in itertools.combinations(range(n_qubits), 4):
        i, j, k, l = quad
        for pattern in _DOUBLE_PATTERNS:
            assignment = dict(zip(quad, pattern))
            for q in range(i + 1, j):
                assignment[q] = "Z"
            for q in range(k + 1, l):
                assignment[q] = "Z"
            yield PauliString.from_sparse(n_qubits, assignment), 4


def _synthetic_terms(
    spec: MoleculeSpec, rng: np.random.Generator
) -> list[tuple[float, PauliString]]:
    """``spec.n_terms`` canonical strings with decaying coefficients.

    The diagonal core (identity, single-Z, ZZ) and the one-body
    excitations are always present — every electronic Hamiltonian has
    them.  The remaining budget is filled by a per-molecule seeded sample
    of the four-body excitation pool, so two molecules with the same
    (qubits, terms) signature still get distinct term sets, as real
    chemistry would produce.
    """
    core: list[tuple[PauliString, int]] = []
    pool: list[tuple[PauliString, int]] = []
    needed = spec.n_terms
    for pauli, weight in _candidate_strings(spec.n_qubits):
        if weight <= 2:
            core.append((pauli, weight))
        else:
            pool.append((pauli, weight))
        if len(core) >= needed or len(pool) >= 3 * needed:
            break
    if len(core) >= needed:
        chosen = core[:needed]
    else:
        remaining = needed - len(core)
        if remaining > len(pool):
            raise ValueError(
                f"cannot generate {needed} terms for {spec.key}: "
                f"only {len(core) + len(pool)} candidates"
            )
        picks = rng.choice(len(pool), size=remaining, replace=False)
        chosen = core + [pool[i] for i in sorted(picks)]
    terms: list[tuple[float, PauliString]] = []
    for pauli, weight in chosen:
        if weight == 0:
            coeff = 0.0  # identity offset is calibrated afterwards
        elif set(pauli.label) <= {"I", "Z"}:
            # Diagonal (Z-only) strings dominate electronic Hamiltonians.
            coeff = float(rng.normal(0.0, 0.4 / weight))
        else:
            coeff = float(rng.normal(0.0, 0.12 / weight))
        terms.append((coeff, pauli))
    return terms


@lru_cache(maxsize=None)
def build_hamiltonian(key: str) -> Hamiltonian:
    """Build the workload Hamiltonian for a Table 2 key, e.g. 'CH4-6'.

    Deterministic: the same key always yields the same operator.  For
    molecules with a Table 1 reference energy (and <= 12 qubits), the
    identity coefficient is calibrated so the exact ground-state energy
    equals the reference — the paper states the ideal energy is identical
    across configurations of the same molecule.
    """
    if key not in MOLECULES:
        raise KeyError(
            f"unknown molecule {key!r}; choose from {sorted(MOLECULES)}"
        )
    spec = MOLECULES[key]
    if key == "H2-4":
        ham = Hamiltonian(
            [(c, PauliString(p)) for c, p in _H2_TERMS], name=key
        )
    else:
        digest = hashlib.sha256(
            f"varsaw-molecule:{spec.molecule}:{spec.n_qubits}".encode()
        ).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "big"))
        ham = Hamiltonian(_synthetic_terms(spec, rng), name=key)
    if ham.num_terms != spec.n_terms:
        raise AssertionError(
            f"{key}: generated {ham.num_terms} terms, expected {spec.n_terms}"
        )
    if spec.reference_energy is not None and spec.n_qubits <= 12:
        raw = ground_state_energy(ham)
        ham = ham.shifted(spec.reference_energy - raw)
    return ham


def reference_energy(key: str) -> float:
    """The exact ground-state energy of the workload Hamiltonian."""
    spec = MOLECULES[key]
    if spec.reference_energy is not None:
        return spec.reference_energy
    if spec.n_qubits > 14:
        raise ValueError(
            f"{key} is too large for exact diagonalization"
        )
    return ground_state_energy(build_hamiltonian(key))
