"""Exact reference solutions via sparse diagonalization.

The paper's 'Ideal' line and every "% inaccuracy mitigated" metric need the
true ground-state energy of each workload Hamiltonian.  Up to ~14 qubits a
shift-invert Lanczos on the sparse Pauli-sum matrix is instantaneous.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg as spla

from .hamiltonian import Hamiltonian

__all__ = ["ground_state_energy", "ground_state"]


def ground_state(hamiltonian: Hamiltonian) -> tuple[float, np.ndarray]:
    """Return ``(energy, statevector)`` of the lowest eigenpair."""
    matrix = hamiltonian.to_sparse_matrix()
    dim = matrix.shape[0]
    if dim <= 64:
        dense = matrix.toarray()
        values, vectors = np.linalg.eigh(dense)
        return float(values[0]), vectors[:, 0]
    values, vectors = spla.eigsh(matrix, k=1, which="SA")
    return float(values[0]), vectors[:, 0]


def ground_state_energy(hamiltonian: Hamiltonian) -> float:
    """The exact ground-state energy (paper metric: lower is better)."""
    return ground_state(hamiltonian)[0]
